#include "jobs/task_runner.hpp"

#include <csignal>
#include <cstdlib>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "runtime/node_runtime.hpp"
#include "transfer/tcp.hpp"
#include "util/auid.hpp"
#include "util/log.hpp"

namespace bitdew::jobs {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("runner");
  return instance;
}

/// Replaces every "{input}"/"{output}" in one template element.
std::string substitute(std::string arg, const std::string& input, const std::string& output) {
  for (const auto& [token, value] :
       {std::pair<std::string, const std::string&>{"{input}", input}, {"{output}", output}}) {
    std::size_t at = 0;
    while ((at = arg.find(token, at)) != std::string::npos) {
      arg.replace(at, token.size(), value);
      at += value.size();
    }
  }
  return arg;
}

}  // namespace

TaskRunner::TaskRunner(runtime::NodeRuntime& node, std::string service_host,
                       std::uint16_t service_port, TaskRunnerConfig config)
    : node_(node),
      service_host_(std::move(service_host)),
      service_port_(service_port),
      config_(std::move(config)) {}

TaskRunner::~TaskRunner() { stop(); }

api::Status TaskRunner::start() {
  if (running_.load()) return api::ok_status();
  std::error_code ec;
  std::filesystem::create_directories(config_.scratch_dir, ec);
  if (ec) {
    return api::Error{api::Errc::kUnavailable, "runner",
                      "cannot create scratch dir " + config_.scratch_dir + ": " + ec.message()};
  }
  running_.store(true);
  const int slots = std::max(1, config_.exec_slots);
  executors_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    executors_.emplace_back(&TaskRunner::exec_loop, this);
  }
  logger().info("%s: task runner up (%d slot(s), scratch %s)", node_.name().c_str(), slots,
                config_.scratch_dir.c_str());
  return api::ok_status();
}

void TaskRunner::stop() {
  if (!running_.exchange(false)) return;
  {
    const util::LockGuard lock(mutex_);
    // Children are their own process groups: one kill takes the whole tree.
    for (const int pid : children_) kill(-pid, SIGKILL);
  }
  queue_cv_.notify_all();
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
  executors_.clear();
}

void TaskRunner::on_data_copy(const core::Data& data, const core::DataAttributes& attributes) {
  if (attributes.name != kTaskAttributeName) return;
  if (!running_.load()) return;
  {
    const util::LockGuard lock(mutex_);
    queue_.push_back(data.uid);
  }
  queue_cv_.notify_one();
}

TaskRunnerStats TaskRunner::stats() const {
  const util::LockGuard lock(mutex_);
  return stats_;
}

void TaskRunner::exec_loop() {
  // Claims, transfers and reports ride this thread's own connection; the
  // runtime's heartbeat never waits behind a task.
  api::RemoteServiceBus bus(service_host_, service_port_, config_.bus);
  for (;;) {
    util::Auid task_uid;
    {
      util::UniqueLock lock(mutex_);
      while (queue_.empty() && running_.load()) queue_cv_.wait(lock);
      if (!running_.load()) return;
      task_uid = queue_.front();
      queue_.pop_front();
    }
    run_task(bus, task_uid);
  }
}

void TaskRunner::report(api::RemoteServiceBus& bus, const util::Auid& task_uid, bool ok,
                        int exit_code, bool timed_out, bool data_local,
                        const core::Data& result) {
  TaskReport task_report;
  task_report.task = task_uid;
  task_report.runner = node_.name();
  task_report.ok = ok;
  task_report.exit_code = exit_code;
  task_report.timed_out = timed_out;
  task_report.data_local = data_local;
  task_report.result = result;
  api::Status sent = api::ok_status();
  bus.job_task_report(task_report, [&](api::Status s) { sent = std::move(s); });
  if (!sent.ok()) {
    // A lost report leaves the task claimed; the server's sweep re-places
    // it past timeout_s + claim_grace_s, so nothing is stuck forever.
    logger().warn("%s: task report for %s failed: %s", node_.name().c_str(),
                  task_uid.str().c_str(), sent.error().to_string().c_str());
  }
}

void TaskRunner::run_task(api::RemoteServiceBus& bus, const util::Auid& task_uid) {
  api::Expected<TaskOrder> claimed =
      api::Error{api::Errc::kTransport, "runner", "claim not sent"};
  bus.job_claim(task_uid, node_.name(),
                [&](api::Expected<TaskOrder> r) { claimed = std::move(r); });
  if (!claimed.ok()) {
    // kRejected: another holder won the race — the normal outcome on every
    // replica of the input but one. kNotFound: the placement went stale
    // (re-queued or done). Either way, stand down quietly.
    const util::LockGuard lock(mutex_);
    ++stats_.claims_lost;
    return;
  }
  const TaskOrder& order = *claimed;
  {
    const util::LockGuard lock(mutex_);
    ++stats_.claims_won;
  }

  // 1. The input: straight from the cache when the affinity rule did its
  //    job, from the repository when this is a fallback placement.
  const bool data_local = node_.has(order.input.uid);
  std::string input_path;
  std::string fetched_path;
  if (data_local) {
    input_path = node_.replica_path(order.input.uid);
  } else {
    fetched_path = (std::filesystem::path(config_.scratch_dir) /
                    ("in-" + order.input.uid.str()))
                       .string();
    transfer::TcpConfig fetch;
    fetch.chunk_bytes = config_.chunk_bytes;
    fetch.max_attempts = config_.transfer_attempts;
    fetch.local_name = node_.name();
    transfer::TcpTransfer engine(bus, fetch);
    const api::Status got = engine.get_file(order.input, fetched_path);
    if (!got.ok()) {
      logger().warn("%s: cannot fetch input for task %s: %s", node_.name().c_str(),
                    task_uid.str().c_str(), got.error().to_string().c_str());
      report(bus, task_uid, /*ok=*/false, /*exit_code=*/-1, /*timed_out=*/false, data_local, {});
      return;
    }
    input_path = fetched_path;
  }
  const std::string output_path =
      (std::filesystem::path(config_.scratch_dir) / ("out-" + task_uid.str())).string();

  // 2. Substitute and execute.
  std::vector<std::string> argv;
  argv.reserve(order.argv.size());
  for (const std::string& arg : order.argv) {
    argv.push_back(substitute(arg, input_path, output_path));
  }
  logger().info("%s: running task %s#%d (%s, input %s)", node_.name().c_str(),
                order.job.str().c_str(), static_cast<int>(order.index),
                data_local ? "data-local" : "fetched", order.input.name.c_str());
  int exit_code = -1;
  bool timed_out = false;
  const bool ran = run_command(argv, order.env, order.timeout_s, exit_code, timed_out);
  const bool ok = ran && !timed_out && exit_code == 0;

  core::Data result;
  api::Status published = api::ok_status();
  if (ok) {
    // 3. The output becomes a datum: register, upload, report, adopt — in
    //    that order (see the header comment for why report precedes adopt).
    try {
      const core::Content content = core::file_content(output_path);
      result.uid = util::next_auid();
      result.name = order.result_name;
      result.checksum = content.checksum;
      result.size = content.size;
    } catch (const std::exception& e) {
      published = api::Error{api::Errc::kUnavailable, "runner",
                             std::string("output unreadable: ") + e.what()};
    }
    if (published.ok()) {
      bus.dc_register(result, [&](api::Status s) { published = std::move(s); });
    }
    if (published.ok()) {
      transfer::TcpConfig up;
      up.chunk_bytes = config_.chunk_bytes;
      up.max_attempts = config_.transfer_attempts;
      up.local_name = node_.name();
      transfer::TcpTransfer engine(bus, up);
      published = engine.put_file(result, output_path);
    }
  }

  if (ok && published.ok()) {
    report(bus, task_uid, /*ok=*/true, exit_code, timed_out, data_local, result);
    core::DataAttributes attributes;
    attributes.name = "job-result";
    attributes.protocol = "p2p";
    const api::Status adopted = node_.adopt_replica(result, attributes, output_path);
    if (!adopted.ok()) {
      logger().warn("%s: result of task %s uploaded but not adopted: %s",
                    node_.name().c_str(), task_uid.str().c_str(),
                    adopted.error().to_string().c_str());
    }
    const util::LockGuard lock(mutex_);
    ++stats_.tasks_ok;
    if (data_local) ++stats_.data_local;
  } else {
    if (!published.ok()) {
      logger().warn("%s: cannot publish result of task %s: %s", node_.name().c_str(),
                    task_uid.str().c_str(), published.error().to_string().c_str());
    }
    report(bus, task_uid, /*ok=*/false, exit_code, timed_out, data_local, {});
    const util::LockGuard lock(mutex_);
    ++stats_.tasks_failed;
    if (timed_out) ++stats_.tasks_timed_out;
  }

  std::error_code ec;
  if (!fetched_path.empty()) std::filesystem::remove(fetched_path, ec);
  std::filesystem::remove(output_path, ec);
}

bool TaskRunner::run_command(const std::vector<std::string>& argv,
                             const std::vector<std::string>& env, double timeout_s,
                             int& exit_code, bool& timed_out) {
  if (argv.empty()) return false;
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Child: its own process group, so a timeout (or runner stop) can kill
    // the whole tree the command may have spawned.
    setpgid(0, 0);
    for (const std::string& kv : env) {
      const std::size_t eq = kv.find('=');
      if (eq != std::string::npos && eq > 0) {
        setenv(kv.substr(0, eq).c_str(), kv.c_str() + eq + 1, 1);
      }
    }
    std::vector<char*> c_argv;
    c_argv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) c_argv.push_back(const_cast<char*>(arg.c_str()));
    c_argv.push_back(nullptr);
    execvp(c_argv[0], c_argv.data());
    _exit(127);
  }
  setpgid(pid, pid);  // parent side of the race; EACCES after exec is fine
  {
    const util::LockGuard lock(mutex_);
    children_.push_back(pid);
  }

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s > 0 ? timeout_s : 1e9));
  bool killed = false;
  int status = 0;
  for (;;) {
    const pid_t reaped = waitpid(pid, &status, WNOHANG);
    if (reaped == pid) break;
    if (reaped < 0) {
      status = -1;
      break;
    }
    if (!killed && (std::chrono::steady_clock::now() >= deadline || !running_.load())) {
      kill(-pid, SIGKILL);
      killed = true;
      timed_out = std::chrono::steady_clock::now() >= deadline;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  {
    const util::LockGuard lock(mutex_);
    children_.erase(std::remove(children_.begin(), children_.end(), pid), children_.end());
  }
  if (status == -1) return false;
  if (WIFEXITED(status)) {
    exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code = 128 + WTERMSIG(status);
  }
  return true;
}

}  // namespace bitdew::jobs
