// The Job service: compute-to-data on top of the D* services (paper §5,
// generalised from the BLAST master/worker).
//
// Hosted inside the ServiceContainer next to DataCatalog/DataScheduler.
// Submit decomposes a JobSpec into one task per input datum and places the
// tasks through Algorithm 1's affinity rule: each task is a zero-size
// datum scheduled `{replica=0, affinity=input}`, so the scheduler delivers
// it exactly to hosts whose ds_sync-reported Δk already holds the input —
// replica-affinity placement, no new placement machinery. Workers race to
// claim a delivered task (first kJobClaim wins; later claimants are told
// kRejected and stand down), run the command, and report. On success the
// result datum is scheduled `{replica=0, affinity=collector, lifetime
// relative collector}` so it flows to the submitter over the peer data
// plane and dies with the collector.
//
// Failure semantics (docs/jobs.md):
//  * non-zero exit / timeout reported by the worker → the task is re-queued
//    under a FRESH task datum (a new uid re-fires every holder's ActiveData
//    transition), up to max_attempts placements, then kFailed;
//  * worker death → sweep() (driven by the ServiceHost's failure-detector
//    thread, right after DataScheduler::detect_failures) re-queues every
//    task whose runner the scheduler no longer reports alive;
//  * a claimed task that exceeds timeout_s + claim_grace_s without a report
//    (worker wedged, report lost) is re-queued the same way;
//  * a task unclaimed for fallback_after_s (no live host holds its input)
//    is re-placed ANYWHERE — its datum is re-scheduled `{replica=1}` with
//    the affinity cleared, and the claiming worker fetches the input from
//    the repository itself, reporting data_local=false.
//
// All methods are called under the container lock (ServiceHost) or from a
// single-threaded backend (Sim/Direct); the class itself is unsynchronized
// like the other services. Mutations are mirrored into the container's WAL
// through the persist hook, so jobs survive a daemon restart.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/expected.hpp"
#include "core/attributes.hpp"
#include "jobs/job_types.hpp"
#include "util/auid.hpp"
#include "util/clock.hpp"

namespace bitdew::services {
class DataCatalog;
class DataScheduler;
}  // namespace bitdew::services

namespace bitdew::jobs {

struct JobServiceConfig {
  /// Unclaimed for this long → re-place anywhere (input fetched on demand).
  double fallback_after_s = 20.0;
  /// Slack past timeout_s before the server re-queues a silent claimed task.
  /// Tasks with no timeout are only re-queued when their runner dies.
  double claim_grace_s = 15.0;
  /// Placements per task before it is abandoned as kFailed.
  int max_attempts = 8;
};

class JobService {
 public:
  /// Routes a placement into the scheduler (the container wires this to its
  /// WAL-persisting schedule_data). Returns false when the scheduler
  /// refuses the datum.
  using ScheduleFn =
      std::function<bool(const core::Data&, const core::DataAttributes&)>;
  using UnscheduleFn = std::function<bool(const util::Auid&)>;
  /// Mirrors one job's full state into the WAL ("" blob is never produced;
  /// the container upserts the row keyed by the job uid).
  using PersistFn = std::function<void(const util::Auid&, const std::string&)>;

  JobService(services::DataCatalog& catalog, services::DataScheduler& scheduler,
             const util::Clock& clock)
      : catalog_(catalog), scheduler_(scheduler), clock_(clock) {}

  /// The container wires its durable schedule/unschedule/persist paths in
  /// after construction. Without wiring, placements are dropped — always
  /// wire before serving.
  void wire(ScheduleFn schedule, UnscheduleFn unschedule, PersistFn persist) {
    schedule_ = std::move(schedule);
    unschedule_ = std::move(unschedule);
    persist_ = std::move(persist);
  }

  void set_config(const JobServiceConfig& config) { config_ = config; }
  const JobServiceConfig& config() const { return config_; }

  api::Expected<util::Auid> submit(const JobSpec& spec);
  api::Expected<JobStatusInfo> status(const util::Auid& job) const;
  api::Expected<TaskOrder> claim(const util::Auid& task, const std::string& runner);
  api::Status report(const TaskReport& report);

  /// Re-queues tasks lost to dead/wedged workers and fallback-places
  /// stragglers; called from the ServiceHost failure sweep right after
  /// DataScheduler::detect_failures(). Returns the number of re-placements.
  std::size_t sweep();

  std::size_t job_count() const { return jobs_.size(); }

  /// Restores one WAL row written through the persist hook. Corrupt blobs
  /// lose that job, nothing else.
  void restore(const std::string& blob);

 private:
  struct Task {
    util::Auid uid;      ///< current task datum (fresh per placement)
    util::Auid input;
    std::int32_t index = 0;
    TaskPhase phase = TaskPhase::kWaiting;
    std::string runner;
    std::int32_t attempts = 1;  ///< placements so far
    bool data_local = false;
    bool fallback = false;  ///< re-placed anywhere after fallback_after_s
    util::Auid result;
    double queued_at = 0;   ///< when the current placement entered kWaiting
    double claimed_at = 0;
  };

  struct Job {
    JobSpec spec;
    std::vector<Task> tasks;
    std::int32_t replaced = 0;  ///< re-queues across the job's lifetime
    double submitted_at = 0;
  };

  core::Data make_task_datum(const Job& job, const Task& task) const;
  core::DataAttributes task_attributes(const Task& task) const;
  bool schedule_task(const Job& job, Task& task);
  /// Fresh datum + re-placement (or kFailed past max_attempts).
  void requeue(Job& job, Task& task);
  void persist(const Job& job) const;
  std::string encode(const Job& job) const;

  services::DataCatalog& catalog_;
  services::DataScheduler& scheduler_;
  const util::Clock& clock_;
  JobServiceConfig config_;
  ScheduleFn schedule_;
  UnscheduleFn unschedule_;
  PersistFn persist_;

  std::map<util::Auid, Job> jobs_;
  /// task datum uid → (job uid, task index); re-queues retire the old uid.
  std::map<util::Auid, std::pair<util::Auid, std::size_t>> task_index_;
};

}  // namespace bitdew::jobs
