// TaskRunner: the worker half of the job subsystem (paper §5, the BLAST
// worker generalised). It is an ActiveDataEventHandler installed on a
// NodeRuntime's public ActiveData: when a task datum (attribute name
// "bitdew-task", placed by JobService through the scheduler's affinity
// rule) lands in the cache, the runner races the other holders for it with
// kJobClaim — first claim wins, later claimants are told kRejected and
// stand down. A won claim is executed on one of `exec_slots` executor
// threads:
//
//  1. the input replica is taken straight from the NodeRuntime cache when
//     present (data_local=true — the whole point of affinity placement);
//     a fallback-placed task fetches it from the repository instead;
//  2. the command template is substituted ({input}/{output}), fork/exec'd
//     in its own process group, and killed -9 past timeout_s;
//  3. on exit 0 the output file becomes a new datum: registered in the
//     catalog, uploaded to the repository, REPORTED (the server schedules
//     it with affinity to the job's collector), and only then adopted into
//     the local cache so the peer plane can serve it — report-then-adopt,
//     because a cached datum the scheduler does not know about yet would
//     be drop-ordered on the next sync;
//  4. non-zero exit / timeout is reported ok=false and the server re-places
//     the task under a fresh datum.
//
// The runner talks to the daemon over its own RemoteServiceBus per executor
// thread — claims, uploads and reports never touch the runtime's heartbeat
// connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "api/remote_service_bus.hpp"
#include "core/events.hpp"
#include "jobs/job_types.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::runtime {
class NodeRuntime;
}  // namespace bitdew::runtime

namespace bitdew::jobs {

struct TaskRunnerConfig {
  std::string scratch_dir = "scratch";  ///< fetched inputs + command outputs
  int exec_slots = 2;                   ///< concurrent task executions
  std::int64_t chunk_bytes = 256 * 1024;
  int transfer_attempts = 3;
  api::RemoteBusConfig bus;
};

struct TaskRunnerStats {
  std::uint64_t claims_won = 0;
  std::uint64_t claims_lost = 0;  ///< another holder won the race
  std::uint64_t tasks_ok = 0;
  std::uint64_t tasks_failed = 0;  ///< non-zero exit, timeout, or IO failure
  std::uint64_t tasks_timed_out = 0;
  std::uint64_t data_local = 0;  ///< executions fed from the local cache
};

class TaskRunner final : public core::ActiveDataEventHandler {
 public:
  TaskRunner(runtime::NodeRuntime& node, std::string service_host,
             std::uint16_t service_port, TaskRunnerConfig config = {});
  ~TaskRunner() override;
  TaskRunner(const TaskRunner&) = delete;
  TaskRunner& operator=(const TaskRunner&) = delete;

  /// Prepares the scratch directory and starts the executor threads.
  api::Status start();
  /// Stops the executors; any live child process is killed -9 (its task
  /// will be re-placed by the server's failure sweep). Idempotent.
  void stop();
  bool running() const { return running_.load(); }

  /// ActiveData hook: task datums enter the claim queue, everything else is
  /// ignored.
  void on_data_copy(const core::Data& data, const core::DataAttributes& attributes) override;

  TaskRunnerStats stats() const;

 private:
  void exec_loop();
  void run_task(api::RemoteServiceBus& bus, const util::Auid& task_uid);
  /// fork/exec in a fresh process group; true when the child ran to
  /// completion (exit_code/timed_out tell how it went).
  bool run_command(const std::vector<std::string>& argv,
                   const std::vector<std::string>& env, double timeout_s,
                   int& exit_code, bool& timed_out);
  void report(api::RemoteServiceBus& bus, const util::Auid& task_uid, bool ok,
              int exit_code, bool timed_out, bool data_local, const core::Data& result);

  runtime::NodeRuntime& node_;
  std::string service_host_;
  std::uint16_t service_port_;
  TaskRunnerConfig config_;

  std::atomic<bool> running_{false};
  std::vector<std::thread> executors_;
  mutable util::Mutex mutex_;
  util::CondVar queue_cv_;
  std::deque<util::Auid> queue_ GUARDED_BY(mutex_);
  /// Live child pids (killed on stop).
  std::vector<int> children_ GUARDED_BY(mutex_);
  TaskRunnerStats stats_ GUARDED_BY(mutex_);
};

}  // namespace bitdew::jobs
