// The job subsystem's data model (paper §5: BLAST as a data-driven
// master/worker program, generalised).
//
// A JobSpec is *data plus a command template*: the job's work is defined
// entirely by its input data — one task per input datum — and a sandboxed
// argv in which `{input}` / `{output}` are substituted per task. The
// JobService (services/container.hpp hosts it next to the D* services)
// decomposes the spec into tasks and realises **replica-affinity
// placement** through the Data Scheduler: each task is a zero-size datum
// scheduled `{replica=0, affinity=input}`, so Algorithm 1's affinity rule
// delivers it exactly to the hosts whose reported Δk already holds the
// input replica — compute moves to the data. Workers race to *claim* a
// delivered task (first kJobClaim wins); results are published as new
// datums with affinity to the job's collector and flow back over the peer
// data plane.
//
// These shapes ride the wire (codecs in rpc/wire.cpp) and depend only on
// core/ + util/ so every layer above can include them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/data.hpp"
#include "util/auid.hpp"

namespace bitdew::jobs {

/// The attribute name the JobService stamps on task datums; a worker's
/// TaskRunner recognises arriving tasks by it.
inline constexpr const char* kTaskAttributeName = "bitdew-task";

/// What a user submits: inputs + a command template + a collector.
struct JobSpec {
  util::Auid uid;                  ///< job id, minted by the submitter
  std::string name;                ///< human-readable label
  std::vector<std::string> argv;   ///< command; `{input}`/`{output}` substituted
  std::vector<std::string> env;    ///< extra KEY=VALUE pairs for the child
  double timeout_s = 0;            ///< per-task wall-clock limit (0 = none)
  std::vector<util::Auid> inputs;  ///< one task per input datum (DC-registered)
  util::Auid collector;            ///< results get affinity to this datum

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// A task's position in its lifecycle.
enum class TaskPhase : std::uint8_t {
  kWaiting = 0,  ///< placed (or awaiting placement), unclaimed
  kRunning = 1,  ///< claimed by `runner`
  kDone = 2,     ///< result published
  kFailed = 3,   ///< gave up after max_attempts placements
};

inline const char* task_phase_name(TaskPhase phase) {
  switch (phase) {
    case TaskPhase::kWaiting: return "waiting";
    case TaskPhase::kRunning: return "running";
    case TaskPhase::kDone: return "done";
    case TaskPhase::kFailed: return "failed";
  }
  return "unknown";
}

/// What a successful kJobClaim hands the worker: everything needed to run
/// one task without further catalog round-trips.
struct TaskOrder {
  util::Auid task;                ///< the claimed task datum
  util::Auid job;
  std::int32_t index = 0;         ///< task number within the job
  std::vector<std::string> argv;  ///< template, `{input}`/`{output}` unresolved
  std::vector<std::string> env;
  double timeout_s = 0;
  core::Data input;               ///< the datum `{input}` must resolve to
  std::string result_name;        ///< name the result datum must carry

  friend bool operator==(const TaskOrder&, const TaskOrder&) = default;
};

/// A worker's verdict on a claimed task (kJobTaskReport). On success the
/// worker has already registered + uploaded `result`; the JobService
/// schedules it with affinity to the job's collector. On failure the task
/// is re-queued under a fresh task datum.
struct TaskReport {
  util::Auid task;
  std::string runner;            ///< reporting host name
  bool ok = false;
  std::int32_t exit_code = 0;    ///< child exit code (or -1 on timeout/spawn)
  bool timed_out = false;
  bool data_local = false;       ///< input was already in Δk when claimed
  core::Data result;             ///< valid only when ok

  friend bool operator==(const TaskReport&, const TaskReport&) = default;
};

/// One task's row in a kJobStatus reply.
struct TaskInfo {
  std::int32_t index = 0;
  TaskPhase phase = TaskPhase::kWaiting;
  std::string runner;         ///< claiming/last host ("" while waiting)
  std::int32_t attempts = 0;  ///< placements so far (>1 means re-placed)
  bool data_local = false;    ///< meaningful once done
  util::Auid result;          ///< result datum once done

  friend bool operator==(const TaskInfo&, const TaskInfo&) = default;
};

/// Aggregate + per-task view of a job (kJobStatus).
struct JobStatusInfo {
  util::Auid job;
  std::string name;
  std::int32_t total = 0;
  std::int32_t waiting = 0;
  std::int32_t running = 0;
  std::int32_t done = 0;
  std::int32_t failed = 0;      ///< tasks abandoned after max_attempts
  std::int32_t data_local = 0;  ///< done tasks that ran where the input lived
  std::int32_t replaced = 0;    ///< re-queued placements (failures + lost workers)
  std::vector<TaskInfo> tasks;

  bool complete() const { return total > 0 && done == total; }
  double data_local_fraction() const {
    return done > 0 ? static_cast<double>(data_local) / done : 0.0;
  }

  friend bool operator==(const JobStatusInfo&, const JobStatusInfo&) = default;
};

}  // namespace bitdew::jobs
