#include "jobs/job_service.hpp"

#include <algorithm>
#include <set>

#include "rpc/wire.hpp"
#include "services/data_catalog.hpp"
#include "services/data_scheduler.hpp"
#include "util/md5.hpp"

namespace bitdew::jobs {

namespace {

api::Error err(api::Errc code, std::string message) {
  return api::Error{code, "jobs", std::move(message)};
}

}  // namespace

core::Data JobService::make_task_datum(const Job& job, const Task& task) const {
  core::Data datum;
  datum.uid = task.uid;
  datum.name = job.spec.name + "#" + std::to_string(task.index);
  datum.size = 0;  // zero-size: Admission::kInstant, no bytes move
  datum.checksum = util::Md5::of("").hex();
  return datum;
}

core::DataAttributes JobService::task_attributes(const Task& task) const {
  core::DataAttributes attributes;
  attributes.name = kTaskAttributeName;
  attributes.fault_tolerant = true;
  attributes.protocol = "tcp";
  if (task.fallback) {
    // Anywhere: one live host via the replica rule; the claimant fetches
    // the input from the repository itself.
    attributes.replica = 1;
  } else {
    // Replica-affinity placement: replica=0 disables the replica rule, so
    // the ONLY way the task reaches a host is Algorithm 1's affinity step —
    // hosts whose reported Δk holds the input.
    attributes.replica = 0;
    attributes.affinity = task.input;
  }
  return attributes;
}

bool JobService::schedule_task(const Job& job, Task& task) {
  if (!schedule_) return false;
  task.queued_at = clock_.now();
  return schedule_(make_task_datum(job, task), task_attributes(task));
}

api::Expected<util::Auid> JobService::submit(const JobSpec& spec) {
  if (spec.uid.is_nil()) return err(api::Errc::kInvalidArgument, "nil job uid");
  if (jobs_.count(spec.uid) != 0) {
    return err(api::Errc::kDuplicate, "job " + spec.uid.str() + " already submitted");
  }
  if (spec.argv.empty()) return err(api::Errc::kInvalidArgument, "empty argv");
  if (spec.inputs.empty()) return err(api::Errc::kInvalidArgument, "no input data");
  if (spec.timeout_s < 0) return err(api::Errc::kInvalidArgument, "negative timeout");
  for (const util::Auid& input : spec.inputs) {
    if (!catalog_.get(input)) {
      return err(api::Errc::kNotFound, "input " + input.str() + " not registered");
    }
  }
  if (spec.collector.is_nil() || !catalog_.get(spec.collector)) {
    return err(api::Errc::kNotFound, "collector not registered");
  }
  if (!scheduler_.scheduled(spec.collector)) {
    return err(api::Errc::kRejected, "collector not scheduled — results need a home");
  }

  Job job;
  job.spec = spec;
  job.submitted_at = clock_.now();
  job.tasks.reserve(spec.inputs.size());
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    // "Schedule the datum + task together": an input nobody can be affine
    // to (absent from Θ) is scheduled alongside its task, so some worker
    // acquires it and the affinity rule fires on that worker's next sync.
    const util::Auid& input = spec.inputs[i];
    if (!scheduler_.scheduled(input) && schedule_) {
      core::DataAttributes attributes;
      attributes.name = "job-input";
      attributes.replica = 1;
      attributes.fault_tolerant = true;
      attributes.protocol = "tcp";
      schedule_(*catalog_.get(input), attributes);
    }
    Task task;
    task.uid = util::next_auid();
    task.input = input;
    task.index = static_cast<std::int32_t>(i);
    if (!schedule_task(job, task)) {
      // Roll the placements made so far back out of Θ.
      for (const Task& placed : job.tasks) {
        if (unschedule_) unschedule_(placed.uid);
      }
      return err(api::Errc::kRejected, "scheduler refused task placement");
    }
    job.tasks.push_back(task);
  }

  auto [it, inserted] = jobs_.emplace(spec.uid, std::move(job));
  for (std::size_t i = 0; i < it->second.tasks.size(); ++i) {
    task_index_[it->second.tasks[i].uid] = {spec.uid, i};
  }
  persist(it->second);
  return spec.uid;
}

api::Expected<JobStatusInfo> JobService::status(const util::Auid& job_uid) const {
  const auto it = jobs_.find(job_uid);
  if (it == jobs_.end()) {
    return err(api::Errc::kNotFound, "unknown job " + job_uid.str());
  }
  const Job& job = it->second;
  JobStatusInfo info;
  info.job = job.spec.uid;
  info.name = job.spec.name;
  info.total = static_cast<std::int32_t>(job.tasks.size());
  info.replaced = job.replaced;
  info.tasks.reserve(job.tasks.size());
  for (const Task& task : job.tasks) {
    switch (task.phase) {
      case TaskPhase::kWaiting: ++info.waiting; break;
      case TaskPhase::kRunning: ++info.running; break;
      case TaskPhase::kDone:
        ++info.done;
        if (task.data_local) ++info.data_local;
        break;
      case TaskPhase::kFailed: ++info.failed; break;
    }
    TaskInfo row;
    row.index = task.index;
    row.phase = task.phase;
    row.runner = task.runner;
    row.attempts = task.attempts;
    row.data_local = task.data_local;
    row.result = task.result;
    info.tasks.push_back(std::move(row));
  }
  return info;
}

api::Expected<TaskOrder> JobService::claim(const util::Auid& task_uid,
                                           const std::string& runner) {
  const auto at = task_index_.find(task_uid);
  if (at == task_index_.end()) {
    return err(api::Errc::kNotFound, "unknown task " + task_uid.str());
  }
  Job& job = jobs_.at(at->second.first);
  Task& task = job.tasks[at->second.second];
  if (task.phase != TaskPhase::kWaiting) {
    return err(api::Errc::kRejected,
               "task already " + std::string(task_phase_name(task.phase)) +
                   (task.runner.empty() ? "" : " by " + task.runner));
  }
  const auto input = catalog_.get(task.input);
  if (!input) {
    return err(api::Errc::kNotFound, "input " + task.input.str() + " vanished");
  }
  task.phase = TaskPhase::kRunning;
  task.runner = runner;
  task.claimed_at = clock_.now();
  persist(job);

  TaskOrder order;
  order.task = task.uid;
  order.job = job.spec.uid;
  order.index = task.index;
  order.argv = job.spec.argv;
  order.env = job.spec.env;
  order.timeout_s = job.spec.timeout_s;
  order.input = *input;
  order.result_name = job.spec.name + "-result-" + std::to_string(task.index);
  return order;
}

api::Status JobService::report(const TaskReport& task_report) {
  const auto at = task_index_.find(task_report.task);
  if (at == task_index_.end()) {
    return err(api::Errc::kNotFound, "unknown task " + task_report.task.str());
  }
  Job& job = jobs_.at(at->second.first);
  Task& task = job.tasks[at->second.second];
  if (task.phase != TaskPhase::kRunning || task.runner != task_report.runner) {
    return err(api::Errc::kRejected, "task not running under " + task_report.runner);
  }

  if (!task_report.ok) {
    requeue(job, task);
    persist(job);
    return api::ok_status();
  }

  if (!task_report.result.valid()) {
    return err(api::Errc::kInvalidArgument, "successful report without a result datum");
  }
  task.phase = TaskPhase::kDone;
  task.data_local = task_report.data_local;
  task.result = task_report.result.uid;
  // The task datum has served its purpose; retire it from Θ so holders
  // drop the placement token on their next sync.
  if (unschedule_) unschedule_(task.uid);
  task_index_.erase(at);
  // The result follows the collector home and dies with it: replica=0
  // keeps the replica rule out, affinity routes it to every holder of the
  // collector datum, and the relative lifetime expires it when the
  // collector is unscheduled. The worker kept a verified copy in its own
  // cache, so the transfer rides the peer plane with the repository as
  // fallback.
  if (schedule_) {
    core::DataAttributes attributes;
    attributes.name = "job-result";
    attributes.replica = 0;
    attributes.fault_tolerant = true;
    attributes.affinity = job.spec.collector;
    attributes.lifetime = core::Lifetime::relative(job.spec.collector);
    attributes.protocol = "p2p";
    schedule_(task_report.result, attributes);
  }
  persist(job);
  return api::ok_status();
}

void JobService::requeue(Job& job, Task& task) {
  if (unschedule_) unschedule_(task.uid);
  task_index_.erase(task.uid);
  task.runner.clear();
  if (task.attempts >= config_.max_attempts) {
    task.phase = TaskPhase::kFailed;
    return;
  }
  ++task.attempts;
  ++job.replaced;
  // A fresh uid re-fires on_data_copy on every holder — the claim race
  // restarts even on hosts that already held (and declined) the old datum.
  task.uid = util::next_auid();
  task.phase = TaskPhase::kWaiting;
  schedule_task(job, task);
  task_index_[task.uid] = {job.spec.uid,
                           static_cast<std::size_t>(&task - job.tasks.data())};
}

std::size_t JobService::sweep() {
  std::size_t replaced = 0;
  const double now = clock_.now();
  std::set<std::string> alive;
  for (const services::HostInfo& host : scheduler_.host_table()) {
    if (host.alive) alive.insert(host.name);
  }
  for (auto& [uid, job] : jobs_) {
    bool changed = false;
    for (Task& task : job.tasks) {
      if (task.phase == TaskPhase::kRunning) {
        const bool runner_dead = alive.count(task.runner) == 0;
        const bool overdue = job.spec.timeout_s > 0 &&
                             now > task.claimed_at + job.spec.timeout_s +
                                       config_.claim_grace_s;
        if (runner_dead || overdue) {
          requeue(job, task);
          ++replaced;
          changed = true;
        }
      } else if (task.phase == TaskPhase::kWaiting && !task.fallback &&
                 config_.fallback_after_s > 0 &&
                 now > task.queued_at + config_.fallback_after_s) {
        // Nobody affine claimed it in time — loosen the placement to "any
        // live host"; the claimant will fetch the input on demand.
        task.fallback = true;
        schedule_task(job, task);
        ++replaced;
        changed = true;
      }
    }
    if (changed) persist(job);
  }
  return replaced;
}

void JobService::persist(const Job& job) const {
  if (persist_) persist_(job.spec.uid, encode(job));
}

std::string JobService::encode(const Job& job) const {
  rpc::Writer w;
  rpc::wire::write_job_spec(w, job.spec);
  w.i64(job.replaced);
  w.f64(job.submitted_at);
  w.u32(static_cast<std::uint32_t>(job.tasks.size()));
  for (const Task& task : job.tasks) {
    rpc::wire::write_auid(w, task.uid);
    rpc::wire::write_auid(w, task.input);
    w.i64(task.index);
    w.u8(static_cast<std::uint8_t>(task.phase));
    w.str(task.runner);
    w.i64(task.attempts);
    w.boolean(task.data_local);
    w.boolean(task.fallback);
    rpc::wire::write_auid(w, task.result);
    w.f64(task.queued_at);
    w.f64(task.claimed_at);
  }
  return w.take();
}

void JobService::restore(const std::string& blob) {
  try {
    rpc::Reader r(blob);
    Job job;
    job.spec = rpc::wire::read_job_spec(r);
    job.replaced = static_cast<std::int32_t>(r.i64());
    job.submitted_at = r.f64();
    const std::uint32_t count = r.u32();
    if (count > r.remaining()) throw rpc::CodecError("task count exceeds blob");
    job.tasks.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Task task;
      task.uid = rpc::wire::read_auid(r);
      task.input = rpc::wire::read_auid(r);
      task.index = static_cast<std::int32_t>(r.i64());
      const std::uint8_t phase = r.u8();
      if (phase > static_cast<std::uint8_t>(TaskPhase::kFailed)) {
        throw rpc::CodecError("unknown task phase");
      }
      task.phase = static_cast<TaskPhase>(phase);
      task.runner = r.str();
      task.attempts = static_cast<std::int32_t>(r.i64());
      task.data_local = r.boolean();
      task.fallback = r.boolean();
      task.result = rpc::wire::read_auid(r);
      task.queued_at = r.f64();
      task.claimed_at = r.f64();
      job.tasks.push_back(std::move(task));
    }
    const util::Auid uid = job.spec.uid;
    auto [it, inserted] = jobs_.emplace(uid, std::move(job));
    if (!inserted) return;
    for (std::size_t i = 0; i < it->second.tasks.size(); ++i) {
      const Task& task = it->second.tasks[i];
      if (task.phase == TaskPhase::kWaiting || task.phase == TaskPhase::kRunning) {
        task_index_[task.uid] = {uid, i};
      }
    }
  } catch (const rpc::CodecError&) {
    // A corrupt row loses that job, nothing else.
  }
}

}  // namespace bitdew::jobs
