#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bitdew::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::at(SimTime time, EventFn fn) {
  const EventId id = next_seq_++;
  handlers_.emplace(id, std::move(fn));
  queue_.push(Entry{std::max(time, now_), id, id});
  return id;
}

void Simulator::cancel(EventId id) {
  if (handlers_.erase(id) > 0) ++cancelled_count_;
}

bool Simulator::pending(EventId id) const { return handlers_.contains(id); }

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) {
      assert(cancelled_count_ > 0);
      --cancelled_count_;
      continue;
    }
    now_ = entry.time;
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  now_ = std::max(now_, t);
}

PeriodicTimer::PeriodicTimer(Simulator& sim, SimTime period, Simulator::EventFn fn) {
  start(sim, period, std::move(fn));
}

void PeriodicTimer::start(Simulator& sim, SimTime period, Simulator::EventFn fn) {
  stop();
  sim_ = &sim;
  period_ = period;
  fn_ = std::move(fn);
  arm();
}

void PeriodicTimer::stop() {
  if (sim_ != nullptr && pending_ != 0) sim_->cancel(pending_);
  pending_ = 0;
  sim_ = nullptr;
}

void PeriodicTimer::arm() {
  pending_ = sim_->after(period_, [this] {
    arm();   // rearm first so fn_ may stop() the timer
    fn_();
  });
}

}  // namespace bitdew::sim
