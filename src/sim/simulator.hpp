// Discrete-event simulation kernel.
//
// The kernel is a priority queue of (time, sequence) ordered events with
// lazy cancellation. Ties break on insertion order, which together with the
// single seeded Rng makes every simulation deterministic (DESIGN.md §4.5).
// All large-scale experiments in the paper's evaluation (file distribution,
// fault recovery, the BLAST application) run in virtual time on this kernel;
// it replaces the Grid'5000 / DSL-Lab testbeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace bitdew::sim {

/// Virtual time in seconds.
using SimTime = double;

/// Handle for cancelling a scheduled event; 0 is the null handle.
using EventId = std::uint64_t;

class Simulator final : public util::Clock {
 public:
  using EventFn = std::function<void()>;

  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator() override = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  double now() const override { return now_; }

  /// Schedules fn at absolute virtual time `time` (clamped to now()).
  EventId at(SimTime time, EventFn fn);

  /// Schedules fn `delay` seconds from now (delay clamped to >= 0).
  EventId after(SimTime delay, EventFn fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event; cancelling an executed/unknown id is a no-op.
  void cancel(EventId id);

  /// True if the event is still pending.
  bool pending(EventId id) const;

  /// Executes a single event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` fire.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= t, then sets the clock to exactly t.
  void run_until(SimTime t);

  /// Number of events currently queued (excluding cancelled ones).
  std::size_t queued() const { return queue_.size() - cancelled_count_; }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// The simulation's deterministic random stream.
  util::Rng& rng() { return rng_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // Min-heap by (time, seq): std::priority_queue is a max-heap, so invert.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_count_ = 0;
  std::priority_queue<Entry> queue_;
  // Live events only: erased on execution or cancellation so memory stays
  // proportional to in-flight events, not total events ever scheduled.
  std::unordered_map<EventId, EventFn> handlers_;
  util::Rng rng_;
};

/// Repeating timer bound to a Simulator. Cancelled on destruction (RAII),
/// so actors can hold one as a member without leak or double-fire risk.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  PeriodicTimer(Simulator& sim, SimTime period, Simulator::EventFn fn);
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start(Simulator& sim, SimTime period, Simulator::EventFn fn);
  void stop();
  bool running() const { return sim_ != nullptr && pending_ != 0; }

 private:
  void arm();

  Simulator* sim_ = nullptr;
  SimTime period_ = 0;
  Simulator::EventFn fn_;
  EventId pending_ = 0;
};

}  // namespace bitdew::sim
