#include "transfer/peer.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>

#include "rpc/transport.hpp"
#include "services/data_repository.hpp"
#include "transfer/chunk_source.hpp"
#include "util/log.hpp"
#include "util/md5.hpp"

namespace bitdew::transfer {
namespace {

using api::Errc;
using api::Error;
using api::Expected;
using api::ok_status;
using api::Status;

const util::Logger& logger() {
  static const util::Logger instance("p2p");
  return instance;
}

bool retryable(const Status& status) {
  // Repository-side failures that another round can survive: kTransport is
  // a dropped daemon connection (reconnect + resume), kRejected an offset
  // desync. Peer failures never surface here — they only rotate the stripe.
  return !status.ok() &&
         (status.error().code == Errc::kTransport || status.error().code == Errc::kRejected);
}

/// Splits a locator's "host:port" endpoint. Nullopt on garbage — a
/// malformed locator is skipped, not fatal.
std::optional<std::pair<std::string, std::uint16_t>> parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  const int port = std::atoi(text.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return std::nullopt;
  return std::make_pair(text.substr(0, colon), static_cast<std::uint16_t>(port));
}

}  // namespace

/// One live peer in the stripe: a lazily-connected channel speaking
/// kDrGetChunk frames at a worker's chunk server, read through the same
/// ChunkSource API as the repository fallback.
struct PeerTransfer::Source {
  std::string label;  ///< serving host's name (locator path), for logs
  std::unique_ptr<rpc::ClientChannel> channel;
  std::unique_ptr<PeerChunkSource> source;  ///< reads over `channel`
  bool dead = false;
};

PeerTransfer::PeerTransfer(api::ServiceBus& bus, PeerConfig config)
    : bus_(bus), config_(config) {
  config_.chunk_bytes = std::clamp<std::int64_t>(config_.chunk_bytes, 1, services::kMaxChunkBytes);
  config_.max_attempts = std::max(config_.max_attempts, 1);
}

Status PeerTransfer::get_file(const core::Data& data, const std::string& path,
                              const std::vector<core::Locator>& sources) {
  if (data.checksum.empty() || data.size < 0) {
    return Error{Errc::kInvalidArgument, "p2p",
                 "datum " + data.uid.str() + " has no content descriptor to verify against"};
  }

  std::vector<Source> peers;
  for (const core::Locator& locator : sources) {
    if (locator.protocol != kPeerProtocol || locator.data_uid != data.uid) continue;
    const auto endpoint = parse_endpoint(locator.host);
    if (!endpoint.has_value()) continue;
    Source source;
    source.label = locator.path.empty() ? locator.host : locator.path;
    source.channel = std::make_unique<rpc::ClientChannel>(
        endpoint->first, endpoint->second, config_.peer_connect_timeout_s,
        config_.peer_call_deadline_s);
    source.source = std::make_unique<PeerChunkSource>(*source.channel, source.label);
    peers.push_back(std::move(source));
  }

  services::TicketId ticket = 0;
  if (config_.track_ticket) {
    auto registered = std::make_shared<std::optional<Expected<services::TicketId>>>();
    bus_.dt_register(data, peers.empty() ? "dr" : "peers", config_.local_name, kPeerProtocol,
                     [registered](Expected<services::TicketId> reply) {
                       *registered = std::move(reply);
                     });
    if (registered->has_value() && (*registered)->ok()) ticket = ***registered;
  }

  const std::string part = path + ".part";
  Status outcome = ok_status();
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      // A dropped peer may have been a restarting worker: give every source
      // another chance this round (its channel reconnects on the next call).
      for (Source& peer : peers) peer.dead = false;
    }
    outcome = get_round(data, part, peers, ticket);
    if (!retryable(outcome)) break;
  }
  if (outcome.ok()) {
    std::error_code ec;
    std::filesystem::rename(part, path, ec);
    if (ec) outcome = Error{Errc::kUnavailable, "p2p", "cannot move " + part + ": " + ec.message()};
  }

  if (ticket != 0) {
    if (outcome.ok()) {
      bus_.dt_complete(ticket, data.checksum, data.checksum, [](Status) {});
    } else if (outcome.error().code == Errc::kChecksumMismatch) {
      bus_.dt_complete(ticket, "(corrupt)", data.checksum, [](Status) {});
    } else {
      bus_.dt_failure(ticket, 0, /*can_resume=*/true, [](Status) {});
    }
  }
  return outcome;
}

Status PeerTransfer::get_round(const core::Data& data, const std::string& part,
                               std::vector<Source>& peers, services::TicketId ticket) {
  // Resume from whatever prefix of the .part file survived, re-hashing it
  // so the final MD5 covers every byte on disk (same policy as TcpTransfer).
  std::int64_t offset = 0;
  util::Md5 hasher;
  std::error_code ec;
  if (std::filesystem::exists(part, ec)) {
    const std::int64_t held = static_cast<std::int64_t>(std::filesystem::file_size(part, ec));
    if (!ec && held > 0 && held <= data.size) {
      std::ifstream existing(part, std::ios::binary);
      char buffer[64 * 1024];
      while (existing) {
        existing.read(buffer, sizeof(buffer));
        if (existing.gcount() > 0) hasher.update(buffer, static_cast<std::size_t>(existing.gcount()));
      }
      offset = held;
      ++stats_.resumes;
    } else {
      std::filesystem::remove(part, ec);  // oversized/unreadable partial: restart
    }
  }

  std::ofstream out(part, offset > 0 ? std::ios::binary | std::ios::app : std::ios::binary);
  if (!out) return Error{Errc::kInvalidArgument, "p2p", "cannot write " + part};

  // The fallback source: synchronous buses resolve before fetch() returns,
  // so no pump is wired (a stalled engine fails typed instead of hanging).
  BusChunkSource repository(bus_);

  // Start the stripe at a name-dependent slot so concurrent downloaders
  // spread across the swarm instead of all hammering the first peer.
  std::size_t stripe = peers.empty()
                           ? 0
                           : std::hash<std::string>{}(config_.local_name) % peers.size();
  std::int64_t chunk_index = offset / config_.chunk_bytes;

  while (offset < data.size) {
    const std::int64_t want = std::min(config_.chunk_bytes, data.size - offset);
    std::optional<std::string> chunk;

    // --- the stripe: consecutive chunks rotate across live peers ----------
    // Peers and the repository answer through the same ChunkSource API; a
    // peer failure (refused, deadline, typed error, garbage — the source
    // maps them all to an error or empty bytes) rotates the stripe.
    for (std::size_t tried = 0; tried < peers.size() && !chunk.has_value(); ++tried) {
      Source& peer = peers[(stripe + chunk_index + tried) % peers.size()];
      if (peer.dead) continue;
      Expected<std::string> bytes = peer.source->fetch(data.uid, offset, want).wait();
      // A verified replica can always serve inside [0, size): an empty
      // or failed reply means the peer no longer holds the datum.
      if (bytes.ok() && !bytes->empty()) {
        chunk = std::move(*bytes);
        break;
      }
      peer.dead = true;
      ++stats_.peers_dropped;
      logger().debug("peer %s dropped from the stripe for %s", peer.label.c_str(),
                     data.name.c_str());
    }

    bool from_peer = chunk.has_value();
    if (!from_peer) {
      // --- repository fallback: always a correct source --------------------
      Expected<std::string> bytes = repository.fetch(data.uid, offset, want).wait();
      if (!bytes.ok()) {
        out.flush();
        return Status(bytes.error());
      }
      if (bytes->empty()) {
        return Error{Errc::kUnavailable, "p2p",
                     "repository holds fewer bytes than the descriptor declares"};
      }
      chunk = std::move(*bytes);
    }

    out.write(chunk->data(), static_cast<std::streamsize>(chunk->size()));
    if (!out.good()) {
      return Error{Errc::kUnavailable, "p2p", "short write to " + part};
    }
    hasher.update(*chunk);
    const auto got = static_cast<std::int64_t>(chunk->size());
    offset += got;
    ++chunk_index;
    if (from_peer) {
      stats_.bytes_from_peers += got;
      ++stats_.chunks_from_peers;
    } else {
      stats_.bytes_from_repository += got;
      ++stats_.chunks_from_repository;
    }
    if (ticket != 0) bus_.dt_monitor(ticket, offset, [](Status) {});
  }
  out.close();
  if (!out.good()) return Error{Errc::kUnavailable, "p2p", "flush failed for " + part};

  if (hasher.finish().hex() != data.checksum) {
    std::filesystem::remove(part, ec);  // poisoned partials must not resume
    return Error{Errc::kChecksumMismatch, "p2p",
                 "downloaded content MD5 differs from the registered checksum of " +
                     data.uid.str()};
  }
  return ok_status();
}

}  // namespace bitdew::transfer
