// Simulated BitTorrent (the BTPD/Azureus role).
//
// One BtSwarm per datum: a tracker (colocated with the initial seeder), a
// partial mesh of peers, piece bitfields, rarest-first piece selection and
// a bounded number of upload slots per peer (the unchoke set, served FIFO).
// Every piece exchange is a request message followed by a payload flow on
// the simulated network, so swarm dynamics — and BitTorrent's flat
// completion-time curve as the number of downloaders grows (paper Fig.
// 3a/5) — emerge from bandwidth sharing rather than being scripted.
//
// Simplifications vs. the wire protocol, documented for reviewers:
//  * rate-based tit-for-tat choking is replaced by fixed upload slots with
//    FIFO request granting — all simulated peers cooperate, so choking's
//    free-rider defence has nothing to bite on;
//  * rarest-first samples a bounded set of missing pieces (global rarity)
//    instead of ranking the full per-neighbourhood availability, with a
//    full-scan fallback when sampling finds nothing;
//  * endgame mode is omitted (it trims the last piece's tail latency only).
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "transfer/protocol.hpp"
#include "util/auid.hpp"

namespace bitdew::transfer {

struct BtConfig {
  std::int64_t piece_bytes = 1 * 1000 * 1000;  ///< 1 MB pieces
  int upload_slots = 4;        ///< concurrent uploads per peer (unchoke set)
  int download_slots = 4;      ///< outstanding piece requests per peer
  int max_neighbors = 40;      ///< tracker-returned peer-set size
  int rarest_samples = 16;     ///< missing pieces sampled per request
  std::int64_t request_bytes = 96;   ///< per-piece request message
  std::int64_t tracker_bytes = 512;  ///< announce request/response size
  /// Per peer-pair TCP throughput limit (0 = uncapped). Real BT clients do
  /// not saturate gigabit paths per connection; this cap is why FTP beats
  /// BT at small node counts in the paper's Fig. 3a/5 — the seeder's
  /// uplink is underused by slots x per-connection-rate early on.
  double per_connection_Bps = 3e6;
};

/// One torrent: seeder + downloading peers.
class BtSwarm {
 public:
  BtSwarm(sim::Simulator& sim, net::Network& net, const BtConfig& config,
          const core::Data& data, net::HostId seeder);

  /// Adds a downloading peer; `done` fires when the peer holds every piece.
  void add_peer(net::HostId host, TransferCallback done);

  /// Tells the swarm a host crashed: its queued/in-flight work fails over.
  void on_host_failed(net::HostId host);

  int piece_count() const { return piece_count_; }
  std::size_t peer_count() const { return peers_.size(); }
  bool peer_complete(net::HostId host) const;
  /// Total piece payload bytes delivered so far (tests/ablations).
  std::int64_t payload_bytes() const { return payload_bytes_; }

 private:
  struct Request {
    std::size_t requester;
    int piece;
  };

  struct Peer {
    net::HostId host = net::kNoHost;
    std::vector<bool> pieces;
    std::vector<bool> inflight;          // requested by this peer, not yet done
    int have = 0;
    int active_down = 0;                 // outstanding requests (queued or served)
    int active_up = 0;                   // uploads currently being served
    int queued_up = 0;                   // requests waiting in upload queue
    std::deque<Request> upload_queue;
    std::vector<std::size_t> neighbors;  // indices into peers_
    bool complete = false;
    bool failed = false;
    bool starved = false;
    double started_at = 0;
    TransferCallback done;
  };

  void announce(std::size_t peer_index);
  void connect_mesh(std::size_t peer_index);
  void pump(std::size_t peer_index);
  bool issue_request(std::size_t peer_index);
  int pick_piece(const Peer& peer, std::size_t* provider_out);
  void enqueue_upload(std::size_t provider_index, std::size_t requester_index, int piece);
  void serve_next(std::size_t provider_index);
  void request_finished(std::size_t peer_index, std::size_t provider_index, int piece, bool ok);
  void acquired_piece(std::size_t peer_index, int piece);
  void wake_starved_neighbors(std::size_t peer_index);
  void finish_peer(std::size_t peer_index, bool ok);
  std::int64_t piece_size(int piece) const;
  net::LinkId pair_link(std::size_t provider_index, std::size_t requester_index);

  sim::Simulator& sim_;
  net::Network& net_;
  BtConfig config_;
  core::Data data_;
  int piece_count_ = 0;
  std::vector<Peer> peers_;  // peers_[0] is the seeder
  std::unordered_map<net::HostId, std::size_t> by_host_;
  std::vector<int> rarity_;  // owners per piece
  // (provider, requester) -> per-connection virtual capacity link
  std::unordered_map<std::uint64_t, net::LinkId> pair_links_;
  std::int64_t payload_bytes_ = 0;
};

class BtProtocol final : public Protocol {
 public:
  BtProtocol(sim::Simulator& sim, net::Network& net, BtConfig config = {})
      : sim_(sim), net_(net), config_(config) {}

  void start(const TransferJob& job, TransferCallback done) override;
  std::string name() const override { return "bittorrent"; }

  /// Propagates a host crash to every swarm.
  void on_host_failed(net::HostId host);

  /// The swarm for a datum, if one exists (tests/introspection).
  BtSwarm* swarm(const util::Auid& uid) const;

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  BtConfig config_;
  std::unordered_map<util::Auid, std::unique_ptr<BtSwarm>> swarms_;
};

}  // namespace bitdew::transfer
