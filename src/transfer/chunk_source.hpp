// ChunkSource: the one read API every transfer engine fetches content
// through. A source answers "bytes [offset, offset+max_bytes) of datum X"
// — whether those bytes come from the central Data Repository over a
// ServiceBus (dr_get_chunk) or straight from a worker's chunk server over
// a raw ClientChannel (kDrGetChunk frames) is the source's business, not
// the engine's.
//
// The API is async-friendly: fetch() puts the request in flight and
// returns a ChunkFetch future immediately; wait() blocks (pumping the
// underlying engine) only when the bytes are actually needed. That lets an
// engine keep a prefetch window open — issue chunk N+1 before consuming
// chunk N — so over a pipelined RemoteServiceBus or an epoll chunk server
// the next chunk is already crossing the wire while the current one is
// hashed and written to disk.
//
// Failure taxonomy, uniform across sources:
//  * Errc::kTransport  — connection refused/dropped, deadline, malformed
//                        reply (the source's channel is closed for a clean
//                        reconnect on the next call);
//  * Errc::kUnavailable — the engine underneath stalled (no pump);
//  * any typed service error travels through unchanged;
//  * ok with EMPTY bytes — the source no longer holds the datum at that
//    offset (engines treat this as "rotate to another source").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "api/service_bus.hpp"
#include "rpc/transport.hpp"
#include "util/auid.hpp"

namespace bitdew::transfer {

/// One chunk request in flight. wait() consumes the future; a
/// default-constructed fetch is invalid (wait() fails typed). Dropping a
/// ChunkFetch without waiting abandons the reply — safe, the bytes are
/// simply discarded when they arrive.
class ChunkFetch {
 public:
  ChunkFetch() = default;
  explicit ChunkFetch(std::function<api::Expected<std::string>()> wait)
      : wait_(std::move(wait)) {}
  ChunkFetch(ChunkFetch&& other) noexcept : wait_(std::move(other.wait_)) {
    other.wait_ = nullptr;  // a moved-from fetch reads as invalid, not unspecified
  }
  ChunkFetch& operator=(ChunkFetch&& other) noexcept {
    wait_ = std::move(other.wait_);
    other.wait_ = nullptr;
    return *this;
  }

  bool valid() const { return static_cast<bool>(wait_); }

  /// Blocks until the bytes (or the failure) arrive; consumes the future.
  api::Expected<std::string> wait() {
    if (!wait_) {
      return api::Error{api::Errc::kTransport, "chunk", "wait on an empty chunk fetch"};
    }
    auto fn = std::move(wait_);
    wait_ = nullptr;
    return fn();
  }

 private:
  std::function<api::Expected<std::string>()> wait_;
};

/// The single read API TcpTransfer and PeerTransfer share.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Issues the read and returns immediately; the future resolves to the
  /// bytes at [offset, offset + max_bytes) — short only at end of content.
  virtual ChunkFetch fetch(const util::Auid& uid, std::int64_t offset,
                           std::int64_t max_bytes) = 0;

  /// Human-readable name for logs/stats ("dr", a peer's host name).
  virtual std::string label() const = 0;
};

/// The central repository through a ServiceBus (dr_get_chunk). `pump`
/// advances the engine while a fetch waits — a simulator step, or
/// RemoteServiceBus::pump() when the bus pipelines; null for synchronous
/// buses (an unresolved wait then fails kUnavailable instead of hanging).
class BusChunkSource final : public ChunkSource {
 public:
  using Pump = std::function<bool()>;
  explicit BusChunkSource(api::ServiceBus& bus, Pump pump = nullptr)
      : bus_(bus), pump_(std::move(pump)) {}

  ChunkFetch fetch(const util::Auid& uid, std::int64_t offset,
                   std::int64_t max_bytes) override;
  std::string label() const override { return "dr"; }

 private:
  api::ServiceBus& bus_;
  Pump pump_;
};

/// A worker's chunk server over a raw ClientChannel: kDrGetChunk frames,
/// demuxed by request id, so several fetches can ride the one connection.
/// A malformed reply closes the channel (clean reconnect) and surfaces
/// kTransport. The channel must outlive the source and its fetches.
class PeerChunkSource final : public ChunkSource {
 public:
  PeerChunkSource(rpc::ClientChannel& channel, std::string label)
      : channel_(channel), label_(std::move(label)) {}

  ChunkFetch fetch(const util::Auid& uid, std::int64_t offset,
                   std::int64_t max_bytes) override;
  std::string label() const override { return label_; }

 private:
  rpc::ClientChannel& channel_;
  std::string label_;
};

}  // namespace bitdew::transfer
