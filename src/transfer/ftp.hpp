// Simulated FTP (the ProFTPD + commons-net pairing of the paper).
//
// Receiver-driven client/server: the destination opens a control connection
// (a configurable number of round-trips modelling TCP + login), acquires one
// of the server's data-connection slots (queueing when the server is busy)
// and then pulls the payload as a single network flow. REST-style resume is
// supported through TransferJob::offset. FTP is the paper's baseline
// point-to-point protocol: completion grows linearly with the number of
// downloaders once the server uplink saturates (Fig. 3a, Fig. 5).
#pragma once

#include <deque>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "transfer/protocol.hpp"

namespace bitdew::transfer {

struct FtpConfig {
  int control_round_trips = 2;   ///< TCP handshake + USER/PASS
  int server_slots = 200;        ///< concurrent data connections per server
  std::int64_t control_bytes = 256;  ///< bytes exchanged per control trip
};

class FtpProtocol final : public Protocol {
 public:
  FtpProtocol(sim::Simulator& sim, net::Network& net, FtpConfig config = {})
      : sim_(sim), net_(net), config_(config) {}

  void start(const TransferJob& job, TransferCallback done) override;
  std::string name() const override { return "ftp"; }
  bool supports_resume() const override { return true; }

  /// Queued + active transfers on a given server (introspection/tests).
  int server_load(net::HostId server) const;

 private:
  struct ServerState {
    int active = 0;
    std::deque<std::function<void()>> waiting;
  };

  void control_handshake(const TransferJob& job, int trips_left, double started,
                         TransferCallback done);
  void acquire_slot(const TransferJob& job, double started, TransferCallback done);
  void run_data_transfer(const TransferJob& job, double started, TransferCallback done);
  void release_slot(net::HostId server);

  sim::Simulator& sim_;
  net::Network& net_;
  FtpConfig config_;
  std::unordered_map<net::HostId, ServerState> servers_;
};

}  // namespace bitdew::transfer
