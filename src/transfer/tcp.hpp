// TcpTransfer: the real-byte transfer engine (paper §3.4.2's out-of-band
// data path, deployed for real). It moves file content between a local path
// and the Data Repository through the ServiceBus data-plane endpoints
// (dr_put_start / dr_put_chunk / dr_put_commit / dr_get_chunk):
//
//  * uploads and downloads run in fixed-size chunks (config.chunk_bytes);
//  * a dropped connection or daemon restart is survived by resuming at the
//    offset the repository reports (put) or at the length of the on-disk
//    `.part` file (get) — up to config.max_attempts rounds;
//  * content integrity is MD5-verified end to end: the repository checks
//    the assembled upload against the datum's registered checksum at commit
//    (Errc::kChecksumMismatch), and get_file re-hashes every received byte
//    before renaming `.part` into place;
//  * each transfer is registered with the Data Transfer service (a ticket,
//    progress via dt_monitor, dt_complete/dt_failure at the end), so the
//    control plane observes the out-of-band transfer exactly as the paper's
//    Fig. 1 describes.
//
// Over RemoteServiceBus the chunks travel as frames on a real TCP
// connection; over Direct/SimServiceBus they land in the in-process
// repository — the engine is backend-agnostic, like everything above the
// bus. Registered in the protocol registry under the name "tcp"
// (kTcpProtocol); see transfer/protocol.hpp for the registry itself.
#pragma once

#include <functional>
#include <string>

#include "api/service_bus.hpp"
#include "core/data.hpp"

namespace bitdew::transfer {

/// Protocol-registry name locators minted by this engine carry.
inline constexpr const char* kTcpProtocol = "tcp";

struct TcpConfig {
  std::int64_t chunk_bytes = 256 * 1024;  ///< clamped to [1, services::kMaxChunkBytes]
  int max_attempts = 3;   ///< (re)connect + resume rounds before giving up
  bool track_ticket = true;  ///< register the transfer with the DT service
  /// Endpoint name this engine reports in DT tickets (workers pass their
  /// host name so the control plane attributes transfers to the node).
  std::string local_name = "local";
};

struct TcpStats {
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  int chunks_sent = 0;
  int chunks_received = 0;
  int resumes = 0;  ///< attempts that continued from a non-zero offset
  int retries = 0;  ///< transport-failure rounds that triggered a re-attempt
};

class TcpTransfer {
 public:
  /// `pump` advances the underlying engine while waiting for a reply (one
  /// simulator step); null for the synchronous Direct/Remote buses.
  using Pump = std::function<bool()>;

  explicit TcpTransfer(api::ServiceBus& bus, TcpConfig config = {}, Pump pump = nullptr);

  /// Uploads the file at `path` as the content of `data`. The data's
  /// checksum/size must match the file (it is the commit reference).
  /// Publishes the minted locator in the Data Catalog on success.
  api::Status put_file(const core::Data& data, const std::string& path);

  /// Downloads the content of `data` into `path` (staged via `path`.part,
  /// renamed only after MD5 verification against data.checksum).
  api::Status get_file(const core::Data& data, const std::string& path);

  const TcpStats& stats() const { return stats_; }
  const TcpConfig& config() const { return config_; }

 private:
  template <typename T>
  api::Expected<T> wait(std::function<void(api::Reply<api::Expected<T>>)> issue);

  api::Status put_round(const core::Data& data, const std::string& path,
                        services::TicketId ticket, core::Locator* locator_out);
  api::Status get_round(const core::Data& data, const std::string& part_path,
                        services::TicketId ticket);

  /// DT-service bookkeeping; all failures are ignored (the data path must
  /// not depend on control-plane health).
  services::TicketId open_ticket(const core::Data& data, bool upload);
  void report_progress(services::TicketId ticket, std::int64_t done_bytes);
  void close_ticket(services::TicketId ticket, const core::Data& data,
                    const api::Status& outcome);

  api::ServiceBus& bus_;
  TcpConfig config_;
  Pump pump_;
  TcpStats stats_;
};

}  // namespace bitdew::transfer
