// The process-wide live protocol registry: "tcp" (repository-only chunk
// pull) and "p2p" (multi-source peer stripe with repository fallback) are
// registered here, adapting the two engines to the LiveProtocol dispatch
// surface runtime::NodeRuntime routes downloads through. Embedders may
// add_live further engines under new names before starting a worker — the
// scheduler's known_protocols set is the matching admission gate.
#include <memory>

#include "transfer/peer.hpp"
#include "transfer/protocol.hpp"
#include "transfer/tcp.hpp"

namespace bitdew::transfer {
namespace {

class TcpLiveProtocol final : public LiveProtocol {
 public:
  explicit TcpLiveProtocol(std::string name = kTcpProtocol) : name_(std::move(name)) {}

  std::string name() const override { return name_; }

  api::Status get_file(api::ServiceBus& bus, const core::Data& data, const std::string& path,
                       const std::vector<core::Locator>& /*sources*/,
                       const LiveTransferConfig& config) override {
    TcpConfig tcp;
    tcp.chunk_bytes = config.chunk_bytes;
    tcp.max_attempts = config.max_attempts;
    tcp.local_name = config.local_name;
    return TcpTransfer(bus, tcp).get_file(data, path);
  }

 private:
  std::string name_;
};

class PeerLiveProtocol final : public LiveProtocol {
 public:
  explicit PeerLiveProtocol(std::string name = kPeerProtocol) : name_(std::move(name)) {}

  std::string name() const override { return name_; }

  api::Status get_file(api::ServiceBus& bus, const core::Data& data, const std::string& path,
                       const std::vector<core::Locator>& sources,
                       const LiveTransferConfig& config) override {
    PeerConfig peer;
    peer.chunk_bytes = config.chunk_bytes;
    peer.max_attempts = config.max_attempts;
    peer.local_name = config.local_name;
    return PeerTransfer(bus, peer).get_file(data, path, sources);
  }

 private:
  std::string name_;
};

}  // namespace

ProtocolRegistry& live_registry() {
  static ProtocolRegistry* registry = [] {
    auto* instance = new ProtocolRegistry();
    instance->add_live(std::make_unique<TcpLiveProtocol>());
    instance->add_live(std::make_unique<PeerLiveProtocol>());
    // Every name the scheduler admits must be DELIVERABLE live, or a datum
    // scheduled with a simulator protocol (the default oob is "ftp") would
    // fail its download forever. The sim-only names map onto their live
    // morale equivalents: ftp/http/localfile are central server pulls →
    // the repository chunk engine; bittorrent is swarm exchange → the peer
    // engine (it degrades to the repository when no sources ride along).
    instance->add_live(std::make_unique<TcpLiveProtocol>("ftp"));
    instance->add_live(std::make_unique<TcpLiveProtocol>("http"));
    instance->add_live(std::make_unique<TcpLiveProtocol>("localfile"));
    instance->add_live(std::make_unique<PeerLiveProtocol>("bittorrent"));
    return instance;
  }();
  return *registry;
}

}  // namespace bitdew::transfer
