// The paper's Figure 2 framework for integrating file-transfer protocols:
// the OobTransfer interface with its seven methods (open/close connection,
// probe the end of transfer, and send/receive from the sender and receiver
// sides), the Blocking/NonBlocking split, and the DaemonConnector helper
// for protocols shipped as background daemons rather than libraries.
//
// This is one of the three protocol flavours the registry in
// transfer/protocol.hpp documents: transfer/local_file.hpp implements this
// blocking interface over the local filesystem, the simulated runtime uses
// the async Protocol interface (a DES has no blocking calls), and the real
// data plane is transfer/tcp.hpp's chunked TcpTransfer engine ("tcp").
#pragma once

#include <stdexcept>
#include <string>

namespace bitdew::transfer {

class TransferError : public std::runtime_error {
 public:
  explicit TransferError(const std::string& what) : std::runtime_error(what) {}
};

/// End-point descriptor handed to the seven methods.
struct OobEndpoint {
  std::string host;
  std::string path;         ///< remote file reference
  std::string local_path;   ///< local file
  std::string credentials;  ///< "login:password" when the protocol needs it
};

/// The seven-method interface of paper Fig. 2.
class OobTransfer {
 public:
  virtual ~OobTransfer() = default;

  /// 1. Opens the protocol connection.
  virtual void connect(const OobEndpoint& endpoint) = 0;
  /// 2. Closes it.
  virtual void disconnect() = 0;
  /// 3. Probes whether the in-flight transfer has completed.
  virtual bool probe() = 0;
  /// 4-5. Sender side: push the file / pull the acknowledgement.
  virtual void sender_send(const OobEndpoint& endpoint) = 0;
  virtual void sender_receive(const OobEndpoint& endpoint) = 0;
  /// 6-7. Receiver side: request the file / pull its content.
  virtual void receiver_send(const OobEndpoint& endpoint) = 0;
  virtual void receiver_receive(const OobEndpoint& endpoint) = 0;
};

/// Marker bases choosing the paper's blocking vs non-blocking flavours.
class BlockingOobTransfer : public OobTransfer {};

class NonBlockingOobTransfer : public OobTransfer {
 public:
  /// Non-blocking protocols must expose completion through probe(); this
  /// helper names the convention.
  bool transfer_pending() { return !probe(); }
};

/// Helper for protocols provided as daemons (the paper integrates the BTPD
/// BitTorrent daemon this way): manage the external process's life cycle.
class DaemonConnector {
 public:
  virtual ~DaemonConnector() = default;
  virtual void start_daemon() = 0;
  virtual void stop_daemon() = 0;
  virtual bool daemon_running() const = 0;
};

}  // namespace bitdew::transfer
