#include "transfer/bittorrent.hpp"

#include <algorithm>
#include <cassert>

namespace bitdew::transfer {

BtSwarm::BtSwarm(sim::Simulator& sim, net::Network& net, const BtConfig& config,
                 const core::Data& data, net::HostId seeder)
    : sim_(sim), net_(net), config_(config), data_(data) {
  piece_count_ = static_cast<int>((data.size + config_.piece_bytes - 1) / config_.piece_bytes);
  if (piece_count_ == 0) piece_count_ = 1;  // zero-byte data still has one "piece"
  rarity_.assign(static_cast<std::size_t>(piece_count_), 1);  // owned by the seeder

  Peer seed;
  seed.host = seeder;
  seed.pieces.assign(static_cast<std::size_t>(piece_count_), true);
  seed.inflight.assign(static_cast<std::size_t>(piece_count_), false);
  seed.have = piece_count_;
  seed.complete = true;
  peers_.push_back(std::move(seed));
  by_host_.emplace(seeder, 0);
}

std::int64_t BtSwarm::piece_size(int piece) const {
  if (data_.size == 0) return 0;
  if (piece == piece_count_ - 1) {
    const std::int64_t tail = data_.size - static_cast<std::int64_t>(piece) * config_.piece_bytes;
    return tail > 0 ? tail : config_.piece_bytes;
  }
  return config_.piece_bytes;
}

bool BtSwarm::peer_complete(net::HostId host) const {
  const auto it = by_host_.find(host);
  return it != by_host_.end() && peers_[it->second].complete;
}

void BtSwarm::add_peer(net::HostId host, TransferCallback done) {
  const auto existing = by_host_.find(host);
  if (existing != by_host_.end()) {
    Peer& peer = peers_[existing->second];
    if (peer.complete) {
      TransferOutcome outcome;
      outcome.ok = true;
      outcome.started_at = sim_.now();
      outcome.finished_at = sim_.now();
      outcome.bytes_requested = data_.size;
      outcome.bytes_transferred = data_.size;
      outcome.checksum = data_.checksum;
      done(outcome);
    } else {
      peer.done = std::move(done);  // retried transfer: replace the callback
      if (peer.failed && net_.alive(host)) {
        peer.failed = false;  // host came back; resume from held pieces
        pump(existing->second);
      }
    }
    return;
  }

  Peer peer;
  peer.host = host;
  peer.pieces.assign(static_cast<std::size_t>(piece_count_), false);
  peer.inflight.assign(static_cast<std::size_t>(piece_count_), false);
  peer.started_at = sim_.now();
  peer.done = std::move(done);
  peers_.push_back(std::move(peer));
  const std::size_t index = peers_.size() - 1;
  by_host_.emplace(host, index);
  announce(index);
}

void BtSwarm::announce(std::size_t peer_index) {
  // Announce to the tracker (colocated with the seeder), then join the mesh.
  const net::HostId tracker = peers_[0].host;
  const net::HostId host = peers_[peer_index].host;
  net_.start_flow(host, tracker, config_.tracker_bytes,
                  [this, peer_index, tracker, host](const net::FlowResult& req) {
                    if (!req.ok) {
                      finish_peer(peer_index, false);
                      return;
                    }
                    net_.start_flow(tracker, host, config_.tracker_bytes,
                                    [this, peer_index](const net::FlowResult& resp) {
                                      if (!resp.ok) {
                                        finish_peer(peer_index, false);
                                        return;
                                      }
                                      connect_mesh(peer_index);
                                      pump(peer_index);
                                    });
                  });
}

void BtSwarm::connect_mesh(std::size_t peer_index) {
  // Tracker returns the seeder plus a random sample of other peers; links
  // are bidirectional, as BT connections are.
  std::vector<std::size_t> candidates;
  candidates.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (i != peer_index && !peers_[i].failed) candidates.push_back(i);
  }
  std::vector<std::size_t> chosen;
  if (!candidates.empty()) {
    chosen.push_back(candidates.front() == 0 ? 0 : candidates.front());
    candidates.erase(candidates.begin());
  }
  while (!candidates.empty() &&
         chosen.size() < static_cast<std::size_t>(config_.max_neighbors)) {
    const std::size_t pick = sim_.rng().below(candidates.size());
    chosen.push_back(candidates[pick]);
    candidates[pick] = candidates.back();
    candidates.pop_back();
  }
  Peer& peer = peers_[peer_index];
  for (const std::size_t other : chosen) {
    peer.neighbors.push_back(other);
    peers_[other].neighbors.push_back(peer_index);
  }
}

void BtSwarm::pump(std::size_t peer_index) {
  Peer& peer = peers_[peer_index];
  if (peer.complete || peer.failed) return;
  while (peer.active_down < config_.download_slots) {
    if (!issue_request(peer_index)) break;
  }
}

int BtSwarm::pick_piece(const Peer& peer, std::size_t* provider_out) {
  // Sample missing pieces and choose (piece, provider) preferring, in
  // order: a provider with a free upload slot (an unchoked relationship —
  // queueing on a saturated peer while others idle is what real choking
  // avoids), then lower provider load, then rarer pieces. Pure global
  // rarest-first would flood the few owners of rare pieces and leave the
  // rest of the swarm idle.
  // Providers saturated beyond slots + a short queue are not candidates:
  // burying requests in one peer's FIFO (think: everyone queueing at the
  // seeder) would strand download slots while fresh capacity elsewhere
  // idles. Starved peers are woken when providers free up.
  const int queue_cap = 2 * config_.upload_slots;
  auto provider_for = [this, &peer, queue_cap](int piece) -> std::pair<std::size_t, int> {
    std::size_t best = SIZE_MAX;
    int best_load = INT32_MAX;
    const auto sp = static_cast<std::size_t>(piece);
    for (const std::size_t n : peer.neighbors) {
      const Peer& provider = peers_[n];
      if (provider.failed || !provider.pieces[sp]) continue;
      const int load = provider.active_up + provider.queued_up;
      if (load >= queue_cap) continue;
      if (load < best_load) {
        best_load = load;
        best = n;
      }
    }
    return {best, best_load};
  };

  auto eligible = [&peer](int piece) {
    const auto sp = static_cast<std::size_t>(piece);
    return !peer.pieces[sp] && !peer.inflight[sp];
  };

  int best_piece = -1;
  std::size_t best_provider = SIZE_MAX;
  int best_load = INT32_MAX;
  int best_rarity = INT32_MAX;
  auto consider = [&](int piece) {
    if (!eligible(piece)) return;
    const auto [provider, load] = provider_for(piece);
    if (provider == SIZE_MAX) return;
    const int rarity = rarity_[static_cast<std::size_t>(piece)];
    // Lexicographic: load first (free slots win), then rarity.
    if (load < best_load || (load == best_load && rarity < best_rarity)) {
      best_load = load;
      best_rarity = rarity;
      best_piece = piece;
      best_provider = provider;
    }
  };
  for (int attempt = 0; attempt < config_.rarest_samples; ++attempt) {
    consider(static_cast<int>(sim_.rng().below(static_cast<std::uint64_t>(piece_count_))));
    if (best_load == 0) break;  // an idle provider: cannot do better
  }
  if (best_piece < 0) {
    // Sampling found nothing: full scan fallback (rare; start/end of swarm).
    for (int piece = 0; piece < piece_count_; ++piece) consider(piece);
  }
  if (best_piece >= 0) *provider_out = best_provider;
  return best_piece;
}

bool BtSwarm::issue_request(std::size_t peer_index) {
  Peer& peer = peers_[peer_index];
  // Endgame guard: everything we miss is already in flight — there is
  // nothing to request, and scanning for it would cost O(pieces x peers).
  if (peer.have + peer.active_down >= piece_count_) return false;
  std::size_t provider_index = SIZE_MAX;
  const int piece = pick_piece(peer, &provider_index);
  if (piece < 0) {
    peer.starved = true;  // woken on piece spread or provider availability
    return false;
  }

  peer.inflight[static_cast<std::size_t>(piece)] = true;
  ++peer.active_down;
  ++peers_[provider_index].queued_up;

  const net::HostId me = peer.host;
  const net::HostId provider_host = peers_[provider_index].host;
  net_.start_flow(me, provider_host, config_.request_bytes,
                  [this, peer_index, provider_index, piece](const net::FlowResult& req) {
                    if (!req.ok) {
                      --peers_[provider_index].queued_up;
                      if (!net_.alive(peers_[provider_index].host)) {
                        peers_[provider_index].failed = true;
                      }
                      request_finished(peer_index, provider_index, piece, false);
                      return;
                    }
                    peers_[provider_index].upload_queue.push_back(
                        Request{peer_index, piece});
                    serve_next(provider_index);
                  });
  return true;
}

net::LinkId BtSwarm::pair_link(std::size_t provider_index, std::size_t requester_index) {
  if (config_.per_connection_Bps <= 0) return 0;
  const std::uint64_t key = (static_cast<std::uint64_t>(provider_index) << 32) |
                            static_cast<std::uint64_t>(requester_index);
  const auto it = pair_links_.find(key);
  if (it != pair_links_.end()) return it->second;
  const net::LinkId link =
      net_.add_virtual_link("bt-conn", config_.per_connection_Bps);
  pair_links_.emplace(key, link);
  return link;
}

void BtSwarm::serve_next(std::size_t provider_index) {
  Peer& provider = peers_[provider_index];
  while (provider.active_up < config_.upload_slots && !provider.upload_queue.empty()) {
    const Request request = provider.upload_queue.front();
    provider.upload_queue.pop_front();
    --provider.queued_up;
    ++provider.active_up;
    const net::HostId from = provider.host;
    const net::HostId to = peers_[request.requester].host;
    const net::LinkId connection = pair_link(provider_index, request.requester);
    net_.start_flow_via(from, to, piece_size(request.piece),
                        connection != 0 ? std::vector<net::LinkId>{connection}
                                        : std::vector<net::LinkId>{},
                        [this, provider_index, request](const net::FlowResult& r) {
                          --peers_[provider_index].active_up;
                          request_finished(request.requester, provider_index, request.piece,
                                           r.ok);
                          serve_next(provider_index);
                        });
  }
}

void BtSwarm::request_finished(std::size_t peer_index, std::size_t provider_index, int piece,
                               bool ok) {
  Peer& peer = peers_[peer_index];
  peer.inflight[static_cast<std::size_t>(piece)] = false;
  --peer.active_down;

  if (!net_.alive(peer.host)) {
    // Our own host died mid-download; report failure once requests drain.
    if (!peer.failed) finish_peer(peer_index, false);
    return;
  }

  if (ok) acquired_piece(peer_index, piece);
  if (!peer.complete) pump(peer_index);
  // The provider freed capacity: starved neighbors can enqueue there now.
  wake_starved_neighbors(provider_index);
}

void BtSwarm::acquired_piece(std::size_t peer_index, int piece) {
  Peer& peer = peers_[peer_index];
  const auto sp = static_cast<std::size_t>(piece);
  if (peer.pieces[sp]) return;
  peer.pieces[sp] = true;
  ++peer.have;
  ++rarity_[sp];
  payload_bytes_ += piece_size(piece);
  wake_starved_neighbors(peer_index);
  if (peer.have == piece_count_ && !peer.complete) finish_peer(peer_index, true);
}

void BtSwarm::wake_starved_neighbors(std::size_t peer_index) {
  for (const std::size_t n : peers_[peer_index].neighbors) {
    Peer& neighbor = peers_[n];
    if (neighbor.starved && !neighbor.complete && !neighbor.failed) {
      neighbor.starved = false;
      pump(n);
    }
  }
}

void BtSwarm::on_host_failed(net::HostId host) {
  const auto it = by_host_.find(host);
  if (it == by_host_.end()) return;
  const std::size_t index = it->second;
  Peer& peer = peers_[index];
  // Fail the peer itself (its in-flight flows are failed by the network;
  // queued uploads it would have served must be handed back).
  if (!peer.complete) finish_peer(index, false);
  peer.failed = true;
  std::deque<Request> orphaned;
  orphaned.swap(peer.upload_queue);
  peer.queued_up = 0;
  for (const Request& request : orphaned) {
    request_finished(request.requester, index, request.piece, false);
  }
}

void BtSwarm::finish_peer(std::size_t peer_index, bool ok) {
  Peer& peer = peers_[peer_index];
  if (ok) {
    peer.complete = true;  // keeps seeding
  } else {
    peer.failed = true;
  }
  if (!peer.done) return;
  TransferOutcome outcome;
  outcome.ok = ok;
  outcome.started_at = peer.started_at;
  outcome.finished_at = sim_.now();
  outcome.bytes_requested = data_.size;
  outcome.bytes_transferred =
      ok ? data_.size : std::min<std::int64_t>(
                            static_cast<std::int64_t>(peer.have) * config_.piece_bytes,
                            data_.size);
  if (ok) {
    outcome.checksum = data_.checksum;
  } else {
    outcome.error = "bittorrent: peer failed";
  }
  TransferCallback done = std::move(peer.done);
  peer.done = nullptr;
  done(outcome);
}

// --- protocol wrapper ---------------------------------------------------------

void BtProtocol::start(const TransferJob& job, TransferCallback done) {
  auto it = swarms_.find(job.data.uid);
  if (it == swarms_.end()) {
    it = swarms_
             .emplace(job.data.uid,
                      std::make_unique<BtSwarm>(sim_, net_, config_, job.data, job.source))
             .first;
  }
  it->second->add_peer(job.destination, std::move(done));
}

void BtProtocol::on_host_failed(net::HostId host) {
  for (auto& [uid, swarm] : swarms_) swarm->on_host_failed(host);
}

BtSwarm* BtProtocol::swarm(const util::Auid& uid) const {
  const auto it = swarms_.find(uid);
  return it != swarms_.end() ? it->second.get() : nullptr;
}

}  // namespace bitdew::transfer
