#include "transfer/local_file.hpp"

#include "core/data.hpp"

namespace bitdew::transfer {

namespace fs = std::filesystem;

fs::path LocalFileTransfer::remote_path(const OobEndpoint& endpoint) const {
  return root_ / endpoint.host / endpoint.path;
}

void LocalFileTransfer::connect(const OobEndpoint& endpoint) {
  fs::create_directories(root_ / endpoint.host);
  connected_ = true;
  done_ = false;
}

void LocalFileTransfer::disconnect() { connected_ = false; }

void LocalFileTransfer::sender_send(const OobEndpoint& endpoint) {
  if (!connected_) throw TransferError("localfile: not connected");
  const fs::path target = remote_path(endpoint);
  fs::create_directories(target.parent_path());
  fs::copy_file(endpoint.local_path, target, fs::copy_options::overwrite_existing);
  done_ = true;
}

void LocalFileTransfer::sender_receive(const OobEndpoint& endpoint) {
  // Acknowledgement pull: verify the stored copy matches the local file.
  if (!connected_) throw TransferError("localfile: not connected");
  const auto sent = core::file_content(endpoint.local_path);
  const auto stored = core::file_content(remote_path(endpoint).string());
  if (sent.checksum != stored.checksum) {
    throw TransferError("localfile: stored checksum mismatch for " + endpoint.path);
  }
}

void LocalFileTransfer::receiver_send(const OobEndpoint& endpoint) {
  // Receiver-driven request: check the remote object exists.
  if (!connected_) throw TransferError("localfile: not connected");
  if (!fs::exists(remote_path(endpoint))) {
    throw TransferError("localfile: no such remote object " + endpoint.path);
  }
  done_ = false;
}

void LocalFileTransfer::receiver_receive(const OobEndpoint& endpoint) {
  if (!connected_) throw TransferError("localfile: not connected");
  const fs::path source = remote_path(endpoint);
  fs::create_directories(fs::path(endpoint.local_path).parent_path());
  fs::copy_file(source, endpoint.local_path, fs::copy_options::overwrite_existing);
  done_ = true;
}

}  // namespace bitdew::transfer
