// Blocking OOB transfer over the local filesystem (the LocalRuntime's
// default protocol). "Remote" storage is a per-host directory under a root;
// sending/receiving are real file copies verified by MD5 — the same
// receiver-driven integrity check the simulated protocols model.
#pragma once

#include <filesystem>
#include <string>

#include "transfer/oob.hpp"

namespace bitdew::transfer {

class LocalFileTransfer final : public BlockingOobTransfer {
 public:
  /// `root` is the directory playing the remote store.
  explicit LocalFileTransfer(std::filesystem::path root) : root_(std::move(root)) {}

  void connect(const OobEndpoint& endpoint) override;
  void disconnect() override;
  bool probe() override { return done_; }
  void sender_send(const OobEndpoint& endpoint) override;
  void sender_receive(const OobEndpoint& endpoint) override;
  void receiver_send(const OobEndpoint& endpoint) override;
  void receiver_receive(const OobEndpoint& endpoint) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path remote_path(const OobEndpoint& endpoint) const;

  std::filesystem::path root_;
  bool connected_ = false;
  bool done_ = false;
};

}  // namespace bitdew::transfer
