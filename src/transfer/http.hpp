// Simulated HTTP: one request round-trip, then the payload flow. The paper
// uses HTTP for small per-task files (sequences, results) where FTP's login
// handshake is wasted latency. Supports Range-style resume.
#pragma once

#include "sim/simulator.hpp"
#include "transfer/protocol.hpp"

namespace bitdew::transfer {

struct HttpConfig {
  std::int64_t request_bytes = 256;   ///< GET + headers
  std::int64_t response_overhead = 512;  ///< response headers
};

class HttpProtocol final : public Protocol {
 public:
  HttpProtocol(sim::Simulator& sim, net::Network& net, HttpConfig config = {})
      : sim_(sim), net_(net), config_(config) {}

  void start(const TransferJob& job, TransferCallback done) override;
  std::string name() const override { return "http"; }
  bool supports_resume() const override { return true; }

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  HttpConfig config_;
};

}  // namespace bitdew::transfer
