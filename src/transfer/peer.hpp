// PeerTransfer: the multi-source download engine of the peer data plane
// (paper §4.2 / Fig. 3a+5 — collective distribution keeps completion time
// flat while every-node-pulls-from-the-repository scales linearly).
//
// A download order for a "p2p" datum arrives with peer locators: live
// workers whose chunk servers (rpc/chunk_server.hpp) hold an MD5-verified
// replica. This engine fetches the file in fixed-size chunks, striping
// consecutive chunk ranges round-robin across every live peer so the load
// spreads over the swarm:
//
//  * a peer that fails (connection refused, deadline, typed error,
//    malformed reply) is dropped from the stripe and its chunk is refetched
//    from the remaining peers;
//  * when no peer can serve a chunk, the central Data Repository
//    (dr_get_chunk over the ServiceBus) is the fallback — the repository is
//    always a correct source, peers are an optimization;
//  * a dropped repository connection resumes at the `.part` offset exactly
//    like transfer::TcpTransfer, up to config.max_attempts rounds (dropped
//    peers are given another chance each round — they may have restarted);
//  * the final whole-file MD5 verify is unchanged: every received byte is
//    re-hashed and compared against the datum's registered checksum before
//    `.part` is renamed into place, so a corrupt or malicious peer can cost
//    retries but never poison a cache.
//
// Registered in the live protocol registry under "p2p" (kPeerProtocol);
// the scheduler only attaches peer locators to data whose oob attribute
// names it.
#pragma once

#include <string>
#include <vector>

#include "api/service_bus.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"

namespace bitdew::transfer {

/// Protocol-registry name; matches services::kPeerLocatorProtocol.
inline constexpr const char* kPeerProtocol = "p2p";

struct PeerConfig {
  std::int64_t chunk_bytes = 256 * 1024;  ///< clamped to [1, services::kMaxChunkBytes]
  int max_attempts = 3;       ///< resume rounds before giving up
  bool track_ticket = true;   ///< register the transfer with the DT service
  std::string local_name = "local";  ///< endpoint name reported in DT tickets
  double peer_connect_timeout_s = 2.0;  ///< per-peer TCP connect budget
  double peer_call_deadline_s = 10.0;   ///< per-chunk reply budget (slow-peer cutoff)
};

struct PeerStats {
  std::int64_t bytes_from_peers = 0;
  std::int64_t bytes_from_repository = 0;
  int chunks_from_peers = 0;
  int chunks_from_repository = 0;
  int peers_dropped = 0;  ///< peer failures that removed a source from the stripe
  int resumes = 0;        ///< rounds that continued from a non-zero offset
  int retries = 0;        ///< repository-failure rounds that re-attempted
};

class PeerTransfer {
 public:
  /// `bus` reaches the central repository (chunk fallback) and the DT
  /// service; peers are dialed directly from the locators.
  explicit PeerTransfer(api::ServiceBus& bus, PeerConfig config = {});

  /// Downloads the content of `data` into `path` (staged via `path`.part,
  /// renamed only after MD5 verification). `sources` are "p2p" locators
  /// whose host field is a chunk-server "host:port"; other locators are
  /// ignored. With no usable source the whole file comes from the
  /// repository.
  api::Status get_file(const core::Data& data, const std::string& path,
                       const std::vector<core::Locator>& sources);

  const PeerStats& stats() const { return stats_; }
  const PeerConfig& config() const { return config_; }

 private:
  struct Source;

  api::Status get_round(const core::Data& data, const std::string& part,
                        std::vector<Source>& peers, services::TicketId ticket);

  api::ServiceBus& bus_;
  PeerConfig config_;
  PeerStats stats_;
};

}  // namespace bitdew::transfer
