#include "transfer/http.hpp"

namespace bitdew::transfer {

void HttpProtocol::start(const TransferJob& job, TransferCallback done) {
  const double started = sim_.now();
  const std::int64_t remaining = std::max<std::int64_t>(job.data.size - job.offset, 0);
  // GET (with Range when resuming) ...
  net_.start_flow(
      job.destination, job.source, config_.request_bytes,
      [this, job, started, remaining, done = std::move(done)](const net::FlowResult& req) mutable {
        if (!req.ok) {
          TransferOutcome outcome;
          outcome.error = "http: request failed";
          outcome.started_at = started;
          outcome.finished_at = sim_.now();
          outcome.bytes_requested = remaining;
          done(outcome);
          return;
        }
        // ... then the entity body.
        net_.start_flow(job.source, job.destination, remaining + config_.response_overhead,
                        [this, job, started, remaining,
                         done = std::move(done)](const net::FlowResult& body) mutable {
                          TransferOutcome outcome;
                          outcome.ok = body.ok;
                          outcome.started_at = started;
                          outcome.finished_at = sim_.now();
                          outcome.bytes_requested = remaining;
                          outcome.bytes_transferred =
                              std::max<std::int64_t>(body.transferred - config_.response_overhead,
                                                     0);
                          if (body.ok) {
                            outcome.bytes_transferred = remaining;
                            outcome.checksum = job.data.checksum;
                          } else {
                            outcome.error = "http: body truncated";
                          }
                          done(outcome);
                        });
      });
}

}  // namespace bitdew::transfer
