#include "transfer/tcp.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>

#include "services/data_repository.hpp"
#include "transfer/chunk_source.hpp"
#include "util/md5.hpp"

namespace bitdew::transfer {
namespace {

using api::Errc;
using api::Error;
using api::Expected;
using api::ok_status;
using api::Status;

bool retryable(const Status& status) {
  // kTransport: the connection died (daemon restart, socket loss) — the
  // next round reconnects and resumes. kRejected on a chunk is an offset
  // desync (e.g. the repository lost un-flushed state); dr_put_start
  // re-synchronizes it.
  return !status.ok() &&
         (status.error().code == Errc::kTransport || status.error().code == Errc::kRejected);
}

}  // namespace

TcpTransfer::TcpTransfer(api::ServiceBus& bus, TcpConfig config, Pump pump)
    : bus_(bus), config_(config), pump_(std::move(pump)) {
  config_.chunk_bytes = std::clamp<std::int64_t>(config_.chunk_bytes, 1, services::kMaxChunkBytes);
  config_.max_attempts = std::max(config_.max_attempts, 1);
}

template <typename T>
Expected<T> TcpTransfer::wait(std::function<void(api::Reply<Expected<T>>)> issue) {
  auto slot = std::make_shared<std::optional<Expected<T>>>();
  issue([slot](Expected<T> value) { *slot = std::move(value); });
  while (!slot->has_value()) {
    if (!pump_ || !pump_()) {
      return Error{Errc::kUnavailable, "tcp", "stalled waiting for a data-plane reply"};
    }
  }
  return std::move(**slot);
}

// --- DT-service bookkeeping ---------------------------------------------------

services::TicketId TcpTransfer::open_ticket(const core::Data& data, bool upload) {
  if (!config_.track_ticket) return 0;
  auto ticket = wait<services::TicketId>([&](api::Reply<Expected<services::TicketId>> done) {
    bus_.dt_register(data, upload ? config_.local_name : "dr",
                     upload ? "dr" : config_.local_name, kTcpProtocol, std::move(done));
  });
  return ticket.ok() ? *ticket : 0;
}

void TcpTransfer::report_progress(services::TicketId ticket, std::int64_t done_bytes) {
  if (ticket == 0) return;
  bus_.dt_monitor(ticket, done_bytes, [](Status) {});  // fire and forget
}

void TcpTransfer::close_ticket(services::TicketId ticket, const core::Data& data,
                               const Status& outcome) {
  if (ticket == 0) return;
  if (outcome.ok()) {
    bus_.dt_complete(ticket, data.checksum, data.checksum, [](Status) {});
  } else if (outcome.error().code == Errc::kChecksumMismatch) {
    // Let the DT service register the integrity reject in its stats.
    bus_.dt_complete(ticket, "(corrupt)", data.checksum, [](Status) {});
  } else {
    bus_.dt_failure(ticket, 0, /*can_resume=*/true, [](Status) {});
  }
}

// --- upload -------------------------------------------------------------------

Status TcpTransfer::put_file(const core::Data& data, const std::string& path) {
  core::Content content;
  try {
    content = core::file_content(path);
  } catch (const std::exception& error) {
    return Error{Errc::kInvalidArgument, "tcp", error.what()};
  }
  if (content.size != data.size || content.checksum != data.checksum) {
    return Error{Errc::kInvalidArgument, "tcp",
                 path + " does not match the datum's registered size/checksum"};
  }

  const services::TicketId ticket = open_ticket(data, /*upload=*/true);
  core::Locator locator;
  Status outcome = ok_status();
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    outcome = put_round(data, path, ticket, &locator);
    if (!retryable(outcome)) break;
  }

  if (outcome.ok()) {
    // Publish the minted locator so readers can find this replica.
    outcome = wait<api::Unit>([&](api::Reply<Status> done) {
      bus_.dc_add_locator(locator, std::move(done));
    });
  }
  close_ticket(ticket, data, outcome);
  return outcome;
}

Status TcpTransfer::put_round(const core::Data& data, const std::string& path,
                              services::TicketId ticket, core::Locator* locator_out) {
  const Expected<std::int64_t> start = wait<std::int64_t>(
      [&](api::Reply<Expected<std::int64_t>> done) { bus_.dr_put_start(data, std::move(done)); });
  if (!start.ok()) return Status(start.error());
  std::int64_t offset = *start;
  if (offset > 0) ++stats_.resumes;

  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{Errc::kInvalidArgument, "tcp", "cannot open " + path};
  in.seekg(offset);

  std::string buffer;
  while (offset < data.size) {
    const std::int64_t want = std::min(config_.chunk_bytes, data.size - offset);
    buffer.resize(static_cast<std::size_t>(want));
    in.read(buffer.data(), want);
    if (in.gcount() != want) {
      return Error{Errc::kUnavailable, "tcp", path + " changed while uploading (short read)"};
    }
    const Status sent = wait<api::Unit>([&](api::Reply<Status> done) {
      bus_.dr_put_chunk(data.uid, offset, buffer, std::move(done));
    });
    if (!sent.ok()) return sent;
    offset += want;
    stats_.bytes_sent += want;
    ++stats_.chunks_sent;
    report_progress(ticket, offset);
  }

  const Expected<core::Locator> committed =
      wait<core::Locator>([&](api::Reply<Expected<core::Locator>> done) {
        bus_.dr_put_commit(data.uid, kTcpProtocol, std::move(done));
      });
  if (!committed.ok()) return Status(committed.error());
  *locator_out = *committed;
  return ok_status();
}

// --- download -----------------------------------------------------------------

Status TcpTransfer::get_file(const core::Data& data, const std::string& path) {
  if (data.checksum.empty() || data.size < 0) {
    return Error{Errc::kInvalidArgument, "tcp",
                 "datum " + data.uid.str() + " has no content descriptor to verify against"};
  }
  const std::string part = path + ".part";
  const services::TicketId ticket = open_ticket(data, /*upload=*/false);
  Status outcome = ok_status();
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    outcome = get_round(data, part, ticket);
    if (!retryable(outcome)) break;
  }
  if (outcome.ok()) {
    std::error_code ec;
    std::filesystem::rename(part, path, ec);
    if (ec) outcome = Error{Errc::kUnavailable, "tcp", "cannot move " + part + ": " + ec.message()};
  }
  close_ticket(ticket, data, outcome);
  return outcome;
}

Status TcpTransfer::get_round(const core::Data& data, const std::string& part,
                              services::TicketId ticket) {
  // Resume from whatever prefix of the .part file survived, re-hashing it
  // so the final MD5 covers every byte on disk, not just this round's.
  std::int64_t offset = 0;
  util::Md5 hasher;
  std::error_code ec;
  if (std::filesystem::exists(part, ec)) {
    const std::int64_t held = static_cast<std::int64_t>(std::filesystem::file_size(part, ec));
    if (!ec && held > 0 && held <= data.size) {
      std::ifstream existing(part, std::ios::binary);
      char buffer[64 * 1024];
      while (existing) {
        existing.read(buffer, sizeof(buffer));
        if (existing.gcount() > 0) hasher.update(buffer, static_cast<std::size_t>(existing.gcount()));
      }
      offset = held;
      ++stats_.resumes;
    } else {
      std::filesystem::remove(part, ec);  // oversized/unreadable partial: restart
    }
  }

  std::ofstream out(part, offset > 0 ? std::ios::binary | std::ios::app : std::ios::binary);
  if (!out) return Error{Errc::kInvalidArgument, "tcp", "cannot write " + part};

  // Depth-2 prefetch through the shared ChunkSource read API: chunk N+1 is
  // issued before chunk N is consumed, so over a pipelined RemoteServiceBus
  // the next chunk crosses the wire while this one is hashed and written.
  // Reads are idempotent, so in-flight overlap is safe (uploads stay
  // strictly sequential — the repository's stage offset is stateful).
  BusChunkSource source(bus_, pump_);
  ChunkFetch next;
  std::int64_t next_offset = 0;
  const auto issue = [&](std::int64_t at) {
    next = source.fetch(data.uid, at, std::min(config_.chunk_bytes, data.size - at));
    next_offset = at;
  };

  while (offset < data.size) {
    const std::int64_t want = std::min(config_.chunk_bytes, data.size - offset);
    if (!next.valid() || next_offset != offset) issue(offset);
    ChunkFetch current = std::move(next);
    if (offset + want < data.size) issue(offset + want);
    const Expected<std::string> chunk = current.wait();
    if (!chunk.ok()) {
      out.flush();
      return Status(chunk.error());
    }
    if (chunk->empty()) {
      return Error{Errc::kUnavailable, "tcp",
                   "repository holds fewer bytes than the descriptor declares"};
    }
    out.write(chunk->data(), static_cast<std::streamsize>(chunk->size()));
    if (!out.good()) {
      // A full disk must not rename a truncated .part as "verified": the
      // MD5 below covers received bytes, so written bytes must match them.
      return Error{Errc::kUnavailable, "tcp", "short write to " + part};
    }
    hasher.update(*chunk);
    offset += static_cast<std::int64_t>(chunk->size());
    stats_.bytes_received += static_cast<std::int64_t>(chunk->size());
    ++stats_.chunks_received;
    report_progress(ticket, offset);
  }
  out.close();
  if (!out.good()) return Error{Errc::kUnavailable, "tcp", "flush failed for " + part};

  if (hasher.finish().hex() != data.checksum) {
    std::filesystem::remove(part, ec);  // poisoned partials must not resume
    return Error{Errc::kChecksumMismatch, "tcp",
                 "downloaded content MD5 differs from the registered checksum of " +
                     data.uid.str()};
  }
  return ok_status();
}

}  // namespace bitdew::transfer
