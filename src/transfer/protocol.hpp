// Out-of-band transfer protocols: the one protocol registry.
//
// BitDew's control plane never moves bytes itself: the Data Transfer
// service launches out-of-band transfers through a pluggable protocol
// (paper §3.4.2), looked up by name in the ProtocolRegistry below — the
// name the `oob` attribute and every minted Locator carry. The registry
// spans both planes of this reproduction:
//
//  * simulated protocols ("ftp", "http", "bittorrent" — implemented next
//    to this header as async `start(job, done)` against the discrete-event
//    network) model transfer *timing* for the paper's figures; their
//    TransferOutcome carries a checksum so integrity checking exercises
//    the real code path without materializing bytes;
//  * the real protocol ("tcp", transfer/tcp.hpp's kTcpProtocol) moves
//    actual file content in chunks through the ServiceBus data-plane
//    endpoints — resumable, MD5-verified, and measured over live sockets
//    (`fig3a_transfer --real`);
//  * transfer/oob.hpp keeps the paper's Fig. 2 seven-method blocking
//    interface (LocalFileTransfer implements it over the filesystem) for
//    protocols shipped as external tools/daemons.
//
// Users can register their own under a new name (paper Fig. 2's
// extensibility claim); docs/architecture.md maps the planes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "api/service_bus.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"
#include "net/network.hpp"

namespace bitdew::transfer {

struct TransferOutcome {
  bool ok = false;
  std::string error;
  double started_at = 0;
  double finished_at = 0;
  std::int64_t bytes_requested = 0;
  std::int64_t bytes_transferred = 0;  ///< payload delivered (resume credit)
  std::string checksum;                ///< checksum of received content

  double elapsed() const { return finished_at - started_at; }
  double mean_rate() const {
    return elapsed() > 0 ? static_cast<double>(bytes_transferred) / elapsed() : 0.0;
  }
};

struct TransferJob {
  core::Data data;
  net::HostId source = net::kNoHost;       ///< host serving the content
  net::HostId destination = net::kNoHost;  ///< receiver
  std::int64_t offset = 0;                 ///< resume offset (bytes already held)
};

using TransferCallback = std::function<void(const TransferOutcome&)>;

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Starts an asynchronous transfer; `done` fires exactly once.
  virtual void start(const TransferJob& job, TransferCallback done) = 0;

  virtual std::string name() const = 0;

  /// Whether a failed transfer can be resumed from an offset (FTP REST).
  virtual bool supports_resume() const { return false; }
};

// --- live engines (real bytes) -----------------------------------------------
// The deployed worker tier resolves the `oob` attribute through the same
// registry, but against LiveProtocol entries: blocking engines that move
// actual file content on a transfer thread. "tcp" (transfer/tcp.hpp) pulls
// every byte from the central Data Repository; "p2p" (transfer/peer.hpp)
// stripes chunk ranges across the peer locators the scheduler attached to
// the download order, falling back to the repository.

/// Per-download knobs a live engine receives from its runtime.
struct LiveTransferConfig {
  std::int64_t chunk_bytes = 256 * 1024;
  int max_attempts = 3;            ///< reconnect + resume rounds
  std::string local_name = "local";  ///< worker name for DT tickets
};

class LiveProtocol {
 public:
  virtual ~LiveProtocol() = default;

  virtual std::string name() const = 0;

  /// Downloads `data` into `path`, MD5-verified end to end. `sources` are
  /// the peer locators that rode in with the download order (engines that
  /// do not understand peers ignore them); `bus` reaches the central
  /// repository and the DT service. Blocking; runs on a transfer thread
  /// with a dedicated bus connection.
  virtual api::Status get_file(api::ServiceBus& bus, const core::Data& data,
                               const std::string& path,
                               const std::vector<core::Locator>& sources,
                               const LiveTransferConfig& config) = 0;
};

/// Registry keyed by protocol name; the Data Transfer service resolves the
/// `oob` attribute through one of these. Simulated protocols and live
/// engines live side by side under the same names.
class ProtocolRegistry {
 public:
  void add(std::unique_ptr<Protocol> protocol) {
    protocols_[protocol->name()] = std::move(protocol);
  }

  void add_live(std::unique_ptr<LiveProtocol> protocol) {
    live_[protocol->name()] = std::move(protocol);
  }

  Protocol* find(const std::string& name) const {
    const auto it = protocols_.find(name);
    return it != protocols_.end() ? it->second.get() : nullptr;
  }

  LiveProtocol* find_live(const std::string& name) const {
    const auto it = live_.find(name);
    return it != live_.end() ? it->second.get() : nullptr;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(protocols_.size());
    for (const auto& [name, protocol] : protocols_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, std::unique_ptr<Protocol>> protocols_;
  std::map<std::string, std::unique_ptr<LiveProtocol>> live_;
};

/// The process-wide registry live workers dispatch through: "tcp" and "p2p"
/// are pre-registered (transfer/live.cpp); embedders may add_live their
/// own engines under new names before starting a NodeRuntime.
ProtocolRegistry& live_registry();

}  // namespace bitdew::transfer
