// Out-of-band transfer protocols (simulated runtime).
//
// BitDew never moves bytes itself: the Data Transfer service launches
// out-of-band transfers through a pluggable protocol (paper §3.4.2). Under
// the discrete-event runtime a protocol is an async `start(job, done)`;
// FTP, HTTP and BitTorrent implementations live next to this header, and
// users can register their own (paper Fig. 2's extensibility claim).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/data.hpp"
#include "net/network.hpp"

namespace bitdew::transfer {

struct TransferOutcome {
  bool ok = false;
  std::string error;
  double started_at = 0;
  double finished_at = 0;
  std::int64_t bytes_requested = 0;
  std::int64_t bytes_transferred = 0;  ///< payload delivered (resume credit)
  std::string checksum;                ///< checksum of received content

  double elapsed() const { return finished_at - started_at; }
  double mean_rate() const {
    return elapsed() > 0 ? static_cast<double>(bytes_transferred) / elapsed() : 0.0;
  }
};

struct TransferJob {
  core::Data data;
  net::HostId source = net::kNoHost;       ///< host serving the content
  net::HostId destination = net::kNoHost;  ///< receiver
  std::int64_t offset = 0;                 ///< resume offset (bytes already held)
};

using TransferCallback = std::function<void(const TransferOutcome&)>;

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Starts an asynchronous transfer; `done` fires exactly once.
  virtual void start(const TransferJob& job, TransferCallback done) = 0;

  virtual std::string name() const = 0;

  /// Whether a failed transfer can be resumed from an offset (FTP REST).
  virtual bool supports_resume() const { return false; }
};

/// Registry keyed by protocol name; the Data Transfer service resolves the
/// `oob` attribute through one of these.
class ProtocolRegistry {
 public:
  void add(std::unique_ptr<Protocol> protocol) {
    protocols_[protocol->name()] = std::move(protocol);
  }

  Protocol* find(const std::string& name) const {
    const auto it = protocols_.find(name);
    return it != protocols_.end() ? it->second.get() : nullptr;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(protocols_.size());
    for (const auto& [name, protocol] : protocols_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, std::unique_ptr<Protocol>> protocols_;
};

}  // namespace bitdew::transfer
