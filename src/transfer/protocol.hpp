// Out-of-band transfer protocols: the one protocol registry.
//
// BitDew's control plane never moves bytes itself: the Data Transfer
// service launches out-of-band transfers through a pluggable protocol
// (paper §3.4.2), looked up by name in the ProtocolRegistry below — the
// name the `oob` attribute and every minted Locator carry. The registry
// spans both planes of this reproduction:
//
//  * simulated protocols ("ftp", "http", "bittorrent" — implemented next
//    to this header as async `start(job, done)` against the discrete-event
//    network) model transfer *timing* for the paper's figures; their
//    TransferOutcome carries a checksum so integrity checking exercises
//    the real code path without materializing bytes;
//  * the real protocol ("tcp", transfer/tcp.hpp's kTcpProtocol) moves
//    actual file content in chunks through the ServiceBus data-plane
//    endpoints — resumable, MD5-verified, and measured over live sockets
//    (`fig3a_transfer --real`);
//  * transfer/oob.hpp keeps the paper's Fig. 2 seven-method blocking
//    interface (LocalFileTransfer implements it over the filesystem) for
//    protocols shipped as external tools/daemons.
//
// Users can register their own under a new name (paper Fig. 2's
// extensibility claim); docs/architecture.md maps the planes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/data.hpp"
#include "net/network.hpp"

namespace bitdew::transfer {

struct TransferOutcome {
  bool ok = false;
  std::string error;
  double started_at = 0;
  double finished_at = 0;
  std::int64_t bytes_requested = 0;
  std::int64_t bytes_transferred = 0;  ///< payload delivered (resume credit)
  std::string checksum;                ///< checksum of received content

  double elapsed() const { return finished_at - started_at; }
  double mean_rate() const {
    return elapsed() > 0 ? static_cast<double>(bytes_transferred) / elapsed() : 0.0;
  }
};

struct TransferJob {
  core::Data data;
  net::HostId source = net::kNoHost;       ///< host serving the content
  net::HostId destination = net::kNoHost;  ///< receiver
  std::int64_t offset = 0;                 ///< resume offset (bytes already held)
};

using TransferCallback = std::function<void(const TransferOutcome&)>;

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Starts an asynchronous transfer; `done` fires exactly once.
  virtual void start(const TransferJob& job, TransferCallback done) = 0;

  virtual std::string name() const = 0;

  /// Whether a failed transfer can be resumed from an offset (FTP REST).
  virtual bool supports_resume() const { return false; }
};

/// Registry keyed by protocol name; the Data Transfer service resolves the
/// `oob` attribute through one of these.
class ProtocolRegistry {
 public:
  void add(std::unique_ptr<Protocol> protocol) {
    protocols_[protocol->name()] = std::move(protocol);
  }

  Protocol* find(const std::string& name) const {
    const auto it = protocols_.find(name);
    return it != protocols_.end() ? it->second.get() : nullptr;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(protocols_.size());
    for (const auto& [name, protocol] : protocols_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, std::unique_ptr<Protocol>> protocols_;
};

}  // namespace bitdew::transfer
