#include "transfer/ftp.hpp"

namespace bitdew::transfer {

int FtpProtocol::server_load(net::HostId server) const {
  const auto it = servers_.find(server);
  if (it == servers_.end()) return 0;
  return it->second.active + static_cast<int>(it->second.waiting.size());
}

void FtpProtocol::start(const TransferJob& job, TransferCallback done) {
  control_handshake(job, config_.control_round_trips, sim_.now(), std::move(done));
}

void FtpProtocol::control_handshake(const TransferJob& job, int trips_left, double started,
                                    TransferCallback done) {
  if (trips_left <= 0) {
    acquire_slot(job, started, std::move(done));
    return;
  }
  // One control round-trip: request to the server, reply to the client.
  net_.start_flow(
      job.destination, job.source, config_.control_bytes,
      [this, job, trips_left, started, done = std::move(done)](const net::FlowResult& out) mutable {
        if (!out.ok) {
          TransferOutcome outcome;
          outcome.error = "ftp: control connection failed";
          outcome.started_at = started;
          outcome.finished_at = sim_.now();
          outcome.bytes_requested = job.data.size - job.offset;
          done(outcome);
          return;
        }
        net_.start_flow(
            job.source, job.destination, config_.control_bytes,
            [this, job, trips_left, started, done = std::move(done)](
                const net::FlowResult& back) mutable {
              if (!back.ok) {
                TransferOutcome outcome;
                outcome.error = "ftp: control connection failed";
                outcome.started_at = started;
                outcome.finished_at = sim_.now();
                outcome.bytes_requested = job.data.size - job.offset;
                done(outcome);
                return;
              }
              control_handshake(job, trips_left - 1, started, std::move(done));
            });
      });
}

void FtpProtocol::acquire_slot(const TransferJob& job, double started, TransferCallback done) {
  ServerState& server = servers_[job.source];
  if (server.active < config_.server_slots) {
    ++server.active;
    run_data_transfer(job, started, std::move(done));
    return;
  }
  server.waiting.push_back([this, job, started, done = std::move(done)]() mutable {
    run_data_transfer(job, started, std::move(done));
  });
}

void FtpProtocol::release_slot(net::HostId server_host) {
  ServerState& server = servers_[server_host];
  if (!server.waiting.empty()) {
    auto next = std::move(server.waiting.front());
    server.waiting.pop_front();
    next();  // slot stays occupied by the next transfer
    return;
  }
  --server.active;
}

void FtpProtocol::run_data_transfer(const TransferJob& job, double started,
                                    TransferCallback done) {
  const std::int64_t remaining = std::max<std::int64_t>(job.data.size - job.offset, 0);
  net_.start_flow(job.source, job.destination, remaining,
                  [this, job, started, remaining,
                   done = std::move(done)](const net::FlowResult& out) mutable {
                    release_slot(job.source);
                    TransferOutcome outcome;
                    outcome.ok = out.ok;
                    outcome.started_at = started;
                    outcome.finished_at = sim_.now();
                    outcome.bytes_requested = remaining;
                    outcome.bytes_transferred = out.transferred;
                    if (out.ok) {
                      outcome.checksum = job.data.checksum;  // receiver verifies upstream
                    } else {
                      outcome.error = "ftp: data connection dropped";
                    }
                    done(outcome);
                  });
}

}  // namespace bitdew::transfer
