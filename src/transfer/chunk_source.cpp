#include "transfer/chunk_source.hpp"

#include <memory>
#include <optional>

#include "rpc/wire.hpp"

namespace bitdew::transfer {

using api::Errc;
using api::Error;
using api::Expected;

ChunkFetch BusChunkSource::fetch(const util::Auid& uid, std::int64_t offset,
                                 std::int64_t max_bytes) {
  auto slot = std::make_shared<std::optional<Expected<std::string>>>();
  bus_.dr_get_chunk(uid, offset, max_bytes,
                    [slot](Expected<std::string> reply) { *slot = std::move(reply); });
  return ChunkFetch([slot, pump = pump_]() -> Expected<std::string> {
    while (!slot->has_value()) {
      if (!pump || !pump()) {
        return Error{Errc::kUnavailable, "chunk", "stalled waiting for a repository chunk"};
      }
    }
    return std::move(**slot);
  });
}

ChunkFetch PeerChunkSource::fetch(const util::Auid& uid, std::int64_t offset,
                                  std::int64_t max_bytes) {
  rpc::ClientChannel::PendingReply reply =
      channel_.send(rpc::wire::Endpoint::kDrGetChunk, [&](rpc::Writer& w) {
        rpc::wire::write_auid(w, uid);
        w.i64(offset);
        w.i64(max_bytes);
      });
  rpc::ClientChannel* channel = &channel_;
  return ChunkFetch([channel, reply = std::move(reply)]() mutable -> Expected<std::string> {
    Expected<std::string> frame = reply.wait();
    if (!frame.ok()) return frame.error();
    try {
      rpc::Reader r(*frame);
      Expected<std::string> bytes =
          rpc::wire::read_expected<std::string>(r, [](rpc::Reader& rd) { return rd.str(); });
      if (!r.exhausted()) throw rpc::CodecError("trailing bytes in chunk reply");
      return bytes;
    } catch (const rpc::CodecError& error) {
      channel->close();
      return Error{Errc::kTransport, "chunk",
                   std::string("malformed chunk reply: ") + error.what()};
    }
  });
}

}  // namespace bitdew::transfer
