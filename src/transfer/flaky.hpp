// Failure-injection decorator: wraps any Protocol and makes a configurable
// fraction of transfers fail mid-flight or deliver a corrupted checksum.
// Used by the reliability tests for the Data Transfer service (which must
// retry/resume) and by the fault-injection benches.
#pragma once

#include "sim/simulator.hpp"
#include "transfer/protocol.hpp"

namespace bitdew::transfer {

struct FlakyConfig {
  double fail_probability = 0.0;     ///< outcome.ok = false
  double corrupt_probability = 0.0;  ///< ok but wrong checksum
};

class FlakyProtocol final : public Protocol {
 public:
  FlakyProtocol(std::unique_ptr<Protocol> inner, sim::Simulator& sim, FlakyConfig config)
      : inner_(std::move(inner)), sim_(sim), config_(config) {}

  void start(const TransferJob& job, TransferCallback done) override {
    const bool fail = sim_.rng().chance(config_.fail_probability);
    const bool corrupt = !fail && sim_.rng().chance(config_.corrupt_probability);
    inner_->start(job, [fail, corrupt, done = std::move(done)](const TransferOutcome& real) {
      TransferOutcome outcome = real;
      if (fail && outcome.ok) {
        outcome.ok = false;
        outcome.error = "injected: transfer dropped";
        outcome.bytes_transferred = outcome.bytes_transferred / 2;  // partial delivery
      } else if (corrupt && outcome.ok) {
        outcome.checksum = "0000deadbeef0000deadbeef0000dead";
      }
      done(outcome);
    });
  }

  std::string name() const override { return inner_->name(); }
  bool supports_resume() const override { return inner_->supports_resume(); }

  Protocol& inner() { return *inner_; }

 private:
  std::unique_ptr<Protocol> inner_;
  sim::Simulator& sim_;
  FlakyConfig config_;
};

}  // namespace bitdew::transfer
