// PullCore: the client half of the paper's reservoir pull protocol
// (Algorithm 1 as seen from a volatile node), extracted so both runtimes
// run ONE implementation:
//
//  * SimRuntime's SimNode drives it from discrete-event callbacks;
//  * runtime::NodeRuntime drives it from a real heartbeat thread over
//    RemoteServiceBus + transfer::TcpTransfer.
//
// It owns the node-side state of the protocol — the local replica set Δk,
// the in-flight download set (reported back through ds_sync so the
// scheduler keeps provisional assignments alive), and the ScheduledData
// registry (data + attributes as last announced) — and fires the ActiveData
// life-cycle events at the protocol's transition points: on_data_copy when
// a replica arrives (downloaded, zero-size, or locally adopted with
// fire_event), on_data_delete when the scheduler drops it. What it does NOT
// own is the transfer mechanics (locator selection, DT tickets, retries):
// those stay backend-specific, behind begin/complete/fail.
//
// PullCore itself is not synchronized: SimNode is single-threaded by
// construction, and NodeRuntime serializes access under its own lock (the
// heartbeat thread and the transfer threads both mutate this state).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "api/active_data.hpp"
#include "services/data_scheduler.hpp"

namespace bitdew::api {

class PullCore {
 public:
  /// Events are dispatched through `events` (the node's ActiveData).
  explicit PullCore(ActiveData& events) : events_(events) {}

  /// One outgoing synchronization as built by build_sync(): either the full
  /// Δk (`full`, after a restart or a scheduler-ordered resync) or the
  /// cache delta since the last *acked* beat. The caller sends it, and on a
  /// successful non-resync reply hands it back to ack_sync() so the dirty
  /// sets shrink by exactly what the scheduler has now mirrored. A lost
  /// reply is simply never acked: the same (idempotent) delta rides again
  /// on the next beat.
  struct SyncDelta {
    std::uint64_t epoch = 0;  ///< scheduler-minted; 0 = none (forces full)
    bool full = true;
    std::vector<util::Auid> added;
    std::vector<util::Auid> removed;
  };

  /// Outcome of offering one newly assigned datum to the cache.
  enum class Admission {
    kAlreadyHeld,  ///< cached or already downloading: nothing to do
    kInstant,      ///< zero-size datum adopted without a transfer
                   ///< (on_data_copy fired)
    kStarted,      ///< marked in-flight: the runtime must run the transfer
  };

  /// Δk \ Ψk of one sync reply: erases dropped data from the cache, fires
  /// on_data_delete for each, and returns their descriptors so the runtime
  /// can reclaim backing storage. Data this node never held is ignored.
  std::vector<services::ScheduledData> apply_drops(const services::SyncReply& reply);

  /// Ψk \ Δk, one datum at a time: records the descriptor and classifies
  /// the admission (see Admission).
  Admission begin_download(const services::ScheduledData& item);

  /// A download finished verified: moves the datum from in-flight to the
  /// cache and fires on_data_copy. Returns the descriptor (nullopt when the
  /// datum was not in flight — e.g. dropped while downloading).
  std::optional<services::ScheduledData> complete_download(const util::Auid& uid);

  /// A download died (no source, transport loss, checksum exhaustion):
  /// clears the in-flight mark so the next sync re-requests the datum.
  void fail_download(const util::Auid& uid);

  /// Seeds the cache without a transfer — data born on this node, or
  /// replicas re-verified from a restarted node's local store. With
  /// `fire_event`, on_data_copy is dispatched (a locally produced replica
  /// "arrives" too).
  void adopt_local(const core::Data& data, const core::DataAttributes& attributes,
                   bool fire_event);

  // --- incremental sync (protocol v2) ----------------------------------------
  /// The next sync to send. Full when the scheduler has never acked an
  /// epoch (fresh start, restart, or after force_resync()); otherwise the
  /// dirty-set delta. Does NOT mutate state: call ack_sync() with the
  /// returned value once the scheduler's reply confirms it.
  SyncDelta build_sync() const;

  /// Confirms that the scheduler mirrored `sent` and advanced to
  /// `acked_epoch`. After a full sync the dirty sets are recomputed against
  /// the current cache (replicas adopted by a transfer thread between build
  /// and ack land in the next delta); after a delta exactly the sent uids
  /// are retired. Removals are only ever produced on the thread that runs
  /// the sync loop, so a sent removal cannot have been superseded here.
  void ack_sync(const SyncDelta& sent, std::uint64_t acked_epoch);

  /// Drops the epoch so the next build_sync() is full — the scheduler
  /// replied `resync` (epoch mismatch, scheduler restart, presumed death).
  void force_resync() { epoch_ = 0; }

  std::uint64_t epoch() const { return epoch_; }

  // --- introspection ---------------------------------------------------------
  bool has(const util::Auid& uid) const { return cache_.contains(uid); }
  bool downloading(const util::Auid& uid) const { return downloading_.contains(uid); }
  const std::set<util::Auid>& cache() const { return cache_; }
  const std::set<util::Auid>& downloading_set() const { return downloading_; }
  /// Δk and the in-flight set as the ds_sync request wants them.
  std::vector<util::Auid> cache_list() const {
    return {cache_.begin(), cache_.end()};
  }
  std::vector<util::Auid> downloading_list() const {
    return {downloading_.begin(), downloading_.end()};
  }
  /// The last announced descriptor of a datum this node has seen.
  std::optional<services::ScheduledData> info(const util::Auid& uid) const;

 private:
  /// Cache mutation hooks maintaining the invariant
  ///   scheduler_mirror == cache_ − dirty_added_ + dirty_removed_
  /// (an add cancels a pending removal of the same uid and vice versa, so
  /// an add/remove churn inside one beat nets out to no traffic).
  void mark_added(const util::Auid& uid);
  void mark_removed(const util::Auid& uid);

  ActiveData& events_;
  std::set<util::Auid> cache_;        // Δk: verified local replicas
  std::set<util::Auid> downloading_;  // in flight, reported via ds_sync
  std::map<util::Auid, services::ScheduledData> registry_;  // data+attrs we saw

  std::uint64_t epoch_ = 0;            // scheduler sync epoch (0 = resync)
  std::set<util::Auid> dirty_added_;   // cached, not yet acked by the scheduler
  std::set<util::Auid> dirty_removed_; // dropped, not yet acked
};

}  // namespace bitdew::api
