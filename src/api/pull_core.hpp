// PullCore: the client half of the paper's reservoir pull protocol
// (Algorithm 1 as seen from a volatile node), extracted so both runtimes
// run ONE implementation:
//
//  * SimRuntime's SimNode drives it from discrete-event callbacks;
//  * runtime::NodeRuntime drives it from a real heartbeat thread over
//    RemoteServiceBus + transfer::TcpTransfer.
//
// It owns the node-side state of the protocol — the local replica set Δk,
// the in-flight download set (reported back through ds_sync so the
// scheduler keeps provisional assignments alive), and the ScheduledData
// registry (data + attributes as last announced) — and fires the ActiveData
// life-cycle events at the protocol's transition points: on_data_copy when
// a replica arrives (downloaded, zero-size, or locally adopted with
// fire_event), on_data_delete when the scheduler drops it. What it does NOT
// own is the transfer mechanics (locator selection, DT tickets, retries):
// those stay backend-specific, behind begin/complete/fail.
//
// PullCore itself is not synchronized: SimNode is single-threaded by
// construction, and NodeRuntime serializes access under its own lock (the
// heartbeat thread and the transfer threads both mutate this state).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "api/active_data.hpp"
#include "services/data_scheduler.hpp"

namespace bitdew::api {

class PullCore {
 public:
  /// Events are dispatched through `events` (the node's ActiveData).
  explicit PullCore(ActiveData& events) : events_(events) {}

  /// Outcome of offering one newly assigned datum to the cache.
  enum class Admission {
    kAlreadyHeld,  ///< cached or already downloading: nothing to do
    kInstant,      ///< zero-size datum adopted without a transfer
                   ///< (on_data_copy fired)
    kStarted,      ///< marked in-flight: the runtime must run the transfer
  };

  /// Δk \ Ψk of one sync reply: erases dropped data from the cache, fires
  /// on_data_delete for each, and returns their descriptors so the runtime
  /// can reclaim backing storage. Data this node never held is ignored.
  std::vector<services::ScheduledData> apply_drops(const services::SyncReply& reply);

  /// Ψk \ Δk, one datum at a time: records the descriptor and classifies
  /// the admission (see Admission).
  Admission begin_download(const services::ScheduledData& item);

  /// A download finished verified: moves the datum from in-flight to the
  /// cache and fires on_data_copy. Returns the descriptor (nullopt when the
  /// datum was not in flight — e.g. dropped while downloading).
  std::optional<services::ScheduledData> complete_download(const util::Auid& uid);

  /// A download died (no source, transport loss, checksum exhaustion):
  /// clears the in-flight mark so the next sync re-requests the datum.
  void fail_download(const util::Auid& uid);

  /// Seeds the cache without a transfer — data born on this node, or
  /// replicas re-verified from a restarted node's local store. With
  /// `fire_event`, on_data_copy is dispatched (a locally produced replica
  /// "arrives" too).
  void adopt_local(const core::Data& data, const core::DataAttributes& attributes,
                   bool fire_event);

  // --- introspection ---------------------------------------------------------
  bool has(const util::Auid& uid) const { return cache_.contains(uid); }
  bool downloading(const util::Auid& uid) const { return downloading_.contains(uid); }
  const std::set<util::Auid>& cache() const { return cache_; }
  const std::set<util::Auid>& downloading_set() const { return downloading_; }
  /// Δk and the in-flight set as the ds_sync request wants them.
  std::vector<util::Auid> cache_list() const {
    return {cache_.begin(), cache_.end()};
  }
  std::vector<util::Auid> downloading_list() const {
    return {downloading_.begin(), downloading_.end()};
  }
  /// The last announced descriptor of a datum this node has seen.
  std::optional<services::ScheduledData> info(const util::Auid& uid) const;

 private:
  ActiveData& events_;
  std::set<util::Auid> cache_;        // Δk: verified local replicas
  std::set<util::Auid> downloading_;  // in flight, reported via ds_sync
  std::map<util::Auid, services::ScheduledData> registry_;  // data+attrs we saw
};

}  // namespace bitdew::api
