#include "api/bitdew.hpp"

namespace bitdew::api {

void BitDew::remember(const core::Data& data) { known_by_name_[data.name] = data; }

core::Data BitDew::create_data(const std::string& name, const core::Content& content,
                               Reply<bool> done) {
  core::Data data;
  data.uid = util::next_auid();
  data.name = name;
  data.size = content.size;
  data.checksum = content.checksum;
  remember(data);
  bus_.dc_register(data, done ? std::move(done) : [](bool) {});
  return data;
}

core::Data BitDew::create_data(const std::string& name, Reply<bool> done) {
  return create_data(name, core::Content{0, core::synthetic_content(0, 0).checksum},
                     std::move(done));
}

void BitDew::put(const core::Data& data, const core::Content& content, Reply<bool> done,
                 const std::string& protocol) {
  if (!done) done = [](bool) {};
  bus_.dr_put(data, content, protocol,
              [this, done = std::move(done)](core::Locator locator) mutable {
                bus_.dc_add_locator(locator, std::move(done));
              });
}

void BitDew::offer_local(const core::Data& data, const std::string& protocol, Reply<bool> done) {
  core::Locator locator;
  locator.data_uid = data.uid;
  locator.protocol = protocol;
  locator.host = host_;
  locator.path = "local/" + data.uid.str();
  bus_.dc_add_locator(locator, done ? std::move(done) : [](bool) {});
}

void BitDew::search(const std::string& name, Reply<std::optional<core::Data>> done) {
  bus_.dc_search(name, [this, done = std::move(done)](std::vector<core::Data> found) mutable {
    if (found.empty()) {
      done(std::nullopt);
      return;
    }
    remember(found.front());
    done(found.front());
  });
}

void BitDew::remove(const core::Data& data, Reply<bool> done) {
  if (!done) done = [](bool) {};
  bus_.ds_unschedule(data.uid, [this, uid = data.uid, done = std::move(done)](bool) mutable {
    bus_.dr_remove(uid, [this, uid, done = std::move(done)](bool) mutable {
      bus_.dc_remove(uid, std::move(done));
    });
  });
}

core::DataAttributes BitDew::create_attribute(const std::string& text, double now) const {
  return core::parse_attributes(
      text,
      [this](const std::string& reference) -> std::optional<util::Auid> {
        const auto it = known_by_name_.find(reference);
        if (it == known_by_name_.end()) return std::nullopt;
        return it->second.uid;
      },
      now);
}

std::optional<core::Data> BitDew::known(const std::string& name) const {
  const auto it = known_by_name_.find(name);
  if (it == known_by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bitdew::api
