#include "api/bitdew.hpp"

namespace bitdew::api {

void BitDew::remember(const core::Data& data) { known_by_name_[data.name] = data; }

core::Data BitDew::create_data(const std::string& name, const core::Content& content,
                               Reply<Status> done) {
  core::Data data;
  data.uid = util::next_auid();
  data.name = name;
  data.size = content.size;
  data.checksum = content.checksum;
  remember(data);
  bus_.dc_register(data, done ? std::move(done) : [](Status) {});
  return data;
}

core::Data BitDew::create_data(const std::string& name, Reply<Status> done) {
  return create_data(name, core::Content{0, core::synthetic_content(0, 0).checksum},
                     std::move(done));
}

std::vector<core::Data> BitDew::create_data_batch(
    const std::vector<std::pair<std::string, core::Content>>& slots, Reply<BatchStatus> done) {
  std::vector<core::Data> out;
  out.reserve(slots.size());
  for (const auto& [name, content] : slots) {
    core::Data data;
    data.uid = util::next_auid();
    data.name = name;
    data.size = content.size;
    data.checksum = content.checksum;
    remember(data);
    out.push_back(std::move(data));
  }
  bus_.dc_register_batch(out, done ? std::move(done) : [](BatchStatus) {});
  return out;
}

void BitDew::put(const core::Data& data, const core::Content& content, Reply<Status> done,
                 const std::string& protocol) {
  if (!done) done = [](Status) {};
  bus_.dr_put(data, content, protocol,
              [this, done = std::move(done)](Expected<core::Locator> locator) mutable {
                if (!locator.ok()) {
                  done(locator.propagate<Unit>());
                  return;
                }
                bus_.dc_add_locator(*locator, std::move(done));
              });
}

void BitDew::offer_local(const core::Data& data, const std::string& protocol,
                         Reply<Status> done) {
  core::Locator locator;
  locator.data_uid = data.uid;
  locator.protocol = protocol;
  locator.host = host_;
  locator.path = "local/" + data.uid.str();
  bus_.dc_add_locator(locator, done ? std::move(done) : [](Status) {});
}

void BitDew::search(const std::string& name, Reply<Expected<core::Data>> done) {
  bus_.dc_search(
      name, [this, name,
             done = std::move(done)](Expected<std::vector<core::Data>> found) mutable {
        if (!found.ok()) {
          done(found.propagate<core::Data>());
          return;
        }
        if (found->empty()) {
          done(Error{Errc::kNotFound, "dc", "no data named '" + name + "'"});
          return;
        }
        remember(found->front());
        done(found->front());
      });
}

void BitDew::remove(const core::Data& data, Reply<Status> done) {
  if (!done) done = [](Status) {};
  bus_.ds_unschedule(data.uid, [this, uid = data.uid, done = std::move(done)](Status) mutable {
    bus_.dr_remove(uid, [this, uid, done = std::move(done)](Status) mutable {
      bus_.dc_remove(uid, std::move(done));
    });
  });
}

core::DataAttributes BitDew::create_attribute(const std::string& text) const {
  return core::parse_attributes(
      text, [this](const std::string& reference) -> std::optional<util::Auid> {
        const auto it = known_by_name_.find(reference);
        if (it == known_by_name_.end()) return std::nullopt;
        return it->second.uid;
      });
}

std::optional<core::Data> BitDew::known(const std::string& name) const {
  const auto it = known_by_name_.find(name);
  if (it == known_by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bitdew::api
