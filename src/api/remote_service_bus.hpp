// RemoteServiceBus: the third ServiceBus implementation — every call is a
// framed RPC over a real TCP connection to a ServiceHost (bitdewd). At the
// default pipeline depth of 1 every reply resolves synchronously before the
// call returns, like DirectServiceBus, so the Session facade needs no pump.
// With set_pipeline_depth(N > 1) scalar calls become PIPELINED: up to N
// requests ride in flight on the one connection (the epoll ServiceHost
// executes them concurrently and replies out of order; ClientChannel's
// request-id demux reorders), and the `done` callback fires from a later
// pump()/drain()/wait — exactly the deferred-completion contract
// SimServiceBus already trained every caller against. Socket loss,
// connection refusal, a missed deadline or a malformed reply all surface as
// Errc::kTransport — user code fails typed instead of hanging, and the next
// call transparently reconnects. Batch endpoints are native: one frame
// carries the whole batch, and an empty batch generates no traffic at all.
// Against a ring of bitdewd members (ServiceHost::start_ring) the bus also
// speaks the redirect protocol: any member answers a keyed dc_*/ddc_* call
// either by serving it or with Errc::kRedirect naming the owner, and the
// bus transparently chases a bounded number of redirects through cached
// per-member channels — falling back to the home member (whose tables
// re-resolve after stabilization) when a redirect target has died.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "api/service_bus.hpp"
#include "rpc/transport.hpp"
#include "rpc/wire.hpp"

namespace bitdew::api {

struct RemoteBusConfig {
  double connect_timeout_s = 5.0;  ///< TCP connect budget
  double call_deadline_s = 5.0;    ///< per-request reply deadline
  int max_redirects = 4;           ///< ring redirect-chase budget per call
  /// Max scalar calls in flight on the connection. 1 = synchronous
  /// (callbacks fire before the call returns); > 1 pipelines — callbacks
  /// fire from pump()/drain() or when the window is full. Capped by the
  /// host's max_in_flight_per_connection backpressure on the other side.
  int pipeline_depth = 1;
};

class RemoteServiceBus final : public ServiceBus {
 public:
  RemoteServiceBus(std::string host, std::uint16_t port, RemoteBusConfig config = {})
      : config_(config),
        channel_(std::move(host), port, config.connect_timeout_s, config.call_deadline_s) {}

  /// Liveness probe: one kPing round-trip.
  Status ping();

  void dc_register(const core::Data& data, Reply<Status> done) override;
  void dc_get(const util::Auid& uid, Reply<Expected<core::Data>> done) override;
  void dc_search(const std::string& name,
                 Reply<Expected<std::vector<core::Data>>> done) override;
  void dc_remove(const util::Auid& uid, Reply<Status> done) override;
  void dc_add_locator(const core::Locator& locator, Reply<Status> done) override;
  void dc_locators(const util::Auid& uid,
                   Reply<Expected<std::vector<core::Locator>>> done) override;
  void dr_put(const core::Data& data, const core::Content& content, const std::string& protocol,
              Reply<Expected<core::Locator>> done) override;
  void dr_get(const util::Auid& uid, Reply<Expected<core::Content>> done) override;
  void dr_remove(const util::Auid& uid, Reply<Status> done) override;
  void dr_put_start(const core::Data& data, Reply<Expected<std::int64_t>> done) override;
  void dr_put_chunk(const util::Auid& uid, std::int64_t offset, const std::string& bytes,
                    Reply<Status> done) override;
  void dr_put_commit(const util::Auid& uid, const std::string& protocol,
                     Reply<Expected<core::Locator>> done) override;
  void dr_get_chunk(const util::Auid& uid, std::int64_t offset, std::int64_t max_bytes,
                    Reply<Expected<std::string>> done) override;
  void dr_stats(Reply<Expected<services::RepoStats>> done) override;
  void dt_register(const core::Data& data, const std::string& source,
                   const std::string& destination, const std::string& protocol,
                   Reply<Expected<services::TicketId>> done) override;
  void dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                  Reply<Status> done) override;
  void dt_complete(services::TicketId ticket, const std::string& received_checksum,
                   const std::string& expected_checksum, Reply<Status> done) override;
  void dt_failure(services::TicketId ticket, std::int64_t bytes_held, bool can_resume,
                  Reply<Status> done) override;
  void dt_give_up(services::TicketId ticket, Reply<Status> done) override;
  void ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                   Reply<Status> done) override;
  void ds_pin(const util::Auid& uid, const std::string& host, Reply<Status> done) override;
  void ds_unschedule(const util::Auid& uid, Reply<Status> done) override;
  void ds_sync(const services::SyncRequest& request,
               Reply<Expected<services::SyncReply>> done) override;
  void ds_hosts(Reply<Expected<std::vector<services::HostInfo>>> done) override;
  void job_submit(const jobs::JobSpec& spec, Reply<Expected<util::Auid>> done) override;
  void job_status(const util::Auid& job,
                  Reply<Expected<jobs::JobStatusInfo>> done) override;
  void job_claim(const util::Auid& task, const std::string& runner,
                 Reply<Expected<jobs::TaskOrder>> done) override;
  void job_task_report(const jobs::TaskReport& report, Reply<Status> done) override;
  void ddc_publish(const std::string& key, const std::string& value,
                   Reply<Status> done) override;
  void ddc_search(const std::string& key,
                  Reply<Expected<std::vector<std::string>>> done) override;

  // Native bulk endpoints: one frame for the whole batch.
  void dc_register_batch(const std::vector<core::Data>& items, Reply<BatchStatus> done) override;
  void dc_locators_batch(const std::vector<util::Auid>& uids, Reply<BatchLocators> done) override;
  void ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                         Reply<BatchStatus> done) override;
  void ddc_publish_batch(const std::vector<KeyValue>& pairs, Reply<BatchStatus> done) override;

  /// Membership/health snapshot of the connected ring member (kRingInfo).
  /// Errc::kUnavailable when the host is not a ring member.
  Expected<rpc::wire::RingStatusInfo> ring_info();

  // --- pipelining ------------------------------------------------------------

  /// Changes the in-flight window at runtime (api::Session turns this on
  /// for its *_async streams). Shrinking below the current in-flight count
  /// drains the excess synchronously.
  void set_pipeline_depth(int depth);
  int pipeline_depth() const { return config_.pipeline_depth; }

  /// Completes the OLDEST outstanding pipelined call (blocking for its
  /// reply if needed) and fires its callback. false when nothing is
  /// outstanding. Session's wait() pumps this.
  bool pump();

  /// Completes every outstanding pipelined call. Call before tearing down
  /// request-scoped state the callbacks capture.
  void drain();

  /// Pipelined calls whose callbacks have not fired yet.
  std::size_t in_flight() const { return deferred_.size(); }

  std::uint64_t rpc_count() const { return rpcs_; }
  /// Ring redirects chased across all calls so far.
  std::uint64_t redirects_followed() const { return redirects_followed_; }
  bool connected() const { return channel_.connected(); }

 private:
  /// One pipelined call awaiting its reply: the future plus the decode/
  /// redirect-chase completion. `body` owns the encoded request so the
  /// chase can re-send it after the caller's arguments are gone.
  struct Deferred {
    rpc::ClientChannel::PendingReply reply;
    std::function<void(Expected<std::string>)> complete;
  };

  /// One call with ring-redirect chasing: a reply whose body is the
  /// uniform error encoding with Errc::kRedirect is retried at the member
  /// named in the error message, through a cached peer channel, up to
  /// max_redirects hops. An unreachable redirect target falls back to the
  /// home member after a brief backoff (stabilization reroutes it).
  Expected<std::string> call_routed(rpc::wire::Endpoint endpoint,
                                    const std::function<void(rpc::Writer&)>& encode_body);
  /// The redirect-chase tail of call_routed, shared with pipelined
  /// completion: takes the home member's reply and follows kRedirect
  /// answers through cached peer channels. `body` is the encoded request.
  Expected<std::string> chase_redirects(rpc::wire::Endpoint endpoint, const std::string& body,
                                        Expected<std::string> reply);
  rpc::ClientChannel* peer_channel(const std::string& endpoint);
  /// One round-trip whose reply body is a single Expected<T>; transport
  /// failures become Error{kTransport} under the same T.
  template <typename T, typename EncodeBody, typename ReadValue>
  void invoke(rpc::wire::Endpoint endpoint, EncodeBody&& encode_body, Reply<Expected<T>> done,
              ReadValue&& read_value);

  /// One round-trip whose reply body is a list; transport failures fill the
  /// index-aligned reply with one kTransport error per request item.
  template <typename Item, typename EncodeBody, typename ReadReply>
  void invoke_batch(rpc::wire::Endpoint endpoint, std::size_t count, EncodeBody&& encode_body,
                    Reply<std::vector<Item>> done, ReadReply&& read_reply);

  RemoteBusConfig config_;
  rpc::ClientChannel channel_;
  /// Redirect targets, keyed "host:port"; bounded, reset when full.
  std::unordered_map<std::string, std::unique_ptr<rpc::ClientChannel>> peers_;
  /// Outstanding pipelined calls, oldest first (completed FIFO).
  std::deque<Deferred> deferred_;
  std::uint64_t rpcs_ = 0;
  std::uint64_t redirects_followed_ = 0;
};

}  // namespace bitdew::api
