// DirectServiceBus: the synchronous ServiceBus implementation — every call
// is a plain function call into a ServiceContainer (plus a LocalDht for the
// Distributed Data Catalog), and the reply fires before the call returns.
// This is the bus behind in-process deployments and unit tests: the same
// user code that runs over the simulated network (SimServiceBus) runs here
// with identical Error codes, because both route through service_ops.hpp.
#pragma once

#include "api/service_bus.hpp"
#include "dht/local_dht.hpp"
#include "services/container.hpp"

namespace bitdew::api {

class DirectServiceBus final : public ServiceBus {
 public:
  DirectServiceBus(services::ServiceContainer& container, dht::LocalDht& ddc)
      : container_(container), ddc_(ddc) {}

  void dc_register(const core::Data& data, Reply<Status> done) override;
  void dc_get(const util::Auid& uid, Reply<Expected<core::Data>> done) override;
  void dc_search(const std::string& name,
                 Reply<Expected<std::vector<core::Data>>> done) override;
  void dc_remove(const util::Auid& uid, Reply<Status> done) override;
  void dc_add_locator(const core::Locator& locator, Reply<Status> done) override;
  void dc_locators(const util::Auid& uid,
                   Reply<Expected<std::vector<core::Locator>>> done) override;
  void dr_put(const core::Data& data, const core::Content& content, const std::string& protocol,
              Reply<Expected<core::Locator>> done) override;
  void dr_get(const util::Auid& uid, Reply<Expected<core::Content>> done) override;
  void dr_remove(const util::Auid& uid, Reply<Status> done) override;
  void dr_put_start(const core::Data& data, Reply<Expected<std::int64_t>> done) override;
  void dr_put_chunk(const util::Auid& uid, std::int64_t offset, const std::string& bytes,
                    Reply<Status> done) override;
  void dr_put_commit(const util::Auid& uid, const std::string& protocol,
                     Reply<Expected<core::Locator>> done) override;
  void dr_get_chunk(const util::Auid& uid, std::int64_t offset, std::int64_t max_bytes,
                    Reply<Expected<std::string>> done) override;
  void dr_stats(Reply<Expected<services::RepoStats>> done) override;
  void dt_register(const core::Data& data, const std::string& source,
                   const std::string& destination, const std::string& protocol,
                   Reply<Expected<services::TicketId>> done) override;
  void dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                  Reply<Status> done) override;
  void dt_complete(services::TicketId ticket, const std::string& received_checksum,
                   const std::string& expected_checksum, Reply<Status> done) override;
  void dt_failure(services::TicketId ticket, std::int64_t bytes_held, bool can_resume,
                  Reply<Status> done) override;
  void dt_give_up(services::TicketId ticket, Reply<Status> done) override;
  void ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                   Reply<Status> done) override;
  void ds_pin(const util::Auid& uid, const std::string& host, Reply<Status> done) override;
  void ds_unschedule(const util::Auid& uid, Reply<Status> done) override;
  void ds_sync(const services::SyncRequest& request,
               Reply<Expected<services::SyncReply>> done) override;
  void ds_hosts(Reply<Expected<std::vector<services::HostInfo>>> done) override;
  void job_submit(const jobs::JobSpec& spec, Reply<Expected<util::Auid>> done) override;
  void job_status(const util::Auid& job,
                  Reply<Expected<jobs::JobStatusInfo>> done) override;
  void job_claim(const util::Auid& task, const std::string& runner,
                 Reply<Expected<jobs::TaskOrder>> done) override;
  void job_task_report(const jobs::TaskReport& report, Reply<Status> done) override;
  void ddc_publish(const std::string& key, const std::string& value,
                   Reply<Status> done) override;
  void ddc_search(const std::string& key,
                  Reply<Expected<std::vector<std::string>>> done) override;

  // Native bulk endpoints: one container call for the whole batch.
  void dc_register_batch(const std::vector<core::Data>& items, Reply<BatchStatus> done) override;
  void dc_locators_batch(const std::vector<util::Auid>& uids, Reply<BatchLocators> done) override;
  void ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                         Reply<BatchStatus> done) override;
  void ddc_publish_batch(const std::vector<KeyValue>& pairs, Reply<BatchStatus> done) override;

  std::uint64_t call_count() const { return calls_; }

 private:
  services::ServiceContainer& container_;
  dht::LocalDht& ddc_;
  std::uint64_t calls_ = 0;
};

}  // namespace bitdew::api
