#include "api/remote_service_bus.hpp"

#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>
#include <utility>

namespace bitdew::api {

namespace wire = rpc::wire;
using wire::Endpoint;

namespace {

/// Backoff before re-asking the home member after a redirect target died:
/// long enough for its channel teardown, short next to a stabilize period.
constexpr auto kRedirectRetryBackoff = std::chrono::milliseconds(50);

/// Detects the ring redirect in a reply body without knowing the reply
/// type: the error-status encoding is a uniform prefix of every Expected<T>
/// (success bools leave the payload untouched; short bodies just fail the
/// decode and are not redirects).
std::optional<std::string> redirect_target(const std::string& body) {
  try {
    rpc::Reader r(body);
    const Status status = wire::read_status(r);
    if (!status.ok() && status.error().code == Errc::kRedirect) {
      return status.error().message;
    }
  } catch (const rpc::CodecError&) {
  }
  return std::nullopt;
}

}  // namespace

rpc::ClientChannel* RemoteServiceBus::peer_channel(const std::string& endpoint) {
  const auto cached = peers_.find(endpoint);
  if (cached != peers_.end()) return cached->second.get();
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == endpoint.size()) return nullptr;
  const long port = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) return nullptr;
  if (peers_.size() >= 16) peers_.clear();  // tiny rings in practice; keep it bounded
  auto channel = std::make_unique<rpc::ClientChannel>(
      endpoint.substr(0, colon), static_cast<std::uint16_t>(port), config_.connect_timeout_s,
      config_.call_deadline_s);
  return peers_.emplace(endpoint, std::move(channel)).first->second.get();
}

Expected<std::string> RemoteServiceBus::call_routed(
    Endpoint endpoint, const std::function<void(rpc::Writer&)>& encode_body) {
  rpc::Writer w;
  encode_body(w);
  const std::string body = w.take();
  ++rpcs_;
  Expected<std::string> reply =
      channel_.call(endpoint, [&body](rpc::Writer& frame) { frame.append_raw(body); });
  return chase_redirects(endpoint, body, std::move(reply));
}

Expected<std::string> RemoteServiceBus::chase_redirects(Endpoint endpoint,
                                                        const std::string& body,
                                                        Expected<std::string> reply) {
  const auto resend = [&](rpc::ClientChannel& channel) {
    ++rpcs_;
    return channel.call(endpoint, [&body](rpc::Writer& frame) { frame.append_raw(body); });
  };
  for (int hop = 0; hop < config_.max_redirects; ++hop) {
    if (!reply.ok()) return reply;  // the home member itself is unreachable
    const std::optional<std::string> target = redirect_target(*reply);
    if (!target) return reply;
    ++redirects_followed_;
    rpc::ClientChannel* peer = peer_channel(*target);
    if (peer == nullptr) return reply;  // malformed target: surface the redirect
    Expected<std::string> peer_reply = resend(*peer);
    if (peer_reply.ok()) {
      reply = std::move(peer_reply);
      continue;  // served, or a further (bounded) redirect
    }
    // The owner we were pointed at is gone (e.g. kill -9 before the ring
    // stabilized). The home member's tables reroute once its suspicion
    // kicks in — back off briefly and ask it again.
    std::this_thread::sleep_for(kRedirectRetryBackoff);
    reply = resend(channel_);
  }
  return reply;
}

void RemoteServiceBus::set_pipeline_depth(int depth) {
  config_.pipeline_depth = depth < 1 ? 1 : depth;
  while (static_cast<int>(deferred_.size()) >= config_.pipeline_depth && pump()) {
  }
}

bool RemoteServiceBus::pump() {
  if (deferred_.empty()) return false;
  Deferred oldest = std::move(deferred_.front());
  deferred_.pop_front();
  // wait() demuxes by request id: replies for NEWER calls that arrive first
  // are parked in their own futures, so completion order here is FIFO even
  // though the host answers out of order.
  oldest.complete(oldest.reply.wait());
  return true;
}

void RemoteServiceBus::drain() {
  while (pump()) {
  }
}

Expected<wire::RingStatusInfo> RemoteServiceBus::ring_info() {
  ++rpcs_;
  const Expected<std::string> reply = channel_.call(Endpoint::kRingInfo, [](rpc::Writer&) {});
  if (!reply.ok()) return reply.error();
  try {
    rpc::Reader r(*reply);
    Expected<wire::RingStatusInfo> info =
        wire::read_expected<wire::RingStatusInfo>(r, wire::read_ring_status_info);
    if (!r.exhausted()) throw rpc::CodecError("trailing bytes in reply");
    return info;
  } catch (const rpc::CodecError& error) {
    channel_.close();
    return Error{Errc::kTransport, "bus", std::string("ring_info reply decode: ") + error.what()};
  }
}

template <typename T, typename EncodeBody, typename ReadValue>
void RemoteServiceBus::invoke(Endpoint endpoint, EncodeBody&& encode_body,
                              Reply<Expected<T>> done, ReadValue&& read_value) {
  const auto decode = [this, endpoint](const std::string& payload, auto& reader,
                                       Reply<Expected<T>>& reply_cb) {
    try {
      rpc::Reader r(payload);
      Expected<T> value = wire::read_expected<T>(r, reader);
      if (!r.exhausted()) throw rpc::CodecError("trailing bytes in reply");
      reply_cb(std::move(value));
    } catch (const rpc::CodecError& error) {
      channel_.close();
      reply_cb(Error{Errc::kTransport, "bus",
                     std::string(wire::endpoint_name(endpoint)) +
                         " reply decode: " + error.what()});
    }
  };

  if (config_.pipeline_depth <= 1) {
    Expected<std::string> reply = call_routed(endpoint, encode_body);
    if (!reply.ok()) {
      done(reply.error());
      return;
    }
    decode(*reply, read_value, done);
    return;
  }

  // Pipelined: put the frame on the wire now, decode when the window pump
  // reaches it. The encoded body is owned by the completion so a ring
  // redirect can re-send it after the caller's arguments are gone.
  rpc::Writer w;
  encode_body(w);
  std::string body = w.take();
  ++rpcs_;
  rpc::ClientChannel::PendingReply pending =
      channel_.send(endpoint, [&body](rpc::Writer& frame) { frame.append_raw(body); });
  deferred_.push_back(Deferred{
      std::move(pending),
      [this, endpoint, decode, body = std::move(body), done = std::move(done),
       read_value = std::forward<ReadValue>(read_value)](Expected<std::string> reply) mutable {
        reply = chase_redirects(endpoint, body, std::move(reply));
        if (!reply.ok()) {
          done(reply.error());
          return;
        }
        decode(*reply, read_value, done);
      }});
  while (static_cast<int>(deferred_.size()) >= config_.pipeline_depth && pump()) {
  }
}

template <typename Item, typename EncodeBody, typename ReadReply>
void RemoteServiceBus::invoke_batch(Endpoint endpoint, std::size_t count,
                                    EncodeBody&& encode_body, Reply<std::vector<Item>> done,
                                    ReadReply&& read_reply) {
  ++rpcs_;
  Expected<std::string> reply = channel_.call(endpoint, encode_body);
  if (!reply.ok()) {
    done(std::vector<Item>(count, Item(reply.error())));
    return;
  }
  try {
    rpc::Reader r(*reply);
    std::vector<Item> items = read_reply(r);
    if (!r.exhausted()) throw rpc::CodecError("trailing bytes in reply");
    if (items.size() != count) throw rpc::CodecError("reply not index-aligned with request");
    done(std::move(items));
  } catch (const rpc::CodecError& error) {
    channel_.close();
    const Error failure{Errc::kTransport, "bus",
                        std::string(wire::endpoint_name(endpoint)) +
                            " reply decode: " + error.what()};
    done(std::vector<Item>(count, Item(failure)));
  }
}

Status RemoteServiceBus::ping() {
  ++rpcs_;
  Expected<std::string> reply = channel_.call(Endpoint::kPing, [](rpc::Writer&) {});
  if (!reply.ok()) return reply.error();
  return ok_status();
}

// --- Data Catalog ------------------------------------------------------------

void RemoteServiceBus::dc_register(const core::Data& data, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDcRegister, [&](rpc::Writer& w) { wire::write_data(w, data); },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::dc_get(const util::Auid& uid, Reply<Expected<core::Data>> done) {
  invoke<core::Data>(
      Endpoint::kDcGet, [&](rpc::Writer& w) { wire::write_auid(w, uid); }, std::move(done),
      wire::read_data);
}

void RemoteServiceBus::dc_search(const std::string& name,
                                 Reply<Expected<std::vector<core::Data>>> done) {
  invoke<std::vector<core::Data>>(
      Endpoint::kDcSearch, [&](rpc::Writer& w) { w.str(name); }, std::move(done),
      wire::read_data_list);
}

void RemoteServiceBus::dc_remove(const util::Auid& uid, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDcRemove, [&](rpc::Writer& w) { wire::write_auid(w, uid); }, std::move(done),
      [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::dc_add_locator(const core::Locator& locator, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDcAddLocator, [&](rpc::Writer& w) { wire::write_locator(w, locator); },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::dc_locators(const util::Auid& uid,
                                   Reply<Expected<std::vector<core::Locator>>> done) {
  invoke<std::vector<core::Locator>>(
      Endpoint::kDcLocators, [&](rpc::Writer& w) { wire::write_auid(w, uid); },
      std::move(done), wire::read_locator_list);
}

// --- Data Repository ---------------------------------------------------------

void RemoteServiceBus::dr_put(const core::Data& data, const core::Content& content,
                              const std::string& protocol, Reply<Expected<core::Locator>> done) {
  invoke<core::Locator>(
      Endpoint::kDrPut,
      [&](rpc::Writer& w) {
        wire::write_data(w, data);
        wire::write_content(w, content);
        w.str(protocol);
      },
      std::move(done), wire::read_locator);
}

void RemoteServiceBus::dr_get(const util::Auid& uid, Reply<Expected<core::Content>> done) {
  invoke<core::Content>(
      Endpoint::kDrGet, [&](rpc::Writer& w) { wire::write_auid(w, uid); }, std::move(done),
      wire::read_content);
}

void RemoteServiceBus::dr_remove(const util::Auid& uid, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDrRemove, [&](rpc::Writer& w) { wire::write_auid(w, uid); }, std::move(done),
      [](rpc::Reader&) { return Unit{}; });
}

// Data plane: each chunk ships as one frame over the same framed transport
// the control calls use — an out-of-band endpoint family, not a second
// protocol. transfer::TcpTransfer typically drives these over a dedicated
// connection so data streams do not head-of-line-block control traffic.
void RemoteServiceBus::dr_put_start(const core::Data& data,
                                    Reply<Expected<std::int64_t>> done) {
  invoke<std::int64_t>(
      Endpoint::kDrPutStart, [&](rpc::Writer& w) { wire::write_data(w, data); },
      std::move(done), [](rpc::Reader& r) { return r.i64(); });
}

void RemoteServiceBus::dr_put_chunk(const util::Auid& uid, std::int64_t offset,
                                    const std::string& bytes, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDrPutChunk,
      [&](rpc::Writer& w) {
        wire::write_auid(w, uid);
        w.i64(offset);
        w.str(bytes);
      },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::dr_put_commit(const util::Auid& uid, const std::string& protocol,
                                     Reply<Expected<core::Locator>> done) {
  invoke<core::Locator>(
      Endpoint::kDrPutCommit,
      [&](rpc::Writer& w) {
        wire::write_auid(w, uid);
        w.str(protocol);
      },
      std::move(done), wire::read_locator);
}

void RemoteServiceBus::dr_get_chunk(const util::Auid& uid, std::int64_t offset,
                                    std::int64_t max_bytes, Reply<Expected<std::string>> done) {
  invoke<std::string>(
      Endpoint::kDrGetChunk,
      [&](rpc::Writer& w) {
        wire::write_auid(w, uid);
        w.i64(offset);
        w.i64(max_bytes);
      },
      std::move(done), [](rpc::Reader& r) { return r.str(); });
}

void RemoteServiceBus::dr_stats(Reply<Expected<services::RepoStats>> done) {
  invoke<services::RepoStats>(
      Endpoint::kDrStats, [](rpc::Writer&) {}, std::move(done), wire::read_repo_stats);
}

// --- Data Transfer -----------------------------------------------------------

void RemoteServiceBus::dt_register(const core::Data& data, const std::string& source,
                                   const std::string& destination, const std::string& protocol,
                                   Reply<Expected<services::TicketId>> done) {
  invoke<services::TicketId>(
      Endpoint::kDtRegister,
      [&](rpc::Writer& w) {
        wire::write_data(w, data);
        w.str(source);
        w.str(destination);
        w.str(protocol);
      },
      std::move(done), [](rpc::Reader& r) { return services::TicketId{r.u64()}; });
}

void RemoteServiceBus::dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                                  Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDtMonitor,
      [&](rpc::Writer& w) {
        w.u64(ticket);
        w.i64(done_bytes);
      },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::dt_complete(services::TicketId ticket,
                                   const std::string& received_checksum,
                                   const std::string& expected_checksum, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDtComplete,
      [&](rpc::Writer& w) {
        w.u64(ticket);
        w.str(received_checksum);
        w.str(expected_checksum);
      },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::dt_failure(services::TicketId ticket, std::int64_t bytes_held,
                                  bool can_resume, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDtFailure,
      [&](rpc::Writer& w) {
        w.u64(ticket);
        w.i64(bytes_held);
        w.boolean(can_resume);
      },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::dt_give_up(services::TicketId ticket, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDtGiveUp, [&](rpc::Writer& w) { w.u64(ticket); }, std::move(done),
      [](rpc::Reader&) { return Unit{}; });
}

// --- Data Scheduler ----------------------------------------------------------

void RemoteServiceBus::ds_schedule(const core::Data& data,
                                   const core::DataAttributes& attributes, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDsSchedule,
      [&](rpc::Writer& w) {
        wire::write_data(w, data);
        wire::write_attributes(w, attributes);
      },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::ds_pin(const util::Auid& uid, const std::string& host,
                              Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDsPin,
      [&](rpc::Writer& w) {
        wire::write_auid(w, uid);
        w.str(host);
      },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::ds_unschedule(const util::Auid& uid, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDsUnschedule, [&](rpc::Writer& w) { wire::write_auid(w, uid); },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::ds_sync(const services::SyncRequest& request,
                               Reply<Expected<services::SyncReply>> done) {
  invoke<services::SyncReply>(
      Endpoint::kDsSync,
      [&](rpc::Writer& w) { wire::write_sync_request(w, request); },
      std::move(done), wire::read_sync_reply);
}

void RemoteServiceBus::ds_hosts(Reply<Expected<std::vector<services::HostInfo>>> done) {
  invoke<std::vector<services::HostInfo>>(
      Endpoint::kDsHosts, [](rpc::Writer&) {}, std::move(done), wire::read_host_list);
}

// --- Job service -------------------------------------------------------------

void RemoteServiceBus::job_submit(const jobs::JobSpec& spec,
                                  Reply<Expected<util::Auid>> done) {
  invoke<util::Auid>(
      Endpoint::kJobSubmit, [&](rpc::Writer& w) { wire::write_job_spec(w, spec); },
      std::move(done), wire::read_auid);
}

void RemoteServiceBus::job_status(const util::Auid& job,
                                  Reply<Expected<jobs::JobStatusInfo>> done) {
  invoke<jobs::JobStatusInfo>(
      Endpoint::kJobStatus, [&](rpc::Writer& w) { wire::write_auid(w, job); },
      std::move(done), wire::read_job_status_info);
}

void RemoteServiceBus::job_claim(const util::Auid& task, const std::string& runner,
                                 Reply<Expected<jobs::TaskOrder>> done) {
  invoke<jobs::TaskOrder>(
      Endpoint::kJobClaim,
      [&](rpc::Writer& w) {
        wire::write_auid(w, task);
        w.str(runner);
      },
      std::move(done), wire::read_task_order);
}

void RemoteServiceBus::job_task_report(const jobs::TaskReport& report, Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kJobTaskReport,
      [&](rpc::Writer& w) { wire::write_task_report(w, report); }, std::move(done),
      [](rpc::Reader&) { return Unit{}; });
}

// --- Distributed Data Catalog ------------------------------------------------

void RemoteServiceBus::ddc_publish(const std::string& key, const std::string& value,
                                   Reply<Status> done) {
  invoke<Unit>(
      Endpoint::kDdcPublish,
      [&](rpc::Writer& w) {
        w.str(key);
        w.str(value);
      },
      std::move(done), [](rpc::Reader&) { return Unit{}; });
}

void RemoteServiceBus::ddc_search(const std::string& key,
                                  Reply<Expected<std::vector<std::string>>> done) {
  invoke<std::vector<std::string>>(
      Endpoint::kDdcSearch, [&](rpc::Writer& w) { w.str(key); }, std::move(done),
      wire::read_string_list);
}

// --- bulk endpoints ----------------------------------------------------------

void RemoteServiceBus::dc_register_batch(const std::vector<core::Data>& items,
                                         Reply<BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  invoke_batch<Status>(
      Endpoint::kDcRegisterBatch,
      items.size(), [&](rpc::Writer& w) { wire::write_register_batch(w, items); },
      std::move(done), wire::read_status_batch);
}

void RemoteServiceBus::dc_locators_batch(const std::vector<util::Auid>& uids,
                                         Reply<BatchLocators> done) {
  if (uids.empty()) {
    done({});
    return;
  }
  invoke_batch<Expected<std::vector<core::Locator>>>(
      Endpoint::kDcLocatorsBatch,
      uids.size(), [&](rpc::Writer& w) { wire::write_locators_batch_request(w, uids); },
      std::move(done), wire::read_locators_batch_reply);
}

void RemoteServiceBus::ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                                         Reply<BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  std::vector<std::pair<core::Data, core::DataAttributes>> pairs;
  pairs.reserve(items.size());
  for (const services::ScheduledData& item : items) {
    pairs.emplace_back(item.data, item.attributes);
  }
  invoke_batch<Status>(
      Endpoint::kDsScheduleBatch,
      items.size(), [&](rpc::Writer& w) { wire::write_schedule_batch(w, pairs); },
      std::move(done), wire::read_status_batch);
}

void RemoteServiceBus::ddc_publish_batch(const std::vector<KeyValue>& pairs,
                                         Reply<BatchStatus> done) {
  if (pairs.empty()) {
    done({});
    return;
  }
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.reserve(pairs.size());
  for (const KeyValue& pair : pairs) kvs.emplace_back(pair.key, pair.value);
  invoke_batch<Status>(
      Endpoint::kDdcPublishBatch,
      pairs.size(), [&](rpc::Writer& w) { wire::write_publish_batch(w, kvs); },
      std::move(done), wire::read_status_batch);
}

}  // namespace bitdew::api
