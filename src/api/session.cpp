#include "api/session.hpp"

#include "transfer/tcp.hpp"

namespace bitdew::api {
namespace {

BatchStatus stalled_batch(std::size_t count) {
  return BatchStatus(
      count, Status(Error{Errc::kUnavailable, "session", "stalled waiting for a reply"}));
}

}  // namespace

Status Session::wait_transfer(const util::Auid& uid) {
  if (tm_ == nullptr) {
    return Error{Errc::kInvalidArgument, "session", "no TransferManager attached"};
  }
  auto slot = std::make_shared<std::optional<Status>>();
  tm_->when_done(uid, [slot](Status outcome) { *slot = std::move(outcome); });
  auto result = wait_slot(slot);
  if (!result.has_value()) {
    return Error{Errc::kUnavailable, "session", "stalled waiting for transfer"};
  }
  return *result;
}

// --- real-byte data plane ------------------------------------------------------

Expected<core::Data> Session::put_file(const std::string& name, const std::string& path) {
  core::Content content;
  try {
    content = core::file_content(path);
  } catch (const std::exception& error) {
    return Error{Errc::kInvalidArgument, "session", error.what()};
  }
  // Reuse an already-registered slot whose descriptor matches the file —
  // this is what lets a re-run of `bitdew_cli put` resume the staged upload
  // of a previous, interrupted invocation. A name registered with
  // *different* content is a typed error: names are not unique keys in the
  // catalog, so registering a second datum here would leave later
  // lookups-by-name resolving to the stale first one.
  core::Data data;
  const Expected<core::Data> existing = search(name);
  if (existing.ok()) {
    if (existing->size != content.size || existing->checksum != content.checksum) {
      return Error{Errc::kDuplicate, "session",
                   "'" + name + "' is already registered with different content (size " +
                       std::to_string(existing->size) + ", md5 " + existing->checksum +
                       ") — delete it first"};
    }
    data = *existing;
  } else {
    const Expected<core::Data> created = create_data(name, content);
    if (!created.ok()) return created;
    data = *created;
  }
  const Status uploaded = put_file(data, path);
  if (!uploaded.ok()) return uploaded.propagate<core::Data>();
  return data;
}

Status Session::put_file(const core::Data& data, const std::string& path) {
  transfer::TcpTransfer engine(
      bitdew_.bus(), transfer::TcpConfig{chunk_bytes_, transfer_attempts_, true}, pump_);
  if (tm_ != nullptr) tm_->begin(data.uid);
  const Status outcome = engine.put_file(data, path);
  if (tm_ != nullptr) tm_->finish(data.uid, outcome);
  return outcome;
}

Status Session::get_file(const core::Data& data, const std::string& path) {
  transfer::TcpTransfer engine(
      bitdew_.bus(), transfer::TcpConfig{chunk_bytes_, transfer_attempts_, true}, pump_);
  if (tm_ != nullptr) tm_->begin(data.uid);
  const Status outcome = engine.get_file(data, path);
  if (tm_ != nullptr) tm_->finish(data.uid, outcome);
  return outcome;
}

Status Session::get_file(const util::Auid& uid, const std::string& path) {
  SessionFuture<core::Data> future;
  bitdew_.bus().dc_get(uid, future.resolver());
  const Expected<core::Data> data = wait(future);
  if (!data.ok()) return Status(data.error());
  return get_file(*data, path);
}

std::pair<std::vector<core::Data>, BatchStatus> Session::create_data_batch(
    const std::vector<std::pair<std::string, core::Content>>& slots) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  std::vector<core::Data> data =
      bitdew_.create_data_batch(slots, [slot](BatchStatus statuses) {
        *slot = std::move(statuses);
      });
  auto statuses = wait_slot(slot);
  return {std::move(data), statuses.has_value() ? std::move(*statuses)
                                                : stalled_batch(slots.size())};
}

BatchStatus Session::register_batch(const std::vector<core::Data>& items) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  bitdew_.bus().dc_register_batch(
      items, [slot](BatchStatus statuses) { *slot = std::move(statuses); });
  auto statuses = wait_slot(slot);
  return statuses.has_value() ? std::move(*statuses) : stalled_batch(items.size());
}

BatchLocators Session::locate_batch(const std::vector<util::Auid>& uids) {
  auto slot = std::make_shared<std::optional<BatchLocators>>();
  bitdew_.bus().dc_locators_batch(
      uids, [slot](BatchLocators locators) { *slot = std::move(locators); });
  auto locators = wait_slot(slot);
  if (locators.has_value()) return std::move(*locators);
  return BatchLocators(uids.size(),
                       Expected<std::vector<core::Locator>>(Error{
                           Errc::kUnavailable, "session", "stalled waiting for a reply"}));
}

BatchStatus Session::schedule_batch(const std::vector<services::ScheduledData>& items) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  active_data_.schedule_batch(items,
                              [slot](BatchStatus statuses) { *slot = std::move(statuses); });
  auto statuses = wait_slot(slot);
  return statuses.has_value() ? std::move(*statuses) : stalled_batch(items.size());
}

BatchStatus Session::publish_batch(const std::vector<KeyValue>& pairs) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  bitdew_.publish_batch(pairs,
                        [slot](BatchStatus statuses) { *slot = std::move(statuses); });
  auto statuses = wait_slot(slot);
  return statuses.has_value() ? std::move(*statuses) : stalled_batch(pairs.size());
}

}  // namespace bitdew::api
