#include "api/session.hpp"

namespace bitdew::api {
namespace {

BatchStatus stalled_batch(std::size_t count) {
  return BatchStatus(
      count, Status(Error{Errc::kUnavailable, "session", "stalled waiting for a reply"}));
}

}  // namespace

Status Session::wait_transfer(const util::Auid& uid) {
  if (tm_ == nullptr) {
    return Error{Errc::kInvalidArgument, "session", "no TransferManager attached"};
  }
  auto slot = std::make_shared<std::optional<Status>>();
  tm_->when_done(uid, [slot](Status outcome) { *slot = std::move(outcome); });
  auto result = wait_slot(slot);
  if (!result.has_value()) {
    return Error{Errc::kUnavailable, "session", "stalled waiting for transfer"};
  }
  return *result;
}

std::pair<std::vector<core::Data>, BatchStatus> Session::create_data_batch(
    const std::vector<std::pair<std::string, core::Content>>& slots) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  std::vector<core::Data> data =
      bitdew_.create_data_batch(slots, [slot](BatchStatus statuses) {
        *slot = std::move(statuses);
      });
  auto statuses = wait_slot(slot);
  return {std::move(data), statuses.has_value() ? std::move(*statuses)
                                                : stalled_batch(slots.size())};
}

BatchStatus Session::register_batch(const std::vector<core::Data>& items) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  bitdew_.bus().dc_register_batch(
      items, [slot](BatchStatus statuses) { *slot = std::move(statuses); });
  auto statuses = wait_slot(slot);
  return statuses.has_value() ? std::move(*statuses) : stalled_batch(items.size());
}

BatchLocators Session::locate_batch(const std::vector<util::Auid>& uids) {
  auto slot = std::make_shared<std::optional<BatchLocators>>();
  bitdew_.bus().dc_locators_batch(
      uids, [slot](BatchLocators locators) { *slot = std::move(locators); });
  auto locators = wait_slot(slot);
  if (locators.has_value()) return std::move(*locators);
  return BatchLocators(uids.size(),
                       Expected<std::vector<core::Locator>>(Error{
                           Errc::kUnavailable, "session", "stalled waiting for a reply"}));
}

BatchStatus Session::schedule_batch(const std::vector<services::ScheduledData>& items) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  active_data_.schedule_batch(items,
                              [slot](BatchStatus statuses) { *slot = std::move(statuses); });
  auto statuses = wait_slot(slot);
  return statuses.has_value() ? std::move(*statuses) : stalled_batch(items.size());
}

BatchStatus Session::publish_batch(const std::vector<KeyValue>& pairs) {
  auto slot = std::make_shared<std::optional<BatchStatus>>();
  bitdew_.publish_batch(pairs,
                        [slot](BatchStatus statuses) { *slot = std::move(statuses); });
  auto statuses = wait_slot(slot);
  return statuses.has_value() ? std::move(*statuses) : stalled_batch(pairs.size());
}

}  // namespace bitdew::api
