#include "api/active_data.hpp"

namespace bitdew::api {

void ActiveData::schedule(const core::Data& data, const core::DataAttributes& attributes,
                          Reply<Status> done) {
  if (!done) done = [](Status) {};
  bus_.ds_schedule(data, attributes,
                   [this, data, attributes, done = std::move(done)](Status status) mutable {
                     if (status.ok()) dispatch_create(data, attributes);
                     done(std::move(status));
                   });
}

void ActiveData::schedule_batch(const std::vector<services::ScheduledData>& items,
                                Reply<BatchStatus> done) {
  if (!done) done = [](BatchStatus) {};
  bus_.ds_schedule_batch(
      items, [this, items, done = std::move(done)](BatchStatus statuses) mutable {
        for (std::size_t i = 0; i < statuses.size() && i < items.size(); ++i) {
          if (statuses[i].ok()) dispatch_create(items[i].data, items[i].attributes);
        }
        done(std::move(statuses));
      });
}

void ActiveData::pin(const core::Data& data, const core::DataAttributes& attributes,
                     Reply<Status> done) {
  if (!done) done = [](Status) {};
  bus_.ds_schedule(data, attributes,
                   [this, data, attributes, done = std::move(done)](Status status) mutable {
                     if (!status.ok()) {
                       done(std::move(status));
                       return;
                     }
                     dispatch_create(data, attributes);
                     bus_.ds_pin(data.uid, host_, std::move(done));
                   });
}

void ActiveData::unschedule(const core::Data& data, Reply<Status> done) {
  bus_.ds_unschedule(data.uid, done ? std::move(done) : [](Status) {});
}

void ActiveData::dispatch_create(const core::Data& data,
                                 const core::DataAttributes& attributes) {
  for (const auto& handler : handlers_) handler->on_data_create(data, attributes);
}

void ActiveData::dispatch_copy(const core::Data& data, const core::DataAttributes& attributes) {
  for (const auto& handler : handlers_) handler->on_data_copy(data, attributes);
}

void ActiveData::dispatch_delete(const core::Data& data,
                                 const core::DataAttributes& attributes) {
  for (const auto& handler : handlers_) handler->on_data_delete(data, attributes);
}

}  // namespace bitdew::api
