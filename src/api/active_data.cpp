#include "api/active_data.hpp"

namespace bitdew::api {

void ActiveData::schedule(const core::Data& data, const core::DataAttributes& attributes,
                          Reply<bool> done) {
  if (!done) done = [](bool) {};
  bus_.ds_schedule(data, attributes,
                   [this, data, attributes, done = std::move(done)](bool ok) mutable {
                     if (ok) dispatch_create(data, attributes);
                     done(ok);
                   });
}

void ActiveData::pin(const core::Data& data, const core::DataAttributes& attributes,
                     Reply<bool> done) {
  if (!done) done = [](bool) {};
  bus_.ds_schedule(data, attributes,
                   [this, data, attributes, done = std::move(done)](bool ok) mutable {
                     if (!ok) {
                       done(false);
                       return;
                     }
                     dispatch_create(data, attributes);
                     bus_.ds_pin(data.uid, host_, std::move(done));
                   });
}

void ActiveData::unschedule(const core::Data& data, Reply<bool> done) {
  bus_.ds_unschedule(data.uid, done ? std::move(done) : [](bool) {});
}

void ActiveData::dispatch_create(const core::Data& data,
                                 const core::DataAttributes& attributes) {
  for (const auto& handler : handlers_) handler->on_data_create(data, attributes);
}

void ActiveData::dispatch_copy(const core::Data& data, const core::DataAttributes& attributes) {
  for (const auto& handler : handlers_) handler->on_data_copy(data, attributes);
}

void ActiveData::dispatch_delete(const core::Data& data,
                                 const core::DataAttributes& attributes) {
  for (const auto& handler : handlers_) handler->on_data_delete(data, attributes);
}

}  // namespace bitdew::api
