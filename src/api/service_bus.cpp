#include "api/service_bus.hpp"

#include <memory>

namespace bitdew::api {
namespace {

/// Joins N scalar replies into one index-aligned batch reply.
template <typename T>
struct BatchJoin {
  explicit BatchJoin(std::size_t count, Reply<std::vector<T>> done)
      : results(count, T(Error{Errc::kUnavailable, "bus", "no reply"})),
        remaining(count),
        done(std::move(done)) {}

  std::vector<T> results;
  std::size_t remaining;
  Reply<std::vector<T>> done;

  void deliver(std::size_t index, T result) {
    results[index] = std::move(result);
    if (--remaining == 0) done(std::move(results));
  }
};

}  // namespace

void ServiceBus::dc_register_batch(const std::vector<core::Data>& items,
                                   Reply<BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  auto join = std::make_shared<BatchJoin<Status>>(items.size(), std::move(done));
  for (std::size_t i = 0; i < items.size(); ++i) {
    dc_register(items[i], [join, i](Status status) { join->deliver(i, std::move(status)); });
  }
}

void ServiceBus::dc_locators_batch(const std::vector<util::Auid>& uids,
                                   Reply<BatchLocators> done) {
  if (uids.empty()) {
    done({});
    return;
  }
  auto join = std::make_shared<BatchJoin<Expected<std::vector<core::Locator>>>>(
      uids.size(), std::move(done));
  for (std::size_t i = 0; i < uids.size(); ++i) {
    dc_locators(uids[i], [join, i](Expected<std::vector<core::Locator>> locators) {
      join->deliver(i, std::move(locators));
    });
  }
}

void ServiceBus::ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                                   Reply<BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  auto join = std::make_shared<BatchJoin<Status>>(items.size(), std::move(done));
  for (std::size_t i = 0; i < items.size(); ++i) {
    ds_schedule(items[i].data, items[i].attributes,
                [join, i](Status status) { join->deliver(i, std::move(status)); });
  }
}

void ServiceBus::ddc_publish_batch(const std::vector<KeyValue>& pairs, Reply<BatchStatus> done) {
  if (pairs.empty()) {
    done({});
    return;
  }
  auto join = std::make_shared<BatchJoin<Status>>(pairs.size(), std::move(done));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ddc_publish(pairs[i].key, pairs[i].value,
                [join, i](Status status) { join->deliver(i, std::move(status)); });
  }
}

}  // namespace bitdew::api
