// ActiveData (paper §3.3): binds attributes to data through the scheduler
// and delivers data life-cycle events to installed handlers. The node
// runtime calls dispatch_* when replicas arrive or are dropped; handlers
// are the programming model of the paper's Updater and master/worker
// examples.
#pragma once

#include <memory>
#include <vector>

#include "api/service_bus.hpp"
#include "core/events.hpp"

namespace bitdew::api {

class ActiveData {
 public:
  explicit ActiveData(ServiceBus& bus, std::string host_name)
      : bus_(bus), host_(std::move(host_name)) {}

  /// Associates a datum with attributes and orders the Data Scheduler to
  /// realize them (Algorithm 1). Fires on_data_create locally once acked;
  /// a scheduler refusal surfaces as Errc::kRejected.
  void schedule(const core::Data& data, const core::DataAttributes& attributes,
                Reply<Status> done = nullptr);

  /// Bulk schedule: one ds_schedule_batch round-trip for N data. Per-item
  /// outcomes are index-aligned; on_data_create fires for each accepted
  /// item (a rejected item does not poison the rest).
  void schedule_batch(const std::vector<services::ScheduledData>& items,
                      Reply<BatchStatus> done = nullptr);

  /// schedule + declare this node a permanent owner (the paper's pin; the
  /// master pins the Collector so results converge on it).
  void pin(const core::Data& data, const core::DataAttributes& attributes,
           Reply<Status> done = nullptr);

  /// Removes the datum from the scheduler.
  void unschedule(const core::Data& data, Reply<Status> done = nullptr);

  /// Installs a life-cycle event handler (kept until this object dies).
  void add_callback(std::shared_ptr<core::ActiveDataEventHandler> handler) {
    handlers_.push_back(std::move(handler));
  }

  // --- runtime-side dispatch ------------------------------------------------
  void dispatch_create(const core::Data& data, const core::DataAttributes& attributes);
  void dispatch_copy(const core::Data& data, const core::DataAttributes& attributes);
  void dispatch_delete(const core::Data& data, const core::DataAttributes& attributes);

  std::size_t handler_count() const { return handlers_.size(); }

 private:
  ServiceBus& bus_;
  std::string host_;
  std::vector<std::shared_ptr<core::ActiveDataEventHandler>> handlers_;
};

}  // namespace bitdew::api
