// The BitDew API (paper §3.3): data-space slot creation, put/get of
// content, search, deletion and attribute construction. All operations are
// asynchronous with completion callbacks; the LocalRuntime layers blocking
// wrappers on top.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "api/service_bus.hpp"

namespace bitdew::api {

class BitDew {
 public:
  /// `host_name` identifies this node towards the services.
  BitDew(ServiceBus& bus, std::string host_name)
      : bus_(bus), host_(std::move(host_name)) {}

  /// Creates a data slot from a content descriptor and registers it in the
  /// DC. The returned Data is immediately usable; `done` fires once the
  /// catalog acknowledged (ok == false on duplicate).
  core::Data create_data(const std::string& name, const core::Content& content,
                         Reply<bool> done = nullptr);

  /// Creates an empty slot (the paper's Collector is one).
  core::Data create_data(const std::string& name, Reply<bool> done = nullptr);

  /// Copies content into the data space: registers it with the Data
  /// Repository and publishes the resulting locator.
  void put(const core::Data& data, const core::Content& content, Reply<bool> done = nullptr,
           const std::string& protocol = "ftp");

  /// Declares that this node holds the content locally and can serve it
  /// (used by workers producing results; publishes a locator naming this
  /// host instead of uploading to the repository).
  void offer_local(const core::Data& data, const std::string& protocol = "http",
                   Reply<bool> done = nullptr);

  /// Looks up the locators for a datum (transfer sources).
  void locate(const util::Auid& uid, Reply<std::vector<core::Locator>> done) {
    bus_.dc_locators(uid, std::move(done));
  }

  /// The paper's searchData: first datum registered under `name`.
  void search(const std::string& name, Reply<std::optional<core::Data>> done);

  /// Deletes a datum everywhere: catalog, repository and scheduler (hosts
  /// drop their replicas at the next synchronization).
  void remove(const core::Data& data, Reply<bool> done = nullptr);

  /// Builds typed attributes from the DSL. Symbolic references resolve
  /// against data this node has created or searched.
  core::DataAttributes create_attribute(const std::string& text, double now = 0.0) const;

  /// Generic DHT access (paper: "publish any key/value pairs").
  void publish(const std::string& key, const std::string& value, Reply<bool> done = nullptr) {
    bus_.ddc_publish(key, value, done ? std::move(done) : [](bool) {});
  }
  void lookup(const std::string& key, Reply<std::vector<std::string>> done) {
    bus_.ddc_search(key, std::move(done));
  }

  /// Data known locally by name (created or found through search()).
  std::optional<core::Data> known(const std::string& name) const;

  const std::string& host_name() const { return host_; }
  ServiceBus& bus() { return bus_; }

 private:
  void remember(const core::Data& data);

  ServiceBus& bus_;
  std::string host_;
  std::map<std::string, core::Data> known_by_name_;
};

}  // namespace bitdew::api
