// The BitDew API (paper §3.3): data-space slot creation, put/get of
// content, search, deletion and attribute construction. All operations are
// asynchronous with completion callbacks carrying Expected<T> (the typed
// error channel); the Session facade layers blocking waits on top.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "api/service_bus.hpp"

namespace bitdew::api {

class BitDew {
 public:
  /// `host_name` identifies this node towards the services.
  BitDew(ServiceBus& bus, std::string host_name)
      : bus_(bus), host_(std::move(host_name)) {}

  /// Creates a data slot from a content descriptor and registers it in the
  /// DC. The returned Data is immediately usable; `done` fires once the
  /// catalog acknowledged (Errc::kDuplicate on an already-registered uid).
  core::Data create_data(const std::string& name, const core::Content& content,
                         Reply<Status> done = nullptr);

  /// Creates an empty slot (the paper's Collector is one).
  core::Data create_data(const std::string& name, Reply<Status> done = nullptr);

  /// Creates and registers N slots through one dc_register_batch call: one
  /// service round-trip regardless of the batch size. `done` receives the
  /// per-slot outcomes, index-aligned with the returned vector.
  std::vector<core::Data> create_data_batch(
      const std::vector<std::pair<std::string, core::Content>>& slots,
      Reply<BatchStatus> done = nullptr);

  /// Copies content into the data space: registers it with the Data
  /// Repository and publishes the resulting locator. Failure surfaces the
  /// stage that broke (dr upload/registration or dc locator insert).
  void put(const core::Data& data, const core::Content& content, Reply<Status> done = nullptr,
           const std::string& protocol = "ftp");

  /// Declares that this node holds the content locally and can serve it
  /// (used by workers producing results; publishes a locator naming this
  /// host instead of uploading to the repository).
  void offer_local(const core::Data& data, const std::string& protocol = "http",
                   Reply<Status> done = nullptr);

  /// Looks up the locators for a datum (transfer sources). Unknown uids
  /// fail with Errc::kNotFound.
  void locate(const util::Auid& uid, Reply<Expected<std::vector<core::Locator>>> done) {
    bus_.dc_locators(uid, std::move(done));
  }

  /// The paper's searchData: first datum registered under `name`
  /// (Errc::kNotFound when nothing matches).
  void search(const std::string& name, Reply<Expected<core::Data>> done);

  /// Deletes a datum everywhere: catalog, repository and scheduler (hosts
  /// drop their replicas at the next synchronization). Scheduler and
  /// repository misses are tolerated (the datum may never have been
  /// scheduled or stored); the final status is the catalog removal's.
  void remove(const core::Data& data, Reply<Status> done = nullptr);

  /// Builds typed attributes from the DSL. Symbolic references resolve
  /// against data this node has created or searched. An `abstime` lifetime
  /// stays a duration here; the Data Scheduler anchors it against its own
  /// clock when the schedule request arrives.
  core::DataAttributes create_attribute(const std::string& text) const;

  /// Generic DHT access (paper: "publish any key/value pairs").
  void publish(const std::string& key, const std::string& value, Reply<Status> done = nullptr) {
    bus_.ddc_publish(key, value, done ? std::move(done) : [](Status) {});
  }
  /// Bulk publish: one round-trip for N pairs.
  void publish_batch(const std::vector<KeyValue>& pairs, Reply<BatchStatus> done = nullptr) {
    bus_.ddc_publish_batch(pairs, done ? std::move(done) : [](BatchStatus) {});
  }
  void lookup(const std::string& key, Reply<Expected<std::vector<std::string>>> done) {
    bus_.ddc_search(key, std::move(done));
  }

  /// Data known locally by name (created or found through search()).
  std::optional<core::Data> known(const std::string& name) const;

  const std::string& host_name() const { return host_; }
  ServiceBus& bus() { return bus_; }

 private:
  void remember(const core::Data& data);

  ServiceBus& bus_;
  std::string host_;
  std::map<std::string, core::Data> known_by_name_;
};

}  // namespace bitdew::api
