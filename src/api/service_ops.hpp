// The single source of truth for mapping D* service outcomes to the typed
// error channel. Both ServiceBus implementations route their compute step
// through these helpers, so an operation fails with the *same* Error::code
// whether it travelled the simulated network (SimServiceBus) or a function
// call (DirectServiceBus) — only transport-level kTransport errors are
// backend-specific.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "api/expected.hpp"
#include "dht/local_dht.hpp"
#include "services/container.hpp"

namespace bitdew::api::ops {

// --- Data Catalog -----------------------------------------------------------

inline Status dc_register(services::ServiceContainer& c, const core::Data& data) {
  if (!data.valid()) return Error{Errc::kInvalidArgument, "dc", "nil uid"};
  if (!c.dc().register_data(data)) {
    return Error{Errc::kDuplicate, "dc", "uid " + data.uid.str() + " already registered"};
  }
  return ok_status();
}

inline Expected<core::Data> dc_get(services::ServiceContainer& c, const util::Auid& uid) {
  auto found = c.dc().get(uid);
  if (!found.has_value()) return Error{Errc::kNotFound, "dc", "unknown uid " + uid.str()};
  return std::move(*found);
}

inline Expected<std::vector<core::Data>> dc_search(services::ServiceContainer& c,
                                                   const std::string& name) {
  return c.dc().search(name);
}

inline Status dc_remove(services::ServiceContainer& c, const util::Auid& uid) {
  if (!c.dc().remove(uid)) return Error{Errc::kNotFound, "dc", "unknown uid " + uid.str()};
  return ok_status();
}

inline Status dc_add_locator(services::ServiceContainer& c, const core::Locator& locator) {
  if (!c.dc().add_locator(locator)) {
    return Error{Errc::kNotFound, "dc",
                 "locator for unregistered uid " + locator.data_uid.str()};
  }
  return ok_status();
}

inline Expected<std::vector<core::Locator>> dc_locators(services::ServiceContainer& c,
                                                        const util::Auid& uid) {
  if (!c.dc().get(uid).has_value()) {
    return Error{Errc::kNotFound, "dc", "unknown uid " + uid.str()};
  }
  return c.dc().locators(uid);
}

inline std::vector<Status> dc_register_batch(services::ServiceContainer& c,
                                             const std::vector<core::Data>& items) {
  std::vector<Status> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].valid()) {
      out.push_back(Error{Errc::kInvalidArgument, "dc", "nil uid"});
    } else {
      out.push_back(ok_status());
    }
  }
  // The catalog's native bulk insert; invalid items were pre-screened.
  std::vector<core::Data> valid;
  valid.reserve(items.size());
  for (const core::Data& data : items) {
    if (data.valid()) valid.push_back(data);
  }
  const std::vector<bool> registered = c.dc().register_batch(valid);
  std::size_t next = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].valid()) continue;
    if (!registered[next++]) {
      out[i] = Error{Errc::kDuplicate, "dc",
                     "uid " + items[i].uid.str() + " already registered"};
    }
  }
  return out;
}

inline std::vector<Expected<std::vector<core::Locator>>> dc_locators_batch(
    services::ServiceContainer& c, const std::vector<util::Auid>& uids) {
  std::vector<Expected<std::vector<core::Locator>>> out;
  out.reserve(uids.size());
  for (auto& locators : c.dc().locators_batch(uids)) out.push_back(std::move(locators));
  for (std::size_t i = 0; i < uids.size(); ++i) {
    if (out[i].ok() && out[i]->empty() && !c.dc().get(uids[i]).has_value()) {
      out[i] = Error{Errc::kNotFound, "dc", "unknown uid " + uids[i].str()};
    }
  }
  return out;
}

// --- Data Repository ----------------------------------------------------------

inline Expected<core::Locator> dr_put(services::ServiceContainer& c, const core::Data& data,
                                      const core::Content& content,
                                      const std::string& protocol) {
  if (!data.valid()) return Error{Errc::kInvalidArgument, "dr", "nil uid"};
  return c.dr().put(data, content, protocol);
}

inline Expected<core::Content> dr_get(services::ServiceContainer& c, const util::Auid& uid) {
  auto found = c.dr().get(uid);
  if (!found.has_value()) return Error{Errc::kNotFound, "dr", "no content for " + uid.str()};
  return std::move(*found);
}

inline Status dr_remove(services::ServiceContainer& c, const util::Auid& uid) {
  if (!c.dr().remove(uid)) return Error{Errc::kNotFound, "dr", "no content for " + uid.str()};
  return ok_status();
}

// --- Data Repository: chunked out-of-band data plane ---------------------------

inline Expected<std::int64_t> dr_put_start(services::ServiceContainer& c,
                                           const core::Data& data) {
  if (!data.valid()) return Error{Errc::kInvalidArgument, "dr", "nil uid"};
  if (data.checksum.empty() || data.size < 0) {
    return Error{Errc::kInvalidArgument, "dr",
                 "content descriptor required (size + md5) for " + data.uid.str()};
  }
  return c.dr().stage_begin(data);
}

inline Status dr_put_chunk(services::ServiceContainer& c, const util::Auid& uid,
                           std::int64_t offset, const std::string& bytes) {
  if (bytes.empty()) return Error{Errc::kInvalidArgument, "dr", "empty chunk"};
  switch (c.dr().stage_chunk(uid, offset, bytes)) {
    case services::ChunkResult::kOk:
      return ok_status();
    case services::ChunkResult::kNoStage:
      return Error{Errc::kNotFound, "dr", "no staged upload for " + uid.str()};
    case services::ChunkResult::kBadOffset:
      return Error{Errc::kRejected, "dr",
                   "chunk offset " + std::to_string(offset) + " != bytes received (" +
                       std::to_string(c.dr().stage_received(uid)) + ") for " + uid.str()};
    case services::ChunkResult::kOversize:
      return Error{Errc::kInvalidArgument, "dr",
                   "chunk exceeds the per-chunk limit or the declared content size"};
  }
  return Error{Errc::kUnavailable, "dr", "unreachable"};
}

inline Expected<core::Locator> dr_put_commit(services::ServiceContainer& c,
                                             const util::Auid& uid,
                                             const std::string& protocol) {
  core::Locator locator;
  switch (c.dr().stage_commit(uid, protocol, &locator)) {
    case services::CommitResult::kOk:
      return locator;
    case services::CommitResult::kNoStage:
      return Error{Errc::kNotFound, "dr", "no staged upload for " + uid.str()};
    case services::CommitResult::kIncomplete:
      return Error{Errc::kRejected, "dr",
                   "staged upload incomplete for " + uid.str() + " (resume and finish first)"};
    case services::CommitResult::kChecksumMismatch:
      return Error{Errc::kChecksumMismatch, "dr",
                   "staged content MD5 differs from the registered checksum for " + uid.str() +
                       " (stage discarded)"};
  }
  return Error{Errc::kUnavailable, "dr", "unreachable"};
}

inline Expected<services::RepoStats> dr_stats(services::ServiceContainer& c) {
  return c.dr().stats();
}

inline Expected<std::string> dr_get_chunk(services::ServiceContainer& c, const util::Auid& uid,
                                          std::int64_t offset, std::int64_t max_bytes) {
  if (max_bytes <= 0 || max_bytes > services::kMaxChunkBytes) {
    return Error{Errc::kInvalidArgument, "dr", "bad chunk size " + std::to_string(max_bytes)};
  }
  auto bytes = c.dr().read_bytes(uid, offset, max_bytes);
  if (!bytes.has_value()) {
    return Error{Errc::kNotFound, "dr",
                 "no content bytes for " + uid.str() + " (metadata-only or unknown)"};
  }
  return std::move(*bytes);
}

/// The zero-copy variant (ServiceHost's kDrGetChunk fast path): same
/// validation and error mapping as dr_get_chunk, but file-backed content
/// comes back as an fd slice for sendfile instead of a std::string.
inline Expected<rpc::ChunkRef> dr_get_chunk_ref(services::ServiceContainer& c,
                                                const util::Auid& uid, std::int64_t offset,
                                                std::int64_t max_bytes) {
  if (max_bytes <= 0 || max_bytes > services::kMaxChunkBytes) {
    return Error{Errc::kInvalidArgument, "dr", "bad chunk size " + std::to_string(max_bytes)};
  }
  auto chunk = c.dr().read_chunk_ref(uid, offset, max_bytes);
  if (!chunk.has_value()) {
    return Error{Errc::kNotFound, "dr",
                 "no content bytes for " + uid.str() + " (metadata-only or unknown)"};
  }
  return std::move(*chunk);
}

// --- Data Transfer --------------------------------------------------------------

inline Expected<services::TicketId> dt_register(services::ServiceContainer& c,
                                                const core::Data& data,
                                                const std::string& source,
                                                const std::string& destination,
                                                const std::string& protocol) {
  return c.dt().register_transfer(data, source, destination, protocol);
}

inline Status dt_monitor(services::ServiceContainer& c, services::TicketId ticket,
                         std::int64_t done_bytes) {
  c.dt().monitor(ticket, done_bytes);
  return ok_status();
}

inline Status dt_complete(services::ServiceContainer& c, services::TicketId ticket,
                          const std::string& received, const std::string& expected) {
  if (!c.dt().complete(ticket, received, expected)) {
    return Error{Errc::kChecksumMismatch, "dt",
                 "ticket " + std::to_string(ticket) + ": received checksum differs"};
  }
  return ok_status();
}

inline Status dt_failure(services::ServiceContainer& c, services::TicketId ticket,
                         std::int64_t bytes_held, bool can_resume) {
  c.dt().report_failure(ticket, bytes_held, can_resume);
  return ok_status();
}

inline Status dt_give_up(services::ServiceContainer& c, services::TicketId ticket) {
  c.dt().give_up(ticket);
  return ok_status();
}

// --- Data Scheduler ---------------------------------------------------------------

// DS mutations go through the container wrappers (not c.ds() directly) so a
// WAL-backed container persists Θ across restarts.
inline Status ds_schedule(services::ServiceContainer& c, const core::Data& data,
                          const core::DataAttributes& attributes) {
  if (!c.schedule_data(data, attributes)) {
    return Error{Errc::kRejected, "ds", "invalid attributes for " + data.name};
  }
  return ok_status();
}

inline std::vector<Status> ds_schedule_batch(services::ServiceContainer& c,
                                             const std::vector<services::ScheduledData>& items) {
  std::vector<Status> out;
  out.reserve(items.size());
  for (const bool accepted : c.schedule_data_batch(items)) {
    if (accepted) {
      out.push_back(ok_status());
    } else {
      out.push_back(Error{Errc::kRejected, "ds", "invalid attributes"});
    }
  }
  return out;
}

inline Status ds_pin(services::ServiceContainer& c, const util::Auid& uid,
                     const std::string& host) {
  if (!c.ds().pin(uid, host)) {
    return Error{Errc::kNotFound, "ds", "uid " + uid.str() + " not scheduled"};
  }
  return ok_status();
}

inline Status ds_unschedule(services::ServiceContainer& c, const util::Auid& uid) {
  if (!c.unschedule_data(uid)) {
    return Error{Errc::kNotFound, "ds", "uid " + uid.str() + " not scheduled"};
  }
  return ok_status();
}

inline Expected<std::vector<services::HostInfo>> ds_hosts(services::ServiceContainer& c) {
  return c.ds().host_table();
}

inline Expected<services::SyncReply> ds_sync(services::ServiceContainer& c,
                                             const services::SyncRequest& request) {
  return c.ds().sync(request);
}

// --- Job service (compute-to-data) --------------------------------------------------
// The JobService reports its own typed errors (service "jobs"); the
// helpers are pass-throughs so all three buses share the exact mapping.

inline Expected<util::Auid> job_submit(services::ServiceContainer& c,
                                       const jobs::JobSpec& spec) {
  return c.jobs().submit(spec);
}

inline Expected<jobs::JobStatusInfo> job_status(services::ServiceContainer& c,
                                                const util::Auid& job) {
  return c.jobs().status(job);
}

inline Expected<jobs::TaskOrder> job_claim(services::ServiceContainer& c,
                                           const util::Auid& task,
                                           const std::string& runner) {
  return c.jobs().claim(task, runner);
}

inline Status job_task_report(services::ServiceContainer& c,
                              const jobs::TaskReport& report) {
  return c.jobs().report(report);
}

// --- Distributed Data Catalog (fallback store) --------------------------------------

inline Status ddc_publish(dht::LocalDht& ddc, const std::string& key,
                          const std::string& value) {
  if (key.empty()) return Error{Errc::kInvalidArgument, "ddc", "empty key"};
  ddc.put(key, value);
  return ok_status();
}

inline Expected<std::vector<std::string>> ddc_search(dht::LocalDht& ddc,
                                                     const std::string& key) {
  return ddc.get(key);
}

inline std::vector<Status> ddc_publish_batch(
    dht::LocalDht& ddc, const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<Status> out;
  out.reserve(pairs.size());
  std::vector<std::pair<std::string, std::string>> valid;
  valid.reserve(pairs.size());
  for (const auto& pair : pairs) {
    if (pair.first.empty()) {
      out.push_back(Error{Errc::kInvalidArgument, "ddc", "empty key"});
    } else {
      out.push_back(ok_status());
      valid.push_back(pair);
    }
  }
  ddc.put_batch(valid);
  return out;
}

}  // namespace bitdew::api::ops
