#include "api/transfer_manager.hpp"

namespace bitdew::api {

void TransferManager::admit(std::function<void()> run) {
  if (max_concurrent_ > 0 && active_ >= max_concurrent_) {
    pending_.push_back(std::move(run));
    return;
  }
  run();
}

void TransferManager::begin(const util::Auid& uid) {
  ++active_;
  states_[uid] = TransferProbe::kActive;
}

void TransferManager::finish(const util::Auid& uid, Status outcome) {
  --active_;
  states_[uid] = outcome.ok() ? TransferProbe::kDone : TransferProbe::kFailed;
  outcomes_.insert_or_assign(uid, outcome);

  const auto waiting = waiters_.find(uid);
  if (waiting != waiters_.end()) {
    auto callbacks = std::move(waiting->second);
    waiters_.erase(waiting);
    for (auto& callback : callbacks) callback(outcome);
  }

  // Admit queued transfers into the freed slot.
  while (!pending_.empty() && (max_concurrent_ == 0 || active_ < max_concurrent_)) {
    auto next = std::move(pending_.front());
    pending_.pop_front();
    next();
    // `next` is expected to call begin() synchronously; if it raised
    // active_ to the cap, stop admitting.
    if (max_concurrent_ > 0 && active_ >= max_concurrent_) break;
  }
  maybe_release_barriers();
}

TransferProbe TransferManager::probe(const util::Auid& uid) const {
  const auto it = states_.find(uid);
  return it != states_.end() ? it->second : TransferProbe::kUnknown;
}

Status TransferManager::outcome(const util::Auid& uid) const {
  const auto it = outcomes_.find(uid);
  if (it == outcomes_.end()) {
    return Error{Errc::kUnavailable, "tm", "no finished transfer for " + uid.str()};
  }
  return it->second;
}

void TransferManager::when_done(const util::Auid& uid, std::function<void(Status)> done) {
  const auto state = probe(uid);
  if (state == TransferProbe::kDone || state == TransferProbe::kFailed) {
    done(outcome(uid));
    return;
  }
  waiters_[uid].push_back(std::move(done));
}

void TransferManager::barrier(std::function<void()> done) {
  if (active_ == 0 && pending_.empty()) {
    done();
    return;
  }
  barriers_.push_back(std::move(done));
}

void TransferManager::maybe_release_barriers() {
  if (active_ != 0 || !pending_.empty()) return;
  auto ready = std::move(barriers_);
  barriers_.clear();
  for (auto& barrier : ready) barrier();
}

}  // namespace bitdew::api
