#include "api/transfer_manager.hpp"

#include <optional>

namespace bitdew::api {

void TransferManager::admit(std::function<void()> run) {
  {
    const util::LockGuard lock(mutex_);
    if (max_concurrent_ > 0 && active_ + admitting_ >= max_concurrent_) {
      pending_.push_back(std::move(run));
      return;
    }
    // Reserve the slot before running outside the lock, so a racing admit
    // cannot oversubscribe; begin() converts the reservation into active_.
    ++admitting_;
  }
  run();
}

void TransferManager::begin(const util::Auid& uid) {
  const util::LockGuard lock(mutex_);
  if (admitting_ > 0) --admitting_;
  ++active_;
  states_[uid] = TransferProbe::kActive;
}

void TransferManager::finish(const util::Auid& uid, Status outcome) {
  std::vector<std::function<void(Status)>> callbacks;
  std::vector<std::function<void()>> admitted;
  {
    const util::LockGuard lock(mutex_);
    --active_;
    states_[uid] = outcome.ok() ? TransferProbe::kDone : TransferProbe::kFailed;
    outcomes_.insert_or_assign(uid, outcome);

    const auto waiting = waiters_.find(uid);
    if (waiting != waiters_.end()) {
      callbacks = std::move(waiting->second);
      waiters_.erase(waiting);
    }

    // Reserve slots for queued transfers; they run below, outside the lock
    // (an admitted job may be a blocking real-byte transfer — it must not
    // serialize every other thread's probe/begin/finish behind it).
    while (!pending_.empty() &&
           (max_concurrent_ == 0 || active_ + admitting_ < max_concurrent_)) {
      admitted.push_back(std::move(pending_.front()));
      pending_.pop_front();
      ++admitting_;
    }
  }

  for (auto& callback : callbacks) callback(outcome);
  for (auto& next : admitted) next();
  maybe_release_barriers();
}

TransferProbe TransferManager::probe(const util::Auid& uid) const {
  const util::LockGuard lock(mutex_);
  const auto it = states_.find(uid);
  return it != states_.end() ? it->second : TransferProbe::kUnknown;
}

Status TransferManager::outcome(const util::Auid& uid) const {
  const util::LockGuard lock(mutex_);
  const auto it = outcomes_.find(uid);
  if (it == outcomes_.end()) {
    return Error{Errc::kUnavailable, "tm", "no finished transfer for " + uid.str()};
  }
  return it->second;
}

void TransferManager::when_done(const util::Auid& uid, std::function<void(Status)> done) {
  std::optional<Status> ready;
  {
    const util::LockGuard lock(mutex_);
    const auto it = states_.find(uid);
    const TransferProbe state = it != states_.end() ? it->second : TransferProbe::kUnknown;
    if (state == TransferProbe::kDone || state == TransferProbe::kFailed) {
      const auto found = outcomes_.find(uid);
      ready = found != outcomes_.end()
                  ? found->second
                  : Status(Error{Errc::kUnavailable, "tm",
                                 "no finished transfer for " + uid.str()});
    } else {
      waiters_[uid].push_back(std::move(done));
    }
  }
  if (ready.has_value()) done(*ready);
}

void TransferManager::barrier(std::function<void()> done) {
  {
    const util::LockGuard lock(mutex_);
    if (active_ != 0 || admitting_ != 0 || !pending_.empty()) {
      barriers_.push_back(std::move(done));
      return;
    }
  }
  done();
}

void TransferManager::maybe_release_barriers() {
  std::vector<std::function<void()>> ready;
  {
    const util::LockGuard lock(mutex_);
    if (active_ != 0 || admitting_ != 0 || !pending_.empty()) return;
    ready = std::move(barriers_);
    barriers_.clear();
  }
  for (auto& barrier : ready) barrier();
}

}  // namespace bitdew::api
