// TransferManager (paper §3.3): a non-blocking view over this node's
// concurrent transfers — probe per datum, completion callbacks (the async
// analogue of waitFor), barriers over everything outstanding, and a
// tunable concurrency cap with FIFO admission.
//
// The node runtime (simulated or local) registers every transfer it starts
// through begin()/finish(); user code observes them here. All methods are
// thread-safe (PR 3: real TcpTransfer streams call begin()/finish() from
// worker threads), and every callback — admitted jobs, when_done waiters,
// barriers — is invoked with the manager's lock released, so an admitted
// job may be a blocking transfer and callbacks may call back in freely.
// admit() reserves the concurrency slot before the job runs; the job's
// begin() converts the reservation into an active transfer.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "api/expected.hpp"
#include "core/data.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::api {

enum class TransferProbe { kUnknown, kActive, kDone, kFailed };

class TransferManager {
 public:
  /// Limits simultaneously running transfers on this node (0 == unlimited).
  void set_max_concurrent(int limit) EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    max_concurrent_ = limit;
  }
  int max_concurrent() const EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return max_concurrent_;
  }

  /// Queues work under the concurrency cap; `run` is invoked when a slot is
  /// free. The runtime wraps protocol starts with this. The admitted job
  /// runs with the lock released — it may block, and may call back in.
  void admit(std::function<void()> run) EXCLUDES(mutex_);

  /// Marks a transfer of `uid` started (runtime side).
  void begin(const util::Auid& uid) EXCLUDES(mutex_);

  /// Marks it finished with its outcome — ok, or the Error saying why the
  /// download died (no source, transport loss, checksum exhaustion).
  /// Releases the slot and fires waiters (runtime side). Every callback —
  /// waiters, admitted jobs, barriers — fires OUTSIDE the lock.
  void finish(const util::Auid& uid, Status outcome) EXCLUDES(mutex_);

  /// Non-blocking probe of the paper's API.
  TransferProbe probe(const util::Auid& uid) const EXCLUDES(mutex_);

  /// Outcome of a finished transfer (Errc::kUnavailable while unknown or
  /// still active).
  Status outcome(const util::Auid& uid) const EXCLUDES(mutex_);

  /// The async waitFor: runs `done(outcome)` when the datum's transfer
  /// completes; immediate if it already has.
  void when_done(const util::Auid& uid, std::function<void(Status)> done) EXCLUDES(mutex_);

  /// Barrier: fires once no transfer is active or queued.
  void barrier(std::function<void()> done) EXCLUDES(mutex_);

  int active_count() const EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return active_;
  }
  int queued_count() const EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return static_cast<int>(pending_.size());
  }

 private:
  void maybe_release_barriers() EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  int max_concurrent_ GUARDED_BY(mutex_) = 0;
  /// Slots reserved by admit(), not yet begin()-ed.
  int admitting_ GUARDED_BY(mutex_) = 0;
  int active_ GUARDED_BY(mutex_) = 0;
  std::deque<std::function<void()>> pending_ GUARDED_BY(mutex_);
  std::map<util::Auid, TransferProbe> states_ GUARDED_BY(mutex_);
  std::map<util::Auid, Status> outcomes_ GUARDED_BY(mutex_);
  std::map<util::Auid, std::vector<std::function<void(Status)>>> waiters_ GUARDED_BY(mutex_);
  std::vector<std::function<void()>> barriers_ GUARDED_BY(mutex_);
};

}  // namespace bitdew::api
