// Session: the blocking facade over the asynchronous API (future /
// wait_all style). It replaces the ad-hoc blocking wrappers the runtimes
// and examples used to improvise: issue operations (optionally as futures),
// then wait for them while a caller-supplied Pump advances the underlying
// engine — `[&] { return sim.step(); }` for the discrete-event runtime, or
// nothing at all for the synchronous DirectServiceBus, whose replies
// resolve before the call returns.
//
//   api::Session session(node.bitdew(), node.active_data(),
//                        [&] { return sim.step(); });
//   auto data = session.create_data("dataset", content);   // Expected<Data>
//   session.put(*data, content);                           // Status
//   session.schedule(*data, attributes);                   // Status
//
// A wait on a future that can no longer make progress (the pump is
// exhausted or absent) fails with Errc::kUnavailable instead of hanging.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "api/active_data.hpp"
#include "api/bitdew.hpp"
#include "api/transfer_manager.hpp"

namespace bitdew::api {

/// A one-shot slot resolved by a Reply callback; created by Session.
template <typename T>
class SessionFuture {
 public:
  SessionFuture() : state_(std::make_shared<std::optional<Expected<T>>>()) {}

  bool ready() const { return state_->has_value(); }

  /// The resolved value; only valid once ready().
  const Expected<T>& get() const { return **state_; }

  /// The Reply callback that resolves this future.
  Reply<Expected<T>> resolver() const {
    auto state = state_;
    return [state](Expected<T> value) { *state = std::move(value); };
  }

 private:
  friend class Session;
  std::shared_ptr<std::optional<Expected<T>>> state_;
};

using StatusFuture = SessionFuture<Unit>;

class Session {
 public:
  /// `pump` makes the underlying engine progress (one simulator step, one
  /// event-loop turn); it returns false when nothing further can happen.
  /// May be null for synchronous buses. `tm` enables wait_transfer().
  using Pump = std::function<bool()>;

  Session(BitDew& bitdew, ActiveData& active_data, Pump pump = nullptr,
          TransferManager* tm = nullptr)
      : bitdew_(bitdew), active_data_(active_data), pump_(std::move(pump)), tm_(tm) {}

  // --- waiting ---------------------------------------------------------------
  /// Pumps until the future resolves; Errc::kUnavailable when the engine
  /// stalls first.
  template <typename T>
  Expected<T> wait(const SessionFuture<T>& future) {
    auto result = wait_slot(future.state_);
    if (!result.has_value()) {
      return Error{Errc::kUnavailable, "session", "stalled waiting for a reply"};
    }
    return std::move(*result);
  }

  /// Waits for every future; returns ok only if all succeeded (the first
  /// failure otherwise).
  Status wait_all(const std::vector<StatusFuture>& futures) {
    Status result = ok_status();
    for (const StatusFuture& future : futures) {
      const Status status = wait(future);
      if (result.ok() && !status.ok()) result = status;
    }
    return result;
  }

  // --- asynchronous issue, blocking wait later -------------------------------
  std::pair<core::Data, StatusFuture> create_data_async(const std::string& name,
                                                        const core::Content& content) {
    StatusFuture future;
    core::Data data = bitdew_.create_data(name, content, future.resolver());
    return {std::move(data), std::move(future)};
  }

  StatusFuture put_async(const core::Data& data, const core::Content& content,
                         const std::string& protocol = "ftp") {
    StatusFuture future;
    bitdew_.put(data, content, future.resolver(), protocol);
    return future;
  }

  StatusFuture schedule_async(const core::Data& data, const core::DataAttributes& attributes) {
    StatusFuture future;
    active_data_.schedule(data, attributes, future.resolver());
    return future;
  }

  StatusFuture publish_async(const std::string& key, const std::string& value) {
    StatusFuture future;
    bitdew_.publish(key, value, future.resolver());
    return future;
  }

  // Read-side futures. Over a pipelined RemoteServiceBus
  // (set_pipeline_depth > 1, pump = [&bus] { return bus.pump(); }) a burst
  // of these rides N-deep on one connection — the epoll host answers out of
  // order and the futures resolve as the replies demux.
  SessionFuture<std::vector<core::Locator>> locate_async(const util::Auid& uid) {
    SessionFuture<std::vector<core::Locator>> future;
    bitdew_.locate(uid, future.resolver());
    return future;
  }

  SessionFuture<core::Data> search_async(const std::string& name) {
    SessionFuture<core::Data> future;
    bitdew_.search(name, future.resolver());
    return future;
  }

  SessionFuture<std::vector<std::string>> lookup_async(const std::string& key) {
    SessionFuture<std::vector<std::string>> future;
    bitdew_.lookup(key, future.resolver());
    return future;
  }

  StatusFuture remove_async(const core::Data& data) {
    StatusFuture future;
    bitdew_.remove(data, future.resolver());
    return future;
  }

  // --- blocking operations ---------------------------------------------------
  Expected<core::Data> create_data(const std::string& name, const core::Content& content) {
    auto [data, future] = create_data_async(name, content);
    const Status status = wait(future);
    if (!status.ok()) return status.propagate<core::Data>();
    return data;
  }

  Expected<core::Data> create_data(const std::string& name) {
    return create_data(name, core::Content{0, core::synthetic_content(0, 0).checksum});
  }

  Status put(const core::Data& data, const core::Content& content,
             const std::string& protocol = "ftp") {
    return wait(put_async(data, content, protocol));
  }

  Status offer_local(const core::Data& data, const std::string& protocol = "http") {
    StatusFuture future;
    bitdew_.offer_local(data, protocol, future.resolver());
    return wait(future);
  }

  Expected<std::vector<core::Locator>> locate(const util::Auid& uid) {
    return wait(locate_async(uid));
  }

  Expected<core::Data> search(const std::string& name) { return wait(search_async(name)); }

  Status remove(const core::Data& data) { return wait(remove_async(data)); }

  Status schedule(const core::Data& data, const core::DataAttributes& attributes) {
    return wait(schedule_async(data, attributes));
  }

  Status pin(const core::Data& data, const core::DataAttributes& attributes) {
    StatusFuture future;
    active_data_.pin(data, attributes, future.resolver());
    return wait(future);
  }

  Status unschedule(const core::Data& data) {
    StatusFuture future;
    active_data_.unschedule(data, future.resolver());
    return wait(future);
  }

  Status publish(const std::string& key, const std::string& value) {
    return wait(publish_async(key, value));
  }

  Expected<std::vector<std::string>> lookup(const std::string& key) {
    return wait(lookup_async(key));
  }

  /// Blocks until the datum's transfer on this node completes (requires a
  /// TransferManager at construction).
  Status wait_transfer(const util::Auid& uid);

  // --- real-byte data plane (PR 3) --------------------------------------------
  // Chunked out-of-band content transfer through the bus's dr_put_start /
  // dr_put_chunk / dr_put_commit / dr_get_chunk endpoints (the
  // transfer::TcpTransfer engine): Sim/Direct land in the in-process
  // repository, Remote streams over TCP. Uploads resume at the offset the
  // repository reports; downloads resume from `path`.part; both are
  // MD5-verified (Errc::kChecksumMismatch on divergence).

  /// Creates a data slot named `name` from the file at `path` — or reuses
  /// the registered slot of that name when its descriptor matches the file,
  /// so a re-run resumes an interrupted upload — then uploads the content.
  Expected<core::Data> put_file(const std::string& name, const std::string& path);

  /// Uploads the file at `path` as the content of an existing slot.
  Status put_file(const core::Data& data, const std::string& path);

  /// Downloads a datum's content into `path`.
  Status get_file(const core::Data& data, const std::string& path);
  Status get_file(const util::Auid& uid, const std::string& path);

  /// Data-plane knobs (see transfer::TcpConfig for semantics/bounds).
  void set_chunk_bytes(std::int64_t bytes) { chunk_bytes_ = bytes; }
  std::int64_t chunk_bytes() const { return chunk_bytes_; }
  void set_transfer_attempts(int attempts) { transfer_attempts_ = attempts; }

  // --- blocking bulk operations ----------------------------------------------
  /// One round-trip each, regardless of batch size; per-item outcomes.
  std::pair<std::vector<core::Data>, BatchStatus> create_data_batch(
      const std::vector<std::pair<std::string, core::Content>>& slots);
  BatchStatus register_batch(const std::vector<core::Data>& items);
  BatchLocators locate_batch(const std::vector<util::Auid>& uids);
  BatchStatus schedule_batch(const std::vector<services::ScheduledData>& items);
  BatchStatus publish_batch(const std::vector<KeyValue>& pairs);

  BitDew& bitdew() { return bitdew_; }
  ActiveData& active_data() { return active_data_; }

 private:
  /// Pumps until `slot` holds a value; nullopt when the engine stalls. The
  /// slot keeps its value (a future can be waited on more than once).
  template <typename V>
  std::optional<V> wait_slot(const std::shared_ptr<std::optional<V>>& slot) {
    while (!slot->has_value()) {
      if (!pump_ || !pump_()) return std::nullopt;
    }
    return **slot;
  }

  BitDew& bitdew_;
  ActiveData& active_data_;
  Pump pump_;
  TransferManager* tm_;
  std::int64_t chunk_bytes_ = 256 * 1024;
  int transfer_attempts_ = 3;
};

}  // namespace bitdew::api
