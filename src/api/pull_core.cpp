#include "api/pull_core.hpp"

#include <algorithm>

namespace bitdew::api {

void PullCore::mark_added(const util::Auid& uid) {
  if (dirty_removed_.erase(uid) == 0) dirty_added_.insert(uid);
}

void PullCore::mark_removed(const util::Auid& uid) {
  if (dirty_added_.erase(uid) == 0) dirty_removed_.insert(uid);
}

std::vector<services::ScheduledData> PullCore::apply_drops(const services::SyncReply& reply) {
  std::vector<services::ScheduledData> dropped;
  for (const util::Auid& uid : reply.drop) {
    if (cache_.erase(uid) == 0) continue;
    mark_removed(uid);
    const auto it = registry_.find(uid);
    if (it == registry_.end()) continue;
    events_.dispatch_delete(it->second.data, it->second.attributes);
    dropped.push_back(std::move(it->second));
    registry_.erase(it);
  }
  return dropped;
}

PullCore::Admission PullCore::begin_download(const services::ScheduledData& item) {
  const util::Auid uid = item.data.uid;
  if (cache_.contains(uid) || downloading_.contains(uid)) return Admission::kAlreadyHeld;
  registry_[uid] = item;
  // Zero-size data (e.g. the Collector token) needs no transfer.
  if (item.data.size <= 0) {
    cache_.insert(uid);
    mark_added(uid);
    events_.dispatch_copy(item.data, item.attributes);
    return Admission::kInstant;
  }
  downloading_.insert(uid);
  return Admission::kStarted;
}

std::optional<services::ScheduledData> PullCore::complete_download(const util::Auid& uid) {
  if (downloading_.erase(uid) == 0) return std::nullopt;
  cache_.insert(uid);
  mark_added(uid);
  const auto it = registry_.find(uid);
  if (it == registry_.end()) return std::nullopt;
  events_.dispatch_copy(it->second.data, it->second.attributes);
  return it->second;
}

void PullCore::fail_download(const util::Auid& uid) { downloading_.erase(uid); }

void PullCore::adopt_local(const core::Data& data, const core::DataAttributes& attributes,
                           bool fire_event) {
  if (cache_.insert(data.uid).second) mark_added(data.uid);
  downloading_.erase(data.uid);
  services::ScheduledData item;
  item.data = data;
  item.attributes = attributes;
  registry_[data.uid] = std::move(item);
  if (fire_event) events_.dispatch_copy(data, attributes);
}

PullCore::SyncDelta PullCore::build_sync() const {
  SyncDelta delta;
  if (epoch_ == 0) {
    // No acked epoch: announce the complete Δk (the dirty sets are
    // recomputed from scratch when this full report is acked).
    delta.full = true;
    delta.added = cache_list();
    return delta;
  }
  delta.epoch = epoch_;
  delta.full = false;
  delta.added.assign(dirty_added_.begin(), dirty_added_.end());
  delta.removed.assign(dirty_removed_.begin(), dirty_removed_.end());
  return delta;
}

void PullCore::ack_sync(const SyncDelta& sent, std::uint64_t acked_epoch) {
  epoch_ = acked_epoch;
  if (sent.full) {
    // The scheduler now mirrors exactly `sent.added`. Anything cached that
    // was not in the report arrived between build and ack (a transfer
    // thread completed): it becomes the next delta. Removals cannot have
    // happened in that window — they only occur on the sync thread itself.
    const std::set<util::Auid> reported(sent.added.begin(), sent.added.end());
    dirty_added_.clear();
    dirty_removed_.clear();
    for (const util::Auid& uid : cache_) {
      if (!reported.contains(uid)) dirty_added_.insert(uid);
    }
    for (const util::Auid& uid : reported) {
      if (!cache_.contains(uid)) dirty_removed_.insert(uid);  // defensive
    }
    return;
  }
  for (const util::Auid& uid : sent.added) dirty_added_.erase(uid);
  for (const util::Auid& uid : sent.removed) dirty_removed_.erase(uid);
}

std::optional<services::ScheduledData> PullCore::info(const util::Auid& uid) const {
  const auto it = registry_.find(uid);
  if (it == registry_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bitdew::api
