#include "api/pull_core.hpp"

namespace bitdew::api {

std::vector<services::ScheduledData> PullCore::apply_drops(const services::SyncReply& reply) {
  std::vector<services::ScheduledData> dropped;
  for (const util::Auid& uid : reply.drop) {
    if (cache_.erase(uid) == 0) continue;
    const auto it = registry_.find(uid);
    if (it == registry_.end()) continue;
    events_.dispatch_delete(it->second.data, it->second.attributes);
    dropped.push_back(std::move(it->second));
    registry_.erase(it);
  }
  return dropped;
}

PullCore::Admission PullCore::begin_download(const services::ScheduledData& item) {
  const util::Auid uid = item.data.uid;
  if (cache_.contains(uid) || downloading_.contains(uid)) return Admission::kAlreadyHeld;
  registry_[uid] = item;
  // Zero-size data (e.g. the Collector token) needs no transfer.
  if (item.data.size <= 0) {
    cache_.insert(uid);
    events_.dispatch_copy(item.data, item.attributes);
    return Admission::kInstant;
  }
  downloading_.insert(uid);
  return Admission::kStarted;
}

std::optional<services::ScheduledData> PullCore::complete_download(const util::Auid& uid) {
  if (downloading_.erase(uid) == 0) return std::nullopt;
  cache_.insert(uid);
  const auto it = registry_.find(uid);
  if (it == registry_.end()) return std::nullopt;
  events_.dispatch_copy(it->second.data, it->second.attributes);
  return it->second;
}

void PullCore::fail_download(const util::Auid& uid) { downloading_.erase(uid); }

void PullCore::adopt_local(const core::Data& data, const core::DataAttributes& attributes,
                           bool fire_event) {
  cache_.insert(data.uid);
  downloading_.erase(data.uid);
  services::ScheduledData item;
  item.data = data;
  item.attributes = attributes;
  registry_[data.uid] = std::move(item);
  if (fire_event) events_.dispatch_copy(data, attributes);
}

std::optional<services::ScheduledData> PullCore::info(const util::Auid& uid) const {
  const auto it = registry_.find(uid);
  if (it == registry_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bitdew::api
