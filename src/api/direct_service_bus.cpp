#include "api/direct_service_bus.hpp"

#include "api/service_ops.hpp"

namespace bitdew::api {

void DirectServiceBus::dc_register(const core::Data& data, Reply<Status> done) {
  ++calls_;
  done(ops::dc_register(container_, data));
}

void DirectServiceBus::dc_get(const util::Auid& uid, Reply<Expected<core::Data>> done) {
  ++calls_;
  done(ops::dc_get(container_, uid));
}

void DirectServiceBus::dc_search(const std::string& name,
                                 Reply<Expected<std::vector<core::Data>>> done) {
  ++calls_;
  done(ops::dc_search(container_, name));
}

void DirectServiceBus::dc_remove(const util::Auid& uid, Reply<Status> done) {
  ++calls_;
  done(ops::dc_remove(container_, uid));
}

void DirectServiceBus::dc_add_locator(const core::Locator& locator, Reply<Status> done) {
  ++calls_;
  done(ops::dc_add_locator(container_, locator));
}

void DirectServiceBus::dc_locators(const util::Auid& uid,
                                   Reply<Expected<std::vector<core::Locator>>> done) {
  ++calls_;
  done(ops::dc_locators(container_, uid));
}

void DirectServiceBus::dr_put(const core::Data& data, const core::Content& content,
                              const std::string& protocol,
                              Reply<Expected<core::Locator>> done) {
  ++calls_;
  done(ops::dr_put(container_, data, content, protocol));
}

void DirectServiceBus::dr_get(const util::Auid& uid, Reply<Expected<core::Content>> done) {
  ++calls_;
  done(ops::dr_get(container_, uid));
}

void DirectServiceBus::dr_remove(const util::Auid& uid, Reply<Status> done) {
  ++calls_;
  done(ops::dr_remove(container_, uid));
}

void DirectServiceBus::dr_put_start(const core::Data& data,
                                    Reply<Expected<std::int64_t>> done) {
  ++calls_;
  done(ops::dr_put_start(container_, data));
}

void DirectServiceBus::dr_put_chunk(const util::Auid& uid, std::int64_t offset,
                                    const std::string& bytes, Reply<Status> done) {
  ++calls_;
  done(ops::dr_put_chunk(container_, uid, offset, bytes));
}

void DirectServiceBus::dr_put_commit(const util::Auid& uid, const std::string& protocol,
                                     Reply<Expected<core::Locator>> done) {
  ++calls_;
  done(ops::dr_put_commit(container_, uid, protocol));
}

void DirectServiceBus::dr_get_chunk(const util::Auid& uid, std::int64_t offset,
                                    std::int64_t max_bytes, Reply<Expected<std::string>> done) {
  ++calls_;
  done(ops::dr_get_chunk(container_, uid, offset, max_bytes));
}

void DirectServiceBus::dr_stats(Reply<Expected<services::RepoStats>> done) {
  ++calls_;
  done(ops::dr_stats(container_));
}

void DirectServiceBus::dt_register(const core::Data& data, const std::string& source,
                                   const std::string& destination, const std::string& protocol,
                                   Reply<Expected<services::TicketId>> done) {
  ++calls_;
  done(ops::dt_register(container_, data, source, destination, protocol));
}

void DirectServiceBus::dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                                  Reply<Status> done) {
  ++calls_;
  done(ops::dt_monitor(container_, ticket, done_bytes));
}

void DirectServiceBus::dt_complete(services::TicketId ticket,
                                   const std::string& received_checksum,
                                   const std::string& expected_checksum, Reply<Status> done) {
  ++calls_;
  done(ops::dt_complete(container_, ticket, received_checksum, expected_checksum));
}

void DirectServiceBus::dt_failure(services::TicketId ticket, std::int64_t bytes_held,
                                  bool can_resume, Reply<Status> done) {
  ++calls_;
  done(ops::dt_failure(container_, ticket, bytes_held, can_resume));
}

void DirectServiceBus::dt_give_up(services::TicketId ticket, Reply<Status> done) {
  ++calls_;
  done(ops::dt_give_up(container_, ticket));
}

void DirectServiceBus::ds_schedule(const core::Data& data,
                                   const core::DataAttributes& attributes, Reply<Status> done) {
  ++calls_;
  done(ops::ds_schedule(container_, data, attributes));
}

void DirectServiceBus::ds_pin(const util::Auid& uid, const std::string& host,
                              Reply<Status> done) {
  ++calls_;
  done(ops::ds_pin(container_, uid, host));
}

void DirectServiceBus::ds_unschedule(const util::Auid& uid, Reply<Status> done) {
  ++calls_;
  done(ops::ds_unschedule(container_, uid));
}

void DirectServiceBus::ds_sync(const services::SyncRequest& request,
                               Reply<Expected<services::SyncReply>> done) {
  ++calls_;
  done(ops::ds_sync(container_, request));
}

void DirectServiceBus::ds_hosts(Reply<Expected<std::vector<services::HostInfo>>> done) {
  ++calls_;
  done(ops::ds_hosts(container_));
}

void DirectServiceBus::job_submit(const jobs::JobSpec& spec,
                                  Reply<Expected<util::Auid>> done) {
  ++calls_;
  done(ops::job_submit(container_, spec));
}

void DirectServiceBus::job_status(const util::Auid& job,
                                  Reply<Expected<jobs::JobStatusInfo>> done) {
  ++calls_;
  done(ops::job_status(container_, job));
}

void DirectServiceBus::job_claim(const util::Auid& task, const std::string& runner,
                                 Reply<Expected<jobs::TaskOrder>> done) {
  ++calls_;
  done(ops::job_claim(container_, task, runner));
}

void DirectServiceBus::job_task_report(const jobs::TaskReport& report, Reply<Status> done) {
  ++calls_;
  done(ops::job_task_report(container_, report));
}

void DirectServiceBus::ddc_publish(const std::string& key, const std::string& value,
                                   Reply<Status> done) {
  ++calls_;
  done(ops::ddc_publish(ddc_, key, value));
}

void DirectServiceBus::ddc_search(const std::string& key,
                                  Reply<Expected<std::vector<std::string>>> done) {
  ++calls_;
  done(ops::ddc_search(ddc_, key));
}

void DirectServiceBus::dc_register_batch(const std::vector<core::Data>& items,
                                         Reply<BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  ++calls_;
  done(ops::dc_register_batch(container_, items));
}

void DirectServiceBus::dc_locators_batch(const std::vector<util::Auid>& uids,
                                         Reply<BatchLocators> done) {
  if (uids.empty()) {
    done({});
    return;
  }
  ++calls_;
  done(ops::dc_locators_batch(container_, uids));
}

void DirectServiceBus::ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                                         Reply<BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  ++calls_;
  done(ops::ds_schedule_batch(container_, items));
}

void DirectServiceBus::ddc_publish_batch(const std::vector<KeyValue>& pairs,
                                         Reply<BatchStatus> done) {
  if (pairs.empty()) {
    done({});
    return;
  }
  ++calls_;
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.reserve(pairs.size());
  for (const KeyValue& pair : pairs) kvs.emplace_back(pair.key, pair.value);
  done(ops::ddc_publish_batch(ddc_, kvs));
}

}  // namespace bitdew::api
