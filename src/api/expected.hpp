// The API's typed error channel (ServiceBus v2). Every reply carries an
// Expected<T>: either the value or an Error{code, service, message} saying
// *why* the operation failed — duplicate registration, unknown uid,
// scheduler rejection, checksum mismatch, transport loss — instead of the
// bare bool of the v1 bus. Both ServiceBus implementations (SimServiceBus,
// DirectServiceBus) map service outcomes through the same helpers in
// service_ops.hpp, so user code sees identical codes regardless of backend.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

namespace bitdew::api {

/// Failure categories an operation can report. Stable across backends and
/// serializable on the wire (rpc/wire.hpp).
enum class Errc : std::uint8_t {
  kOk = 0,
  kDuplicate = 1,         ///< registering an already-registered uid
  kNotFound = 2,          ///< unknown uid / name / ticket
  kRejected = 3,          ///< the service refused the request (validation)
  kChecksumMismatch = 4,  ///< DT integrity verification failed
  kTransport = 5,         ///< request or response lost on the network
  kUnavailable = 6,       ///< backend unreachable / no source / stalled
  kInvalidArgument = 7,   ///< malformed input (nil uid, empty batch item)
  kRedirect = 8,          ///< ring routing: retry at the member named in
                          ///< `message` ("host:port"); not a terminal failure
};

inline const char* errc_name(Errc code) {
  switch (code) {
    case Errc::kOk: return "ok";
    case Errc::kDuplicate: return "duplicate";
    case Errc::kNotFound: return "not_found";
    case Errc::kRejected: return "rejected";
    case Errc::kChecksumMismatch: return "checksum_mismatch";
    case Errc::kTransport: return "transport";
    case Errc::kUnavailable: return "unavailable";
    case Errc::kInvalidArgument: return "invalid_argument";
    case Errc::kRedirect: return "redirect";
  }
  return "unknown";
}

/// Why an operation failed: the category, the service that signalled it
/// ("dc", "dr", "dt", "ds", "ddc", or "bus" for transport-level failures)
/// and a human-readable detail.
struct Error {
  Errc code = Errc::kOk;
  std::string service;
  std::string message;

  std::string to_string() const {
    return std::string(errc_name(code)) + " (" + service +
           (message.empty() ? ")" : "): " + message);
  }

  friend bool operator==(const Error&, const Error&) = default;
};

/// The empty success value: Expected<Unit> (aka Status) is the typed
/// replacement for the v1 bus's Reply<bool>.
struct Unit {
  friend bool operator==(const Unit&, const Unit&) = default;
};

/// Value-or-Error. T must be default-constructible (all reply payloads are).
template <typename T>
class Expected {
 public:
  Expected(T value) : ok_(true), value_(std::move(value)) {}  // NOLINT(implicit)
  Expected(Error error) : ok_(false), error_(std::move(error)) {  // NOLINT(implicit)
    assert(error_.code != Errc::kOk);
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  T& value() {
    assert(ok_);
    return value_;
  }
  const T& value() const {
    assert(ok_);
    return value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const {
    assert(!ok_);
    return error_;
  }

  Errc code() const { return ok_ ? Errc::kOk : error_.code; }

  T value_or(T fallback) const { return ok_ ? value_ : std::move(fallback); }

  /// Propagates this error under a different payload type.
  template <typename U>
  Expected<U> propagate() const {
    assert(!ok_);
    return Expected<U>(error_);
  }

  friend bool operator==(const Expected&, const Expected&) = default;

 private:
  bool ok_;
  T value_{};
  Error error_{};
};

using Status = Expected<Unit>;

inline Status ok_status() { return Status(Unit{}); }

}  // namespace bitdew::api
