// ServiceBus: the asynchronous client view of the four D* services plus the
// Distributed Data Catalog. The API classes (BitDew / ActiveData /
// TransferManager) are written against this interface only, so the same
// user code runs over the discrete-event runtime (SimServiceBus: every call
// is a request/response flow on the simulated network) and the threaded
// LocalRuntime (DirectServiceBus: a function call) — the paper's claim that
// the service back-ends are swappable, made concrete.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/attributes.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"
#include "services/data_scheduler.hpp"
#include "services/data_transfer.hpp"

namespace bitdew::api {

template <typename T>
using Reply = std::function<void(T)>;

class ServiceBus {
 public:
  virtual ~ServiceBus() = default;

  // --- Data Catalog ---------------------------------------------------------
  virtual void dc_register(const core::Data& data, Reply<bool> done) = 0;
  virtual void dc_get(const util::Auid& uid, Reply<std::optional<core::Data>> done) = 0;
  virtual void dc_search(const std::string& name, Reply<std::vector<core::Data>> done) = 0;
  virtual void dc_remove(const util::Auid& uid, Reply<bool> done) = 0;
  virtual void dc_add_locator(const core::Locator& locator, Reply<bool> done) = 0;
  virtual void dc_locators(const util::Auid& uid, Reply<std::vector<core::Locator>> done) = 0;

  // --- Data Repository --------------------------------------------------------
  virtual void dr_put(const core::Data& data, const core::Content& content,
                      const std::string& protocol, Reply<core::Locator> done) = 0;
  virtual void dr_get(const util::Auid& uid, Reply<std::optional<core::Content>> done) = 0;
  virtual void dr_remove(const util::Auid& uid, Reply<bool> done) = 0;

  // --- Data Transfer ------------------------------------------------------------
  virtual void dt_register(const core::Data& data, const std::string& source,
                           const std::string& destination, const std::string& protocol,
                           Reply<services::TicketId> done) = 0;
  virtual void dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                          Reply<bool> done) = 0;
  virtual void dt_complete(services::TicketId ticket, const std::string& received_checksum,
                           const std::string& expected_checksum, Reply<bool> done) = 0;
  virtual void dt_failure(services::TicketId ticket, std::int64_t bytes_held, bool can_resume,
                          Reply<bool> done) = 0;
  virtual void dt_give_up(services::TicketId ticket, Reply<bool> done) = 0;

  // --- Data Scheduler -------------------------------------------------------------
  virtual void ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                           Reply<bool> done) = 0;
  virtual void ds_pin(const util::Auid& uid, const std::string& host, Reply<bool> done) = 0;
  virtual void ds_unschedule(const util::Auid& uid, Reply<bool> done) = 0;
  virtual void ds_sync(const std::string& host, const std::vector<util::Auid>& cache,
                       const std::vector<util::Auid>& in_flight,
                       Reply<services::SyncReply> done) = 0;

  // --- Distributed Data Catalog (DHT) -----------------------------------------------
  /// Publishes a generic key/value pair (paper §3.3: the DHT is exposed for
  /// generic use; replica locations use key = data uid, value = host).
  virtual void ddc_publish(const std::string& key, const std::string& value,
                           Reply<bool> done) = 0;
  virtual void ddc_search(const std::string& key, Reply<std::vector<std::string>> done) = 0;
};

}  // namespace bitdew::api
