// ServiceBus v2: the asynchronous client view of the four D* services plus
// the Distributed Data Catalog. The API classes (BitDew / ActiveData /
// TransferManager / Session) are written against this interface only, so
// the same user code runs over the discrete-event runtime (SimServiceBus:
// every call is a request/response flow on the simulated network) and the
// synchronous DirectServiceBus (a function call into the container) — the
// paper's claim that the service back-ends are swappable, made concrete.
//
// v2 changes over the seed bus:
//  * every reply is an Expected<T> (value or Error{code, service, message})
//    instead of a bare bool — callers learn *why* an operation failed;
//  * bulk endpoints (dc_register_batch, dc_locators_batch,
//    ds_schedule_batch, ddc_publish_batch) amortize one request/response
//    flow and one service-queue event over N items. Partial failure is
//    per-item: one bad datum does not poison the batch.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "api/expected.hpp"
#include "core/attributes.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"
#include "jobs/job_types.hpp"
#include "services/data_repository.hpp"
#include "services/data_scheduler.hpp"
#include "services/data_transfer.hpp"

namespace bitdew::api {

template <typename T>
using Reply = std::function<void(T)>;

/// A generic DHT pair for ddc_publish_batch.
struct KeyValue {
  std::string key;
  std::string value;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

/// Per-item outcomes of a batched call, index-aligned with the request.
using BatchStatus = std::vector<Status>;
using BatchLocators = std::vector<Expected<std::vector<core::Locator>>>;

class ServiceBus {
 public:
  virtual ~ServiceBus() = default;

  // --- Data Catalog ---------------------------------------------------------
  virtual void dc_register(const core::Data& data, Reply<Status> done) = 0;
  virtual void dc_get(const util::Auid& uid, Reply<Expected<core::Data>> done) = 0;
  virtual void dc_search(const std::string& name,
                         Reply<Expected<std::vector<core::Data>>> done) = 0;
  virtual void dc_remove(const util::Auid& uid, Reply<Status> done) = 0;
  virtual void dc_add_locator(const core::Locator& locator, Reply<Status> done) = 0;
  virtual void dc_locators(const util::Auid& uid,
                           Reply<Expected<std::vector<core::Locator>>> done) = 0;

  // --- Data Repository --------------------------------------------------------
  virtual void dr_put(const core::Data& data, const core::Content& content,
                      const std::string& protocol, Reply<Expected<core::Locator>> done) = 0;
  virtual void dr_get(const util::Auid& uid, Reply<Expected<core::Content>> done) = 0;
  virtual void dr_remove(const util::Auid& uid, Reply<Status> done) = 0;

  // --- Data Repository: chunked out-of-band data plane -------------------------
  // The real-byte path (PR 3): a sender streams content to the repository in
  // fixed-size chunks, resumable at the offset dr_put_start returns; the
  // repository verifies the assembled MD5 against the datum's registered
  // checksum at commit (Errc::kChecksumMismatch on divergence) and only then
  // serves it through dr_get_chunk. transfer::TcpTransfer is the client
  // engine driving these; Session::put_file/get_file is the blocking facade.

  /// Opens (or resumes) a chunked upload; the reply is the byte offset the
  /// sender must continue from (0 for a fresh upload).
  virtual void dr_put_start(const core::Data& data, Reply<Expected<std::int64_t>> done) = 0;
  /// Appends one chunk at `offset` (must equal the bytes received so far;
  /// Errc::kRejected on a mismatch — re-sync via dr_put_start).
  virtual void dr_put_chunk(const util::Auid& uid, std::int64_t offset,
                            const std::string& bytes, Reply<Status> done) = 0;
  /// Verifies and publishes the staged bytes; replies with the minted
  /// locator, or Errc::kChecksumMismatch (the stage is discarded).
  virtual void dr_put_commit(const util::Auid& uid, const std::string& protocol,
                             Reply<Expected<core::Locator>> done) = 0;
  /// Reads up to `max_bytes` of published content at `offset`; an empty
  /// reply means end of content.
  virtual void dr_get_chunk(const util::Auid& uid, std::int64_t offset, std::int64_t max_bytes,
                            Reply<Expected<std::string>> done) = 0;
  /// Repository serving counters (object count, stored bytes, chunk reads
  /// served). Benches and CI use the chunk-read counters to assert the peer
  /// data plane really bounded repository egress.
  virtual void dr_stats(Reply<Expected<services::RepoStats>> done) = 0;

  // --- Data Transfer ------------------------------------------------------------
  virtual void dt_register(const core::Data& data, const std::string& source,
                           const std::string& destination, const std::string& protocol,
                           Reply<Expected<services::TicketId>> done) = 0;
  virtual void dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                          Reply<Status> done) = 0;
  /// Fails with Errc::kChecksumMismatch when the received checksum differs
  /// from the expected one (the ticket stays active for a retry).
  virtual void dt_complete(services::TicketId ticket, const std::string& received_checksum,
                           const std::string& expected_checksum, Reply<Status> done) = 0;
  virtual void dt_failure(services::TicketId ticket, std::int64_t bytes_held, bool can_resume,
                          Reply<Status> done) = 0;
  virtual void dt_give_up(services::TicketId ticket, Reply<Status> done) = 0;

  // --- Data Scheduler -------------------------------------------------------------
  /// Fails with Errc::kRejected when the scheduler refuses the attributes
  /// (invalid replica count, self-referential affinity or lifetime).
  virtual void ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                           Reply<Status> done) = 0;
  virtual void ds_pin(const util::Auid& uid, const std::string& host, Reply<Status> done) = 0;
  virtual void ds_unschedule(const util::Auid& uid, Reply<Status> done) = 0;
  /// One reservoir synchronization (sync protocol v2): the request carries
  /// either the complete Δk or an {epoch, added, removed} delta since the
  /// last acked beat, plus the in-flight download list and the host's peer
  /// chunk-server endpoint ("host:port", empty when the node does not
  /// serve — the scheduler records it and mints it into the peer locators
  /// that ride back in other hosts' SyncReply.sources). A refused delta
  /// comes back with `resync` set and the caller repeats the sync in full.
  /// The SyncRequest is the ONLY entry point (the legacy positional
  /// full-report overload is retired): a full beat is SyncRequest{.full =
  /// true, .added = cache}. Old v1 wire frames are still rejected typed
  /// (Errc::kRejected) rather than dropped.
  virtual void ds_sync(const services::SyncRequest& request,
                       Reply<Expected<services::SyncReply>> done) = 0;
  /// The scheduler's host table (name, seconds since last sync, alive/dead,
  /// cached count) — the failure detector made observable, so operators and
  /// CI watch liveness instead of inferring it from replica movement.
  virtual void ds_hosts(Reply<Expected<std::vector<services::HostInfo>>> done) = 0;

  // --- Job service (compute-to-data) ------------------------------------------------
  /// Decomposes the spec into one task per input and places the tasks with
  /// replica affinity (tasks preferentially go where the input's Δk lives).
  virtual void job_submit(const jobs::JobSpec& spec, Reply<Expected<util::Auid>> done) = 0;
  virtual void job_status(const util::Auid& job,
                          Reply<Expected<jobs::JobStatusInfo>> done) = 0;
  /// First claim wins; later claimants get kRejected and stand down.
  virtual void job_claim(const util::Auid& task, const std::string& runner,
                         Reply<Expected<jobs::TaskOrder>> done) = 0;
  virtual void job_task_report(const jobs::TaskReport& report, Reply<Status> done) = 0;

  // --- Distributed Data Catalog (DHT) -----------------------------------------------
  /// Publishes a generic key/value pair (paper §3.3: the DHT is exposed for
  /// generic use; replica locations use key = data uid, value = host).
  virtual void ddc_publish(const std::string& key, const std::string& value,
                           Reply<Status> done) = 0;
  virtual void ddc_search(const std::string& key,
                          Reply<Expected<std::vector<std::string>>> done) = 0;

  // --- Bulk endpoints ---------------------------------------------------------------
  // One request/response flow and one service event amortized over N items;
  // the reply is index-aligned with the request and reports per-item
  // outcomes. An empty batch is a no-op: the reply fires with an empty
  // vector and no traffic is generated. The defaults below fan out to the
  // scalar endpoints (correct for any bus); SimServiceBus and
  // DirectServiceBus override them with native single-flow implementations.
  virtual void dc_register_batch(const std::vector<core::Data>& items, Reply<BatchStatus> done);
  virtual void dc_locators_batch(const std::vector<util::Auid>& uids, Reply<BatchLocators> done);
  virtual void ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                                 Reply<BatchStatus> done);
  virtual void ddc_publish_batch(const std::vector<KeyValue>& pairs, Reply<BatchStatus> done);
};

}  // namespace bitdew::api
