// One DewDB table: schema-less rows with an optional unique primary column
// and any number of non-unique secondary indexes. find() uses an index when
// one exists and falls back to a scan otherwise (tests cover both paths).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/value.hpp"

namespace bitdew::db {

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares the unique primary column. Must be set before any insert.
  void set_primary(std::string column);

  /// Adds a non-unique secondary index; may be called on a populated table.
  void add_index(const std::string& column);

  /// Inserts a row; returns nullopt on primary-key conflict or missing
  /// primary column (when a primary is declared).
  std::optional<RowId> insert(Row row);

  /// Replaces a row wholesale. Returns false for an unknown id or a primary
  /// conflict with another row.
  bool update(RowId id, Row row);

  /// Merges columns into an existing row.
  bool patch(RowId id, const Row& columns);

  bool erase(RowId id);

  const Row* get(RowId id) const;

  /// Row ids whose `column` equals `value` (indexed or scanned).
  std::vector<RowId> find(std::string_view column, const Value& value) const;

  /// First matching row id, if any.
  std::optional<RowId> find_one(std::string_view column, const Value& value) const;

  /// Primary lookup (unique index).
  std::optional<RowId> by_primary(const Value& value) const;

  /// Visits every row; the visitor returns false to stop.
  void scan(const std::function<bool(RowId, const Row&)>& visit) const;

  std::size_t size() const { return rows_.size(); }
  bool has_index(std::string_view column) const;
  const std::optional<std::string>& primary() const { return primary_; }
  std::vector<std::string> index_columns() const;

 private:
  void index_row(RowId id, const Row& row);
  void unindex_row(RowId id, const Row& row);

  std::string name_;
  RowId next_id_ = 1;
  std::unordered_map<RowId, Row> rows_;
  std::optional<std::string> primary_;
  std::unordered_map<std::string, RowId> primary_index_;
  // column -> (index_key(value) -> row ids)
  std::unordered_map<std::string, std::unordered_multimap<std::string, RowId>> secondary_;

  friend class Database;  // WAL replay must re-insert with fixed row ids
  std::optional<RowId> insert_with_id(RowId id, Row row);
};

}  // namespace bitdew::db
