#include "db/server_engine.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/auid.hpp"
#include "util/log.hpp"
#include "util/md5.hpp"

namespace bitdew::db {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("dewdb.server");
  return instance;
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, const std::string& payload) {
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  return write_all(fd, &length, sizeof(length)) && write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload) {
  std::uint32_t length = 0;
  if (!read_all(fd, &length, sizeof(length))) return false;
  payload.resize(length);
  return length == 0 || read_all(fd, payload.data(), length);
}

/// Iterated digest: the server-side authentication work.
std::string auth_digest(const std::string& token, int rounds) {
  util::Md5Digest digest = util::Md5::of(token);
  for (int i = 1; i < rounds; ++i) {
    util::Md5 hasher;
    hasher.update(digest.bytes.data(), digest.bytes.size());
    digest = hasher.finish();
  }
  return digest.hex();
}

class ServerConnection final : public Connection {
 public:
  explicit ServerConnection(int fd) : fd_(fd) {}
  ~ServerConnection() override {
    if (fd_ >= 0) ::close(fd_);
  }

  ServerConnection(const ServerConnection&) = delete;
  ServerConnection& operator=(const ServerConnection&) = delete;

  bool handshake(const std::string& token) {
    if (!write_frame(fd_, token)) return false;
    std::string reply;
    return read_frame(fd_, reply) && !reply.empty();
  }

  Response execute(const Command& command) override {
    rpc::Writer writer;
    encode_command(writer, command);
    std::string reply;
    if (!write_frame(fd_, writer.buffer()) || !read_frame(fd_, reply)) {
      Response response;
      response.error = "connection lost";
      return response;
    }
    rpc::Reader reader(reply);
    return decode_response(reader);
  }

 private:
  int fd_;
};

}  // namespace

ServerEngine::ServerEngine(Database& database, int auth_rounds)
    : database_(database), auth_rounds_(auth_rounds) {
  if (::pipe(wake_pipe_) != 0) throw std::runtime_error("ServerEngine: pipe() failed");
  thread_ = std::thread([this] { server_loop(); });
}

ServerEngine::~ServerEngine() {
  stopping_.store(true);
  const char byte = 'q';
  (void)write_all(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

std::unique_ptr<Connection> ServerEngine::connect() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("ServerEngine: socketpair() failed");
  }
  {
    const util::LockGuard lock(pending_mutex_);
    pending_fds_.push_back(fds[0]);
  }
  const char byte = 'n';
  if (!write_all(wake_pipe_[1], &byte, 1)) {
    ::close(fds[1]);
    throw std::runtime_error("ServerEngine: wake failed");
  }

  auto connection = std::make_unique<ServerConnection>(fds[1]);
  if (!connection->handshake(util::next_auid().str())) {
    throw std::runtime_error("ServerEngine: handshake failed");
  }
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  return connection;
}

void ServerEngine::handle_session(Session& session) {
  std::string payload;
  if (!read_frame(session.fd, payload)) {
    ::close(session.fd);
    session.fd = -1;
    return;
  }
  if (!session.authenticated) {
    // First frame is the auth token; reply with the iterated digest.
    const std::string digest = auth_digest(payload, auth_rounds_);
    if (!write_frame(session.fd, digest)) {
      ::close(session.fd);
      session.fd = -1;
      return;
    }
    session.authenticated = true;
    return;
  }

  Response response;
  try {
    rpc::Reader reader(payload);
    response = apply_command(database_, decode_command(reader));
  } catch (const rpc::CodecError& error) {
    response.ok = false;
    response.error = error.what();
  }
  rpc::Writer writer;
  encode_response(writer, response);
  if (!write_frame(session.fd, writer.buffer())) {
    ::close(session.fd);
    session.fd = -1;
  }
}

void ServerEngine::server_loop() {
  std::vector<Session> sessions;
  std::vector<pollfd> poll_set;

  while (true) {
    poll_set.clear();
    poll_set.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const Session& session : sessions) {
      poll_set.push_back(pollfd{session.fd, POLLIN, 0});
    }

    const int ready = ::poll(poll_set.data(), poll_set.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      logger().error("poll failed: %s", std::strerror(errno));
      break;
    }

    if ((poll_set[0].revents & POLLIN) != 0) {
      char drain[64];
      (void)::read(wake_pipe_[0], drain, sizeof(drain));
      if (stopping_.load()) break;
      const util::LockGuard lock(pending_mutex_);
      for (const int fd : pending_fds_) sessions.push_back(Session{fd, false});
      pending_fds_.clear();
    }

    // Only the sessions that were present when poll() ran have poll results;
    // sessions appended above are served on the next iteration.
    for (std::size_t i = 0; i + 1 < poll_set.size(); ++i) {
      const short revents = poll_set[i + 1].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        handle_session(sessions[i]);
      }
    }
    std::erase_if(sessions, [](const Session& s) { return s.fd < 0; });
  }

  for (Session& session : sessions) {
    if (session.fd >= 0) ::close(session.fd);
  }
}

}  // namespace bitdew::db
