#include "db/embedded_engine.hpp"

#include "util/auid.hpp"
#include "util/md5.hpp"

namespace bitdew::db {
namespace {

class EmbeddedConnection final : public Connection {
 public:
  EmbeddedConnection(EmbeddedEngine& engine, std::string session_token)
      : engine_(engine), session_token_(std::move(session_token)) {}

  Response execute(const Command& command) override {
    const util::LockGuard lock(engine_.mutex());
    return apply_command(engine_.database(), command);
  }

 private:
  EmbeddedEngine& engine_;
  std::string session_token_;  // session identity, kept for tracing
};

}  // namespace

std::unique_ptr<Connection> EmbeddedEngine::connect() {
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  // Session establishment: mint an identity and digest it, the lightweight
  // analogue of JDBC session setup.
  const std::string token = util::next_auid().str();
  const util::Md5Digest digest = util::Md5::of(token);
  return std::make_unique<EmbeddedConnection>(*this, digest.hex());
}

}  // namespace bitdew::db
