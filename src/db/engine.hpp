// DewDB access engines.
//
// Table 2 of the paper contrasts an embedded database (HsqlDB) with a
// networked client/server one (MySQL), each with and without connection
// pooling (DBCP). The Engine interface reproduces that axis:
//  * EmbeddedEngine — in-process calls guarded by a mutex (HsqlDB role);
//  * ServerEngine   — a dedicated server thread reached over a real
//    socketpair with a framed wire protocol and a per-connection handshake
//    (MySQL role).
// ConnectionPool (pool.hpp) plays the DBCP role for either engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/database.hpp"

namespace bitdew::db {

enum class Op : std::uint8_t {
  kPing = 0,
  kInsert = 1,
  kUpdate = 2,
  kPatch = 3,
  kErase = 4,
  kGet = 5,
  kFind = 6,
};

struct Command {
  Op op = Op::kPing;
  std::string table;
  RowId id = 0;
  Row row;            // insert/update/patch payload
  std::string column;  // find
  Value value;         // find
  std::uint32_t limit = 0;  // find: 0 == unlimited
};

struct ResultRow {
  RowId id = 0;
  Row row;
};

struct Response {
  bool ok = false;
  RowId id = 0;                 // insert: assigned id
  std::vector<ResultRow> rows;  // get/find results
  std::string error;
};

void encode_command(rpc::Writer& writer, const Command& command);
Command decode_command(rpc::Reader& reader);
void encode_response(rpc::Writer& writer, const Response& response);
Response decode_response(rpc::Reader& reader);

/// Executes a command against a Database (shared by both engines and by the
/// WAL-backed CLI). Not thread-safe by itself.
Response apply_command(Database& database, const Command& command);

/// One client connection; execute() is synchronous.
class Connection {
 public:
  virtual ~Connection() = default;
  virtual Response execute(const Command& command) = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;
  /// Opens a new connection (performs the engine's handshake).
  virtual std::unique_ptr<Connection> connect() = 0;
  virtual std::string name() const = 0;
};

}  // namespace bitdew::db
