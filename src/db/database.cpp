#include "db/database.hpp"

#include <algorithm>
#include <filesystem>

#include "rpc/codec.hpp"
#include "util/log.hpp"

namespace bitdew::db {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("dewdb");
  return instance;
}

}  // namespace

Database::Database(std::string wal_path) : wal_path_(std::move(wal_path)) {
  if (std::filesystem::exists(wal_path_)) {
    replay();
    wal_bytes_ = std::filesystem::file_size(wal_path_);
  }
  wal_.open(wal_path_, std::ios::binary | std::ios::app);
  if (!wal_) throw std::runtime_error("cannot open WAL: " + wal_path_);
}

Database::~Database() = default;

Table& Database::create_table(const TableSchema& schema) {
  const auto it = tables_.find(schema.name);
  if (it != tables_.end()) return *it->second;

  auto table = std::make_unique<Table>(schema.name);
  if (!schema.primary.empty()) table->set_primary(schema.primary);
  for (const std::string& column : schema.indexes) table->add_index(column);
  Table& ref = *table;
  tables_.emplace(schema.name, std::move(table));
  if (!replaying_) wal_create_table(schema);
  return ref;
}

Table* Database::table(std::string_view name) {
  const auto it = tables_.find(name);
  return it != tables_.end() ? it->second.get() : nullptr;
}

const Table* Database::table(std::string_view name) const {
  const auto it = tables_.find(name);
  return it != tables_.end() ? it->second.get() : nullptr;
}

std::optional<RowId> Database::insert(std::string_view table_name, Row row) {
  Table* t = table(table_name);
  if (t == nullptr) return std::nullopt;
  const auto id = t->insert(row);
  if (id.has_value()) {
    ++stats_.inserts;
    if (!replaying_) wal_insert(table_name, *id, row);
  }
  return id;
}

bool Database::update(std::string_view table_name, RowId id, Row row) {
  Table* t = table(table_name);
  if (t == nullptr) return false;
  const Row copy = row;
  if (!t->update(id, std::move(row))) return false;
  ++stats_.updates;
  if (!replaying_) wal_update(table_name, id, copy);
  return true;
}

bool Database::patch(std::string_view table_name, RowId id, const Row& columns) {
  Table* t = table(table_name);
  if (t == nullptr) return false;
  if (!t->patch(id, columns)) return false;
  ++stats_.updates;
  if (!replaying_) wal_update(table_name, id, *t->get(id));
  return true;
}

bool Database::erase(std::string_view table_name, RowId id) {
  Table* t = table(table_name);
  if (t == nullptr || !t->erase(id)) return false;
  ++stats_.erases;
  if (!replaying_) wal_erase(table_name, id);
  return true;
}

const Row* Database::get(std::string_view table_name, RowId id) {
  Table* t = table(table_name);
  if (t == nullptr) return nullptr;
  ++stats_.reads;
  return t->get(id);
}

std::vector<RowId> Database::find(std::string_view table_name, std::string_view column,
                                  const Value& value) {
  Table* t = table(table_name);
  if (t == nullptr) return {};
  ++stats_.finds;
  return t->find(column, value);
}

// --- WAL ---------------------------------------------------------------

void Database::wal_append(const std::string& record) {
  if (wal_path_.empty() || !wal_.is_open()) return;
  rpc::Writer frame;
  frame.u32(static_cast<std::uint32_t>(record.size()));
  wal_.write(frame.buffer().data(), static_cast<std::streamsize>(frame.size()));
  wal_.write(record.data(), static_cast<std::streamsize>(record.size()));
  wal_.flush();
  wal_bytes_ += frame.size() + record.size();
  // The record above is already durable and reflected in the tables, so
  // compacting here rewrites a state that includes it. Trigger on growth
  // past the last snapshot, not absolute size: once live state itself
  // exceeds the threshold (content blobs can — PR 3 stores staged chunks
  // in the WAL), an absolute check would compact on every append.
  if (compact_threshold_ > 0 &&
      wal_bytes_ >= std::max(compact_threshold_, 2 * snapshot_bytes_)) {
    compact();
  }
}

void Database::wal_create_table(const TableSchema& schema) {
  if (wal_path_.empty()) return;
  rpc::Writer w;
  w.u8(static_cast<std::uint8_t>(WalOp::kCreateTable));
  w.str(schema.name);
  w.str(schema.primary);
  w.u32(static_cast<std::uint32_t>(schema.indexes.size()));
  for (const std::string& column : schema.indexes) w.str(column);
  wal_append(w.buffer());
}

void Database::wal_insert(std::string_view table_name, RowId id, const Row& row) {
  if (wal_path_.empty()) return;
  rpc::Writer w;
  w.u8(static_cast<std::uint8_t>(WalOp::kInsert));
  w.str(table_name);
  w.u64(id);
  encode_row(w, row);
  wal_append(w.buffer());
}

void Database::wal_update(std::string_view table_name, RowId id, const Row& row) {
  if (wal_path_.empty()) return;
  rpc::Writer w;
  w.u8(static_cast<std::uint8_t>(WalOp::kUpdate));
  w.str(table_name);
  w.u64(id);
  encode_row(w, row);
  wal_append(w.buffer());
}

void Database::wal_erase(std::string_view table_name, RowId id) {
  if (wal_path_.empty()) return;
  rpc::Writer w;
  w.u8(static_cast<std::uint8_t>(WalOp::kErase));
  w.str(table_name);
  w.u64(id);
  wal_append(w.buffer());
}

void Database::replay() {
  std::ifstream in(wal_path_, std::ios::binary);
  if (!in) return;
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  replaying_ = true;
  std::size_t offset = 0;
  std::uint64_t records = 0;
  try {
    while (offset + 4 <= content.size()) {
      rpc::Reader frame(std::string_view(content).substr(offset, 4));
      const std::uint32_t length = frame.u32();
      if (offset + 4 + length > content.size()) break;  // torn tail record
      rpc::Reader r(std::string_view(content).substr(offset + 4, length));
      offset += 4 + length;
      ++records;

      switch (static_cast<WalOp>(r.u8())) {
        case WalOp::kCreateTable: {
          TableSchema schema;
          schema.name = r.str();
          schema.primary = r.str();
          const std::uint32_t count = r.u32();
          for (std::uint32_t i = 0; i < count; ++i) schema.indexes.push_back(r.str());
          create_table(schema);
          break;
        }
        case WalOp::kInsert: {
          const std::string table_name = r.str();
          const RowId id = r.u64();
          Row row = decode_row(r);
          if (Table* t = table(table_name)) t->insert_with_id(id, std::move(row));
          break;
        }
        case WalOp::kUpdate: {
          const std::string table_name = r.str();
          const RowId id = r.u64();
          Row row = decode_row(r);
          if (Table* t = table(table_name)) t->update(id, std::move(row));
          break;
        }
        case WalOp::kErase: {
          const std::string table_name = r.str();
          const RowId id = r.u64();
          if (Table* t = table(table_name)) t->erase(id);
          break;
        }
      }
    }
  } catch (const rpc::CodecError& error) {
    logger().warn("WAL replay stopped on corrupt record %llu: %s",
                  static_cast<unsigned long long>(records), error.what());
  }
  replaying_ = false;
  logger().debug("replayed %llu WAL records from %s",
                 static_cast<unsigned long long>(records), wal_path_.c_str());
}

void Database::compact() {
  if (wal_path_.empty()) return;
  wal_.close();

  const std::string temp_path = wal_path_ + ".compact";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    auto append = [&out](const std::string& record) {
      rpc::Writer frame;
      frame.u32(static_cast<std::uint32_t>(record.size()));
      out.write(frame.buffer().data(), static_cast<std::streamsize>(frame.size()));
      out.write(record.data(), static_cast<std::streamsize>(record.size()));
    };
    for (const auto& [name, table] : tables_) {
      rpc::Writer w;
      w.u8(static_cast<std::uint8_t>(WalOp::kCreateTable));
      w.str(name);
      w.str(table->primary().value_or(""));
      const std::vector<std::string> indexes = table->index_columns();
      w.u32(static_cast<std::uint32_t>(indexes.size()));
      for (const std::string& column : indexes) w.str(column);
      append(w.buffer());
      table->scan([&](RowId id, const Row& row) {
        rpc::Writer rec;
        rec.u8(static_cast<std::uint8_t>(WalOp::kInsert));
        rec.str(name);
        rec.u64(id);
        encode_row(rec, row);
        append(rec.buffer());
        return true;
      });
    }
  }
  std::filesystem::rename(temp_path, wal_path_);
  wal_.open(wal_path_, std::ios::binary | std::ios::app);
  wal_bytes_ = std::filesystem::file_size(wal_path_);
  snapshot_bytes_ = wal_bytes_;
  ++compactions_;
}

}  // namespace bitdew::db
