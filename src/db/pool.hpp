// Connection pool (the DBCP role in Table 2): reuses engine connections so
// the per-operation cost excludes connection establishment. acquire() blocks
// when `capacity` connections are all leased.
#pragma once

#include <memory>
#include <vector>

#include "db/engine.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::db {

class ConnectionPool {
 public:
  ConnectionPool(Engine& engine, std::size_t capacity)
      : engine_(engine), capacity_(capacity) {}

  /// RAII lease; the connection returns to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ConnectionPool* pool, std::unique_ptr<Connection> connection)
        : pool_(pool), connection_(std::move(connection)) {}
    ~Lease() { release(); }

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), connection_(std::move(other.connection_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        connection_ = std::move(other.connection_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Connection& operator*() { return *connection_; }
    Connection* operator->() { return connection_.get(); }
    explicit operator bool() const { return connection_ != nullptr; }

   private:
    void release() {
      if (pool_ != nullptr && connection_ != nullptr) {
        pool_->give_back(std::move(connection_));
      }
      pool_ = nullptr;
      connection_ = nullptr;
    }

    ConnectionPool* pool_ = nullptr;
    std::unique_ptr<Connection> connection_;
  };

  Lease acquire() EXCLUDES(mutex_) {
    util::UniqueLock lock(mutex_);
    while (true) {
      if (!idle_.empty()) {
        std::unique_ptr<Connection> connection = std::move(idle_.back());
        idle_.pop_back();
        return Lease(this, std::move(connection));
      }
      if (outstanding_ < capacity_) {
        ++outstanding_;
        lock.unlock();
        // connect() outside the lock: it may block on the engine handshake.
        try {
          return Lease(this, engine_.connect());
        } catch (...) {
          lock.lock();
          --outstanding_;
          throw;
        }
      }
      available_.wait(lock);
    }
  }

  std::size_t idle_count() const EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return idle_.size();
  }

 private:
  void give_back(std::unique_ptr<Connection> connection) EXCLUDES(mutex_) {
    {
      const util::LockGuard lock(mutex_);
      idle_.push_back(std::move(connection));
    }
    available_.notify_one();
  }

  Engine& engine_;
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  util::CondVar available_;
  /// Connections created and not yet destroyed.
  std::size_t outstanding_ GUARDED_BY(mutex_) = 0;
  std::vector<std::unique_ptr<Connection>> idle_ GUARDED_BY(mutex_);
};

}  // namespace bitdew::db
