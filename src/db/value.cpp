#include "db/value.hpp"

#include "util/strf.hpp"

namespace bitdew::db {
namespace {

enum class Tag : std::uint8_t { kNull = 0, kInt = 1, kReal = 2, kBool = 3, kText = 4 };

}  // namespace

std::string index_key(const Value& value) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return "n:";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return "i:" + std::to_string(v);
        } else if constexpr (std::is_same_v<T, double>) {
          return "r:" + util::strf("%.17g", v);
        } else if constexpr (std::is_same_v<T, bool>) {
          return v ? "b:1" : "b:0";
        } else {
          return "t:" + v;
        }
      },
      value);
}

std::string to_display(const Value& value) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return "null";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(v);
        } else if constexpr (std::is_same_v<T, double>) {
          return util::strf("%g", v);
        } else if constexpr (std::is_same_v<T, bool>) {
          return v ? "true" : "false";
        } else {
          return v;
        }
      },
      value);
}

void encode_value(rpc::Writer& writer, const Value& value) {
  std::visit(
      [&writer](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          writer.u8(static_cast<std::uint8_t>(Tag::kNull));
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          writer.u8(static_cast<std::uint8_t>(Tag::kInt));
          writer.i64(v);
        } else if constexpr (std::is_same_v<T, double>) {
          writer.u8(static_cast<std::uint8_t>(Tag::kReal));
          writer.f64(v);
        } else if constexpr (std::is_same_v<T, bool>) {
          writer.u8(static_cast<std::uint8_t>(Tag::kBool));
          writer.boolean(v);
        } else {
          writer.u8(static_cast<std::uint8_t>(Tag::kText));
          writer.str(v);
        }
      },
      value);
}

Value decode_value(rpc::Reader& reader) {
  switch (static_cast<Tag>(reader.u8())) {
    case Tag::kNull: return std::monostate{};
    case Tag::kInt: return reader.i64();
    case Tag::kReal: return reader.f64();
    case Tag::kBool: return reader.boolean();
    case Tag::kText: return reader.str();
  }
  throw rpc::CodecError("unknown value tag");
}

void encode_row(rpc::Writer& writer, const Row& row) {
  writer.u32(static_cast<std::uint32_t>(row.size()));
  for (const auto& [column, value] : row) {
    writer.str(column);
    encode_value(writer, value);
  }
}

Row decode_row(rpc::Reader& reader) {
  Row row;
  const std::uint32_t count = reader.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string column = reader.str();
    row.emplace(std::move(column), decode_value(reader));
  }
  return row;
}

std::int64_t get_int(const Row& row, std::string_view column, std::int64_t fallback) {
  const auto it = row.find(column);
  if (it == row.end()) return fallback;
  if (const auto* v = std::get_if<std::int64_t>(&it->second)) return *v;
  return fallback;
}

double get_real(const Row& row, std::string_view column, double fallback) {
  const auto it = row.find(column);
  if (it == row.end()) return fallback;
  if (const auto* v = std::get_if<double>(&it->second)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&it->second)) return static_cast<double>(*v);
  return fallback;
}

bool get_bool(const Row& row, std::string_view column, bool fallback) {
  const auto it = row.find(column);
  if (it == row.end()) return fallback;
  if (const auto* v = std::get_if<bool>(&it->second)) return *v;
  return fallback;
}

std::string get_text(const Row& row, std::string_view column, std::string fallback) {
  const auto it = row.find(column);
  if (it == row.end()) return fallback;
  if (const auto* v = std::get_if<std::string>(&it->second)) return *v;
  return fallback;
}

bool has_column(const Row& row, std::string_view column) { return row.contains(column); }

}  // namespace bitdew::db
