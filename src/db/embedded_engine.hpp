// Embedded engine (the HsqlDB role): commands execute in-process against a
// mutex-guarded Database. Connections still perform a session handshake
// (session-state allocation + token digest) so that pooling has a measurable
// effect, mirroring the JDBC behaviour Table 2 reports.
#pragma once

#include <atomic>

#include "db/engine.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::db {

class EmbeddedEngine final : public Engine {
 public:
  explicit EmbeddedEngine(Database& database) : database_(database) {}

  std::unique_ptr<Connection> connect() override;
  std::string name() const override { return "embedded"; }

  std::uint64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

  /// Serializes access for connections (in-process engine lock).
  util::Mutex& mutex() RETURN_CAPABILITY(mutex_) { return mutex_; }
  /// The shared store; take mutex() around every command.
  Database& database() REQUIRES(mutex_) { return database_; }

 private:
  Database& database_;
  util::Mutex mutex_;
  std::atomic<std::uint64_t> connections_opened_{0};
};

}  // namespace bitdew::db
