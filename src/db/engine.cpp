#include "db/engine.hpp"

namespace bitdew::db {

void encode_command(rpc::Writer& w, const Command& command) {
  w.u8(static_cast<std::uint8_t>(command.op));
  w.str(command.table);
  w.u64(command.id);
  encode_row(w, command.row);
  w.str(command.column);
  encode_value(w, command.value);
  w.u32(command.limit);
}

Command decode_command(rpc::Reader& r) {
  Command command;
  command.op = static_cast<Op>(r.u8());
  command.table = r.str();
  command.id = r.u64();
  command.row = decode_row(r);
  command.column = r.str();
  command.value = decode_value(r);
  command.limit = r.u32();
  return command;
}

void encode_response(rpc::Writer& w, const Response& response) {
  w.boolean(response.ok);
  w.u64(response.id);
  w.u32(static_cast<std::uint32_t>(response.rows.size()));
  for (const ResultRow& row : response.rows) {
    w.u64(row.id);
    encode_row(w, row.row);
  }
  w.str(response.error);
}

Response decode_response(rpc::Reader& r) {
  Response response;
  response.ok = r.boolean();
  response.id = r.u64();
  const std::uint32_t count = r.u32();
  response.rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ResultRow row;
    row.id = r.u64();
    row.row = decode_row(r);
    response.rows.push_back(std::move(row));
  }
  response.error = r.str();
  return response;
}

Response apply_command(Database& database, const Command& command) {
  Response response;
  switch (command.op) {
    case Op::kPing:
      response.ok = true;
      break;
    case Op::kInsert: {
      const auto id = database.insert(command.table, command.row);
      response.ok = id.has_value();
      response.id = id.value_or(0);
      if (!response.ok) response.error = "insert failed (conflict or unknown table)";
      break;
    }
    case Op::kUpdate:
      response.ok = database.update(command.table, command.id, command.row);
      if (!response.ok) response.error = "update failed";
      break;
    case Op::kPatch:
      response.ok = database.patch(command.table, command.id, command.row);
      if (!response.ok) response.error = "patch failed";
      break;
    case Op::kErase:
      response.ok = database.erase(command.table, command.id);
      if (!response.ok) response.error = "erase failed";
      break;
    case Op::kGet: {
      const Row* row = database.get(command.table, command.id);
      response.ok = row != nullptr;
      if (row != nullptr) response.rows.push_back(ResultRow{command.id, *row});
      break;
    }
    case Op::kFind: {
      const std::vector<RowId> ids = database.find(command.table, command.column, command.value);
      response.ok = true;
      const Table* table = database.table(command.table);
      for (const RowId id : ids) {
        if (command.limit != 0 && response.rows.size() >= command.limit) break;
        const Row* row = table != nullptr ? table->get(id) : nullptr;
        if (row != nullptr) response.rows.push_back(ResultRow{id, *row});
      }
      break;
    }
  }
  return response;
}

}  // namespace bitdew::db
