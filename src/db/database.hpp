// DewDB database: a set of named tables with optional write-ahead-log
// durability. When constructed with a path, every mutation is appended to
// the WAL and replayed on the next open; compact() rewrites the log as a
// snapshot. Thread safety is the caller's concern (the engines add it).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "db/table.hpp"

namespace bitdew::db {

/// Per-operation counters (exposed by the Table 2 bench).
struct DatabaseStats {
  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t erases = 0;
  std::uint64_t reads = 0;
  std::uint64_t finds = 0;
};

struct TableSchema {
  std::string name;
  std::string primary;               // empty == none
  std::vector<std::string> indexes;  // secondary indexes
};

class Database {
 public:
  /// In-memory database.
  Database() = default;

  /// Durable database: replays `wal_path` if it exists, then appends.
  explicit Database(std::string wal_path);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Table& create_table(const TableSchema& schema);
  Table* table(std::string_view name);
  const Table* table(std::string_view name) const;

  // Mutations routed through the database so the WAL sees them.
  std::optional<RowId> insert(std::string_view table, Row row);
  bool update(std::string_view table, RowId id, Row row);
  bool patch(std::string_view table, RowId id, const Row& columns);
  bool erase(std::string_view table, RowId id);
  const Row* get(std::string_view table, RowId id);
  std::vector<RowId> find(std::string_view table, std::string_view column, const Value& value);

  /// Rewrites the WAL as a compact snapshot of current state.
  void compact();

  /// Auto-compacts whenever the WAL grows past `threshold_bytes` — or, once
  /// live state itself exceeds the threshold, past twice the last snapshot's
  /// size, so big stored blobs don't force a rewrite on every append (0
  /// disables, the default). Long-running daemons set this so the log's
  /// size tracks live state instead of total history.
  void set_auto_compact(std::uint64_t threshold_bytes) { compact_threshold_ = threshold_bytes; }
  std::uint64_t wal_bytes() const { return wal_bytes_; }
  std::uint64_t compactions() const { return compactions_; }

  const DatabaseStats& stats() const { return stats_; }
  bool durable() const { return !wal_path_.empty(); }

 private:
  enum class WalOp : std::uint8_t {
    kCreateTable = 1,
    kInsert = 2,
    kUpdate = 3,
    kErase = 4,
  };

  void wal_append(const std::string& record);
  void wal_create_table(const TableSchema& schema);
  void wal_insert(std::string_view table, RowId id, const Row& row);
  void wal_update(std::string_view table, RowId id, const Row& row);
  void wal_erase(std::string_view table, RowId id);
  void replay();

  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  DatabaseStats stats_;
  std::string wal_path_;
  std::ofstream wal_;
  bool replaying_ = false;
  std::uint64_t wal_bytes_ = 0;
  std::uint64_t snapshot_bytes_ = 0;  ///< WAL size right after the last compact()
  std::uint64_t compact_threshold_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace bitdew::db
