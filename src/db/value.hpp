// DewDB value and row model.
//
// DewDB is the "traditional SQL database" back-end of the paper's Fig. 1:
// the Data Catalog/Repository/Scheduler serialize their object state into
// it. Rows are schema-less named-column maps over a small typed Value.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "rpc/codec.hpp"

namespace bitdew::db {

/// Column value: null, integer, real, boolean or text.
using Value = std::variant<std::monostate, std::int64_t, double, bool, std::string>;

/// A row: ordered column name -> value map (ordered so WAL bytes and index
/// iteration are deterministic).
using Row = std::map<std::string, Value, std::less<>>;

/// Row id assigned by a table on insert; 0 is never a valid id.
using RowId = std::uint64_t;

/// Canonical string encoding used as index key (type-tagged so that
/// int64(1) and "1" never collide).
std::string index_key(const Value& value);

/// Human rendering for logs/CLI.
std::string to_display(const Value& value);

void encode_value(rpc::Writer& writer, const Value& value);
Value decode_value(rpc::Reader& reader);

void encode_row(rpc::Writer& writer, const Row& row);
Row decode_row(rpc::Reader& reader);

// Typed accessors with defaults; wrong-type columns yield the default.
std::int64_t get_int(const Row& row, std::string_view column, std::int64_t fallback = 0);
double get_real(const Row& row, std::string_view column, double fallback = 0);
bool get_bool(const Row& row, std::string_view column, bool fallback = false);
std::string get_text(const Row& row, std::string_view column, std::string fallback = {});
bool has_column(const Row& row, std::string_view column);

}  // namespace bitdew::db
