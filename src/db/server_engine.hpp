// Client/server engine (the MySQL role).
//
// A dedicated server thread owns the Database and serves framed commands
// over real AF_UNIX socketpairs. Every connect() pays genuine costs: two
// syscalls to create the pair, a wake-up of the server's poll loop, and an
// authentication handshake round-trip with iterated digest work — the
// mechanical reasons a networked engine without pooling is the bottleneck
// Table 2 shows.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "db/engine.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::db {

class ServerEngine final : public Engine {
 public:
  /// auth_rounds controls the digest iterations of the handshake
  /// (password-hash analogue); the Table 2 bench uses the default.
  explicit ServerEngine(Database& database, int auth_rounds = 256);
  ~ServerEngine() override;

  ServerEngine(const ServerEngine&) = delete;
  ServerEngine& operator=(const ServerEngine&) = delete;

  std::unique_ptr<Connection> connect() override;
  std::string name() const override { return "server"; }

  std::uint64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

 private:
  struct Session {
    int fd = -1;
    bool authenticated = false;
  };

  void server_loop();
  void handle_session(Session& session);

  Database& database_;
  const int auth_rounds_;
  int wake_pipe_[2] = {-1, -1};
  util::Mutex pending_mutex_;
  std::vector<int> pending_fds_ GUARDED_BY(pending_mutex_);
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_opened_{0};
  std::thread thread_;
};

}  // namespace bitdew::db
