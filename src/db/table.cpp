#include "db/table.hpp"

#include <algorithm>
#include <cassert>

namespace bitdew::db {

void Table::set_primary(std::string column) {
  assert(rows_.empty() && "primary must be declared before inserts");
  primary_ = std::move(column);
}

void Table::add_index(const std::string& column) {
  if (secondary_.contains(column)) return;
  auto& index = secondary_[column];
  for (const auto& [id, row] : rows_) {
    const auto it = row.find(column);
    if (it != row.end()) index.emplace(index_key(it->second), id);
  }
}

std::vector<std::string> Table::index_columns() const {
  std::vector<std::string> out;
  out.reserve(secondary_.size());
  for (const auto& [column, index] : secondary_) out.push_back(column);
  std::sort(out.begin(), out.end());
  return out;
}

bool Table::has_index(std::string_view column) const {
  return secondary_.contains(std::string(column)) ||
         (primary_.has_value() && *primary_ == column);
}

std::optional<RowId> Table::insert(Row row) { return insert_with_id(next_id_, std::move(row)); }

std::optional<RowId> Table::insert_with_id(RowId id, Row row) {
  if (primary_.has_value()) {
    const auto it = row.find(*primary_);
    if (it == row.end()) return std::nullopt;
    const std::string key = index_key(it->second);
    if (primary_index_.contains(key)) return std::nullopt;
    primary_index_.emplace(key, id);
  }
  index_row(id, row);
  rows_.emplace(id, std::move(row));
  next_id_ = std::max(next_id_, id + 1);
  return id;
}

bool Table::update(RowId id, Row row) {
  const auto it = rows_.find(id);
  if (it == rows_.end()) return false;
  if (primary_.has_value()) {
    const auto new_pk = row.find(*primary_);
    if (new_pk == row.end()) return false;
    const std::string new_key = index_key(new_pk->second);
    const auto existing = primary_index_.find(new_key);
    if (existing != primary_index_.end() && existing->second != id) return false;
    primary_index_.erase(index_key(it->second.at(*primary_)));
    primary_index_.emplace(new_key, id);
  }
  unindex_row(id, it->second);
  index_row(id, row);
  it->second = std::move(row);
  return true;
}

bool Table::patch(RowId id, const Row& columns) {
  const auto it = rows_.find(id);
  if (it == rows_.end()) return false;
  Row merged = it->second;
  for (const auto& [column, value] : columns) merged[column] = value;
  return update(id, std::move(merged));
}

bool Table::erase(RowId id) {
  const auto it = rows_.find(id);
  if (it == rows_.end()) return false;
  if (primary_.has_value()) primary_index_.erase(index_key(it->second.at(*primary_)));
  unindex_row(id, it->second);
  rows_.erase(it);
  return true;
}

const Row* Table::get(RowId id) const {
  const auto it = rows_.find(id);
  return it != rows_.end() ? &it->second : nullptr;
}

std::vector<RowId> Table::find(std::string_view column, const Value& value) const {
  std::vector<RowId> out;
  if (primary_.has_value() && *primary_ == column) {
    const auto it = primary_index_.find(index_key(value));
    if (it != primary_index_.end()) out.push_back(it->second);
    return out;
  }
  const auto index_it = secondary_.find(std::string(column));
  if (index_it != secondary_.end()) {
    const auto [begin, end] = index_it->second.equal_range(index_key(value));
    for (auto it = begin; it != end; ++it) out.push_back(it->second);
  } else {
    for (const auto& [id, row] : rows_) {
      const auto it = row.find(column);
      if (it != row.end() && index_key(it->second) == index_key(value)) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());  // deterministic order for callers/tests
  return out;
}

std::optional<RowId> Table::find_one(std::string_view column, const Value& value) const {
  const std::vector<RowId> ids = find(column, value);
  if (ids.empty()) return std::nullopt;
  return ids.front();
}

std::optional<RowId> Table::by_primary(const Value& value) const {
  if (!primary_.has_value()) return std::nullopt;
  const auto it = primary_index_.find(index_key(value));
  if (it == primary_index_.end()) return std::nullopt;
  return it->second;
}

void Table::scan(const std::function<bool(RowId, const Row&)>& visit) const {
  for (const auto& [id, row] : rows_) {
    if (!visit(id, row)) return;
  }
}

void Table::index_row(RowId id, const Row& row) {
  for (auto& [column, index] : secondary_) {
    const auto it = row.find(column);
    if (it != row.end()) index.emplace(index_key(it->second), id);
  }
}

void Table::unindex_row(RowId id, const Row& row) {
  for (auto& [column, index] : secondary_) {
    const auto it = row.find(column);
    if (it == row.end()) continue;
    const auto [begin, end] = index.equal_range(index_key(it->second));
    for (auto entry = begin; entry != end; ++entry) {
      if (entry->second == id) {
        index.erase(entry);
        break;
      }
    }
  }
}

}  // namespace bitdew::db
