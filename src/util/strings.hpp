// Small string utilities used by the attribute DSL parser, the CLI tool and
// the wire protocols. Nothing here allocates unless it must.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bitdew::util {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits on a separator; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char separator);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Lowercases ASCII.
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with a separator ("a, b, c").
std::string join(const std::vector<std::string>& items, std::string_view separator);

}  // namespace bitdew::util
