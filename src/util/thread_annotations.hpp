// Compile-time concurrency contracts: Clang Thread Safety Analysis macros
// and the annotated mutex/lock wrappers every lock-holding class in src/
// uses. Under Clang, building with -Wthread-safety turns the locking
// discipline documented in comments ("guarded by mutex_", "_locked()
// requires the lock", "callbacks fire outside the lock") into compiler
// errors; under GCC (and any compiler without the attributes) every macro
// expands to nothing and the wrappers are zero-cost shims over the std
// primitives.
//
// Conventions (docs/static-analysis.md):
//  * shared fields:          T field_ GUARDED_BY(mutex_);
//  * lock-requiring helpers: void f_locked() REQUIRES(mutex_);
//  * "call without my lock": void f() EXCLUDES(mutex_);
//  * scoped locking only — LockGuard / UniqueLock / SharedLockGuard; bare
//    lock()/unlock() pairs outside wrapper types are a review smell.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#if defined(__clang__) && (!defined(SWIG))
#define BITDEW_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define BITDEW_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY BITDEW_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  BITDEW_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  BITDEW_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  BITDEW_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  BITDEW_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) \
  BITDEW_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) BITDEW_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS BITDEW_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
#endif

namespace bitdew::util {

/// Annotated std::mutex. The capability every GUARDED_BY field names.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Statically assume the capability is held. For call paths where the
  /// lock is provably taken by an opaque caller — e.g. a std::function
  /// hook whose contract is "fn runs under the lock" — which the
  /// intraprocedural analysis cannot see. Use sparingly; every call site
  /// is a claim the sanitizer matrix must back up.
  void assert_held() ASSERT_CAPABILITY(this) {}

  /// The wrapped primitive, for condition-variable waits (util::CondVar).
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Annotated std::recursive_mutex. The analysis cannot model reentrancy,
/// but GUARDED_BY/REQUIRES contracts on the non-reentrant entry points
/// still hold (re-acquisition happens only through opaque callbacks).
class CAPABILITY("recursive_mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  std::recursive_mutex& native() { return mutex_; }

 private:
  std::recursive_mutex mutex_;
};

/// Annotated std::shared_mutex: exclusive writers, shared readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mutex_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) { return mutex_.try_lock_shared(); }

  std::shared_mutex& native() { return mutex_; }

 private:
  std::shared_mutex mutex_;
};

/// RAII exclusive lock over any of the annotated mutexes (the
/// std::lock_guard shape: locked for the full scope, no unlock).
template <typename MutexType>
class SCOPED_CAPABILITY BasicLockGuard {
 public:
  explicit BasicLockGuard(MutexType& mutex) ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~BasicLockGuard() RELEASE() { mutex_.unlock(); }

  BasicLockGuard(const BasicLockGuard&) = delete;
  BasicLockGuard& operator=(const BasicLockGuard&) = delete;

 private:
  MutexType& mutex_;
};

using LockGuard = BasicLockGuard<Mutex>;
using RecursiveLockGuard = BasicLockGuard<RecursiveMutex>;

/// RAII exclusive lock with manual unlock()/lock() and condition-variable
/// support (the std::unique_lock shape). Always owns on construction.
template <typename MutexType>
class SCOPED_CAPABILITY BasicUniqueLock {
 public:
  explicit BasicUniqueLock(MutexType& mutex) ACQUIRE(mutex) : lock_(mutex.native()) {}
  /// Releases the capability if still held.
  ~BasicUniqueLock() RELEASE() {}

  BasicUniqueLock(const BasicUniqueLock&) = delete;
  BasicUniqueLock& operator=(const BasicUniqueLock&) = delete;

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

  /// The wrapped lock, for condition-variable waits.
  auto& native() { return lock_; }

 private:
  std::unique_lock<std::decay_t<decltype(std::declval<MutexType>().native())>> lock_;
};

using UniqueLock = BasicUniqueLock<Mutex>;
using RecursiveUniqueLock = BasicUniqueLock<RecursiveMutex>;

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& mutex) ACQUIRE_SHARED(mutex) : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedLockGuard() RELEASE_GENERIC() { mutex_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedMutex& mutex_;
};

/// std::condition_variable over util::Mutex via UniqueLock. Predicate waits
/// are deliberately absent: a lambda body is opaque to the analysis, so
/// guarded reads inside one would need escape hatches. Write the loop —
///   while (!ready_) cv_.wait(lock);
/// — and the analysis checks `ready_` against the held capability. (The
/// "lock must be held" precondition itself is std::condition_variable's —
/// violating it is UB the sanitizer matrix catches.)
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& duration) {
    return cv_.wait_for(lock.native(), duration);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(UniqueLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

 private:
  std::condition_variable cv_;
};

/// std::condition_variable_any over any BasicUniqueLock (NodeRuntime waits
/// on the recursive state mutex).
class CondVarAny {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename MutexType>
  void wait(BasicUniqueLock<MutexType>& lock) {
    cv_.wait(lock.native());
  }

  template <typename MutexType, typename Clock, typename Duration>
  std::cv_status wait_until(BasicUniqueLock<MutexType>& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace bitdew::util
