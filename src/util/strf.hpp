// printf-style formatting into std::string.
//
// The toolchain (GCC 12) has no <format>, so the project standardizes on
// strf(): printf semantics, compiler-checked format strings via the `format`
// attribute, returning an owned std::string.
#pragma once

#include <cstdarg>
#include <string>

namespace bitdew::util {

#if defined(__GNUC__)
#define BITDEW_PRINTF_CHECK(fmt_index, args_index) \
  __attribute__((format(printf, fmt_index, args_index)))
#else
#define BITDEW_PRINTF_CHECK(fmt_index, args_index)
#endif

/// vsnprintf into a std::string.
std::string vstrf(const char* fmt, std::va_list args);

/// snprintf into a std::string: strf("%d of %s", 3, "x").
std::string strf(const char* fmt, ...) BITDEW_PRINTF_CHECK(1, 2);

}  // namespace bitdew::util
