#include "util/md5.hpp"

#include <cstring>

namespace bitdew::util {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

// Per-round shift amounts (RFC 1321 §3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

}  // namespace

void Md5::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Md5::transform(const std::uint8_t block[64]) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + kSine[i] + m[g], kShift[i]);
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(const void* data, std::size_t length) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bit_count_ += static_cast<std::uint64_t>(length) * 8;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(length, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    length -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      transform(buffer_);
      buffer_len_ = 0;
    }
  }
  while (length >= 64) {
    transform(bytes);
    bytes += 64;
    length -= 64;
  }
  if (length > 0) {
    std::memcpy(buffer_, bytes, length);
    buffer_len_ = length;
  }
}

Md5Digest Md5::finish() {
  static constexpr std::uint8_t kPadding[64] = {0x80};
  const std::uint64_t bits = bit_count_;

  const std::size_t pad_len = (buffer_len_ < 56) ? 56 - buffer_len_ : 120 - buffer_len_;
  update(kPadding, pad_len);

  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) length_bytes[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  update(length_bytes, sizeof(length_bytes));

  Md5Digest digest;
  for (int i = 0; i < 4; ++i) {
    digest.bytes[i * 4] = static_cast<std::uint8_t>(state_[i]);
    digest.bytes[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest.bytes[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest.bytes[i * 4 + 3] = static_cast<std::uint8_t>(state_[i] >> 24);
  }
  reset();
  return digest;
}

Md5Digest Md5::of(std::string_view text) {
  Md5 hasher;
  hasher.update(text);
  return hasher.finish();
}

std::string Md5Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint8_t byte : bytes) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

std::uint64_t Md5Digest::prefix64() const {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | bytes[static_cast<std::size_t>(i)];
  return value;
}

}  // namespace bitdew::util
