#include "util/auid.hpp"

#include <atomic>
#include <cstdio>

#include "util/rng.hpp"

namespace bitdew::util {
namespace {

std::atomic<std::uint64_t> g_prefix{0xb17d3ed0c0ffee00ULL};
std::atomic<std::uint64_t> g_counter{1};

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Auid next_auid() {
  return Auid{g_prefix.load(std::memory_order_relaxed),
              g_counter.fetch_add(1, std::memory_order_relaxed)};
}

void reseed_auid(std::uint64_t seed) {
  std::uint64_t sm = seed;
  g_prefix.store(splitmix64(sm) | 1, std::memory_order_relaxed);
  g_counter.store(1, std::memory_order_relaxed);
}

std::string Auid::str() const {
  char out[37];
  std::snprintf(out, sizeof(out), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32), static_cast<unsigned>((hi >> 16) & 0xffff),
                static_cast<unsigned>(hi & 0xffff), static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xffffffffffffULL));
  return out;
}

Auid Auid::parse(std::string_view text) {
  if (text.size() != 36 || text[8] != '-' || text[13] != '-' || text[18] != '-' ||
      text[23] != '-') {
    return Auid::nil();
  }
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  int nibbles = 0;
  for (const char c : text) {
    if (c == '-') continue;
    const int v = hex_value(c);
    if (v < 0) return Auid::nil();
    if (nibbles < 16) {
      hi = (hi << 4) | static_cast<std::uint64_t>(v);
    } else {
      lo = (lo << 4) | static_cast<std::uint64_t>(v);
    }
    ++nibbles;
  }
  return nibbles == 32 ? Auid{hi, lo} : Auid::nil();
}

}  // namespace bitdew::util
