// Streaming statistics used by the benchmark harness to report the same
// aggregate rows the paper does (min / max / sd / mean, e.g. Table 3).
#pragma once

#include <cstddef>
#include <vector>

namespace bitdew::util {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Percentile of a sample (nearest-rank); sorts a copy.
double percentile(std::vector<double> samples, double p);

}  // namespace bitdew::util
