#include "util/bytes.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "util/strf.hpp"

namespace bitdew::util {

std::string human_bytes(std::int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kGB) return strf("%.2f GB", b / static_cast<double>(kGB));
  if (bytes >= kMB) return strf("%.2f MB", b / static_cast<double>(kMB));
  if (bytes >= kKB) return strf("%.2f KB", b / static_cast<double>(kKB));
  return strf("%lld B", static_cast<long long>(bytes));
}

std::int64_t parse_bytes(std::string_view text) {
  double value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [rest, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || value < 0) return -1;

  std::string unit;
  for (const char* p = rest; p != end; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) {
      unit.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
    }
  }
  double scale = 1;
  if (unit.empty() || unit == "b") {
    scale = 1;
  } else if (unit == "kb" || unit == "k") {
    scale = static_cast<double>(kKB);
  } else if (unit == "mb" || unit == "m") {
    scale = static_cast<double>(kMB);
  } else if (unit == "gb" || unit == "g") {
    scale = static_cast<double>(kGB);
  } else {
    return -1;
  }
  return static_cast<std::int64_t>(std::llround(value * scale));
}

std::string human_rate(double bytes_per_second) {
  const double bits = bytes_per_second * 8;
  if (bits >= 1e9) return strf("%.2f Gbit/s", bits / 1e9);
  if (bits >= 1e6) return strf("%.2f Mbit/s", bits / 1e6);
  if (bits >= 1e3) return strf("%.2f Kbit/s", bits / 1e3);
  return strf("%.0f bit/s", bits);
}

}  // namespace bitdew::util
