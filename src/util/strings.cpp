#include "util/strings.hpp"

#include <cctype>

namespace bitdew::util {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

}  // namespace bitdew::util
