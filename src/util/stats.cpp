#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace bitdew::util {

void RunningStats::add(double value) {
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

}  // namespace bitdew::util
