// RateShaper: a virtual-clock egress shaper. Serving nodes (the bitdewd
// data plane, worker chunk servers) can bound their outbound bytes/s the
// way a real deployment's uplink does — on loopback the "network" is
// infinitely fast, which flatters a central store: without a per-node cap
// the collective-distribution experiment (paper Fig. 3a/5, DSL-Lab's
// per-provider uplinks) cannot reproduce its bandwidth-bound regime.
//
// The shaper serializes transmissions on one virtual link: each consume(B)
// reserves the link for B/rate seconds after all previously reserved bytes,
// and blocks until its own reservation has drained. Threads share the link
// fairly in arrival order. A rate of 0 disables shaping entirely.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "util/thread_annotations.hpp"

namespace bitdew::util {

class RateShaper {
 public:
  explicit RateShaper(double bytes_per_s = 0) : rate_(bytes_per_s) {}

  double rate() const { return rate_; }

  /// Blocks until `bytes` may leave the link. No-op when unshaped.
  void consume(std::int64_t bytes) EXCLUDES(mutex_) {
    if (rate_ <= 0 || bytes <= 0) return;
    std::chrono::steady_clock::time_point drained;
    {
      const LockGuard lock(mutex_);
      const auto now = std::chrono::steady_clock::now();
      const auto start = next_free_ > now ? next_free_ : now;
      next_free_ = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(bytes / rate_));
      drained = next_free_;
    }
    // Sleep outside the lock: the link reservation is serialized, the wait
    // for one's own reservation to drain is not.
    std::this_thread::sleep_until(drained);
  }

 private:
  Mutex mutex_;
  const double rate_;  ///< bytes per second; <= 0 disables
  std::chrono::steady_clock::time_point next_free_ GUARDED_BY(mutex_){};
};

}  // namespace bitdew::util
