// Deterministic pseudo-random number generation for simulations and tests.
//
// Every simulation owns exactly one Rng seeded explicitly, which makes all
// DES runs reproducible bit-for-bit (DESIGN.md §4.5). The generator is
// xoshiro256** seeded through SplitMix64, the standard pairing recommended
// by the xoshiro authors.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace bitdew::util {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator so it can
/// also drive <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponentially distributed value with the given mean (arrival models).
  double exponential(double mean) { return -mean * std::log1p(-uniform()); }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child stream (per actor / per host).
  Rng fork() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace bitdew::util
