// Lightweight leveled logger used across the BitDew runtime.
//
// Components log through a named Logger ("dc", "ds", "bt", ...). The global
// level is settable programmatically or through the BITDEW_LOG environment
// variable (trace|debug|info|warn|error|off). Logging is thread-safe and
// printf-style with compile-time format checking (see util/strf.hpp for why
// not <format>).
#pragma once

#include <string>
#include <string_view>

#include "util/strf.hpp"

namespace bitdew::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parses a textual level; unknown strings map to kInfo.
LogLevel parse_log_level(std::string_view text);

/// Global minimum level below which messages are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line `[level] [component] message` to stderr.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Named facade bound to one runtime component.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  void trace(const char* fmt, ...) const BITDEW_PRINTF_CHECK(2, 3);
  void debug(const char* fmt, ...) const BITDEW_PRINTF_CHECK(2, 3);
  void info(const char* fmt, ...) const BITDEW_PRINTF_CHECK(2, 3);
  void warn(const char* fmt, ...) const BITDEW_PRINTF_CHECK(2, 3);
  void error(const char* fmt, ...) const BITDEW_PRINTF_CHECK(2, 3);

  bool enabled(LogLevel level) const { return level >= log_level(); }
  const std::string& component() const { return component_; }

 private:
  std::string component_;
};

}  // namespace bitdew::util
