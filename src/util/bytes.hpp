// Byte-size helpers shared by the network model, transfer protocols and the
// benchmark harness (all sizes in the paper are decimal MB).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bitdew::util {

inline constexpr std::int64_t kKB = 1000;
inline constexpr std::int64_t kMB = 1000 * kKB;
inline constexpr std::int64_t kGB = 1000 * kMB;

/// "1.50 GB", "300 KB", "17 B" — for logs and bench tables.
std::string human_bytes(std::int64_t bytes);

/// Parses "500MB", "2.68GB", "512", "10 kb"; returns -1 on malformed input.
std::int64_t parse_bytes(std::string_view text);

/// Bits-per-second rendering: "100.0 Mbit/s".
std::string human_rate(double bytes_per_second);

}  // namespace bitdew::util
