// RFC 1321 MD5 implementation.
//
// BitDew uses MD5 as the data checksum for receiver-driven transfer integrity
// verification and as the DHT key hash (paper §3.3: "checksum is an MD5
// signature of the file"). This is a from-scratch, dependency-free
// implementation; correctness is pinned to the RFC 1321 test suite in
// tests/test_util.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bitdew::util {

/// A 128-bit MD5 digest.
struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  /// Lowercase hex rendering ("d41d8cd98f00b204e9800998ecf8427e").
  std::string hex() const;

  /// The first 8 bytes as a big-endian integer; used as a DHT ring key.
  std::uint64_t prefix64() const;

  friend bool operator==(const Md5Digest&, const Md5Digest&) = default;
  auto operator<=>(const Md5Digest&) const = default;
};

/// Incremental MD5 (init / update / final), for streaming file contents.
class Md5 {
 public:
  Md5() { reset(); }

  void reset();
  void update(const void* data, std::size_t length);
  void update(std::string_view text) { update(text.data(), text.size()); }
  Md5Digest finish();

  /// One-shot digest of a buffer.
  static Md5Digest of(std::string_view text);

 private:
  void transform(const std::uint8_t block[64]);

  std::uint32_t state_[4]{};
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64]{};
  std::size_t buffer_len_ = 0;
};

}  // namespace bitdew::util
