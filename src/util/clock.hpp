// Time source abstraction.
//
// Service cores (DC/DR/DT/DS) never read wall time directly: they take a
// Clock&. Under the discrete-event runtime the Clock is the simulator's
// virtual clock; under the threaded LocalRuntime it is a monotonic system
// clock; unit tests drive a ManualClock. Times are seconds as double.
#pragma once

#include <chrono>

namespace bitdew::util {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary epoch; monotonic, never decreases.
  virtual double now() const = 0;
};

/// Test clock advanced explicitly.
class ManualClock final : public Clock {
 public:
  double now() const override { return now_; }
  void advance(double seconds) { now_ += seconds; }
  void set(double seconds) { now_ = seconds; }

 private:
  double now_ = 0;
};

/// Monotonic wall clock (seconds since construction).
class SystemClock final : public Clock {
 public:
  SystemClock() : start_(std::chrono::steady_clock::now()) {}
  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bitdew::util
