// Time source abstraction.
//
// Service cores (DC/DR/DT/DS) never read wall time directly: they take a
// Clock&. Under the discrete-event runtime the Clock is the simulator's
// virtual clock; under the threaded LocalRuntime it is a monotonic system
// clock; unit tests drive a ManualClock. Times are seconds as double.
#pragma once

#include <chrono>

namespace bitdew::util {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary epoch; monotonic, never decreases.
  virtual double now() const = 0;
};

/// Test clock advanced explicitly.
class ManualClock final : public Clock {
 public:
  double now() const override { return now_; }
  void advance(double seconds) { now_ += seconds; }
  void set(double seconds) { now_ = seconds; }

 private:
  double now_ = 0;
};

/// Monotonic wall clock (seconds since construction).
class SystemClock final : public Clock {
 public:
  SystemClock() : start_(std::chrono::steady_clock::now()) {}
  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Wall clock with a RESTART-STABLE epoch (seconds since the Unix epoch).
/// A durable daemon must use this, not SystemClock: anchored absolute
/// lifetimes are persisted to the WAL as clock readings, and a
/// seconds-since-construction epoch resets on restart — every replayed
/// deadline would silently shift by the previous uptime. NTP steps can
/// nudge this clock; lifetime precision is seconds-to-minutes, so that is
/// an accepted trade for restart stability.
class WallClock final : public Clock {
 public:
  double now() const override {
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace bitdew::util
