#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/thread_annotations.hpp"

namespace bitdew::util {
namespace {

std::atomic<LogLevel> g_level{[] {
  const char* env = std::getenv("BITDEW_LOG");
  return env != nullptr ? parse_log_level(env) : LogLevel::kWarn;
}()};

Mutex g_sink_mutex;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel parse_log_level(std::string_view text) {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  const LockGuard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

#define BITDEW_DEFINE_LOG_METHOD(method, level)                  \
  void Logger::method(const char* fmt, ...) const {             \
    if (!enabled(level)) return;                                 \
    std::va_list args;                                           \
    va_start(args, fmt);                                         \
    log_line(level, component_, vstrf(fmt, args));               \
    va_end(args);                                                \
  }

BITDEW_DEFINE_LOG_METHOD(trace, LogLevel::kTrace)
BITDEW_DEFINE_LOG_METHOD(debug, LogLevel::kDebug)
BITDEW_DEFINE_LOG_METHOD(info, LogLevel::kInfo)
BITDEW_DEFINE_LOG_METHOD(warn, LogLevel::kWarn)
BITDEW_DEFINE_LOG_METHOD(error, LogLevel::kError)

#undef BITDEW_DEFINE_LOG_METHOD

}  // namespace bitdew::util
