// AUID: the unique identifier used for every BitDew object.
//
// The paper (§3.5): "Each object is referenced with a unique identifier AUID,
// a variant of the DCE UID". We reproduce that as a 128-bit id composed of a
// per-process random prefix and a monotonically increasing counter, rendered
// in the familiar 8-4-4-4-12 hex form.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace bitdew::util {

struct Auid {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool is_nil() const { return hi == 0 && lo == 0; }
  std::string str() const;

  /// Parses the 8-4-4-4-12 form produced by str(); returns nil on failure.
  static Auid parse(std::string_view text);

  static constexpr Auid nil() { return Auid{}; }

  friend bool operator==(const Auid&, const Auid&) = default;
  auto operator<=>(const Auid&) const = default;
};

/// Thread-safe process-wide generator.
Auid next_auid();

/// Reseeds the generator prefix; tests use this for reproducible ids.
void reseed_auid(std::uint64_t seed);

}  // namespace bitdew::util

template <>
struct std::hash<bitdew::util::Auid> {
  std::size_t operator()(const bitdew::util::Auid& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.hi ^ (id.lo * 0x9e3779b97f4a7c15ULL));
  }
};
