// Master/Worker BLAST application (paper §5).
//
// Exactly the data-driven program of the paper's Listing 3:
//  * Application  — the BLAST binary, replica = -1 (every node), BitTorrent;
//  * Genebase     — 2.68 GB archive, class affinity on "Sequence" (only
//                   hosts holding a task download it), lifetime = Collector;
//  * Sequence     — per-task query file, replica = 1, fault-tolerant, HTTP,
//                   lifetime = Collector;
//  * Result       — produced by workers, affinity = Collector (uid), so it
//                   flows to the master, lifetime = Collector;
//  * Collector    — empty datum pinned on the master; deleting it at the
//                   end obsoletes everything via relative lifetimes.
//
// Workers are pure ActiveData event handlers: when Application + unzipped
// Genebase + a Sequence are cached, they "run BLAST" (a calibrated compute
// delay), publish a Result served from their own host, and the scheduler
// moves it to the master. No explicit data movement anywhere — the point
// of the paper.
#pragma once

#include <map>
#include <memory>

#include "runtime/sim_runtime.hpp"
#include "util/bytes.hpp"

namespace bitdew::mw {

struct BlastWorkload {
  std::int64_t application_bytes = 4'450'000;   ///< 4.45 MB (paper)
  std::int64_t genebase_bytes = 2'680'000'000;  ///< 2.68 GB (paper)
  std::int64_t sequence_bytes = 30'000;
  std::int64_t result_bytes = 200'000;
  /// Unzip throughput per GHz (the Fig. 6 "unzip" column).
  double unzip_Bps_per_ghz = 6e6;
  /// blastn search cost per task, in GHz-seconds (the "execution" column).
  double exec_ghz_seconds = 900;
  std::string transfer_protocol = "bittorrent";  ///< or "ftp"
  std::string sequence_protocol = "http";        ///< small files: low latency
};

struct WorkerReport {
  std::string host;
  std::string cluster;
  double transfer_s = 0;  ///< start -> all inputs present (excl. unzip)
  double unzip_s = 0;
  double exec_s = 0;
  int tasks = 0;
};

struct BlastReport {
  bool completed = false;
  double total_time_s = 0;  ///< deploy -> last result at the master
  int results = 0;
  std::vector<WorkerReport> workers;

  struct Breakdown {
    double transfer_s = 0;
    double unzip_s = 0;
    double exec_s = 0;
    int workers = 0;
  };
  /// Mean per-cluster breakdown (Fig. 6 columns).
  std::map<std::string, Breakdown> by_cluster() const;
  Breakdown overall() const;
};

struct BlastWorkerSpec {
  net::HostId host = net::kNoHost;
  double cpu_ghz = 2.0;
  std::string cluster = "gdx";
};

/// Runtime configuration tuned for task farming: MaxDataSchedule = 1 so a
/// fast-syncing host cannot hoard several Sequences (the paper's §5
/// scheduling note: keep replication at 1 while tasks outnumber hosts).
runtime::SimRuntimeConfig blast_runtime_config();

/// Drives one full master/worker BLAST run on an existing SimRuntime.
class BlastApplication {
 public:
  BlastApplication(runtime::SimRuntime& runtime, BlastWorkload workload);
  ~BlastApplication();

  /// Deploys master + workers and schedules all data. One task (Sequence)
  /// per `tasks`; workers grab them through Algorithm 1.
  void deploy(net::HostId master, const std::vector<BlastWorkerSpec>& workers, int tasks);

  bool done() const;
  const BlastReport& report() const { return report_; }

  /// Runs the simulation until completion or `max_virtual_s`.
  /// Returns done().
  bool run(double max_virtual_s = 100000);

 private:
  class MasterLogic;
  class WorkerLogic;

  runtime::SimRuntime& runtime_;
  BlastWorkload workload_;
  BlastReport report_;
  double deployed_at_ = 0;
  int tasks_ = 0;
  core::Data collector_;
  std::shared_ptr<MasterLogic> master_logic_;
  std::vector<std::shared_ptr<WorkerLogic>> worker_logics_;
  runtime::SimNode* master_node_ = nullptr;
};

}  // namespace bitdew::mw
