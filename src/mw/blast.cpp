#include "mw/blast.hpp"

#include "util/log.hpp"
#include "util/strf.hpp"

namespace bitdew::mw {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("blast");
  return instance;
}

}  // namespace

runtime::SimRuntimeConfig blast_runtime_config() {
  runtime::SimRuntimeConfig config;
  config.scheduler.max_data_schedule = 1;
  return config;
}

BlastReport::Breakdown BlastReport::overall() const {
  Breakdown sum;
  for (const WorkerReport& worker : workers) {
    if (worker.tasks == 0) continue;
    sum.transfer_s += worker.transfer_s;
    sum.unzip_s += worker.unzip_s;
    sum.exec_s += worker.exec_s;
    ++sum.workers;
  }
  if (sum.workers > 0) {
    sum.transfer_s /= sum.workers;
    sum.unzip_s /= sum.workers;
    sum.exec_s /= sum.workers;
  }
  return sum;
}

std::map<std::string, BlastReport::Breakdown> BlastReport::by_cluster() const {
  std::map<std::string, Breakdown> out;
  for (const WorkerReport& worker : workers) {
    if (worker.tasks == 0) continue;
    Breakdown& b = out[worker.cluster];
    b.transfer_s += worker.transfer_s;
    b.unzip_s += worker.unzip_s;
    b.exec_s += worker.exec_s;
    ++b.workers;
  }
  for (auto& [cluster, b] : out) {
    if (b.workers > 0) {
      b.transfer_s /= b.workers;
      b.unzip_s /= b.workers;
      b.exec_s /= b.workers;
    }
  }
  return out;
}

// --- master -----------------------------------------------------------------

class BlastApplication::MasterLogic final : public core::ActiveDataEventHandler {
 public:
  MasterLogic(BlastApplication& app) : app_(app) {}

  void on_data_copy(const core::Data& data, const core::DataAttributes& attributes) override {
    if (data.name != "Result") return;
    (void)attributes;
    ++app_.report_.results;
    if (app_.report_.results >= app_.tasks_ && !app_.report_.completed) {
      app_.report_.completed = true;
      app_.report_.total_time_s =
          app_.runtime_.simulator().now() - app_.deployed_at_;
      logger().info("all %d results collected after %.1fs", app_.report_.results,
                    app_.report_.total_time_s);
      // End of experiment: deleting the Collector obsoletes Genebase,
      // Sequences and Results through their relative lifetimes (paper §5).
      app_.master_node_->bitdew().remove(app_.collector_);
    }
  }

 private:
  BlastApplication& app_;
};

// --- worker -----------------------------------------------------------------

class BlastApplication::WorkerLogic final
    : public core::ActiveDataEventHandler,
      public std::enable_shared_from_this<BlastApplication::WorkerLogic> {
 public:
  WorkerLogic(BlastApplication& app, runtime::SimNode& node, const BlastWorkerSpec& spec)
      : app_(app), node_(node), spec_(spec) {
    report_.host = node.name();
    report_.cluster = spec.cluster;
  }

  void on_data_copy(const core::Data& data, const core::DataAttributes& attributes) override {
    (void)attributes;
    if (data.name == "Application") {
      have_application_ = true;
    } else if (data.name == "Genebase") {
      start_unzip();
    } else if (data.name == "Sequence") {
      pending_.push_back(data);
    } else {
      return;
    }
    note_input_arrival();
    maybe_execute();
  }

  WorkerReport& report() { return report_; }

 private:
  void note_input_arrival() {
    // Transfer time: deployment until the latest input arrived (unzip and
    // execution are accounted separately).
    report_.transfer_s = app_.runtime_.simulator().now() - app_.deployed_at_ - report_.unzip_s;
  }

  void start_unzip() {
    if (unzip_started_) return;
    unzip_started_ = true;
    const double unzip_time = static_cast<double>(app_.workload_.genebase_bytes) /
                              (app_.workload_.unzip_Bps_per_ghz * spec_.cpu_ghz);
    report_.unzip_s = unzip_time;
    app_.runtime_.simulator().after(unzip_time, [self = shared_from_this()] {
      self->genebase_ready_ = true;
      self->maybe_execute();
    });
  }

  void maybe_execute() {
    if (executing_ || !have_application_ || !genebase_ready_ || pending_.empty()) return;
    executing_ = true;
    const core::Data sequence = pending_.front();
    pending_.erase(pending_.begin());
    const double exec_time = app_.workload_.exec_ghz_seconds / spec_.cpu_ghz;
    app_.runtime_.simulator().after(exec_time, [self = shared_from_this(), sequence,
                                                exec_time] {
      self->executing_ = false;
      self->report_.exec_s += exec_time;
      ++self->report_.tasks;
      self->publish_result(sequence);
      self->maybe_execute();
    });
  }

  void publish_result(const core::Data& sequence) {
    // The Result datum: served from this worker, attracted to the master by
    // affinity on the Collector, dies with the Collector. The locator and
    // schedule are chained on the catalog registration ack — RPCs of
    // different sizes may otherwise overtake each other on the wire.
    api::BitDew& bitdew = node_.bitdew();
    const core::Content content = core::synthetic_content(
        sequence.uid.lo ^ 0xb1a57ULL, app_.workload_.result_bytes);
    auto result = std::make_shared<core::Data>();
    *result = bitdew.create_data("Result", content, [this, result, self = shared_from_this()](
                                                        api::Status registered) {
      if (!registered.ok()) return;
      node_.bitdew().offer_local(*result, app_.workload_.sequence_protocol);

      core::DataAttributes attributes;
      attributes.name = "Result";
      attributes.replica = 0;
      attributes.affinity = app_.collector_.uid;
      attributes.lifetime = core::Lifetime::relative(app_.collector_.uid);
      attributes.protocol = app_.workload_.sequence_protocol;
      // The producing node holds a replica already; the copy event fires
      // locally too (so a master-computed task is collected immediately).
      node_.adopt_local(*result, attributes, /*fire_event=*/true);
      node_.active_data().schedule(*result, attributes);
    });
  }

  BlastApplication& app_;
  runtime::SimNode& node_;
  BlastWorkerSpec spec_;
  WorkerReport report_;
  std::vector<core::Data> pending_;
  bool have_application_ = false;
  bool unzip_started_ = false;
  bool genebase_ready_ = false;
  bool executing_ = false;
};

// --- application ------------------------------------------------------------------

BlastApplication::BlastApplication(runtime::SimRuntime& runtime, BlastWorkload workload)
    : runtime_(runtime), workload_(std::move(workload)) {}

BlastApplication::~BlastApplication() = default;

void BlastApplication::deploy(net::HostId master, const std::vector<BlastWorkerSpec>& workers,
                              int tasks) {
  tasks_ = tasks;
  deployed_at_ = runtime_.simulator().now();

  runtime::SimNode* master_node = runtime_.node_at(master);
  if (master_node == nullptr) master_node = &runtime_.add_node(master);
  master_node_ = master_node;

  api::BitDew& bitdew = master_node->bitdew();

  // Collector: empty datum born on (and pinned to) the master.
  collector_ = bitdew.create_data("Collector");
  master_node->adopt_local(collector_);
  core::DataAttributes collector_attr;
  collector_attr.name = "Collector";
  collector_attr.replica = 0;
  master_node->active_data().pin(collector_, collector_attr);

  master_logic_ = std::make_shared<MasterLogic>(*this);
  master_node->active_data().add_callback(master_logic_);

  // Application: broadcast binary.
  const core::Data application =
      bitdew.create_data("Application", core::synthetic_content(1, workload_.application_bytes));
  bitdew.put(application, core::synthetic_content(1, workload_.application_bytes), nullptr,
             workload_.transfer_protocol);
  core::DataAttributes application_attr;
  application_attr.name = "Application";
  application_attr.replica = core::kReplicaAll;
  application_attr.protocol = workload_.transfer_protocol;
  master_node->active_data().schedule(application, application_attr);

  // Genebase: class affinity on Sequence; only task holders download it.
  const core::Data genebase =
      bitdew.create_data("Genebase", core::synthetic_content(2, workload_.genebase_bytes));
  bitdew.put(genebase, core::synthetic_content(2, workload_.genebase_bytes), nullptr,
             workload_.transfer_protocol);
  core::DataAttributes genebase_attr;
  genebase_attr.name = "Genebase";
  genebase_attr.replica = 0;
  genebase_attr.affinity_name = "Sequence";
  genebase_attr.protocol = workload_.transfer_protocol;
  genebase_attr.lifetime = core::Lifetime::relative(collector_.uid);
  master_node->active_data().schedule(genebase, genebase_attr);

  // Sequences: one per task.
  for (int i = 0; i < tasks; ++i) {
    const core::Data sequence = bitdew.create_data(
        "Sequence", core::synthetic_content(100 + static_cast<std::uint64_t>(i),
                                            workload_.sequence_bytes));
    bitdew.put(sequence,
               core::synthetic_content(100 + static_cast<std::uint64_t>(i),
                                       workload_.sequence_bytes),
               nullptr, workload_.sequence_protocol);
    core::DataAttributes sequence_attr;
    sequence_attr.name = "Sequence";
    sequence_attr.replica = 1;
    sequence_attr.fault_tolerant = true;
    sequence_attr.protocol = workload_.sequence_protocol;
    sequence_attr.lifetime = core::Lifetime::relative(collector_.uid);
    master_node->active_data().schedule(sequence, sequence_attr);
  }

  // Workers: event handlers only.
  for (const BlastWorkerSpec& spec : workers) {
    runtime::SimNode* node = runtime_.node_at(spec.host);
    if (node == nullptr) node = &runtime_.add_node(spec.host);
    auto logic = std::make_shared<WorkerLogic>(*this, *node, spec);
    node->active_data().add_callback(logic);
    worker_logics_.push_back(std::move(logic));
  }

  // The master is a reservoir like any other desktop-grid node, so the
  // scheduler may hand it Sequences too; it must be able to compute them
  // (otherwise those tasks would starve).
  BlastWorkerSpec master_spec;
  master_spec.host = master;
  master_spec.cpu_ghz = workers.empty() ? 2.0 : workers.front().cpu_ghz;
  master_spec.cluster = "master";
  auto master_worker = std::make_shared<WorkerLogic>(*this, *master_node, master_spec);
  master_node->active_data().add_callback(master_worker);
  worker_logics_.push_back(std::move(master_worker));
}

bool BlastApplication::done() const { return report_.completed; }

bool BlastApplication::run(double max_virtual_s) {
  sim::Simulator& sim = runtime_.simulator();
  const double deadline = deployed_at_ + max_virtual_s;
  // Periodic timers never drain the queue; step until done or deadline.
  while (!report_.completed && sim.now() < deadline) {
    const double before = sim.now();
    sim.run_until(std::min(before + 5.0, deadline));
    if (sim.queued() == 0) break;
  }
  // Collect worker reports.
  report_.workers.clear();
  for (const auto& logic : worker_logics_) report_.workers.push_back(logic->report());
  return report_.completed;
}

}  // namespace bitdew::mw
