// In-process DHT stand-in with the same key/value semantics as the simulated
// ring (multi-valued keys). The threaded LocalRuntime uses it as its
// Distributed Data Catalog back-end; tests use it as the semantic reference
// the ring implementation must agree with.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bitdew::dht {

class LocalDht {
 public:
  /// Associates `value` with `key` (idempotent per pair).
  void put(const std::string& key, const std::string& value) EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    store_[key].insert(value);
  }

  /// Bulk publish: one lock acquisition for N pairs (the fallback back-end
  /// of the bus's ddc_publish_batch endpoint).
  void put_batch(const std::vector<std::pair<std::string, std::string>>& pairs)
      EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    for (const auto& [key, value] : pairs) store_[key].insert(value);
  }

  /// All values published under `key`, sorted.
  std::vector<std::string> get(const std::string& key) const EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    const auto it = store_.find(key);
    if (it == store_.end()) return {};
    return {it->second.begin(), it->second.end()};
  }

  /// Removes one (key, value) pair; returns whether it existed.
  bool remove(const std::string& key, const std::string& value) EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    const auto it = store_.find(key);
    if (it == store_.end()) return false;
    const bool erased = it->second.erase(value) > 0;
    if (it->second.empty()) store_.erase(it);
    return erased;
  }

  std::size_t key_count() const EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return store_.size();
  }

 private:
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, std::set<std::string>> store_ GUARDED_BY(mutex_);
};

}  // namespace bitdew::dht
