// Simulated DKS/Chord-style DHT (the paper's Distributed Data Catalog).
//
// The paper implements its DDC with the DKS(N, k, f) DHT family [Alima et
// al. 2003]: N nodes, search arity k, replication degree f. This module
// reproduces those three knobs on a 64-bit ring:
//  * k-ary fingers — each node keeps (k-1) pointers per level, dividing the
//    remaining key distance by k; lookups take O(log_k N) hops;
//  * a successor list of length f used for both routing fall-back and
//    key replication (a key is stored on its owner and f-1 successors);
//  * periodic stabilization repairing successors/predecessor/fingers after
//    joins, graceful leaves and crashes.
// Every hop is a real message flow on the simulated network (plus a
// configurable per-hop processing delay modelling DHT software overhead),
// which is what the Table 3 benchmark measures against the centralized DC.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/md5.hpp"

namespace bitdew::dht {

using NodeIndex = std::uint32_t;

inline constexpr NodeIndex kNoNode = 0xffffffffu;

/// Hash of a string key to ring position.
inline std::uint64_t ring_hash(const std::string& key) {
  return util::Md5::of(key).prefix64();
}

struct RingConfig {
  int arity = 4;                   // k: search arity
  int replication = 3;             // f: owner + (f-1) successors hold a key
  double stabilize_period_s = 2.0;
  double rpc_timeout_s = 1.5;
  double processing_delay_s = 1e-3;  // per-hop software overhead
  std::int64_t message_overhead_bytes = 96;  // header cost per message
};

struct LookupResult {
  bool ok = false;
  NodeIndex owner = kNoNode;
  int hops = 0;
};

struct RingStats {
  std::uint64_t messages = 0;
  std::uint64_t lookup_hops = 0;
  std::uint64_t lookups = 0;
  std::uint64_t timeouts = 0;
  double mean_hops() const {
    return lookups > 0 ? static_cast<double>(lookup_hops) / static_cast<double>(lookups) : 0.0;
  }
};

class Ring {
 public:
  Ring(sim::Simulator& sim, net::Network& net, RingConfig config = {});

  /// Registers a node on `host`. Nodes start detached; call bootstrap_all()
  /// for an initial deployment or join() for late arrivals.
  NodeIndex add_node(net::HostId host);

  /// Builds the correct ring over all currently-added live nodes (initial
  /// deployment; the paper's experiments start from a converged catalog).
  void bootstrap_all();

  /// Starts the stabilization timers (successor repair + finger fixing).
  void start_maintenance();

  /// Asynchronously joins a detached node through a bootstrap node.
  void join(NodeIndex node, NodeIndex bootstrap, std::function<void(bool)> done);

  /// Abrupt failure: the node stops responding (its host is killed by the
  /// caller or here) and its keys survive on replicas.
  void fail(NodeIndex node);

  // --- asynchronous key operations (issued from `from`'s host) ----------
  void lookup(NodeIndex from, const std::string& key, std::function<void(LookupResult)> done);
  void put(NodeIndex from, const std::string& key, const std::string& value,
           std::function<void(bool)> done);
  void get(NodeIndex from, const std::string& key,
           std::function<void(std::vector<std::string>)> done);
  void remove(NodeIndex from, const std::string& key, const std::string& value,
              std::function<void(bool)> done);

  // --- introspection ------------------------------------------------------
  std::size_t node_count() const { return nodes_.size(); }
  bool node_alive(NodeIndex node) const { return nodes_[node].alive; }
  std::uint64_t node_ring_id(NodeIndex node) const { return nodes_[node].id; }
  NodeIndex successor_of(NodeIndex node) const;
  /// Number of (key, value) pairs stored at a node (replicas included).
  std::size_t stored_pairs(NodeIndex node) const;
  /// Brute-force owner for a key given current live membership (oracle for
  /// tests; not used by the protocol).
  NodeIndex oracle_owner(const std::string& key) const;
  const RingStats& stats() const { return stats_; }
  const RingConfig& config() const { return config_; }

 private:
  struct Node {
    std::uint64_t id = 0;
    net::HostId host = 0;
    bool alive = true;
    bool joined = false;
    NodeIndex predecessor = kNoNode;
    std::vector<NodeIndex> successors;           // length <= f
    std::vector<NodeIndex> fingers;              // k-ary fingers, flattened
    std::size_t next_finger_to_fix = 0;
    // key-hash -> key -> set of values (multi-valued store)
    std::map<std::uint64_t, std::map<std::string, std::set<std::string>>> store;
  };

  // in (a, b] on the ring
  static bool in_half_open(std::uint64_t x, std::uint64_t a, std::uint64_t b);
  // in (a, b) on the ring
  static bool in_open(std::uint64_t x, std::uint64_t a, std::uint64_t b);

  /// Sends a message from one node's host to another, invoking handler at
  /// the destination after transfer + processing delay. If the destination
  /// is dead, on_lost fires after the rpc timeout.
  void send(NodeIndex from, NodeIndex to, std::int64_t payload_bytes,
            std::function<void()> handler, std::function<void()> on_lost);

  void lookup_step(NodeIndex origin, NodeIndex at, std::uint64_t key_hash, int hops,
                   std::uint64_t request_id);
  NodeIndex closest_preceding(const Node& node, std::uint64_t key_hash) const;
  NodeIndex first_live_successor(const Node& node) const;
  void store_pair(Node& node, std::uint64_t key_hash, const std::string& key,
                  const std::string& value);
  void replicate(NodeIndex owner, const std::string& key, const std::string& value);
  void stabilize_node(NodeIndex index);
  void fix_one_finger(NodeIndex index);
  void rebuild_successor_list(NodeIndex index);
  std::vector<std::uint64_t> finger_targets(std::uint64_t id) const;
  void finish_lookup(std::uint64_t request_id, LookupResult result);

  sim::Simulator& sim_;
  net::Network& net_;
  RingConfig config_;
  std::vector<Node> nodes_;
  RingStats stats_;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers_;
  std::unordered_map<std::uint64_t, std::function<void(LookupResult)>> pending_lookups_;
  std::unordered_map<std::uint64_t, sim::EventId> lookup_timeouts_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace bitdew::dht
