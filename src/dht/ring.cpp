#include "dht/ring.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace bitdew::dht {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("dht");
  return instance;
}

// Lookup replies traverse the network once; allow a few hop round-trips.
constexpr double kLookupTimeoutFactor = 4.0;

}  // namespace

Ring::Ring(sim::Simulator& sim, net::Network& net, RingConfig config)
    : sim_(sim), net_(net), config_(config) {
  assert(config_.arity >= 2);
  assert(config_.replication >= 1);
}

NodeIndex Ring::add_node(net::HostId host) {
  Node node;
  node.host = host;
  // Ring position: hash of the host name (stable, collision-improbable).
  node.id = ring_hash("dht-node:" + net_.host_name(host) + ":" +
                      std::to_string(nodes_.size()));
  node.fingers.assign(finger_targets(node.id).size(), kNoNode);
  nodes_.push_back(std::move(node));
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

std::vector<std::uint64_t> Ring::finger_targets(std::uint64_t id) const {
  // DKS-style k-ary intervals: at level l the remaining span is 2^64 / k^l;
  // keep (k-1) pointers per level until the span collapses.
  std::vector<std::uint64_t> targets;
  const auto k = static_cast<std::uint64_t>(config_.arity);
  // Start with span = 2^64 / k computed without overflowing.
  std::uint64_t span = (~0ULL / k) + 1;
  while (span > 0) {
    for (std::uint64_t j = 1; j < k; ++j) {
      targets.push_back(id + j * span);  // wraps mod 2^64 by design
    }
    if (span < k) break;
    span /= k;
  }
  return targets;
}

bool Ring::in_half_open(std::uint64_t x, std::uint64_t a, std::uint64_t b) {
  if (a == b) return true;  // full circle
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

bool Ring::in_open(std::uint64_t x, std::uint64_t a, std::uint64_t b) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

void Ring::bootstrap_all() {
  std::vector<NodeIndex> live;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) live.push_back(i);
  }
  std::sort(live.begin(), live.end(),
            [this](NodeIndex a, NodeIndex b) { return nodes_[a].id < nodes_[b].id; });
  const std::size_t n = live.size();
  for (std::size_t i = 0; i < n; ++i) {
    Node& node = nodes_[live[i]];
    node.joined = true;
    node.predecessor = live[(i + n - 1) % n];
    node.successors.clear();
    for (std::size_t j = 1; j <= static_cast<std::size_t>(config_.replication) && j < n + 1;
         ++j) {
      node.successors.push_back(live[(i + j) % n]);
    }
    if (node.successors.empty()) node.successors.push_back(live[i]);
    // Perfect fingers from the oracle membership.
    const std::vector<std::uint64_t> targets = finger_targets(node.id);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      // First live node clockwise from the target.
      NodeIndex best = live[0];
      std::uint64_t best_distance = ~0ULL;
      for (const NodeIndex candidate : live) {
        const std::uint64_t distance = nodes_[candidate].id - targets[t];  // mod 2^64
        if (distance < best_distance) {
          best_distance = distance;
          best = candidate;
        }
      }
      node.fingers[t] = best;
    }
  }
}

void Ring::start_maintenance() {
  timers_.clear();
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    auto timer = std::make_unique<sim::PeriodicTimer>();
    sim::PeriodicTimer* raw = timer.get();
    const double phase = sim_.rng().uniform(0, config_.stabilize_period_s);
    sim_.after(phase, [this, i, raw] {
      raw->start(sim_, config_.stabilize_period_s, [this, i] {
        if (!nodes_[i].alive || !nodes_[i].joined) return;
        stabilize_node(i);
        fix_one_finger(i);
      });
    });
    timers_.push_back(std::move(timer));
  }
}

void Ring::send(NodeIndex from, NodeIndex to, std::int64_t payload_bytes,
                std::function<void()> handler, std::function<void()> on_lost) {
  ++stats_.messages;
  const double deadline = sim_.now() + config_.rpc_timeout_s;
  net_.start_flow(
      nodes_[from].host, nodes_[to].host, payload_bytes + config_.message_overhead_bytes,
      [this, to, handler = std::move(handler), on_lost = std::move(on_lost),
       deadline](const net::FlowResult& result) {
        if (!result.ok || !nodes_[to].alive) {
          if (on_lost) {
            ++stats_.timeouts;
            sim_.at(deadline, on_lost);
          }
          return;
        }
        sim_.after(config_.processing_delay_s, handler);
      });
}

NodeIndex Ring::first_live_successor(const Node& node) const {
  for (const NodeIndex s : node.successors) {
    if (nodes_[s].alive) return s;
  }
  return kNoNode;
}

NodeIndex Ring::successor_of(NodeIndex node) const {
  return first_live_successor(nodes_[node]);
}

NodeIndex Ring::closest_preceding(const Node& node, std::uint64_t key_hash) const {
  NodeIndex best = kNoNode;
  std::uint64_t best_distance = ~0ULL;
  auto consider = [&](NodeIndex candidate) {
    if (candidate == kNoNode || !nodes_[candidate].alive) return;
    const std::uint64_t id = nodes_[candidate].id;
    if (!in_open(id, node.id, key_hash)) return;
    const std::uint64_t distance = key_hash - id;  // clockwise distance to key
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  };
  for (const NodeIndex f : node.fingers) consider(f);
  for (const NodeIndex s : node.successors) consider(s);
  return best;
}

NodeIndex Ring::oracle_owner(const std::string& key) const {
  const std::uint64_t hash = ring_hash(key);
  NodeIndex best = kNoNode;
  std::uint64_t best_distance = ~0ULL;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive || !nodes_[i].joined) continue;
    const std::uint64_t distance = nodes_[i].id - hash;  // clockwise from key
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

std::size_t Ring::stored_pairs(NodeIndex node) const {
  std::size_t pairs = 0;
  for (const auto& [hash, keys] : nodes_[node].store) {
    for (const auto& [key, values] : keys) pairs += values.size();
  }
  return pairs;
}

// --- lookup -----------------------------------------------------------------

void Ring::lookup(NodeIndex from, const std::string& key,
                  std::function<void(LookupResult)> done) {
  const std::uint64_t hash = ring_hash(key);
  const std::uint64_t request_id = next_request_id_++;
  ++stats_.lookups;
  pending_lookups_[request_id] = std::move(done);
  lookup_timeouts_[request_id] =
      sim_.after(config_.rpc_timeout_s * kLookupTimeoutFactor, [this, request_id] {
        ++stats_.timeouts;
        finish_lookup(request_id, LookupResult{});
      });
  lookup_step(from, from, hash, 0, request_id);
}

void Ring::finish_lookup(std::uint64_t request_id, LookupResult result) {
  const auto it = pending_lookups_.find(request_id);
  if (it == pending_lookups_.end()) return;
  auto done = std::move(it->second);
  pending_lookups_.erase(it);
  const auto timeout = lookup_timeouts_.find(request_id);
  if (timeout != lookup_timeouts_.end()) {
    sim_.cancel(timeout->second);
    lookup_timeouts_.erase(timeout);
  }
  stats_.lookup_hops += static_cast<std::uint64_t>(result.hops);
  done(result);
}

void Ring::lookup_step(NodeIndex origin, NodeIndex at, std::uint64_t key_hash, int hops,
                       std::uint64_t request_id) {
  const Node& node = nodes_[at];
  if (!node.alive) return;  // dropped; origin's timeout will fire

  auto reply = [this, origin, at, request_id](NodeIndex owner, int total_hops) {
    const LookupResult result{true, owner, total_hops};
    if (origin == at) {
      finish_lookup(request_id, result);
      return;
    }
    send(at, origin, 32, [this, request_id, result] { finish_lookup(request_id, result); },
         nullptr);
  };

  // Owner is this node?
  if (node.predecessor != kNoNode && nodes_[node.predecessor].alive &&
      in_half_open(key_hash, nodes_[node.predecessor].id, node.id)) {
    reply(at, hops);
    return;
  }
  const NodeIndex successor = first_live_successor(node);
  if (successor == kNoNode || successor == at) {
    reply(at, hops);  // degenerate single-node ring
    return;
  }
  // Owner is the immediate successor?
  if (in_half_open(key_hash, node.id, nodes_[successor].id)) {
    reply(successor, hops);
    return;
  }
  NodeIndex next = closest_preceding(node, key_hash);
  if (next == kNoNode || next == at) next = successor;
  send(at, next, 32,
       [this, origin, next, key_hash, hops, request_id] {
         lookup_step(origin, next, key_hash, hops + 1, request_id);
       },
       nullptr);
}

// --- key operations -----------------------------------------------------------

void Ring::store_pair(Node& node, std::uint64_t key_hash, const std::string& key,
                      const std::string& value) {
  node.store[key_hash][key].insert(value);
}

void Ring::replicate(NodeIndex owner, const std::string& key, const std::string& value) {
  const Node& node = nodes_[owner];
  const std::uint64_t hash = ring_hash(key);
  int copies = config_.replication - 1;
  for (const NodeIndex s : node.successors) {
    if (copies-- <= 0) break;
    if (s == owner) continue;
    send(owner, s,
         static_cast<std::int64_t>(key.size() + value.size()),
         [this, s, hash, key, value] { store_pair(nodes_[s], hash, key, value); }, nullptr);
  }
}

void Ring::put(NodeIndex from, const std::string& key, const std::string& value,
               std::function<void(bool)> done) {
  lookup(from, key, [this, from, key, value, done = std::move(done)](LookupResult result) {
    if (!result.ok) {
      done(false);
      return;
    }
    const NodeIndex owner = result.owner;
    const std::uint64_t hash = ring_hash(key);
    send(from, owner, static_cast<std::int64_t>(key.size() + value.size()),
         [this, from, owner, hash, key, value, done] {
           store_pair(nodes_[owner], hash, key, value);
           replicate(owner, key, value);
           // Ack back to the requester.
           send(owner, from, 16, [done] { done(true); }, [done] { done(false); });
         },
         [done] { done(false); });
  });
}

void Ring::get(NodeIndex from, const std::string& key,
               std::function<void(std::vector<std::string>)> done) {
  lookup(from, key, [this, from, key, done = std::move(done)](LookupResult result) {
    if (!result.ok) {
      done({});
      return;
    }
    const NodeIndex owner = result.owner;
    const std::uint64_t hash = ring_hash(key);
    send(from, owner, static_cast<std::int64_t>(key.size()),
         [this, from, owner, hash, key, done] {
           std::vector<std::string> values;
           const auto& store = nodes_[owner].store;
           const auto by_hash = store.find(hash);
           if (by_hash != store.end()) {
             const auto by_key = by_hash->second.find(key);
             if (by_key != by_hash->second.end()) {
               values.assign(by_key->second.begin(), by_key->second.end());
             }
           }
           const auto payload = static_cast<std::int64_t>(values.size() * 24 + 16);
           send(owner, from, payload, [done, values] { done(values); },
                [done] { done({}); });
         },
         [done] { done({}); });
  });
}

void Ring::remove(NodeIndex from, const std::string& key, const std::string& value,
                  std::function<void(bool)> done) {
  lookup(from, key, [this, from, key, value, done = std::move(done)](LookupResult result) {
    if (!result.ok) {
      done(false);
      return;
    }
    const NodeIndex owner = result.owner;
    const std::uint64_t hash = ring_hash(key);
    auto erase_at = [this, hash, key, value](NodeIndex at) {
      auto& store = nodes_[at].store;
      const auto by_hash = store.find(hash);
      if (by_hash == store.end()) return;
      const auto by_key = by_hash->second.find(key);
      if (by_key == by_hash->second.end()) return;
      by_key->second.erase(value);
      if (by_key->second.empty()) by_hash->second.erase(by_key);
      if (by_hash->second.empty()) store.erase(by_hash);
    };
    send(from, owner, static_cast<std::int64_t>(key.size() + value.size()),
         [this, from, owner, erase_at, key, value, done] {
           erase_at(owner);
           int copies = config_.replication - 1;
           for (const NodeIndex s : nodes_[owner].successors) {
             if (copies-- <= 0) break;
             if (s == owner) continue;
             send(owner, s, 32, [erase_at, s] { erase_at(s); }, nullptr);
           }
           send(owner, from, 16, [done] { done(true); }, [done] { done(false); });
         },
         [done] { done(false); });
  });
}

// --- membership ----------------------------------------------------------------

void Ring::join(NodeIndex node, NodeIndex bootstrap, std::function<void(bool)> done) {
  Node& joining = nodes_[node];
  joining.joined = false;
  joining.predecessor = kNoNode;
  const std::string key = "join:" + std::to_string(joining.id);
  // Find the successor of our ring position through the bootstrap node.
  const std::uint64_t request_id = next_request_id_++;
  ++stats_.lookups;
  pending_lookups_[request_id] = [this, node, done = std::move(done)](LookupResult result) {
    if (!result.ok || result.owner == kNoNode) {
      done(false);
      return;
    }
    Node& joining = nodes_[node];
    const NodeIndex successor = result.owner;
    joining.successors.assign(1, successor);
    joining.joined = true;
    // Ask the successor to hand over our keys and adopt us as predecessor.
    send(node, successor,
         64,
         [this, node, successor] {
           Node& succ = nodes_[successor];
           // Keys in (joining.id backwards from succ) now belong to `node`:
           // every stored hash h with h <= joining.id measured in succ's arc.
           std::vector<std::pair<std::uint64_t, std::pair<std::string, std::string>>> moved;
           const std::uint64_t boundary = nodes_[node].id;
           for (const auto& [hash, keys] : succ.store) {
             const std::uint64_t from_id =
                 succ.predecessor != kNoNode ? nodes_[succ.predecessor].id : succ.id;
             if (in_half_open(hash, from_id, boundary)) {
               for (const auto& [key, values] : keys) {
                 for (const auto& value : values) moved.push_back({hash, {key, value}});
               }
             }
           }
           for (const auto& [hash, kv] : moved) {
             store_pair(nodes_[node], hash, kv.first, kv.second);
           }
           if (succ.predecessor == kNoNode || !nodes_[succ.predecessor].alive ||
               in_open(nodes_[node].id, nodes_[succ.predecessor].id, succ.id)) {
             succ.predecessor = node;
           }
         },
         nullptr);
    done(true);
  };
  lookup_timeouts_[request_id] =
      sim_.after(config_.rpc_timeout_s * kLookupTimeoutFactor, [this, request_id] {
        ++stats_.timeouts;
        finish_lookup(request_id, LookupResult{});
      });
  lookup_step(bootstrap, bootstrap, joining.id, 0, request_id);
}

void Ring::fail(NodeIndex node) {
  nodes_[node].alive = false;
  logger().debug("dht node %u failed", node);
}

void Ring::stabilize_node(NodeIndex index) {
  Node& node = nodes_[index];
  if (node.predecessor != kNoNode && !nodes_[node.predecessor].alive) {
    node.predecessor = kNoNode;
  }
  // Drop dead successors.
  std::erase_if(node.successors, [this](NodeIndex s) { return !nodes_[s].alive; });
  if (node.successors.empty()) {
    // Fall back to any live finger; otherwise the node is isolated.
    for (const NodeIndex f : node.fingers) {
      if (f != kNoNode && nodes_[f].alive && f != index) {
        node.successors.push_back(f);
        break;
      }
    }
    if (node.successors.empty()) return;
  }
  const NodeIndex successor = node.successors.front();
  // Classic Chord stabilize: ask the successor for its predecessor and
  // successor list, adopt a closer successor if one appeared, then notify.
  send(index, successor, 48,
       [this, index, successor] {
         const Node& succ = nodes_[successor];
         const NodeIndex between = succ.predecessor;
         const std::vector<NodeIndex> succ_list = succ.successors;
         send(successor, index, 96,
              [this, index, successor, between, succ_list] {
                Node& node = nodes_[index];
                NodeIndex new_successor = successor;
                if (between != kNoNode && between != index && nodes_[between].alive &&
                    in_open(nodes_[between].id, node.id, nodes_[successor].id)) {
                  new_successor = between;
                }
                // Rebuild successor list: new successor + its list.
                node.successors.assign(1, new_successor);
                for (const NodeIndex s : succ_list) {
                  if (node.successors.size() >=
                      static_cast<std::size_t>(config_.replication)) {
                    break;
                  }
                  if (s != index && nodes_[s].alive &&
                      std::find(node.successors.begin(), node.successors.end(), s) ==
                          node.successors.end()) {
                    node.successors.push_back(s);
                  }
                }
                // Notify: we may be our successor's predecessor.
                const NodeIndex target = node.successors.front();
                send(index, target, 16,
                     [this, index, target] {
                       Node& succ = nodes_[target];
                       if (succ.predecessor == kNoNode || !nodes_[succ.predecessor].alive ||
                           in_open(nodes_[index].id, nodes_[succ.predecessor].id, succ.id)) {
                         succ.predecessor = index;
                       }
                     },
                     nullptr);
              },
              nullptr);
       },
       [this, index] {
         // Successor unreachable: drop it now; next round promotes the next.
         Node& node = nodes_[index];
         if (!node.successors.empty() && !nodes_[node.successors.front()].alive) {
           node.successors.erase(node.successors.begin());
         }
       });
}

void Ring::fix_one_finger(NodeIndex index) {
  Node& node = nodes_[index];
  if (node.fingers.empty()) return;
  const std::size_t slot = node.next_finger_to_fix++ % node.fingers.size();
  const std::uint64_t target = finger_targets(node.id)[slot];
  const std::uint64_t request_id = next_request_id_++;
  ++stats_.lookups;
  pending_lookups_[request_id] = [this, index, slot](LookupResult result) {
    if (result.ok && result.owner != kNoNode) nodes_[index].fingers[slot] = result.owner;
  };
  lookup_timeouts_[request_id] =
      sim_.after(config_.rpc_timeout_s * kLookupTimeoutFactor, [this, request_id] {
        finish_lookup(request_id, LookupResult{});
      });
  lookup_step(index, index, target, 0, request_id);
}

void Ring::rebuild_successor_list(NodeIndex index) { stabilize_node(index); }

}  // namespace bitdew::dht
