// Live DKS/Chord-style ring over the real RPC transport (the networked
// counterpart of the simulated dht/ring.hpp — same DKS(N, k, f) knobs, same
// interval math, real frames instead of simulator events).
//
// Each bitdewd member runs one LiveRing next to its ServiceHost. The ring
// keeps the classic Chord routing state under one mutex — predecessor,
// successor list of length f, k-ary fingers — and repairs it from the
// host's failure-sweep thread (tick(): predecessor ping, stabilize+notify,
// one finger fix per round). Lookups are iterative: handle_lookup answers
// one routing step from local tables only (it never calls out, so serving
// a lookup can never deadlock two members against each other), and
// resolve_owner chases steps node to node with a hop budget.
//
// The ring knows nothing about the catalog. Key enumeration and handoff
// ingestion are delegated to callbacks (services::RingRouter binds them),
// keeping the locking story one-directional: the router may call into the
// ring while holding the container lock is NEVER required here — the ring
// invokes the callbacks only while holding none of its own locks.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/expected.hpp"
#include "rpc/transport.hpp"
#include "rpc/wire.hpp"
#include "util/md5.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::dht {

/// Hash of a catalog key string to its ring position (identical formula to
/// the simulator's ring_hash, so sim and live deployments shard alike).
inline std::uint64_t live_ring_hash(const std::string& key) {
  return util::Md5::of(key).prefix64();
}

/// x in (a, b] on the 64-bit ring; (a, a] is the full circle.
constexpr bool ring_in_half_open(std::uint64_t x, std::uint64_t a, std::uint64_t b) {
  if (a == b) return true;
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

/// x in (a, b) on the 64-bit ring; (a, a) is everything but a.
constexpr bool ring_in_open(std::uint64_t x, std::uint64_t a, std::uint64_t b) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

struct LiveRingConfig {
  std::uint64_t ring_id = 0;   ///< 0 = derive from the advertised endpoint
  std::string endpoint;        ///< self "host:port" (the ServiceHost address)
  std::string join_endpoint;   ///< member to join through; empty = bootstrap
  int arity = 4;               ///< k: search arity (finger fan-out)
  int replication = 2;         ///< f: owner + (f-1) successors hold a key
  double stabilize_period_s = 2.0;
  double call_timeout_s = 2.0;  ///< per ring RPC (connect and reply budget)
  int max_hops = 32;            ///< iterative lookup budget
};

class LiveRing {
 public:
  /// Re-encodes every locally held catalog entry whose key hash lies in
  /// (from_excl, to_incl] as replayable ops. (from, from] means everything.
  using OpsSource = std::function<std::vector<rpc::wire::RingOp>(std::uint64_t from_excl,
                                                                 std::uint64_t to_incl)>;
  /// Applies handed-off ops to the local store (no re-replication).
  using OpsSink = std::function<void(const std::vector<rpc::wire::RingOp>&)>;

  LiveRing(LiveRingConfig config, OpsSource ops_in_range, OpsSink apply_handoff);
  LiveRing(const LiveRing&) = delete;
  LiveRing& operator=(const LiveRing&) = delete;

  /// Bootstraps a fresh ring (empty join_endpoint) or joins through the
  /// configured member: iterative lookup of our own id, then kRingJoin to
  /// the admitting successor, ingesting the key handoff it returns.
  api::Status start();

  /// Planned departure: pushes every locally held entry to the first
  /// reachable successor (replicate=true, so it re-fans out as the new
  /// owner) and announces the leave so the successor adopts our
  /// predecessor. Safe to call more than once.
  void leave();

  const rpc::wire::RingNode& self() const { return self_; }
  const LiveRingConfig& config() const { return config_; }

  /// Strict ownership: true only when local tables prove `hash` is ours
  /// (standalone, or a live predecessor with hash in (pred, self]). When
  /// unsure the caller must resolve_owner() — claiming keys on a dead
  /// predecessor's say-so would swallow other members' ranges.
  bool owns(std::uint64_t hash) const;

  /// Iterative lookup from self; marks unreachable members suspect and
  /// restarts locally, bounded by max_hops total steps.
  api::Expected<rpc::wire::RingNode> resolve_owner(std::uint64_t hash);

  std::vector<rpc::wire::RingNode> successors() const;

  /// Walks successor pointers clockwise collecting the membership (bounded
  /// by `cap` and by id cycles). Used by dc_search fan-out and kRingInfo
  /// consumers; tolerates partial walks when a member is unreachable.
  std::vector<rpc::wire::RingNode> collect_members(std::size_t cap = 128);

  /// One framed call to a member, through a cached per-endpoint channel.
  /// Failure marks the member suspect; success clears the suspicion.
  api::Expected<std::string> call(const std::string& endpoint, rpc::wire::Endpoint ep,
                                  const std::function<void(rpc::Writer&)>& encode);

  /// Ships ops to a member; returns per-op statuses (index-aligned).
  std::vector<api::Status> store_at(const rpc::wire::RingNode& target,
                                    const rpc::wire::RingStoreRequest& request);

  // --- server-side handlers (called from ServiceHost dispatch) -----------
  rpc::wire::RingLookupReply handle_lookup(std::uint64_t hash);
  api::Expected<rpc::wire::RingJoinReply> handle_join(const rpc::wire::RingNode& joiner);
  void handle_notify(const rpc::wire::RingNode& candidate);
  rpc::wire::RingStabilizeReply handle_stabilize();
  void handle_leave(const rpc::wire::RingLeaveRequest& request);

  /// Membership + finger health snapshot (key counts are filled in by the
  /// router, which owns the key index).
  rpc::wire::RingStatusInfo status() const;

  /// One maintenance round: revive aged suspects, ping the predecessor,
  /// stabilize with the first live successor, fix one finger. Runs on the
  /// ServiceHost sweep thread; holds no lock across any RPC.
  void tick();

 private:
  struct Link {
    util::Mutex mutex;  ///< ClientChannel is strictly one call at a time
    rpc::ClientChannel channel GUARDED_BY(mutex);
    Link(std::string host, std::uint16_t port, double timeout_s)
        : channel(std::move(host), port, timeout_s, timeout_s) {}
  };

  std::shared_ptr<Link> link_for(const std::string& endpoint) EXCLUDES(links_mutex_);
  bool suspect_locked(const std::string& endpoint) const REQUIRES(mutex_);
  rpc::wire::RingNode first_live_successor_locked() const REQUIRES(mutex_);
  rpc::wire::RingNode closest_preceding_locked(std::uint64_t hash) const REQUIRES(mutex_);
  void adopt_pred_locked(const rpc::wire::RingNode& candidate) REQUIRES(mutex_);

  LiveRingConfig config_;
  rpc::wire::RingNode self_;
  OpsSource ops_in_range_;
  OpsSink apply_handoff_;

  mutable util::Mutex mutex_;
  bool has_pred_ GUARDED_BY(mutex_) = false;
  rpc::wire::RingNode pred_ GUARDED_BY(mutex_);
  std::vector<rpc::wire::RingNode> successors_ GUARDED_BY(mutex_);
  std::vector<std::uint64_t> finger_targets_ GUARDED_BY(mutex_);
  /// Finger table; empty endpoint = unresolved.
  std::vector<rpc::wire::RingNode> fingers_ GUARDED_BY(mutex_);
  std::size_t next_finger_ GUARDED_BY(mutex_) = 0;
  bool left_ GUARDED_BY(mutex_) = false;
  /// Members that failed an RPC, with the time of suspicion; skipped by
  /// routing until revived (re-probed) after ~10 stabilization periods.
  std::unordered_map<std::string, std::chrono::steady_clock::time_point> suspects_
      GUARDED_BY(mutex_);

  util::Mutex links_mutex_ ACQUIRED_AFTER(mutex_);
  std::unordered_map<std::string, std::shared_ptr<Link>> links_ GUARDED_BY(links_mutex_);
};

}  // namespace bitdew::dht
