#include "dht/live_ring.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

#include "util/log.hpp"

namespace bitdew::dht {
namespace {

namespace wire = rpc::wire;
using wire::Endpoint;

const util::Logger& logger() {
  static const util::Logger instance("livering");
  return instance;
}

/// Splits "host:port"; false on a malformed endpoint.
bool split_endpoint(const std::string& endpoint, std::string& host, std::uint16_t& port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= endpoint.size()) return false;
  unsigned long value = 0;
  for (std::size_t i = colon + 1; i < endpoint.size(); ++i) {
    const char c = endpoint[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 65535) return false;
  }
  if (value == 0) return false;
  host = endpoint.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

/// DKS-style k-ary finger targets (same construction as the simulator): at
/// each level the remaining span divides by k, with (k-1) pointers per
/// level, until the span collapses.
std::vector<std::uint64_t> make_finger_targets(std::uint64_t id, int arity) {
  std::vector<std::uint64_t> targets;
  const auto k = static_cast<std::uint64_t>(arity);
  std::uint64_t span = (~0ULL / k) + 1;
  while (span > 0) {
    for (std::uint64_t j = 1; j < k; ++j) {
      targets.push_back(id + j * span);  // wraps mod 2^64 by design
    }
    if (span < k) break;
    span /= k;
  }
  return targets;
}

}  // namespace

LiveRing::LiveRing(LiveRingConfig config, OpsSource ops_in_range, OpsSink apply_handoff)
    : config_(std::move(config)),
      ops_in_range_(std::move(ops_in_range)),
      apply_handoff_(std::move(apply_handoff)) {
  assert(config_.arity >= 2);
  assert(config_.replication >= 1);
  self_.endpoint = config_.endpoint;
  self_.id = config_.ring_id != 0 ? config_.ring_id
                                  : live_ring_hash("ring-node:" + config_.endpoint);
  finger_targets_ = make_finger_targets(self_.id, config_.arity);
  fingers_.assign(finger_targets_.size(), wire::RingNode{});
}

std::shared_ptr<LiveRing::Link> LiveRing::link_for(const std::string& endpoint) {
  const util::LockGuard lock(links_mutex_);
  const auto it = links_.find(endpoint);
  if (it != links_.end()) return it->second;
  std::string host;
  std::uint16_t port = 0;
  if (!split_endpoint(endpoint, host, port)) return nullptr;
  auto link = std::make_shared<Link>(std::move(host), port, config_.call_timeout_s);
  links_.emplace(endpoint, link);
  return link;
}

api::Expected<std::string> LiveRing::call(const std::string& endpoint, Endpoint ep,
                                          const std::function<void(rpc::Writer&)>& encode) {
  const std::shared_ptr<Link> link = link_for(endpoint);
  if (link == nullptr) {
    return api::Error{api::Errc::kTransport, "ring", "malformed member endpoint " + endpoint};
  }
  api::Expected<std::string> reply = [&] {
    const util::LockGuard lock(link->mutex);
    return link->channel.call(ep, encode);
  }();
  {
    const util::LockGuard lock(mutex_);
    if (reply.ok()) {
      suspects_.erase(endpoint);
    } else {
      suspects_[endpoint] = std::chrono::steady_clock::now();
    }
  }
  return reply;
}

bool LiveRing::suspect_locked(const std::string& endpoint) const {
  return suspects_.count(endpoint) > 0;
}

wire::RingNode LiveRing::first_live_successor_locked() const {
  for (const wire::RingNode& s : successors_) {
    if (s.id != self_.id && !suspect_locked(s.endpoint)) return s;
  }
  return {};
}

wire::RingNode LiveRing::closest_preceding_locked(std::uint64_t hash) const {
  wire::RingNode best;
  std::uint64_t best_distance = ~0ULL;
  // Plain loops, not a considered-candidate lambda: a lambda body does not
  // inherit the held capability, so guarded reads inside one trip the
  // analysis.
  const std::vector<wire::RingNode>* tables[] = {&fingers_, &successors_};
  for (const auto* table : tables) {
    for (const wire::RingNode& candidate : *table) {
      if (candidate.endpoint.empty() || candidate.id == self_.id) continue;
      if (suspect_locked(candidate.endpoint)) continue;
      if (!ring_in_open(candidate.id, self_.id, hash)) continue;
      const std::uint64_t distance = hash - candidate.id;  // clockwise to the key
      if (distance < best_distance) {
        best_distance = distance;
        best = candidate;
      }
    }
  }
  return best;
}

bool LiveRing::owns(std::uint64_t hash) const {
  const util::LockGuard lock(mutex_);
  if (has_pred_ && !suspect_locked(pred_.endpoint)) {
    return ring_in_half_open(hash, pred_.id, self_.id);
  }
  // No live predecessor: we own everything only when provably standalone.
  return first_live_successor_locked().endpoint.empty();
}

wire::RingLookupReply LiveRing::handle_lookup(std::uint64_t hash) {
  const util::LockGuard lock(mutex_);
  if (has_pred_ && !suspect_locked(pred_.endpoint) &&
      ring_in_half_open(hash, pred_.id, self_.id)) {
    return {true, self_};
  }
  const wire::RingNode succ = first_live_successor_locked();
  if (succ.endpoint.empty()) return {true, self_};  // degenerate / standalone
  if (ring_in_half_open(hash, self_.id, succ.id)) return {true, succ};
  wire::RingNode next = closest_preceding_locked(hash);
  if (next.endpoint.empty() || next.id == self_.id) next = succ;
  return {false, next};
}

api::Expected<wire::RingNode> LiveRing::resolve_owner(std::uint64_t hash) {
  wire::RingNode at = self_;
  for (int hop = 0; hop < config_.max_hops; ++hop) {
    wire::RingLookupReply step;
    if (at.id == self_.id) {
      step = handle_lookup(hash);
    } else {
      const api::Expected<std::string> reply =
          call(at.endpoint, Endpoint::kRingLookup, [&](rpc::Writer& w) { w.u64(hash); });
      if (!reply.ok()) {
        at = self_;  // member marked suspect; restart on repaired tables
        continue;
      }
      try {
        rpc::Reader r(*reply);
        const api::Expected<wire::RingLookupReply> decoded =
            wire::read_expected<wire::RingLookupReply>(r, wire::read_ring_lookup_reply);
        if (!decoded.ok()) {
          at = self_;
          continue;
        }
        step = *decoded;
      } catch (const rpc::CodecError&) {
        at = self_;
        continue;
      }
    }
    if (step.done) return step.node;
    if (step.node.id == at.id) return step.node;  // no progress: stop here
    at = step.node;
  }
  return api::Error{api::Errc::kUnavailable, "ring", "lookup exceeded hop budget"};
}

std::vector<wire::RingNode> LiveRing::successors() const {
  const util::LockGuard lock(mutex_);
  return successors_;
}

std::vector<wire::RingNode> LiveRing::collect_members(std::size_t cap) {
  std::vector<wire::RingNode> members{self_};
  std::unordered_set<std::uint64_t> seen{self_.id};
  wire::RingNode cursor;
  {
    const util::LockGuard lock(mutex_);
    cursor = first_live_successor_locked();
  }
  while (!cursor.endpoint.empty() && seen.insert(cursor.id).second && members.size() < cap) {
    members.push_back(cursor);
    const api::Expected<std::string> reply =
        call(cursor.endpoint, Endpoint::kRingStabilize, [](rpc::Writer&) {});
    if (!reply.ok()) break;
    wire::RingNode next;
    try {
      rpc::Reader r(*reply);
      const api::Expected<wire::RingStabilizeReply> decoded =
          wire::read_expected<wire::RingStabilizeReply>(r, wire::read_ring_stabilize_reply);
      if (!decoded.ok()) break;
      const util::LockGuard lock(mutex_);
      for (const wire::RingNode& s : decoded->successors) {
        if (!suspect_locked(s.endpoint)) {
          next = s;
          break;
        }
      }
    } catch (const rpc::CodecError&) {
      break;
    }
    cursor = next;
  }
  return members;
}

std::vector<api::Status> LiveRing::store_at(const wire::RingNode& target,
                                            const wire::RingStoreRequest& request) {
  if (request.ops.empty()) return {};
  const api::Expected<std::string> reply =
      call(target.endpoint, Endpoint::kRingStore,
           [&](rpc::Writer& w) { wire::write_ring_store_request(w, request); });
  if (!reply.ok()) return std::vector<api::Status>(request.ops.size(), reply.error());
  try {
    rpc::Reader r(*reply);
    std::vector<api::Status> statuses = wire::read_status_batch(r);
    if (!r.exhausted() || statuses.size() != request.ops.size()) {
      throw rpc::CodecError("ring store reply not index-aligned");
    }
    return statuses;
  } catch (const rpc::CodecError& error) {
    return std::vector<api::Status>(
        request.ops.size(),
        api::Status(api::Error{api::Errc::kTransport, "ring", error.what()}));
  }
}

// --- membership ---------------------------------------------------------------

api::Status LiveRing::start() {
  if (config_.join_endpoint.empty()) return api::ok_status();  // bootstrap

  // Iterative lookup of our own ring position, seeded at the bootstrap
  // member (mirrors the simulator's join: the owner of our id is the
  // successor that must admit us).
  wire::RingNode at{0, config_.join_endpoint};
  wire::RingNode successor;
  bool resolved = false;
  for (int hop = 0; hop < config_.max_hops && !resolved; ++hop) {
    const api::Expected<std::string> reply =
        call(at.endpoint, Endpoint::kRingLookup, [&](rpc::Writer& w) { w.u64(self_.id); });
    if (!reply.ok()) {
      if (at.endpoint == config_.join_endpoint) return reply.error();
      at = {0, config_.join_endpoint};  // fall back to the bootstrap member
      continue;
    }
    try {
      rpc::Reader r(*reply);
      const api::Expected<wire::RingLookupReply> decoded =
          wire::read_expected<wire::RingLookupReply>(r, wire::read_ring_lookup_reply);
      if (!decoded.ok()) return decoded.error();
      if (decoded->done) {
        successor = decoded->node;
        resolved = true;
      } else if (decoded->node.id == at.id) {
        successor = decoded->node;
        resolved = true;
      } else {
        at = decoded->node;
      }
    } catch (const rpc::CodecError& error) {
      return api::Error{api::Errc::kTransport, "ring", error.what()};
    }
  }
  if (!resolved) {
    return api::Error{api::Errc::kUnavailable, "ring", "join lookup exceeded hop budget"};
  }
  if (successor.id == self_.id) {
    return api::Error{api::Errc::kRejected, "ring",
                      "ring id collision with " + successor.endpoint};
  }

  const api::Expected<std::string> reply =
      call(successor.endpoint, Endpoint::kRingJoin,
           [&](rpc::Writer& w) { wire::write_ring_node(w, self_); });
  if (!reply.ok()) return reply.error();
  wire::RingJoinReply admitted;
  try {
    rpc::Reader r(*reply);
    const api::Expected<wire::RingJoinReply> decoded =
        wire::read_expected<wire::RingJoinReply>(r, wire::read_ring_join_reply);
    if (!decoded.ok()) return decoded.error();
    admitted = std::move(*decoded);
  } catch (const rpc::CodecError& error) {
    return api::Error{api::Errc::kTransport, "ring", error.what()};
  }

  {
    const util::LockGuard lock(mutex_);
    successors_.assign(1, successor);
    for (const wire::RingNode& s : admitted.successors) {
      if (successors_.size() >= static_cast<std::size_t>(config_.replication)) break;
      if (s.id == self_.id || s.id == successor.id) continue;
      successors_.push_back(s);
    }
    if (admitted.has_pred && admitted.pred.id != self_.id) {
      pred_ = admitted.pred;
      has_pred_ = true;
    }
  }
  if (!admitted.handoff.empty()) apply_handoff_(admitted.handoff);
  logger().info("joined ring via %s as id %016llx (%zu handoff ops)",
                successor.endpoint.c_str(),
                static_cast<unsigned long long>(self_.id), admitted.handoff.size());
  return api::ok_status();
}

void LiveRing::leave() {
  {
    const util::LockGuard lock(mutex_);
    if (left_) return;
    left_ = true;
  }
  const std::vector<wire::RingNode> succs = successors();
  wire::RingLeaveRequest request;
  request.leaver = self_;
  {
    const util::LockGuard lock(mutex_);
    request.has_pred = has_pred_ && !suspect_locked(pred_.endpoint);
    request.pred = pred_;
  }
  // Everything we hold — owned keys and replicas alike — goes to the first
  // reachable successor as owner-with-replication; replay is idempotent.
  const wire::RingStoreRequest handoff{true, ops_in_range_(self_.id, self_.id)};
  for (const wire::RingNode& s : succs) {
    if (s.id == self_.id) continue;
    if (!handoff.ops.empty()) {
      const std::vector<api::Status> statuses = store_at(s, handoff);
      if (!statuses.empty() && !statuses.front().ok() &&
          statuses.front().error().code == api::Errc::kTransport) {
        continue;  // unreachable: try the next successor
      }
    }
    const api::Expected<std::string> reply =
        call(s.endpoint, Endpoint::kRingLeave,
             [&](rpc::Writer& w) { wire::write_ring_leave_request(w, request); });
    if (reply.ok()) {
      logger().info("left ring; %zu ops handed to %s", handoff.ops.size(),
                    s.endpoint.c_str());
      return;
    }
  }
  if (!succs.empty()) logger().warn("leave: no successor reachable for handoff");
}

api::Expected<wire::RingJoinReply> LiveRing::handle_join(const wire::RingNode& joiner) {
  if (joiner.id == self_.id || joiner.endpoint.empty()) {
    return api::Error{api::Errc::kRejected, "ring", "ring id collision"};
  }
  wire::RingJoinReply reply;
  std::uint64_t from = 0;
  {
    const util::LockGuard lock(mutex_);
    reply.self = self_;
    reply.has_pred = has_pred_;
    reply.pred = pred_;
    reply.successors = successors_;
    from = (has_pred_ && !suspect_locked(pred_.endpoint)) ? pred_.id : self_.id;
    adopt_pred_locked(joiner);
    if (successors_.empty()) successors_.push_back(joiner);  // first joiner
  }
  // Handed-off keys stay local too: they become our replicas of the new
  // owner's range, which is exactly the f-replication invariant.
  reply.handoff = ops_in_range_(from, joiner.id);
  logger().info("admitted %s (id %016llx), handing %zu ops", joiner.endpoint.c_str(),
                static_cast<unsigned long long>(joiner.id), reply.handoff.size());
  return reply;
}

void LiveRing::adopt_pred_locked(const wire::RingNode& candidate) {
  if (candidate.id == self_.id || candidate.endpoint.empty()) return;
  if (!has_pred_ || suspect_locked(pred_.endpoint) ||
      ring_in_open(candidate.id, pred_.id, self_.id)) {
    pred_ = candidate;
    has_pred_ = true;
    suspects_.erase(candidate.endpoint);  // it just reached us: it is alive
  }
}

void LiveRing::handle_notify(const wire::RingNode& candidate) {
  const util::LockGuard lock(mutex_);
  adopt_pred_locked(candidate);
}

wire::RingStabilizeReply LiveRing::handle_stabilize() {
  const util::LockGuard lock(mutex_);
  wire::RingStabilizeReply reply;
  reply.has_pred = has_pred_;
  reply.pred = pred_;
  reply.successors = successors_;
  return reply;
}

void LiveRing::handle_leave(const wire::RingLeaveRequest& request) {
  const util::LockGuard lock(mutex_);
  suspects_[request.leaver.endpoint] = std::chrono::steady_clock::now();
  if (has_pred_ && pred_.id == request.leaver.id) {
    if (request.has_pred && request.pred.id != self_.id) {
      pred_ = request.pred;
    } else {
      has_pred_ = false;
    }
  }
  std::erase_if(successors_,
                [&](const wire::RingNode& s) { return s.id == request.leaver.id; });
  for (wire::RingNode& f : fingers_) {
    if (f.id == request.leaver.id) f = wire::RingNode{};
  }
}

wire::RingStatusInfo LiveRing::status() const {
  const util::LockGuard lock(mutex_);
  wire::RingStatusInfo info;
  info.self = self_;
  info.has_pred = has_pred_ && !suspect_locked(pred_.endpoint);
  info.pred = pred_;
  info.successors = successors_;
  info.fingers_total = static_cast<std::uint32_t>(fingers_.size());
  for (const wire::RingNode& f : fingers_) {
    if (!f.endpoint.empty() && !suspect_locked(f.endpoint)) ++info.fingers_resolved;
  }
  return info;
}

void LiveRing::tick() {
  const auto now = std::chrono::steady_clock::now();
  const auto revive_after = std::chrono::duration<double>(10 * config_.stabilize_period_s);

  // 1. Revive aged suspects so transient failures (and restarted members)
  // get re-probed instead of being shunned forever.
  wire::RingNode pred;
  bool ping_pred = false;
  {
    const util::LockGuard lock(mutex_);
    std::erase_if(suspects_, [&](const auto& entry) {
      return now - entry.second > revive_after;
    });
    if (has_pred_ && !suspect_locked(pred_.endpoint)) {
      pred = pred_;
      ping_pred = true;
    }
  }

  // 2. Predecessor liveness: the ownership rule leans on a live pred, so
  // probe it every round (call() marks it suspect on failure).
  if (ping_pred) call(pred.endpoint, Endpoint::kPing, [](rpc::Writer&) {});

  // 3. Stabilize with the first live successor (classic Chord: adopt its
  // closer predecessor, rebuild the list, notify).
  wire::RingNode succ;
  {
    const util::LockGuard lock(mutex_);
    // Manual erase loop: suspect_locked requires the capability, which a
    // lambda body handed to std::erase_if would not inherit.
    for (auto it = successors_.begin(); it != successors_.end();) {
      it = suspect_locked(it->endpoint) ? successors_.erase(it) : it + 1;
    }
    if (successors_.empty()) {
      // Fall back to any live finger, then to the predecessor: a two-node
      // ring must survive its successor entry going suspect.
      for (const wire::RingNode& f : fingers_) {
        if (!f.endpoint.empty() && f.id != self_.id && !suspect_locked(f.endpoint)) {
          successors_.push_back(f);
          break;
        }
      }
      if (successors_.empty() && has_pred_ && !suspect_locked(pred_.endpoint)) {
        successors_.push_back(pred_);
      }
    }
    if (!successors_.empty()) succ = successors_.front();
  }
  if (!succ.endpoint.empty()) {
    const api::Expected<std::string> reply =
        call(succ.endpoint, Endpoint::kRingStabilize, [](rpc::Writer&) {});
    if (reply.ok()) {
      try {
        rpc::Reader r(*reply);
        const api::Expected<wire::RingStabilizeReply> decoded =
            wire::read_expected<wire::RingStabilizeReply>(r, wire::read_ring_stabilize_reply);
        if (decoded.ok()) {
          wire::RingNode notify_target;
          {
            const util::LockGuard lock(mutex_);
            wire::RingNode new_succ = succ;
            if (decoded->has_pred && decoded->pred.id != self_.id &&
                !decoded->pred.endpoint.empty() && !suspect_locked(decoded->pred.endpoint) &&
                ring_in_open(decoded->pred.id, self_.id, succ.id)) {
              new_succ = decoded->pred;
            }
            successors_.assign(1, new_succ);
            for (const wire::RingNode& s : decoded->successors) {
              if (successors_.size() >= static_cast<std::size_t>(config_.replication)) break;
              if (s.id == self_.id || s.endpoint.empty() || suspect_locked(s.endpoint)) continue;
              if (std::any_of(successors_.begin(), successors_.end(),
                              [&](const wire::RingNode& have) { return have.id == s.id; })) {
                continue;
              }
              successors_.push_back(s);
            }
            notify_target = successors_.front();
          }
          call(notify_target.endpoint, Endpoint::kRingNotify,
               [&](rpc::Writer& w) { wire::write_ring_node(w, self_); });
        }
      } catch (const rpc::CodecError&) {
        // Malformed reply: treat like a failed round; next tick retries.
      }
    } else {
      const util::LockGuard lock(mutex_);
      if (!successors_.empty() && successors_.front().id == succ.id) {
        successors_.erase(successors_.begin());
      }
    }
  }

  // 4. Fix one finger per round.
  if (!finger_targets_.empty()) {
    std::size_t slot = 0;
    std::uint64_t target = 0;
    {
      const util::LockGuard lock(mutex_);
      slot = next_finger_++ % finger_targets_.size();
      target = finger_targets_[slot];
    }
    const api::Expected<wire::RingNode> owner = resolve_owner(target);
    const util::LockGuard lock(mutex_);
    fingers_[slot] = owner.ok() ? *owner : wire::RingNode{};
  }
}

}  // namespace bitdew::dht
