#include "services/data_catalog.hpp"

namespace bitdew::services {
namespace {

constexpr const char* kDataTable = "dc_data";
constexpr const char* kLocatorTable = "dc_locator";

db::Row data_to_row(const core::Data& data) {
  db::Row row;
  row["uid"] = data.uid.str();
  row["name"] = data.name;
  row["checksum"] = data.checksum;
  row["size"] = data.size;
  row["flags"] = static_cast<std::int64_t>(data.flags);
  return row;
}

core::Data row_to_data(const db::Row& row) {
  core::Data data;
  data.uid = util::Auid::parse(db::get_text(row, "uid"));
  data.name = db::get_text(row, "name");
  data.checksum = db::get_text(row, "checksum");
  data.size = db::get_int(row, "size");
  data.flags = static_cast<std::uint32_t>(db::get_int(row, "flags"));
  return data;
}

db::Row locator_to_row(const core::Locator& locator) {
  db::Row row;
  row["data_uid"] = locator.data_uid.str();
  row["protocol"] = locator.protocol;
  row["host"] = locator.host;
  row["path"] = locator.path;
  row["credentials"] = locator.credentials;
  return row;
}

core::Locator row_to_locator(const db::Row& row) {
  core::Locator locator;
  locator.data_uid = util::Auid::parse(db::get_text(row, "data_uid"));
  locator.protocol = db::get_text(row, "protocol");
  locator.host = db::get_text(row, "host");
  locator.path = db::get_text(row, "path");
  locator.credentials = db::get_text(row, "credentials");
  return locator;
}

}  // namespace

DataCatalog::DataCatalog(db::Database& database) : database_(database) {
  database_.create_table(db::TableSchema{kDataTable, "uid", {"name"}});
  database_.create_table(db::TableSchema{kLocatorTable, "", {"data_uid"}});
}

bool DataCatalog::register_data(const core::Data& data) {
  return database_.insert(kDataTable, data_to_row(data)).has_value();
}

std::vector<bool> DataCatalog::register_batch(const std::vector<core::Data>& items) {
  std::vector<bool> out;
  out.reserve(items.size());
  for (const core::Data& data : items) out.push_back(register_data(data));
  return out;
}

std::optional<core::Data> DataCatalog::get(const util::Auid& uid) const {
  const db::Table* table = database_.table(kDataTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return std::nullopt;
  return row_to_data(*table->get(*id));
}

std::vector<core::Data> DataCatalog::search(const std::string& name) const {
  const db::Table* table = database_.table(kDataTable);
  std::vector<core::Data> out;
  for (const db::RowId id : table->find("name", db::Value{name})) {
    out.push_back(row_to_data(*table->get(id)));
  }
  return out;
}

std::optional<core::Data> DataCatalog::search_one(const std::string& name) const {
  const std::vector<core::Data> all = search(name);
  if (all.empty()) return std::nullopt;
  return all.front();
}

bool DataCatalog::remove(const util::Auid& uid) {
  db::Table* data_table = database_.table(kDataTable);
  const auto id = data_table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return false;
  database_.erase(kDataTable, *id);
  for (const db::RowId locator_id : database_.find(kLocatorTable, "data_uid",
                                                   db::Value{uid.str()})) {
    database_.erase(kLocatorTable, locator_id);
  }
  return true;
}

bool DataCatalog::add_locator(const core::Locator& locator) {
  if (!get(locator.data_uid).has_value()) return false;
  return database_.insert(kLocatorTable, locator_to_row(locator)).has_value();
}

std::vector<core::Locator> DataCatalog::locators(const util::Auid& uid) const {
  const db::Table* table = database_.table(kLocatorTable);
  std::vector<core::Locator> out;
  for (const db::RowId id : table->find("data_uid", db::Value{uid.str()})) {
    out.push_back(row_to_locator(*table->get(id)));
  }
  return out;
}

std::vector<std::vector<core::Locator>> DataCatalog::locators_batch(
    const std::vector<util::Auid>& uids) const {
  std::vector<std::vector<core::Locator>> out;
  out.reserve(uids.size());
  for (const util::Auid& uid : uids) out.push_back(locators(uid));
  return out;
}

std::size_t DataCatalog::size() const { return database_.table(kDataTable)->size(); }

}  // namespace bitdew::services
