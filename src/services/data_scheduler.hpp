// Data Scheduler (DS): implements Algorithm 1 of the paper verbatim.
//
// Reservoir hosts periodically synchronize their local cache Δk against the
// scheduler's data set Θ. The reply Ψk tells the host what to keep
// (Δk ∩ Ψk), what to download (Ψk \ Δk) and what to delete (Δk \ Ψk):
//
//   Step 1 keeps cached data that is still in Θ, whose absolute lifetime
//          has not expired and whose relative lifetime reference is still
//          in Θ; fault-tolerant data refreshes its owner set Ω.
//   Step 2 adds missing data, first by affinity (placement dependency on a
//          datum already cached — stronger than replica), then by replica
//          count (|Ω(Dj)| < replica, or replica == -1 meaning every host),
//          stopping when |Ψk \ Δk| reaches MaxDataSchedule.
//
// Host failures are detected by timeout on the periodic synchronizations
// (3x the heartbeat period by default, matching the paper's Fig. 4): the
// owner set of fault-tolerant data drops the dead host, so the replica rule
// re-schedules the data elsewhere; non-fault-tolerant data keeps the dead
// owner, so the replica is simply unavailable while the host is down —
// exactly the semantics of the `fault tolerance` attribute.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/attributes.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"
#include "util/clock.hpp"

namespace bitdew::services {

/// Reservoir hosts are identified by name (transport-agnostic).
using HostName = std::string;

/// Protocol name of the locators minted for worker chunk servers (the peer
/// data plane). Matches transfer::kPeerProtocol; duplicated here because
/// the service tier does not depend on the transfer engines.
inline constexpr const char* kPeerLocatorProtocol = "p2p";

struct SchedulerConfig {
  int max_data_schedule = 8;        ///< Algorithm 1's MaxDataSchedule
  double heartbeat_period_s = 1.0;  ///< expected sync period
  double failure_timeout_factor = 3.0;  ///< timeout = factor * heartbeat
  /// Out-of-band protocols schedule() accepts in `attributes.protocol`; an
  /// unknown name is a typed rejection at schedule time, not a silent
  /// fallback at download time. Empty = accept anything (simulation
  /// experiments plug arbitrary protocols into the registry).
  std::set<std::string> known_protocols = {"ftp", "http", "bittorrent",
                                           "localfile", "tcp", "p2p"};
  /// Peer locators attached to one download order (wire-size bound).
  int max_peer_sources = 8;
  /// Collective-distribution gate for p2p data: at most
  /// swarm_factor * |owners| assignments may be in flight at once (minimum
  /// one — the seed pulls from the repository). The swarm doubles each
  /// generation instead of stampeding the repository; <= 0 disables.
  int swarm_factor = 2;
  /// Host-table garbage collection: a host dead for more than this many
  /// failure sweeps is forgotten entirely (ds_hosts stops listing it).
  /// Owner sets in Θ are untouched — non-fault-tolerant data keeps its dead
  /// owner, per the paper. 0 (the default) never forgets, matching the
  /// pre-GC behavior simulations were calibrated against.
  int host_gc_sweeps = 0;
};

struct ScheduledData {
  core::Data data;
  core::DataAttributes attributes;
};

/// One reservoir synchronization request (sync protocol v2, incremental).
///
/// A full sync carries the host's complete Δk in `added` (removed is
/// ignored) and is always accepted; the reply mints a fresh epoch. A delta
/// sync (`full == false`) carries only the cache changes since the last
/// *acked* beat and is accepted only when `epoch` matches the scheduler's
/// per-host epoch and the host is alive — otherwise the reply sets `resync`
/// and the host must immediately repeat the sync in full. Deltas are
/// idempotent (sets, not counters), so a host whose reply was lost simply
/// re-sends the same delta on the next beat.
struct SyncRequest {
  HostName host;
  std::uint64_t epoch = 0;  ///< scheduler-minted sync epoch; 0 = none yet
  bool full = true;         ///< `added` is the complete Δk, not a delta
  std::vector<util::Auid> added;    ///< full: Δk; delta: gained since ack
  std::vector<util::Auid> removed;  ///< delta: dropped since ack
  /// Downloads still running (keeps their provisional assignment alive).
  std::vector<util::Auid> in_flight;
  /// Chunk-server endpoint ("host:port", empty = not serving).
  std::string endpoint;

  friend bool operator==(const SyncRequest&, const SyncRequest&) = default;
};

/// Reply to one synchronization (the three Ψk partitions).
struct SyncReply {
  /// Sync epoch the host must echo in its next delta. A full sync mints a
  /// fresh value; a delta reply repeats the current one.
  std::uint64_t epoch = 0;
  /// The request's delta was not accepted (epoch mismatch, scheduler
  /// restart, or the host was presumed dead): every partition is empty and
  /// the host must repeat the sync in full.
  bool resync = false;
  /// Confirmed cached data: the full Δk ∩ Ψk on a full sync, only the
  /// newly confirmed (added ∩ Θ) uids on a delta sync.
  std::vector<util::Auid> keep;
  std::vector<ScheduledData> download;     ///< Ψk \ Δk, with attributes
  std::vector<util::Auid> drop;            ///< Δk \ Ψk — safe to delete
  /// Peer locators for each download item (index-aligned with `download`):
  /// live hosts that confirmed holding the datum and announced a chunk
  /// server endpoint. Dead hosts and the requesting host are filtered; an
  /// empty list means "repository only" (e.g. the first copy of a swarm).
  std::vector<std::vector<core::Locator>> sources;
};

/// One row of the scheduler's host table (the failure detector's view of a
/// reservoir node), served over the bus as the ds_hosts endpoint so CLIs and
/// CI can observe liveness instead of inferring it.
struct HostInfo {
  HostName name;
  double last_sync_age_s = 0;  ///< seconds since the last ds_sync
  bool alive = true;
  std::uint32_t cached = 0;    ///< size of the mirrored Δk
  /// Chunk-server endpoint ("host:port") the node announced via ds_sync;
  /// empty when the node does not serve peers.
  std::string endpoint;
  // Sync protocol v2 accounting: how much the incremental path is saving.
  std::uint64_t full_syncs = 0;        ///< full Δk reports processed
  std::uint64_t delta_syncs = 0;       ///< incremental beats processed
  std::uint32_t last_delta_items = 0;  ///< |added| + |removed| of the last delta

  friend bool operator==(const HostInfo&, const HostInfo&) = default;
};

struct SchedulerStats {
  std::uint64_t syncs = 0;
  std::uint64_t full_syncs = 0;    ///< syncs carrying the complete Δk
  std::uint64_t delta_syncs = 0;   ///< incremental (v2) beats accepted
  std::uint64_t resyncs = 0;       ///< deltas refused (epoch mismatch/revival)
  std::uint64_t orders = 0;        ///< download orders issued
  std::uint64_t drops = 0;         ///< deletion orders issued
  std::uint64_t failures = 0;      ///< hosts declared dead
  std::uint64_t reaped = 0;        ///< data expired out of Θ
  std::uint64_t hosts_gcd = 0;     ///< dead hosts forgotten by the table GC
};

class DataScheduler {
 public:
  DataScheduler(const util::Clock& clock, SchedulerConfig config = {});

  // --- data set Θ -----------------------------------------------------------
  /// Adds or updates a datum with its attributes (the ActiveData schedule
  /// call lands here). Returns false (rejection) when the request is
  /// invalid: nil uid, replica below the broadcast marker, an `oob`
  /// protocol outside config.known_protocols, or a self-referential
  /// affinity / relative lifetime — Θ is untouched then. A duration
  /// lifetime (the DSL's abstime) is anchored HERE, on this scheduler's
  /// clock: the stored entry becomes kAbsolute at now + duration.
  bool schedule(const core::Data& data, const core::DataAttributes& attributes);

  /// Bulk schedule: per-item accept/reject outcomes aligned with the input.
  /// The native back-end of the bus's ds_schedule_batch endpoint.
  std::vector<bool> schedule_batch(const std::vector<ScheduledData>& items);

  /// Pins a datum to a host: the host is recorded as a permanent owner, the
  /// datum is pushed to that host at its next sync if not already cached
  /// (even when replica/affinity would not place it), and it will never be
  /// dropped from that host's cache. Returns false when the datum is not
  /// scheduled.
  bool pin(const util::Auid& uid, const HostName& host);

  /// Removes a datum from Θ; hosts delete it at their next sync, and any
  /// data with a relative lifetime on it expires too (paper's Collector
  /// pattern).
  bool unschedule(const util::Auid& uid);

  // --- reservoir protocol -----------------------------------------------------
  /// One reservoir synchronization (Algorithm 1, sync protocol v2). The
  /// request carries either the complete Δk (full) or the delta since the
  /// last acked beat; `in_flight` lists downloads the host is still
  /// running, which keeps their provisional assignment alive. An assignment
  /// that is neither confirmed (appearing in Δk) nor refreshed (in_flight)
  /// expires after the failure timeout and the datum is re-scheduled — a
  /// host that failed a download cannot permanently absorb a replica.
  /// A delta beat costs O(|added| + |removed| + |in_flight| + |demand|)
  /// work, never O(|Θ|) or O(|Δk|): the scheduler mirrors each host's
  /// reported cache and indexes Θ by demand, name and expiry.
  SyncReply sync(const SyncRequest& request);

  /// Legacy full-report form (sync protocol v1): every beat carries the
  /// whole Δk. Equivalent to a SyncRequest with full = true.
  SyncReply sync(const HostName& host, const std::vector<util::Auid>& cache,
                 const std::vector<util::Auid>& in_flight = {},
                 const std::string& endpoint = {});

  /// Scans for hosts whose last sync exceeded the failure timeout and
  /// updates owner sets. Returns the hosts newly declared dead.
  std::vector<HostName> detect_failures();

  // --- introspection ------------------------------------------------------------
  std::set<HostName> owners(const util::Auid& uid) const;
  std::size_t scheduled_count() const { return theta_.size(); }
  std::optional<ScheduledData> scheduled(const util::Auid& uid) const;
  bool host_alive(const HostName& host) const;
  std::vector<HostName> known_hosts() const;
  /// The failure detector's host table, sorted by name.
  std::vector<HostInfo> host_table() const;
  const SchedulerStats& stats() const { return stats_; }
  const SchedulerConfig& config() const { return config_; }

 private:
  struct HostState {
    double last_sync = 0;
    bool alive = true;
    std::uint64_t epoch = 0;      // current sync epoch (0 = never full-synced)
    std::set<util::Auid> cache;   // mirror of the host's reported Δk
    std::size_t reported = 0;     // mirror size after the last sync (host_table)
    std::string endpoint;         // announced chunk-server address ("" = none)
    int dead_sweeps = 0;          // failure sweeps survived while dead (GC)
    std::set<util::Auid> owned;        // inverse Ω index: uids this host owns
    std::set<util::Auid> pending_uids; // uids provisionally assigned here
    /// Deletion orders not yet acked by a `removed` delta; re-emitted every
    /// beat until the host confirms (a lost reply cannot strand a drop).
    std::set<util::Auid> drop_queue;
    std::uint64_t full_syncs = 0;
    std::uint64_t delta_syncs = 0;
    std::size_t last_delta_items = 0;
  };

  struct Entry {
    core::Data data;
    core::DataAttributes attributes;
    std::set<HostName> owners;   // Ω(D): hosts that confirmed holding D
    std::set<HostName> holders;  // hosts whose mirrored Δk contains D
    std::map<HostName, double> pending;  // assigned, unconfirmed -> deadline
    std::set<HostName> pinned;

    /// Owners plus still-credible assignments (the replica-rule count).
    std::size_t effective_owners(double now) const;
  };

  /// Drops data whose absolute lifetime passed or whose relative reference
  /// left Θ. O(expired), driven by the expiry min-heap and the relative-
  /// lifetime dependency index, not a Θ scan.
  void reap(double now);

  bool lifetime_valid(const Entry& entry, double now) const;

  /// Erases one datum from Θ with full index upkeep: queues drops to every
  /// mirrored holder and cascades into its relative-lifetime dependents.
  void erase_entry(const util::Auid& uid, bool count_reaped);

  /// Recomputes the datum's membership in the step-2 demand index: a datum
  /// is in demand when some host not holding it could still be assigned it
  /// (broadcast, unmet replica count, affinity rule, or a pin).
  void update_demand(const util::Auid& uid, const Entry& entry);

  /// Registers `host` as a confirmed owner (Ω insert + inverse index).
  void grant_owner(const util::Auid& uid, Entry& entry, const HostName& host,
                   HostState& state);

  /// Marks one reported uid as held: grants ownership when the datum is
  /// scheduled and valid (confirming any pending assignment), queues a drop
  /// otherwise. Appends confirmed uids to `reply.keep`.
  void admit_reported(const util::Auid& uid, HostState& state, const HostName& host,
                      double now, SyncReply& reply);

  /// The per-beat Algorithm 1 step 2 over the demand index, and the re-
  /// emission / cancellation of queued deletion orders.
  void assign_and_drop(const HostName& host, HostState& state, double now,
                       double pending_ttl, SyncReply& reply);

  /// Live peer locators for a datum, excluding `requester` (at most
  /// config_.max_peer_sources, deterministic order).
  std::vector<core::Locator> peer_sources(const util::Auid& uid, const Entry& entry,
                                          const HostName& requester) const;

  const util::Clock& clock_;
  SchedulerConfig config_;
  std::map<util::Auid, Entry> theta_;  // Θ, deterministic iteration order
  std::unordered_map<HostName, HostState> hosts_;
  SchedulerStats stats_;

  std::uint64_t epoch_counter_ = 0;  ///< mints per-host sync epochs
  /// Step-2 candidates: uids some host might still be assigned. Kept sorted
  /// so assignment order (and thus MaxDataSchedule truncation) matches the
  /// v1 full-Θ scan exactly.
  std::set<util::Auid> demand_;
  /// Θ by data name, for the affinity_name (class affinity) rule.
  std::map<std::string, std::set<util::Auid>> name_index_;
  /// Absolute-lifetime expiries, lazily deleted (re-schedules push a new
  /// node; stale nodes are skipped on pop).
  std::priority_queue<std::pair<double, util::Auid>,
                      std::vector<std::pair<double, util::Auid>>,
                      std::greater<>>
      expiry_heap_;
  /// reference uid -> datums whose relative lifetime hangs off it.
  std::map<util::Auid, std::set<util::Auid>> lifetime_deps_;
  /// Relative-lifetime datums scheduled before their reference: resolved
  /// (or reaped) on the next reap pass.
  std::set<util::Auid> dangling_;
};

}  // namespace bitdew::services
