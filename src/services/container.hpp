// Service Container (paper Fig. 1): hosts the four D* services on one
// stable node, sharing a DewDB database for persistence. Both runtimes
// build one of these per service host; the "distributed setup" of the paper
// (several service nodes, each running a subset) is expressed by
// constructing several containers and wiring clients to different ones.
//
// The services expose native bulk operations (DataCatalog::register_batch /
// locators_batch, DataScheduler::schedule_batch) so a ServiceBus batch
// endpoint resolves in one container call — the back-end of the v2 bus's
// amortized dc_register_batch / dc_locators_batch / ds_schedule_batch.
//
// WAL-backed containers also persist the scheduler's data set Θ (the
// catalog and repository already live in DewDB tables): schedule_data /
// unschedule_data mirror every accepted entry into the "ds_theta" table,
// and construction replays it, so a restarted bitdewd resumes scheduling
// the same data. Owner sets and host liveness are deliberately NOT
// persisted — they are soft state the reservoir hosts rebuild through
// their periodic synchronizations (Algorithm 1).
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "db/database.hpp"
#include "jobs/job_service.hpp"
#include "rpc/wire.hpp"
#include "services/data_catalog.hpp"
#include "services/data_repository.hpp"
#include "services/data_scheduler.hpp"
#include "services/data_transfer.hpp"

namespace bitdew::services {

class ServiceContainer {
 public:
  /// In-memory persistence (simulations, tests).
  ServiceContainer(std::string host_name, const util::Clock& clock,
                   SchedulerConfig scheduler_config = {})
      : database_(std::make_unique<db::Database>()),
        catalog_(*database_),
        repository_(*database_, host_name),
        transfer_(*database_, clock),
        scheduler_(clock, scheduler_config),
        jobs_(catalog_, scheduler_, clock),
        host_name_(std::move(host_name)) {
    wire_jobs();
  }

  /// WAL-backed persistence (the LocalRuntime, bitdewd). Replays the WAL
  /// and restores the scheduler's Θ from the previous run. Content rides
  /// FILE-BACKED beside the WAL (`<wal_path>.content/`): uploads stream to
  /// disk instead of through the database, and chunk reads serve fd slices
  /// for the zero-copy data plane.
  ServiceContainer(std::string host_name, const util::Clock& clock, const std::string& wal_path,
                   SchedulerConfig scheduler_config = {})
      : database_(std::make_unique<db::Database>(wal_path)),
        catalog_(*database_),
        repository_(*database_, host_name, wal_path + ".content"),
        transfer_(*database_, clock),
        scheduler_(clock, scheduler_config),
        jobs_(catalog_, scheduler_, clock),
        host_name_(std::move(host_name)) {
    wire_jobs();
    restore_scheduled_state();
    restore_jobs();
  }

  ServiceContainer(const ServiceContainer&) = delete;
  ServiceContainer& operator=(const ServiceContainer&) = delete;

  // --- durable scheduler mutations ------------------------------------------
  // The ServiceBus ops route DS mutations through these instead of ds()
  // directly, so a WAL-backed container keeps Θ across restarts. With an
  // in-memory database they are plain pass-throughs.

  bool schedule_data(const core::Data& data, const core::DataAttributes& attributes) {
    if (!scheduler_.schedule(data, attributes)) return false;
    persist_accepted(data);
    return true;
  }

  std::vector<bool> schedule_data_batch(const std::vector<ScheduledData>& items) {
    std::vector<bool> accepted = scheduler_.schedule_batch(items);
    if (database_->durable()) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (accepted[i]) persist_accepted(items[i].data);
      }
    }
    return accepted;
  }

  bool unschedule_data(const util::Auid& uid) {
    if (!scheduler_.unschedule(uid)) return false;
    if (database_->durable()) {
      if (db::Table* table = database_->table(kThetaTable)) {
        if (const auto row = table->by_primary(db::Value(uid.str()))) {
          database_->erase(kThetaTable, *row);
        }
      }
    }
    return true;
  }

  // --- durable ring state ---------------------------------------------------
  // The live DHT ring (services/ring_router.hpp) mirrors its key index —
  // which dc_*/ddc_* keys this member holds — and the ddc (key, value)
  // pairs (the LocalDht is memory-only) into the WAL, so a restarted
  // durable member rejoins the ring re-announcing its range instead of
  // starting empty. No-ops on an in-memory database.

  void persist_ring_key(const std::string& key) {
    if (!database_->durable()) return;
    db::Table& table = database_->create_table({kRingKeysTable, "key", {}});
    if (table.by_primary(db::Value(key))) return;
    db::Row row;
    row["key"] = key;
    database_->insert(kRingKeysTable, std::move(row));
  }

  void forget_ring_key(const std::string& key) {
    if (!database_->durable()) return;
    if (db::Table* table = database_->table(kRingKeysTable)) {
      if (const auto row = table->by_primary(db::Value(key))) {
        database_->erase(kRingKeysTable, *row);
      }
    }
  }

  template <typename Fn>  // Fn(const std::string& key)
  void for_each_ring_key(Fn fn) const {
    const db::Table* table = database_->table(kRingKeysTable);
    if (table == nullptr) return;
    table->scan([&](db::RowId, const db::Row& row) {
      const auto key = row.find("key");
      if (key != row.end() && std::holds_alternative<std::string>(key->second)) {
        fn(std::get<std::string>(key->second));
      }
      return true;
    });
  }

  void persist_ddc_pair(const std::string& key, const std::string& value) {
    if (!database_->durable()) return;
    rpc::Writer w;
    w.str(key);
    w.str(value);
    std::string blob = w.take();
    db::Table& table = database_->create_table({kDdcPairsTable, "pair", {}});
    if (table.by_primary(db::Value(blob))) return;
    db::Row row;
    row["pair"] = std::move(blob);
    database_->insert(kDdcPairsTable, std::move(row));
  }

  template <typename Fn>  // Fn(const std::string& key, const std::string& value)
  void for_each_ddc_pair(Fn fn) const {
    const db::Table* table = database_->table(kDdcPairsTable);
    if (table == nullptr) return;
    table->scan([&](db::RowId, const db::Row& row) {
      const auto blob = row.find("pair");
      if (blob == row.end() || !std::holds_alternative<std::string>(blob->second)) return true;
      try {
        rpc::Reader r(std::get<std::string>(blob->second));
        const std::string key = r.str();
        const std::string value = r.str();
        fn(key, value);
      } catch (const rpc::CodecError&) {
        // A corrupt pair loses that entry, nothing else.
      }
      return true;
    });
  }

  DataCatalog& dc() { return catalog_; }
  DataRepository& dr() { return repository_; }
  DataTransfer& dt() { return transfer_; }
  DataScheduler& ds() { return scheduler_; }
  jobs::JobService& jobs() { return jobs_; }
  db::Database& database() { return *database_; }
  const std::string& host_name() const { return host_name_; }

 private:
  static constexpr const char* kThetaTable = "ds_theta";
  static constexpr const char* kRingKeysTable = "ring_keys";
  static constexpr const char* kDdcPairsTable = "ddc_pairs";
  static constexpr const char* kJobsTable = "jobs";

  /// Mirrors an accepted entry into the WAL as the scheduler NORMALIZED it
  /// (a duration lifetime is anchored at receipt): replaying the raw request
  /// on restart would re-anchor the lifetime and silently extend it.
  void persist_accepted(const core::Data& data) {
    if (!database_->durable()) return;
    if (const auto entry = scheduler_.scheduled(data.uid)) {
      persist_schedule(entry->data, entry->attributes);
    }
  }

  void persist_schedule(const core::Data& data, const core::DataAttributes& attributes) {
    if (!database_->durable()) return;
    db::Table& table = database_->create_table({kThetaTable, "uid", {}});
    rpc::Writer w;
    rpc::wire::write_data(w, data);
    rpc::wire::write_attributes(w, attributes);
    db::Row row;
    row["uid"] = data.uid.str();
    row["blob"] = w.take();
    if (const auto existing = table.by_primary(db::Value(data.uid.str()))) {
      database_->update(kThetaTable, *existing, std::move(row));
    } else {
      database_->insert(kThetaTable, std::move(row));
    }
  }

  /// The JobService reaches the scheduler only through the container's
  /// durable mutation paths, so task and result placements land in the
  /// ds_theta table like every other Θ entry; its own state is mirrored
  /// into the "jobs" table (one re-encoded row per job per mutation).
  void wire_jobs() {
    jobs_.wire(
        [this](const core::Data& data, const core::DataAttributes& attributes) {
          return schedule_data(data, attributes);
        },
        [this](const util::Auid& uid) { return unschedule_data(uid); },
        [this](const util::Auid& job, const std::string& blob) {
          if (!database_->durable()) return;
          db::Table& table = database_->create_table({kJobsTable, "uid", {}});
          db::Row row;
          row["uid"] = job.str();
          row["blob"] = blob;
          if (const auto existing = table.by_primary(db::Value(job.str()))) {
            database_->update(kJobsTable, *existing, std::move(row));
          } else {
            database_->insert(kJobsTable, std::move(row));
          }
        });
  }

  void restore_jobs() {
    const db::Table* table = database_->table(kJobsTable);
    if (table == nullptr) return;
    table->scan([this](db::RowId, const db::Row& row) {
      const auto blob = row.find("blob");
      if (blob != row.end() && std::holds_alternative<std::string>(blob->second)) {
        jobs_.restore(std::get<std::string>(blob->second));
      }
      return true;
    });
  }

  void restore_scheduled_state() {
    const db::Table* table = database_->table(kThetaTable);
    if (table == nullptr) return;
    table->scan([this](db::RowId, const db::Row& row) {
      const auto blob = row.find("blob");
      if (blob == row.end() || !std::holds_alternative<std::string>(blob->second)) return true;
      try {
        rpc::Reader r(std::get<std::string>(blob->second));
        const core::Data data = rpc::wire::read_data(r);
        const core::DataAttributes attributes = rpc::wire::read_attributes(r);
        scheduler_.schedule(data, attributes);
      } catch (const rpc::CodecError&) {
        // A corrupt Θ entry loses that datum's scheduling, nothing else.
      }
      return true;
    });
  }

  std::unique_ptr<db::Database> database_;
  DataCatalog catalog_;
  DataRepository repository_;
  DataTransfer transfer_;
  DataScheduler scheduler_;
  jobs::JobService jobs_;
  std::string host_name_;
};

}  // namespace bitdew::services
