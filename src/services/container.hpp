// Service Container (paper Fig. 1): hosts the four D* services on one
// stable node, sharing a DewDB database for persistence. Both runtimes
// build one of these per service host; the "distributed setup" of the paper
// (several service nodes, each running a subset) is expressed by
// constructing several containers and wiring clients to different ones.
//
// The services expose native bulk operations (DataCatalog::register_batch /
// locators_batch, DataScheduler::schedule_batch) so a ServiceBus batch
// endpoint resolves in one container call — the back-end of the v2 bus's
// amortized dc_register_batch / dc_locators_batch / ds_schedule_batch.
#pragma once

#include <memory>
#include <string>

#include "db/database.hpp"
#include "services/data_catalog.hpp"
#include "services/data_repository.hpp"
#include "services/data_scheduler.hpp"
#include "services/data_transfer.hpp"

namespace bitdew::services {

class ServiceContainer {
 public:
  /// In-memory persistence (simulations, tests).
  ServiceContainer(std::string host_name, const util::Clock& clock,
                   SchedulerConfig scheduler_config = {})
      : database_(std::make_unique<db::Database>()),
        catalog_(*database_),
        repository_(*database_, host_name),
        transfer_(*database_, clock),
        scheduler_(clock, scheduler_config),
        host_name_(std::move(host_name)) {}

  /// WAL-backed persistence (the LocalRuntime).
  ServiceContainer(std::string host_name, const util::Clock& clock, const std::string& wal_path,
                   SchedulerConfig scheduler_config = {})
      : database_(std::make_unique<db::Database>(wal_path)),
        catalog_(*database_),
        repository_(*database_, host_name),
        transfer_(*database_, clock),
        scheduler_(clock, scheduler_config),
        host_name_(std::move(host_name)) {}

  ServiceContainer(const ServiceContainer&) = delete;
  ServiceContainer& operator=(const ServiceContainer&) = delete;

  DataCatalog& dc() { return catalog_; }
  DataRepository& dr() { return repository_; }
  DataTransfer& dt() { return transfer_; }
  DataScheduler& ds() { return scheduler_; }
  db::Database& database() { return *database_; }
  const std::string& host_name() const { return host_name_; }

 private:
  std::unique_ptr<db::Database> database_;
  DataCatalog catalog_;
  DataRepository repository_;
  DataTransfer transfer_;
  DataScheduler scheduler_;
  std::string host_name_;
};

}  // namespace bitdew::services
