// Data Catalog (DC): the persistent index of data meta-information and
// locators (paper §3.4.1). Backed by DewDB so every mutation exercises the
// SQL-serialization path Table 2 measures. Replica locations of volatile
// hosts are NOT kept here — that is the Distributed Data Catalog's job
// (dht/), by design.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/data.hpp"
#include "core/locator.hpp"
#include "db/database.hpp"

namespace bitdew::services {

class DataCatalog {
 public:
  /// Uses (and creates its tables in) the given database.
  explicit DataCatalog(db::Database& database);

  /// Registers a datum; fails (returns false) on duplicate uid.
  bool register_data(const core::Data& data);

  /// Bulk registration: one call for N data, per-item outcomes aligned with
  /// the input (a duplicate does not poison the rest of the batch). The
  /// native back-end of the bus's dc_register_batch endpoint.
  std::vector<bool> register_batch(const std::vector<core::Data>& items);

  /// Full metadata for a uid.
  std::optional<core::Data> get(const util::Auid& uid) const;

  /// All data registered under a name (names are not unique).
  std::vector<core::Data> search(const std::string& name) const;

  /// First datum with the given name, if any (the paper's searchData).
  std::optional<core::Data> search_one(const std::string& name) const;

  /// Removes the datum and its locators. True if it existed.
  bool remove(const util::Auid& uid);

  /// Attaches a remote-access locator to a datum.
  bool add_locator(const core::Locator& locator);

  /// Locators registered for a datum.
  std::vector<core::Locator> locators(const util::Auid& uid) const;

  /// Bulk locator lookup, index-aligned with `uids`.
  std::vector<std::vector<core::Locator>> locators_batch(
      const std::vector<util::Auid>& uids) const;

  std::size_t size() const;

 private:
  db::Database& database_;
};

}  // namespace bitdew::services
