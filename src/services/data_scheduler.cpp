#include "services/data_scheduler.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace bitdew::services {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("ds");
  return instance;
}

}  // namespace

DataScheduler::DataScheduler(const util::Clock& clock, SchedulerConfig config)
    : clock_(clock), config_(config) {}

std::size_t DataScheduler::Entry::effective_owners(double now) const {
  std::size_t count = owners.size();
  for (const auto& [host, deadline] : pending) {
    if (deadline > now && !owners.contains(host)) ++count;
  }
  return count;
}

bool DataScheduler::schedule(const core::Data& data, const core::DataAttributes& attributes) {
  // An unknown out-of-band protocol is rejected HERE, typed, instead of a
  // worker silently substituting another engine at download time.
  const bool unknown_protocol = !config_.known_protocols.empty() &&
                                !config_.known_protocols.contains(attributes.protocol);
  if (data.uid.is_nil() || attributes.replica < core::kReplicaAll || unknown_protocol ||
      attributes.affinity == data.uid ||
      (attributes.lifetime.kind == core::Lifetime::Kind::kRelative &&
       attributes.lifetime.reference == data.uid)) {
    logger().debug("rejecting schedule of %s (%s)", data.name.c_str(),
                   unknown_protocol ? "unknown oob protocol" : "invalid attributes");
    return false;
  }
  auto& entry = theta_[data.uid];
  const bool existed = !entry.data.uid.is_nil();
  // Re-schedules may change the name or the lifetime shape: retire the old
  // index registrations before installing the new ones.
  if (existed && entry.data.name != data.name) {
    const auto ni = name_index_.find(entry.data.name);
    if (ni != name_index_.end()) {
      ni->second.erase(data.uid);
      if (ni->second.empty()) name_index_.erase(ni);
    }
  }
  if (existed && entry.attributes.lifetime.kind == core::Lifetime::Kind::kRelative) {
    const auto dep = lifetime_deps_.find(entry.attributes.lifetime.reference);
    if (dep != lifetime_deps_.end()) {
      dep->second.erase(data.uid);
      if (dep->second.empty()) lifetime_deps_.erase(dep);
    }
    dangling_.erase(data.uid);
  }
  entry.data = data;
  entry.attributes = attributes;
  if (entry.attributes.lifetime.kind == core::Lifetime::Kind::kDuration) {
    // The DSL's abstime is a duration; anchor it on THIS clock at receipt.
    // Client-side anchoring is meaningless on the live path, where the
    // caller's clock epoch has no relation to the daemon's.
    entry.attributes.lifetime =
        core::Lifetime::absolute(clock_.now() + entry.attributes.lifetime.expires_at);
  }
  name_index_[data.name].insert(data.uid);
  const core::Lifetime& lifetime = entry.attributes.lifetime;
  if (lifetime.kind == core::Lifetime::Kind::kAbsolute) {
    // Lazily deleted: a re-schedule pushes a fresh node and the stale one
    // is skipped on pop (reap re-checks the live attributes).
    expiry_heap_.push({lifetime.expires_at, data.uid});
  } else if (lifetime.kind == core::Lifetime::Kind::kRelative) {
    if (theta_.contains(lifetime.reference)) {
      lifetime_deps_[lifetime.reference].insert(data.uid);
    } else {
      // Reference not scheduled (yet): resolved — or reaped, matching the
      // v1 full-scan semantics — on the next reap pass.
      dangling_.insert(data.uid);
    }
  }
  update_demand(data.uid, entry);
  return true;
}

std::vector<bool> DataScheduler::schedule_batch(const std::vector<ScheduledData>& items) {
  std::vector<bool> out;
  out.reserve(items.size());
  for (const ScheduledData& item : items) out.push_back(schedule(item.data, item.attributes));
  return out;
}

bool DataScheduler::pin(const util::Auid& uid, const HostName& host) {
  const auto it = theta_.find(uid);
  if (it == theta_.end()) return false;
  it->second.pinned.insert(host);
  it->second.owners.insert(host);
  const auto hs = hosts_.find(host);
  if (hs != hosts_.end()) hs->second.owned.insert(uid);
  update_demand(uid, it->second);
  return true;
}

bool DataScheduler::unschedule(const util::Auid& uid) {
  const bool existed = theta_.contains(uid);
  erase_entry(uid, /*count_reaped=*/false);  // cascades relative lifetimes
  if (existed) reap(clock_.now());
  return existed;
}

bool DataScheduler::lifetime_valid(const Entry& entry, double now) const {
  const core::Lifetime& lifetime = entry.attributes.lifetime;
  switch (lifetime.kind) {
    case core::Lifetime::Kind::kForever: return true;
    case core::Lifetime::Kind::kAbsolute: return lifetime.expires_at > now;
    case core::Lifetime::Kind::kRelative: return theta_.contains(lifetime.reference);
    case core::Lifetime::Kind::kDuration: return true;  // anchored at schedule()
  }
  return true;
}

void DataScheduler::erase_entry(const util::Auid& uid, bool count_reaped) {
  const auto it = theta_.find(uid);
  if (it == theta_.end()) return;
  const Entry entry = std::move(it->second);
  theta_.erase(it);
  if (count_reaped) ++stats_.reaped;
  // Every host still mirroring the datum owes us a deletion: queue the drop
  // order, re-emitted each beat until the host acks it with a `removed`.
  for (const HostName& holder : entry.holders) {
    const auto hs = hosts_.find(holder);
    if (hs != hosts_.end()) hs->second.drop_queue.insert(uid);
  }
  for (const HostName& owner : entry.owners) {
    const auto hs = hosts_.find(owner);
    if (hs != hosts_.end()) hs->second.owned.erase(uid);
  }
  for (const auto& [host, deadline] : entry.pending) {
    const auto hs = hosts_.find(host);
    if (hs != hosts_.end()) hs->second.pending_uids.erase(uid);
  }
  const auto ni = name_index_.find(entry.data.name);
  if (ni != name_index_.end()) {
    ni->second.erase(uid);
    if (ni->second.empty()) name_index_.erase(ni);
  }
  demand_.erase(uid);
  dangling_.erase(uid);
  if (entry.attributes.lifetime.kind == core::Lifetime::Kind::kRelative) {
    const auto dep = lifetime_deps_.find(entry.attributes.lifetime.reference);
    if (dep != lifetime_deps_.end()) {
      dep->second.erase(uid);
      if (dep->second.empty()) lifetime_deps_.erase(dep);
    }
  }
  // Cascade: data whose relative lifetime references this datum dies with
  // it (the paper's Collector chain), however deep the chain goes.
  const auto deps = lifetime_deps_.find(uid);
  if (deps != lifetime_deps_.end()) {
    const std::set<util::Auid> dependents = std::move(deps->second);
    lifetime_deps_.erase(deps);
    for (const util::Auid& dependent : dependents) {
      logger().debug("reaping %s (relative lifetime on erased %s)", dependent.str().c_str(),
                     uid.str().c_str());
      erase_entry(dependent, /*count_reaped=*/true);
    }
  }
}

void DataScheduler::reap(double now) {
  while (!expiry_heap_.empty() && expiry_heap_.top().first <= now) {
    const util::Auid uid = expiry_heap_.top().second;
    expiry_heap_.pop();
    const auto it = theta_.find(uid);
    if (it == theta_.end()) continue;  // stale heap node
    const core::Lifetime& lifetime = it->second.attributes.lifetime;
    if (lifetime.kind == core::Lifetime::Kind::kAbsolute && lifetime.expires_at <= now) {
      logger().debug("reaping expired data %s", it->second.data.name.c_str());
      erase_entry(uid, /*count_reaped=*/true);
    }
  }
  if (dangling_.empty()) return;
  // Relative-lifetime data scheduled before its reference: adopt it into
  // the dependency index if the reference has shown up, reap it otherwise
  // (exactly what the v1 full scan did on the next sync).
  const std::set<util::Auid> unresolved = dangling_;
  for (const util::Auid& uid : unresolved) {
    const auto it = theta_.find(uid);
    if (it == theta_.end()) {
      dangling_.erase(uid);
      continue;
    }
    const core::Lifetime& lifetime = it->second.attributes.lifetime;
    if (lifetime.kind != core::Lifetime::Kind::kRelative) {
      dangling_.erase(uid);
    } else if (theta_.contains(lifetime.reference)) {
      lifetime_deps_[lifetime.reference].insert(uid);
      dangling_.erase(uid);
    } else {
      logger().debug("reaping %s (relative lifetime reference never scheduled)",
                     it->second.data.name.c_str());
      erase_entry(uid, /*count_reaped=*/true);
    }
  }
}

void DataScheduler::update_demand(const util::Auid& uid, const Entry& entry) {
  const core::DataAttributes& a = entry.attributes;
  const bool wanted =
      a.replica == core::kReplicaAll ||
      (a.replica > 0 && entry.owners.size() < static_cast<std::size_t>(a.replica)) ||
      !a.affinity.is_nil() || !a.affinity_name.empty() || !entry.pinned.empty();
  if (wanted) {
    demand_.insert(uid);
  } else {
    demand_.erase(uid);
  }
}

void DataScheduler::grant_owner(const util::Auid& uid, Entry& entry, const HostName& host,
                                HostState& state) {
  entry.owners.insert(host);
  state.owned.insert(uid);
  update_demand(uid, entry);
}

void DataScheduler::admit_reported(const util::Auid& uid, HostState& state,
                                   const HostName& host, double now, SyncReply& reply) {
  const auto it = theta_.find(uid);
  if (it == theta_.end() || !lifetime_valid(it->second, now)) {
    // D ∉ Θ (or expired, defensively — reap runs first): order deletion.
    state.drop_queue.insert(uid);
    return;
  }
  Entry& entry = it->second;
  entry.holders.insert(host);
  grant_owner(uid, entry, host, state);  // the host demonstrably holds it: update Ω
  entry.pending.erase(host);             // assignment confirmed
  state.pending_uids.erase(uid);
  state.drop_queue.erase(uid);
  reply.keep.push_back(uid);
}

SyncReply DataScheduler::sync(const HostName& host, const std::vector<util::Auid>& cache,
                              const std::vector<util::Auid>& in_flight,
                              const std::string& endpoint) {
  SyncRequest request;
  request.host = host;
  request.full = true;
  request.added = cache;
  request.in_flight = in_flight;
  request.endpoint = endpoint;
  return sync(request);
}

SyncReply DataScheduler::sync(const SyncRequest& request) {
  const double now = clock_.now();
  const double pending_ttl =
      config_.heartbeat_period_s * config_.failure_timeout_factor;
  ++stats_.syncs;
  reap(now);

  SyncReply reply;
  if (!request.full) {
    const auto hs = hosts_.find(request.host);
    HostState* existing = hs != hosts_.end() ? &hs->second : nullptr;
    if (existing == nullptr || !existing->alive || existing->epoch == 0 ||
        existing->epoch != request.epoch) {
      // Refuse the delta: unknown host (scheduler restarted and lost the
      // mirror), a host presumed dead (ownership was revoked and must be
      // re-granted from a full report — the PR 4 rejoin-with-cache
      // semantics), or a stale epoch. The host repeats the sync in full.
      ++stats_.resyncs;
      if (existing != nullptr) {
        existing->last_sync = now;
        existing->epoch = 0;
      }
      reply.resync = true;
      logger().debug("refusing delta sync from %s (epoch %llu): full resync required",
                     request.host.c_str(),
                     static_cast<unsigned long long>(request.epoch));
      return reply;
    }
  }

  const bool first_contact = !hosts_.contains(request.host);
  HostState& state = hosts_[request.host];
  if (first_contact) {
    // A host with no table row can still appear in owner sets: it was
    // pinned before ever syncing, or it was GC'd from the table and came
    // back (GC leaves Ω untouched, per the paper). One Θ scan on first
    // contact rebuilds the inverse index so reconciliation and failure
    // handling stay O(owned) on every later beat.
    for (const auto& [uid, entry] : theta_) {
      if (entry.owners.contains(request.host)) state.owned.insert(uid);
    }
  }
  if (now - state.last_sync > 2.5 && state.last_sync > 0) {
    logger().debug("[%.2f] sync from %s arrived %.2fs after the previous one", now,
                   request.host.c_str(), now - state.last_sync);
  }
  state.last_sync = now;
  state.alive = true;
  state.dead_sweeps = 0;  // a returning host restarts its GC countdown
  state.endpoint = request.endpoint;

  if (request.full) {
    // --- Step 1, full form: rebuild the mirror from the report ------------
    state.epoch = ++epoch_counter_;
    ++state.full_syncs;
    ++stats_.full_syncs;
    state.last_delta_items = 0;
    const std::set<util::Auid> mirror(request.added.begin(), request.added.end());
    for (const util::Auid& uid : state.cache) {
      if (mirror.contains(uid)) continue;
      const auto it = theta_.find(uid);
      if (it != theta_.end()) it->second.holders.erase(request.host);
    }
    state.cache = mirror;
    state.drop_queue.clear();  // superseded by the authoritative report
    for (const util::Auid& uid : state.cache) {
      admit_reported(uid, state, request.host, now, reply);
    }
    // Ω reconciliation: the report is authoritative for what the host
    // holds. A restarted worker whose replica failed verification (or a
    // rejoining host that lost its disk) reports Δk without the datum — it
    // must stop counting as an owner, or the replica rule would never
    // re-send the data. In-flight downloads are not ownership claims (they
    // never entered Ω) and pinned hosts are permanent owners by definition.
    const std::set<util::Auid> in_flight_set(request.in_flight.begin(),
                                             request.in_flight.end());
    const std::set<util::Auid> kept(reply.keep.begin(), reply.keep.end());
    for (auto owned_it = state.owned.begin(); owned_it != state.owned.end();) {
      const util::Auid uid = *owned_it;
      if (kept.contains(uid) || in_flight_set.contains(uid)) {
        ++owned_it;
        continue;
      }
      const auto it = theta_.find(uid);
      if (it == theta_.end()) {
        owned_it = state.owned.erase(owned_it);
        continue;
      }
      Entry& entry = it->second;
      if (entry.pinned.contains(request.host)) {
        ++owned_it;
        continue;
      }
      logger().debug("host %s no longer reports %s: revoking ownership",
                     request.host.c_str(), entry.data.name.c_str());
      entry.owners.erase(request.host);
      owned_it = state.owned.erase(owned_it);
      update_demand(uid, entry);
    }
  } else {
    // --- Step 1, delta form: O(|added| + |removed|) ------------------------
    ++state.delta_syncs;
    ++stats_.delta_syncs;
    state.last_delta_items = request.added.size() + request.removed.size();
    for (const util::Auid& uid : request.removed) {
      state.cache.erase(uid);
      state.drop_queue.erase(uid);  // a reported removal acks any drop order
      const auto it = theta_.find(uid);
      if (it == theta_.end()) continue;
      Entry& entry = it->second;
      entry.holders.erase(request.host);
      entry.pending.erase(request.host);
      state.pending_uids.erase(uid);
      if (!entry.pinned.contains(request.host)) {
        entry.owners.erase(request.host);
        state.owned.erase(uid);
        update_demand(uid, entry);
      }
    }
    for (const util::Auid& uid : request.added) {
      state.cache.insert(uid);
      admit_reported(uid, state, request.host, now, reply);
    }
  }
  reply.epoch = state.epoch;

  // Refresh provisional assignments the host is still downloading; expired
  // ones are pruned lazily on the failure sweep (every assignment rule
  // checks the deadline, so a stale map entry has no semantic weight).
  for (const util::Auid& uid : request.in_flight) {
    const auto it = theta_.find(uid);
    if (it != theta_.end() && it->second.pending.contains(request.host)) {
      it->second.pending[request.host] = now + pending_ttl;
    }
  }

  assign_and_drop(request.host, state, now, pending_ttl, reply);

  if (logger().enabled(util::LogLevel::kTrace)) {
    for (const auto& item : reply.download) {
      logger().trace("sync %s <- download %s %s", request.host.c_str(),
                     item.data.name.c_str(), item.data.uid.str().c_str());
    }
    for (const auto& uid : reply.drop) {
      logger().trace("sync %s <- drop %s", request.host.c_str(), uid.str().c_str());
    }
  }
  stats_.orders += reply.download.size();
  stats_.drops += reply.drop.size();
  state.reported = state.cache.size();
  return reply;
}

void DataScheduler::assign_and_drop(const HostName& host, HostState& state, double now,
                                    double pending_ttl, SyncReply& reply) {
  // Queued deletion orders: cancel those whose datum was re-scheduled while
  // the host still holds it (a confirmed replica again, not garbage);
  // re-emit the rest until the host acks with a `removed` delta.
  for (auto dq = state.drop_queue.begin(); dq != state.drop_queue.end();) {
    const util::Auid uid = *dq;
    if (!state.cache.contains(uid)) {
      dq = state.drop_queue.erase(dq);  // the host no longer holds it anyway
      continue;
    }
    const auto it = theta_.find(uid);
    if (it != theta_.end() && lifetime_valid(it->second, now)) {
      Entry& entry = it->second;
      entry.holders.insert(host);
      grant_owner(uid, entry, host, state);
      dq = state.drop_queue.erase(dq);
      continue;
    }
    reply.drop.push_back(uid);
    ++dq;
  }

  // --- Step 2: add new data (over the demand index, in uid order — the
  // same order, and the same MaxDataSchedule truncation point, as the v1
  // full-Θ scan) ------------------------------------------------------------
  int new_downloads = 0;
  for (const util::Auid& uid : demand_) {
    if (new_downloads >= config_.max_data_schedule) break;
    if (state.cache.contains(uid)) continue;
    const auto it = theta_.find(uid);
    if (it == theta_.end()) continue;  // defensive: demand_ ⊆ Θ
    Entry& entry = it->second;

    // Pin: a pinned host is a permanent owner by definition, so it must be
    // (re)sent the datum even when no other rule would place it — this is
    // how a replica=0 collector datum reaches exactly its collector node.
    bool assign = entry.pinned.contains(host);
    // Affinity: placement dependency on a datum the host already caches.
    // The mirrored, confirmed Δk stands in for Algorithm 1's "tests against
    // Δk": data assigned in this same sync is not yet mirrored, so it does
    // not attract dependents until the next round. Class affinity
    // (affinity_name) matches any cached datum of that name.
    if (!assign && !entry.attributes.affinity.is_nil() &&
        state.cache.contains(entry.attributes.affinity) &&
        theta_.contains(entry.attributes.affinity)) {
      assign = true;
    } else if (!assign && !entry.attributes.affinity_name.empty()) {
      const auto ni = name_index_.find(entry.attributes.affinity_name);
      if (ni != name_index_.end()) {
        for (const util::Auid& held : ni->second) {
          if (state.cache.contains(held)) {
            assign = true;
            break;
          }
        }
      }
    }
    // Replica: fewer credible owners than requested (or broadcast).
    if (!assign && entry.attributes.replica != 0) {
      const auto want = entry.attributes.replica;
      if (want == core::kReplicaAll ||
          entry.effective_owners(now) < static_cast<std::size_t>(want)) {
        assign = true;
      }
    }
    if (!assign) continue;

    // Collective-distribution gate (paper Fig. 3a/5): a p2p datum fans out
    // like a swarm — at most swarm_factor * |owners| downloads in flight,
    // minimum one (the seed pulls from the repository). Each generation of
    // verified replicas doubles the serving capacity; without the gate
    // every host of a replica=-1 broadcast would stampede the repository in
    // the very first heartbeat and no peer would ever have bytes to serve.
    if (config_.swarm_factor > 0 && entry.data.size > 0 &&
        entry.attributes.protocol == kPeerLocatorProtocol) {
      std::size_t in_progress = 0;
      for (const auto& [assignee, deadline] : entry.pending) {
        if (deadline > now && !entry.owners.contains(assignee)) ++in_progress;
      }
      const std::size_t allowed = std::max<std::size_t>(
          1, entry.owners.size() * static_cast<std::size_t>(config_.swarm_factor));
      if (in_progress >= allowed) continue;  // wait for the current generation
    }

    // Provisional until the host's cache confirms it (or it expires).
    entry.pending[host] = now + pending_ttl;
    state.pending_uids.insert(uid);
    reply.download.push_back(ScheduledData{entry.data, entry.attributes});
    reply.sources.push_back(peer_sources(uid, entry, host));
    ++new_downloads;
  }
}

std::vector<core::Locator> DataScheduler::peer_sources(const util::Auid& uid,
                                                       const Entry& entry,
                                                       const HostName& requester) const {
  std::vector<core::Locator> out;
  for (const HostName& owner : entry.owners) {
    if (config_.max_peer_sources > 0 &&
        out.size() >= static_cast<std::size_t>(config_.max_peer_sources)) {
      break;
    }
    if (owner == requester) continue;
    // Dead hosts are filtered: a locator pointing at a crashed worker would
    // cost the downloader a connect timeout before it rotates away.
    const auto it = hosts_.find(owner);
    if (it == hosts_.end() || !it->second.alive || it->second.endpoint.empty()) continue;
    core::Locator locator;
    locator.data_uid = uid;
    locator.protocol = kPeerLocatorProtocol;
    locator.host = it->second.endpoint;
    locator.path = owner;  // the serving host's name, for logs and the DT ticket
    out.push_back(std::move(locator));
  }
  return out;
}

std::vector<HostName> DataScheduler::detect_failures() {
  const double now = clock_.now();
  const double timeout = config_.heartbeat_period_s * config_.failure_timeout_factor;
  // Lazily prune expired provisional assignments (v1 pruned on every sync;
  // every assignment rule checks the deadline, so this sweep is pure
  // bookkeeping and can run off the beat path).
  for (auto& [uid, entry] : theta_) {
    std::erase_if(entry.pending, [&, &entry_uid = uid](const auto& item) {
      if (item.second > now) return false;
      const auto hs = hosts_.find(item.first);
      if (hs != hosts_.end()) hs->second.pending_uids.erase(entry_uid);
      return true;
    });
  }
  std::vector<HostName> newly_dead;
  for (auto& [host, state] : hosts_) {
    if (!state.alive || now - state.last_sync <= timeout) continue;
    state.alive = false;
    state.epoch = 0;  // revival must re-register through a full resync
    newly_dead.push_back(host);
    ++stats_.failures;
    logger().debug("host %s declared dead (last sync %.2fs ago)", host.c_str(),
                   now - state.last_sync);
    // Fault-tolerant data forgets the dead owner so the replica rule
    // re-schedules it; non-fault-tolerant data keeps the owner (replica
    // unavailable until the host returns), per the paper. O(owned), via
    // the inverse Ω index, instead of a Θ scan per dead host.
    for (auto owned_it = state.owned.begin(); owned_it != state.owned.end();) {
      const util::Auid uid = *owned_it;
      const auto it = theta_.find(uid);
      if (it == theta_.end()) {
        owned_it = state.owned.erase(owned_it);
        continue;
      }
      Entry& entry = it->second;
      if (entry.attributes.fault_tolerant && !entry.pinned.contains(host)) {
        entry.owners.erase(host);
        owned_it = state.owned.erase(owned_it);
        update_demand(uid, entry);
      } else {
        ++owned_it;
      }
    }
    // A dead host cannot complete a download.
    for (const util::Auid& uid : state.pending_uids) {
      const auto it = theta_.find(uid);
      if (it != theta_.end()) it->second.pending.erase(host);
    }
    state.pending_uids.clear();
  }
  // Host-table GC: a host dead longer than host_gc_sweeps sweeps is
  // forgotten, so ds_hosts (and `bitdew_cli status`) stop listing churned
  // nodes forever. A returning host re-registers on its next sync. Owner
  // sets in Θ are untouched — non-fault-tolerant data keeps its dead
  // owner, per the paper — but the mirror back-references are scrubbed.
  if (config_.host_gc_sweeps > 0) {
    for (auto it = hosts_.begin(); it != hosts_.end();) {
      HostState& state = it->second;
      if (state.alive) {
        ++it;
      } else if (++state.dead_sweeps > config_.host_gc_sweeps) {
        logger().debug("host %s forgotten after %d sweeps dead", it->first.c_str(),
                       state.dead_sweeps);
        for (const util::Auid& uid : state.cache) {
          const auto entry = theta_.find(uid);
          if (entry != theta_.end()) entry->second.holders.erase(it->first);
        }
        ++stats_.hosts_gcd;
        it = hosts_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return newly_dead;
}

std::set<HostName> DataScheduler::owners(const util::Auid& uid) const {
  const auto it = theta_.find(uid);
  return it != theta_.end() ? it->second.owners : std::set<HostName>{};
}

std::optional<ScheduledData> DataScheduler::scheduled(const util::Auid& uid) const {
  const auto it = theta_.find(uid);
  if (it == theta_.end()) return std::nullopt;
  return ScheduledData{it->second.data, it->second.attributes};
}

bool DataScheduler::host_alive(const HostName& host) const {
  const auto it = hosts_.find(host);
  return it != hosts_.end() && it->second.alive;
}

std::vector<HostInfo> DataScheduler::host_table() const {
  const double now = clock_.now();
  std::vector<HostInfo> out;
  out.reserve(hosts_.size());
  for (const auto& [host, state] : hosts_) {
    HostInfo info;
    info.name = host;
    info.last_sync_age_s = now - state.last_sync;
    info.alive = state.alive;
    info.cached = static_cast<std::uint32_t>(state.reported);
    info.endpoint = state.endpoint;
    info.full_syncs = state.full_syncs;
    info.delta_syncs = state.delta_syncs;
    info.last_delta_items = static_cast<std::uint32_t>(state.last_delta_items);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const HostInfo& a, const HostInfo& b) { return a.name < b.name; });
  return out;
}

std::vector<HostName> DataScheduler::known_hosts() const {
  std::vector<HostName> out;
  out.reserve(hosts_.size());
  for (const auto& [host, state] : hosts_) out.push_back(host);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bitdew::services
