#include "services/data_scheduler.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace bitdew::services {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("ds");
  return instance;
}

}  // namespace

DataScheduler::DataScheduler(const util::Clock& clock, SchedulerConfig config)
    : clock_(clock), config_(config) {}

std::size_t DataScheduler::Entry::effective_owners(double now) const {
  std::size_t count = owners.size();
  for (const auto& [host, deadline] : pending) {
    if (deadline > now && !owners.contains(host)) ++count;
  }
  return count;
}

bool DataScheduler::schedule(const core::Data& data, const core::DataAttributes& attributes) {
  // An unknown out-of-band protocol is rejected HERE, typed, instead of a
  // worker silently substituting another engine at download time.
  const bool unknown_protocol = !config_.known_protocols.empty() &&
                                !config_.known_protocols.contains(attributes.protocol);
  if (data.uid.is_nil() || attributes.replica < core::kReplicaAll || unknown_protocol ||
      attributes.affinity == data.uid ||
      (attributes.lifetime.kind == core::Lifetime::Kind::kRelative &&
       attributes.lifetime.reference == data.uid)) {
    logger().debug("rejecting schedule of %s (%s)", data.name.c_str(),
                   unknown_protocol ? "unknown oob protocol" : "invalid attributes");
    return false;
  }
  auto& entry = theta_[data.uid];
  entry.data = data;
  entry.attributes = attributes;
  if (entry.attributes.lifetime.kind == core::Lifetime::Kind::kDuration) {
    // The DSL's abstime is a duration; anchor it on THIS clock at receipt.
    // Client-side anchoring is meaningless on the live path, where the
    // caller's clock epoch has no relation to the daemon's.
    entry.attributes.lifetime =
        core::Lifetime::absolute(clock_.now() + entry.attributes.lifetime.expires_at);
  }
  return true;
}

std::vector<bool> DataScheduler::schedule_batch(const std::vector<ScheduledData>& items) {
  std::vector<bool> out;
  out.reserve(items.size());
  for (const ScheduledData& item : items) out.push_back(schedule(item.data, item.attributes));
  return out;
}

bool DataScheduler::pin(const util::Auid& uid, const HostName& host) {
  const auto it = theta_.find(uid);
  if (it == theta_.end()) return false;
  it->second.pinned.insert(host);
  it->second.owners.insert(host);
  return true;
}

bool DataScheduler::unschedule(const util::Auid& uid) {
  const bool existed = theta_.erase(uid) > 0;
  if (existed) reap(clock_.now());  // relative lifetimes may cascade
  return existed;
}

bool DataScheduler::lifetime_valid(const Entry& entry, double now) const {
  const core::Lifetime& lifetime = entry.attributes.lifetime;
  switch (lifetime.kind) {
    case core::Lifetime::Kind::kForever: return true;
    case core::Lifetime::Kind::kAbsolute: return lifetime.expires_at > now;
    case core::Lifetime::Kind::kRelative: return theta_.contains(lifetime.reference);
    case core::Lifetime::Kind::kDuration: return true;  // anchored at schedule()
  }
  return true;
}

void DataScheduler::reap(double now) {
  // Iterate to a fixpoint: deleting a datum can invalidate others whose
  // relative lifetime references it (the paper's Collector chain).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = theta_.begin(); it != theta_.end();) {
      if (!lifetime_valid(it->second, now)) {
        logger().debug("reaping expired data %s", it->second.data.name.c_str());
        it = theta_.erase(it);
        ++stats_.reaped;
        changed = true;
      } else {
        ++it;
      }
    }
  }
}

SyncReply DataScheduler::sync(const HostName& host, const std::vector<util::Auid>& cache,
                              const std::vector<util::Auid>& in_flight,
                              const std::string& endpoint) {
  const double now = clock_.now();
  const double pending_ttl =
      config_.heartbeat_period_s * config_.failure_timeout_factor;
  ++stats_.syncs;
  reap(now);

  HostState& state = hosts_[host];
  if (now - state.last_sync > 2.5 && state.last_sync > 0) {
    logger().debug("[%.2f] sync from %s arrived %.2fs after the previous one", now,
                   host.c_str(), now - state.last_sync);
  }
  state.last_sync = now;
  state.alive = true;
  state.dead_sweeps = 0;  // a returning host restarts its GC countdown
  state.cache = std::set<util::Auid>(cache.begin(), cache.end());
  state.reported = state.cache.size();
  state.endpoint = endpoint;

  // Refresh provisional assignments the host is still downloading, and
  // drop expired ones everywhere (lazy pruning).
  for (const util::Auid& uid : in_flight) {
    const auto it = theta_.find(uid);
    if (it != theta_.end() && it->second.pending.contains(host)) {
      it->second.pending[host] = now + pending_ttl;
    }
  }
  for (auto& [uid, entry] : theta_) {
    std::erase_if(entry.pending,
                  [now](const auto& item) { return item.second <= now; });
  }

  std::set<util::Auid> psi;   // Ψk
  std::set<util::Auid> kept;  // Step-1 survivors: the Δk the paper's
                              // affinity test runs against
  SyncReply reply;

  // --- Step 1: keep still-valid cached data -------------------------------
  for (const util::Auid& uid : state.cache) {
    const auto it = theta_.find(uid);
    if (it == theta_.end()) continue;           // D ∉ Θ
    Entry& entry = it->second;
    if (!lifetime_valid(entry, now)) continue;  // expired (defensive; reaped above)
    psi.insert(uid);
    kept.insert(uid);
    entry.owners.insert(host);  // the host demonstrably holds it: update Ω
    entry.pending.erase(host);  // assignment confirmed
  }

  // Ω reconciliation: the report is authoritative for what the host holds.
  // A restarted worker whose replica failed verification (or a rejoining
  // host that lost its disk) reports Δk without the datum — it must stop
  // counting as an owner, or the replica rule would never re-send the data.
  // In-flight downloads are not ownership claims (they never entered Ω) and
  // pinned hosts are permanent owners by definition.
  const std::set<util::Auid> in_flight_set(in_flight.begin(), in_flight.end());
  for (auto& [uid, entry] : theta_) {
    if (!entry.owners.contains(host) || state.cache.contains(uid) ||
        entry.pinned.contains(host) || in_flight_set.contains(uid)) {
      continue;
    }
    logger().debug("host %s no longer reports %s: revoking ownership", host.c_str(),
                   entry.data.name.c_str());
    entry.owners.erase(host);
  }

  // --- Step 2: add new data ------------------------------------------------
  int new_downloads = 0;
  for (auto& [uid, entry] : theta_) {
    if (new_downloads >= config_.max_data_schedule) break;
    if (psi.contains(uid) || state.cache.contains(uid)) continue;

    // Pin: a pinned host is a permanent owner by definition, so it must be
    // (re)sent the datum even when no other rule would place it — this is
    // how a replica=0 collector datum reaches exactly its collector node.
    bool assign = entry.pinned.contains(host);
    // Affinity: placement dependency on a datum the host already caches
    // (Algorithm 1 tests against Δk, so data assigned in this same sync
    // does not attract dependents until the next round). Class affinity
    // (affinity_name) matches any cached datum of that name.
    if (!entry.attributes.affinity.is_nil() && kept.contains(entry.attributes.affinity)) {
      assign = true;
    } else if (!entry.attributes.affinity_name.empty()) {
      for (const util::Auid& held : kept) {
        const auto held_it = theta_.find(held);
        if (held_it != theta_.end() &&
            held_it->second.data.name == entry.attributes.affinity_name) {
          assign = true;
          break;
        }
      }
    }
    // Replica: fewer credible owners than requested (or broadcast).
    if (!assign && entry.attributes.replica != 0) {
      const auto want = entry.attributes.replica;
      if (want == core::kReplicaAll ||
          entry.effective_owners(now) < static_cast<std::size_t>(want)) {
        assign = true;
      }
    }
    if (!assign) continue;

    // Collective-distribution gate (paper Fig. 3a/5): a p2p datum fans out
    // like a swarm — at most swarm_factor * |owners| downloads in flight,
    // minimum one (the seed pulls from the repository). Each generation of
    // verified replicas doubles the serving capacity; without the gate
    // every host of a replica=-1 broadcast would stampede the repository in
    // the very first heartbeat and no peer would ever have bytes to serve.
    if (config_.swarm_factor > 0 && entry.data.size > 0 &&
        entry.attributes.protocol == kPeerLocatorProtocol) {
      std::size_t in_progress = 0;
      for (const auto& [assignee, deadline] : entry.pending) {
        if (deadline > now && !entry.owners.contains(assignee)) ++in_progress;
      }
      const std::size_t allowed = std::max<std::size_t>(
          1, entry.owners.size() * static_cast<std::size_t>(config_.swarm_factor));
      if (in_progress >= allowed) continue;  // wait for the current generation
    }

    psi.insert(uid);
    // Provisional until the host's cache confirms it (or it expires).
    entry.pending[host] = now + pending_ttl;
    ++new_downloads;
  }

  // --- partition Ψk for the reply -----------------------------------------
  for (const util::Auid& uid : psi) {
    if (state.cache.contains(uid)) {
      reply.keep.push_back(uid);
    } else {
      const Entry& entry = theta_[uid];
      reply.download.push_back(ScheduledData{entry.data, entry.attributes});
      reply.sources.push_back(peer_sources(uid, entry, host));
    }
  }
  for (const util::Auid& uid : state.cache) {
    if (!psi.contains(uid)) {
      reply.drop.push_back(uid);
      // The host will delete it; it no longer owns a replica.
      const auto it = theta_.find(uid);
      if (it != theta_.end() && !it->second.pinned.contains(host)) {
        it->second.owners.erase(host);
        it->second.pending.erase(host);
      }
    }
  }
  if (logger().enabled(util::LogLevel::kTrace)) {
    for (const auto& item : reply.download) {
      logger().trace("sync %s <- download %s %s", host.c_str(), item.data.name.c_str(), item.data.uid.str().c_str());
    }
    for (const auto& uid : reply.drop) {
      logger().trace("sync %s <- drop %s", host.c_str(), uid.str().c_str());
    }
  }
  stats_.orders += reply.download.size();
  stats_.drops += reply.drop.size();
  state.cache = std::move(psi);  // what the host will hold after the reply
  return reply;
}

std::vector<core::Locator> DataScheduler::peer_sources(const util::Auid& uid,
                                                       const Entry& entry,
                                                       const HostName& requester) const {
  std::vector<core::Locator> out;
  for (const HostName& owner : entry.owners) {
    if (config_.max_peer_sources > 0 &&
        out.size() >= static_cast<std::size_t>(config_.max_peer_sources)) {
      break;
    }
    if (owner == requester) continue;
    // Dead hosts are filtered: a locator pointing at a crashed worker would
    // cost the downloader a connect timeout before it rotates away.
    const auto it = hosts_.find(owner);
    if (it == hosts_.end() || !it->second.alive || it->second.endpoint.empty()) continue;
    core::Locator locator;
    locator.data_uid = uid;
    locator.protocol = kPeerLocatorProtocol;
    locator.host = it->second.endpoint;
    locator.path = owner;  // the serving host's name, for logs and the DT ticket
    out.push_back(std::move(locator));
  }
  return out;
}

std::vector<HostName> DataScheduler::detect_failures() {
  const double now = clock_.now();
  const double timeout = config_.heartbeat_period_s * config_.failure_timeout_factor;
  std::vector<HostName> newly_dead;
  for (auto& [host, state] : hosts_) {
    if (!state.alive || now - state.last_sync <= timeout) continue;
    state.alive = false;
    newly_dead.push_back(host);
    ++stats_.failures;
    logger().debug("host %s declared dead (last sync %.2fs ago)", host.c_str(),
                   now - state.last_sync);
    // Fault-tolerant data forgets the dead owner so the replica rule
    // re-schedules it; non-fault-tolerant data keeps the owner (replica
    // unavailable until the host returns), per the paper.
    for (auto& [uid, entry] : theta_) {
      if (entry.attributes.fault_tolerant && !entry.pinned.contains(host)) {
        entry.owners.erase(host);
      }
      entry.pending.erase(host);  // a dead host cannot complete a download
    }
  }
  // Host-table GC: a host dead longer than host_gc_sweeps sweeps is
  // forgotten, so ds_hosts (and `bitdew_cli status`) stop listing churned
  // nodes forever. A returning host re-registers on its next sync.
  if (config_.host_gc_sweeps > 0) {
    for (auto it = hosts_.begin(); it != hosts_.end();) {
      HostState& state = it->second;
      if (state.alive) {
        ++it;
      } else if (++state.dead_sweeps > config_.host_gc_sweeps) {
        logger().debug("host %s forgotten after %d sweeps dead", it->first.c_str(),
                       state.dead_sweeps);
        ++stats_.hosts_gcd;
        it = hosts_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return newly_dead;
}

std::set<HostName> DataScheduler::owners(const util::Auid& uid) const {
  const auto it = theta_.find(uid);
  return it != theta_.end() ? it->second.owners : std::set<HostName>{};
}

std::optional<ScheduledData> DataScheduler::scheduled(const util::Auid& uid) const {
  const auto it = theta_.find(uid);
  if (it == theta_.end()) return std::nullopt;
  return ScheduledData{it->second.data, it->second.attributes};
}

bool DataScheduler::host_alive(const HostName& host) const {
  const auto it = hosts_.find(host);
  return it != hosts_.end() && it->second.alive;
}

std::vector<HostInfo> DataScheduler::host_table() const {
  const double now = clock_.now();
  std::vector<HostInfo> out;
  out.reserve(hosts_.size());
  for (const auto& [host, state] : hosts_) {
    HostInfo info;
    info.name = host;
    info.last_sync_age_s = now - state.last_sync;
    info.alive = state.alive;
    info.cached = static_cast<std::uint32_t>(state.reported);
    info.endpoint = state.endpoint;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const HostInfo& a, const HostInfo& b) { return a.name < b.name; });
  return out;
}

std::vector<HostName> DataScheduler::known_hosts() const {
  std::vector<HostName> out;
  out.reserve(hosts_.size());
  for (const auto& [host, state] : hosts_) out.push_back(host);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bitdew::services
