// Data Repository (DR): the interface to persistent storage with remote
// access (paper §3.4.2) — a wrapper around a legacy store (here DewDB
// object descriptors; the LocalRuntime pairs it with real files on disk).
// put() registers content for a data slot and mints the Locator that the
// transfer protocols consume.
#pragma once

#include <optional>
#include <string>

#include "core/data.hpp"
#include "core/locator.hpp"
#include "db/database.hpp"

namespace bitdew::services {

class DataRepository {
 public:
  /// `host_name` is the service host this repository is reachable at.
  DataRepository(db::Database& database, std::string host_name);

  /// Stores content for a data slot; returns the locator clients should
  /// use with `protocol` to fetch it. Re-putting overwrites.
  core::Locator put(const core::Data& data, const core::Content& content,
                    const std::string& protocol);

  /// Content descriptor for a slot, if stored here.
  std::optional<core::Content> get(const util::Auid& uid) const;

  /// Locator for a previously stored slot (protocol may differ per call).
  std::optional<core::Locator> locator(const util::Auid& uid, const std::string& protocol) const;

  bool exists(const util::Auid& uid) const;
  bool remove(const util::Auid& uid);

  /// Total bytes of stored content.
  std::int64_t stored_bytes() const;
  std::size_t object_count() const;
  const std::string& host_name() const { return host_; }

 private:
  db::Database& database_;
  std::string host_;
};

}  // namespace bitdew::services
