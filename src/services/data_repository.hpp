// Data Repository (DR): the interface to persistent storage with remote
// access (paper §3.4.2) — a wrapper around a legacy store (here DewDB
// object descriptors plus content blobs).
//
// Two planes feed it:
//  * the metadata path: put() registers a content *descriptor* for a data
//    slot and mints the Locator that the transfer protocols consume (the
//    simulated runtime stops here — no bytes move);
//  * the data path (PR 3): chunked out-of-band uploads. stage_begin /
//    stage_chunk / stage_commit accept a file in fixed-size chunks, persist
//    every chunk through the WAL-backed Database (so a partial upload
//    survives a daemon restart and resumes at the returned offset), verify
//    the assembled bytes' MD5 against the datum's registered checksum at
//    commit, and only then publish the content for read_bytes() to serve.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/data.hpp"
#include "core/locator.hpp"
#include "db/database.hpp"
#include "rpc/chunk_ref.hpp"
#include "util/md5.hpp"

namespace bitdew::services {

/// Repository data-plane counters, served over the bus as dr_stats so
/// benches and CI measure repository EGRESS (how many bytes the central
/// store actually shipped) without poking daemon internals. The collective
/// distribution claim (paper Fig. 3a/5) is exactly "egress stays O(1 file
/// copy) while N workers fill their caches".
struct RepoStats {
  std::uint64_t objects = 0;          ///< stored content descriptors
  std::int64_t stored_bytes = 0;      ///< sum of descriptor sizes
  std::uint64_t chunk_reads = 0;      ///< chunk reads that served payload
  std::int64_t chunk_read_bytes = 0;  ///< total content bytes served
  // Zero-copy accounting (the acceptance check for the epoll data plane):
  // every chunk read either materialized the payload in a std::string
  // (blob_copies) or handed out an fd slice for sendfile (slice_reads). A
  // file-backed repository serving dr_get_chunk over the wire must show
  // slice_reads > 0 and blob_copies == 0.
  std::uint64_t blob_copies = 0;  ///< reads answered via an in-memory copy
  std::uint64_t slice_reads = 0;  ///< reads answered as a content-file slice

  friend bool operator==(const RepoStats&, const RepoStats&) = default;
};

/// Largest chunk the repository accepts in one stage_chunk/read_bytes call.
/// Kept well under rpc::kMaxFrameBytes so a chunk frame always fits.
inline constexpr std::int64_t kMaxChunkBytes = 8ll << 20;

/// Outcome of stage_chunk().
enum class ChunkResult {
  kOk = 0,
  kNoStage,    ///< no staged upload for this uid (stage_begin first)
  kBadOffset,  ///< offset != bytes received so far (resync via stage_begin)
  kOversize,   ///< chunk exceeds kMaxChunkBytes or overruns the declared size
};

/// Outcome of stage_commit().
enum class CommitResult {
  kOk = 0,
  kNoStage,           ///< nothing staged for this uid
  kIncomplete,        ///< fewer bytes staged than the declared size
  kChecksumMismatch,  ///< assembled MD5 differs from the registered checksum
};

class DataRepository {
 public:
  /// `host_name` is the service host this repository is reachable at.
  /// `content_dir` switches the repository into FILE-BACKED content mode:
  /// staged uploads stream straight into `<content_dir>/<uid>.part` (chunk
  /// bytes never pass through the database), the incremental MD5 runs as
  /// chunks arrive, and commit is a rename — publishing stores only the
  /// content path, so reads can be served as fd slices (read_chunk_ref)
  /// with zero intermediate copies. Empty = legacy blob mode (content
  /// bytes live in the dr_content table; in-memory containers).
  DataRepository(db::Database& database, std::string host_name,
                 std::string content_dir = "");

  /// Stores a content descriptor for a data slot; returns the locator
  /// clients should use with `protocol` to fetch it. Re-putting overwrites.
  core::Locator put(const core::Data& data, const core::Content& content,
                    const std::string& protocol);

  /// Content descriptor for a slot, if stored here.
  std::optional<core::Content> get(const util::Auid& uid) const;

  /// Locator for a previously stored slot (protocol may differ per call).
  std::optional<core::Locator> locator(const util::Auid& uid, const std::string& protocol) const;

  bool exists(const util::Auid& uid) const;
  /// Removes descriptor, published bytes and any staged upload.
  bool remove(const util::Auid& uid);

  // --- chunked out-of-band uploads -------------------------------------------
  /// Opens (or resumes) a staged upload for `data` and returns the number of
  /// bytes already durably held — the offset the sender must continue from.
  /// A stage whose declared size/checksum no longer match `data` is reset.
  std::int64_t stage_begin(const core::Data& data);

  /// Appends one chunk at `offset` (must equal the bytes received so far).
  ChunkResult stage_chunk(const util::Auid& uid, std::int64_t offset, const std::string& bytes);

  /// Verifies the staged bytes' MD5 against the checksum declared at
  /// stage_begin and, on success, publishes them (descriptor + content blob,
  /// locator minted with `protocol`). The stage is consumed either way: a
  /// mismatch discards the staged bytes so the next put starts clean.
  CommitResult stage_commit(const util::Auid& uid, const std::string& protocol,
                            core::Locator* locator_out = nullptr);

  /// Drops a staged upload (if any) without publishing.
  void stage_discard(const util::Auid& uid);

  /// Bytes received so far for a staged upload (0 when none).
  std::int64_t stage_received(const util::Auid& uid) const;

  // --- chunked reads ----------------------------------------------------------
  /// Up to `max_bytes` of published content starting at `offset`; an empty
  /// string at/after end of content; nullopt when no bytes are stored here
  /// (metadata-only datum or unknown uid).
  std::optional<std::string> read_bytes(const util::Auid& uid, std::int64_t offset,
                                        std::int64_t max_bytes) const;

  /// The zero-copy read: like read_bytes, but file-backed content is
  /// returned as an owned fd + [offset, length) slice instead of a
  /// std::string, so the transport can sendfile it straight into the
  /// socket. Blob-backed content still rides inline (and counts as a blob
  /// copy). nullopt when no bytes are stored here.
  std::optional<rpc::ChunkRef> read_chunk_ref(const util::Auid& uid, std::int64_t offset,
                                              std::int64_t max_bytes) const;

  /// Whether real content bytes (not just a descriptor) are stored.
  bool has_bytes(const util::Auid& uid) const;

  /// Total bytes of stored content (descriptor sizes).
  std::int64_t stored_bytes() const;
  std::size_t object_count() const;
  /// Serving counters + store size (the dr_stats endpoint's back-end).
  RepoStats stats() const;
  const std::string& host_name() const { return host_; }

 private:
  void drop_stage_rows(const std::string& uid_key, std::int64_t chunk_count);
  bool file_backed() const { return !content_dir_.empty(); }
  std::string content_path(const std::string& uid_key) const;
  std::string part_path(const std::string& uid_key) const;
  /// The streaming stage hasher for `uid_key`, positioned at `hashed_bytes`.
  /// Rebuilt from the .part file after a restart (the hasher itself is
  /// soft state; the bytes on disk are the durable record).
  util::Md5& stage_hasher(const std::string& uid_key, std::int64_t hashed_bytes);

  db::Database& database_;
  std::string host_;
  std::string content_dir_;  ///< empty = blob mode
  /// In-flight upload hashers: MD5 accumulates as chunks arrive instead of
  /// re-reading the whole content at commit. Keyed by uid, tagged with the
  /// byte count hashed so far (stage resets/resumes invalidate cleanly).
  struct StageHash {
    util::Md5 hasher;
    std::int64_t hashed = 0;
  };
  std::unordered_map<std::string, StageHash> stage_hashers_;
  // Counted in const read paths from concurrent ServiceHost workers.
  mutable std::atomic<std::uint64_t> chunk_reads_{0};
  mutable std::atomic<std::int64_t> chunk_read_bytes_{0};
  mutable std::atomic<std::uint64_t> blob_copies_{0};
  mutable std::atomic<std::uint64_t> slice_reads_{0};
};

}  // namespace bitdew::services
