#include "services/data_transfer.hpp"

namespace bitdew::services {
namespace {

constexpr const char* kTicketTable = "dt_ticket";

db::Row ticket_to_row(const Ticket& ticket) {
  db::Row row;
  row["ticket"] = static_cast<std::int64_t>(ticket.id);
  row["uid"] = ticket.data_uid.str();
  row["source"] = ticket.source;
  row["destination"] = ticket.destination;
  row["protocol"] = ticket.protocol;
  row["total"] = ticket.total_bytes;
  row["done"] = ticket.done_bytes;
  row["attempts"] = static_cast<std::int64_t>(ticket.attempts);
  row["state"] = static_cast<std::int64_t>(ticket.state);
  row["created_at"] = ticket.created_at;
  row["monitored_at"] = ticket.last_monitored_at;
  return row;
}

Ticket row_to_ticket(const db::Row& row) {
  Ticket ticket;
  ticket.id = static_cast<TicketId>(db::get_int(row, "ticket"));
  ticket.data_uid = util::Auid::parse(db::get_text(row, "uid"));
  ticket.source = db::get_text(row, "source");
  ticket.destination = db::get_text(row, "destination");
  ticket.protocol = db::get_text(row, "protocol");
  ticket.total_bytes = db::get_int(row, "total");
  ticket.done_bytes = db::get_int(row, "done");
  ticket.attempts = static_cast<int>(db::get_int(row, "attempts"));
  ticket.state = static_cast<TransferState>(db::get_int(row, "state"));
  ticket.created_at = db::get_real(row, "created_at");
  ticket.last_monitored_at = db::get_real(row, "monitored_at");
  return ticket;
}

}  // namespace

DataTransfer::DataTransfer(db::Database& database, const util::Clock& clock)
    : database_(database), clock_(clock) {
  database_.create_table(db::TableSchema{kTicketTable, "ticket", {"state"}});
}

std::optional<db::RowId> DataTransfer::row_of(TicketId id) const {
  return database_.table(kTicketTable)
      ->by_primary(db::Value{static_cast<std::int64_t>(id)});
}

void DataTransfer::write_back(const Ticket& ticket) {
  const auto row_id = row_of(ticket.id);
  if (row_id.has_value()) {
    database_.update(kTicketTable, *row_id, ticket_to_row(ticket));
  }
}

TicketId DataTransfer::register_transfer(const core::Data& data, const std::string& source,
                                         const std::string& destination,
                                         const std::string& protocol) {
  Ticket ticket;
  ticket.id = next_id_++;
  ticket.data_uid = data.uid;
  ticket.source = source;
  ticket.destination = destination;
  ticket.protocol = protocol;
  ticket.total_bytes = data.size;
  ticket.created_at = clock_.now();
  ticket.last_monitored_at = ticket.created_at;
  database_.insert(kTicketTable, ticket_to_row(ticket));
  ++stats_.registered;
  return ticket.id;
}

void DataTransfer::monitor(TicketId id, std::int64_t done_bytes) {
  ++stats_.monitor_polls;
  auto found = ticket(id);
  if (!found.has_value() || found->state != TransferState::kActive) return;
  found->done_bytes = std::max(found->done_bytes, done_bytes);
  found->last_monitored_at = clock_.now();
  write_back(*found);
}

bool DataTransfer::complete(TicketId id, const std::string& received_checksum,
                            const std::string& expected_checksum) {
  auto found = ticket(id);
  if (!found.has_value() || found->state != TransferState::kActive) return false;
  if (received_checksum != expected_checksum) {
    // Receiver-driven integrity check failed: keep the ticket active for a
    // retry but restart from zero — the payload cannot be trusted.
    ++stats_.checksum_rejects;
    found->done_bytes = 0;
    ++found->attempts;
    write_back(*found);
    return false;
  }
  found->state = TransferState::kDone;
  found->done_bytes = found->total_bytes;
  found->last_monitored_at = clock_.now();
  write_back(*found);
  ++stats_.completed;
  return true;
}

void DataTransfer::report_failure(TicketId id, std::int64_t bytes_held, bool can_resume) {
  auto found = ticket(id);
  if (!found.has_value() || found->state != TransferState::kActive) return;
  ++found->attempts;
  found->done_bytes = can_resume ? std::max(found->done_bytes, bytes_held) : 0;
  if (can_resume && bytes_held > 0) ++stats_.resumes;
  write_back(*found);
}

void DataTransfer::give_up(TicketId id) {
  auto found = ticket(id);
  if (!found.has_value() || found->state != TransferState::kActive) return;
  found->state = TransferState::kFailed;
  write_back(*found);
  ++stats_.failed;
}

std::optional<Ticket> DataTransfer::ticket(TicketId id) const {
  const auto row_id = row_of(id);
  if (!row_id.has_value()) return std::nullopt;
  return row_to_ticket(*database_.table(kTicketTable)->get(*row_id));
}

std::size_t DataTransfer::active_count() const {
  return database_.table(kTicketTable)
      ->find("state", db::Value{static_cast<std::int64_t>(TransferState::kActive)})
      .size();
}

}  // namespace bitdew::services
