#include "services/ring_router.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/log.hpp"

namespace bitdew::services {
namespace {

namespace wire = rpc::wire;
using wire::Endpoint;

const util::Logger& logger() {
  static const util::Logger instance("ringrouter");
  return instance;
}

/// Entries re-replicated per repair round; small so a repair burst never
/// monopolizes the sweep thread or the successors' dispatch locks.
constexpr std::size_t kRepairWindow = 24;

/// Redirect-chase budget when forwarding per-item batch reads.
constexpr int kForwardHops = 3;

api::Status decode_status(const std::string& reply) {
  try {
    rpc::Reader r(reply);
    api::Status status = wire::read_status(r);
    if (!r.exhausted()) throw rpc::CodecError("trailing bytes");
    return status;
  } catch (const rpc::CodecError& error) {
    return api::Error{api::Errc::kTransport, "ring", error.what()};
  }
}

std::string encode_status(const api::Status& status) {
  rpc::Writer w;
  wire::write_status(w, status);
  return w.take();
}

bool is_write_endpoint(Endpoint endpoint) {
  return endpoint == Endpoint::kDcRegister || endpoint == Endpoint::kDcRemove ||
         endpoint == Endpoint::kDcAddLocator || endpoint == Endpoint::kDdcPublish;
}

}  // namespace

RingRouter::RingRouter(ServiceContainer& container, dht::LocalDht& ddc, Hooks hooks)
    : container_(container), ddc_(ddc), hooks_(std::move(hooks)) {}

void RingRouter::restore_persisted_state() {
  std::vector<std::string> keys;
  hooks_.with_store([&] {
    container_.for_each_ring_key([&](const std::string& key) { keys.push_back(key); });
    container_.for_each_ddc_pair(
        [&](const std::string& key, const std::string& value) { ddc_.put(key, value); });
  });
  {
    const util::LockGuard lock(index_mutex_);
    for (const std::string& key : keys) {
      index_[dht::live_ring_hash(key)].insert(key);
    }
  }
  if (!keys.empty()) {
    logger().info("restored %zu ring keys from the WAL", keys.size());
  }
}

void RingRouter::index_add(const std::string& key) {
  const util::LockGuard lock(index_mutex_);
  index_[dht::live_ring_hash(key)].insert(key);
}

void RingRouter::index_remove(const std::string& key) {
  const util::LockGuard lock(index_mutex_);
  const auto it = index_.find(dht::live_ring_hash(key));
  if (it == index_.end()) return;
  it->second.erase(key);
  if (it->second.empty()) index_.erase(it);
}

void RingRouter::fill_counts(wire::RingStatusInfo& info) const {
  const util::LockGuard lock(index_mutex_);
  for (const auto& [hash, keys] : index_) {
    for (const std::string& key : keys) {
      if (key.compare(0, 3, "dc:") == 0) {
        ++info.dc_keys;
      } else {
        ++info.ddc_keys;
      }
    }
  }
}

std::vector<std::string> RingRouter::keys_in_range(std::uint64_t from_excl,
                                                  std::uint64_t to_incl) const {
  std::vector<std::string> keys;
  const util::LockGuard lock(index_mutex_);
  for (const auto& [hash, bucket] : index_) {
    if (!dht::ring_in_half_open(hash, from_excl, to_incl)) continue;
    keys.insert(keys.end(), bucket.begin(), bucket.end());
  }
  return keys;
}

std::vector<wire::RingOp> RingRouter::assemble_ops(const std::vector<std::string>& keys) {
  std::vector<wire::RingOp> ops;
  hooks_.with_store([&] {
    for (const std::string& key : keys) {
      if (key.compare(0, 3, "dc:") == 0) {
        const util::Auid uid = util::Auid::parse(key.substr(3));
        if (uid.is_nil()) continue;
        // Round-trip the catalog entry through the local dispatch path so
        // the handoff ops replay byte-identically on the receiver.
        rpc::Writer request;
        wire::write_auid(request, uid);
        rpc::Reader get_reader(request.buffer());
        const std::string get_reply = hooks_.apply(Endpoint::kDcGet, get_reader);
        try {
          rpc::Reader r(get_reply);
          const api::Expected<core::Data> data =
              wire::read_expected<core::Data>(r, wire::read_data);
          if (!data.ok()) continue;  // index entry without a stored datum
          rpc::Writer body;
          wire::write_data(body, *data);
          ops.push_back({Endpoint::kDcRegister, body.take()});
        } catch (const rpc::CodecError&) {
          continue;
        }
        rpc::Reader locators_reader(request.buffer());
        const std::string locators_reply = hooks_.apply(Endpoint::kDcLocators, locators_reader);
        try {
          rpc::Reader r(locators_reply);
          const api::Expected<std::vector<core::Locator>> locators =
              wire::read_expected<std::vector<core::Locator>>(r, wire::read_locator_list);
          if (locators.ok()) {
            for (const core::Locator& locator : *locators) {
              rpc::Writer body;
              wire::write_locator(body, locator);
              ops.push_back({Endpoint::kDcAddLocator, body.take()});
            }
          }
        } catch (const rpc::CodecError&) {
        }
      } else if (key.compare(0, 4, "ddc:") == 0) {
        const std::string ddc = key.substr(4);
        for (const std::string& value : ddc_.get(ddc)) {
          rpc::Writer body;
          body.str(ddc);
          body.str(value);
          ops.push_back({Endpoint::kDdcPublish, body.take()});
        }
      }
    }
  });
  return ops;
}

std::vector<wire::RingOp> RingRouter::ops_in_range(std::uint64_t from_excl,
                                                   std::uint64_t to_incl) {
  return assemble_ops(keys_in_range(from_excl, to_incl));
}

void RingRouter::note_write_locked(Endpoint endpoint, const std::string& key,
                                   const std::string& body, const std::string& reply) {
  const api::Status status = decode_status(reply);
  const api::Errc code = status.ok() ? api::Errc::kOk : status.error().code;
  switch (endpoint) {
    case Endpoint::kDcRegister:
      if (code == api::Errc::kOk || code == api::Errc::kDuplicate) {
        index_add(key);
        container_.persist_ring_key(key);
      }
      break;
    case Endpoint::kDcAddLocator:
      if (code == api::Errc::kOk) {
        index_add(key);
        container_.persist_ring_key(key);
      }
      break;
    case Endpoint::kDcRemove:
      if (code == api::Errc::kOk || code == api::Errc::kNotFound) {
        index_remove(key);
        container_.forget_ring_key(key);
      }
      break;
    case Endpoint::kDdcPublish:
      if (code == api::Errc::kOk) {
        index_add(key);
        container_.persist_ring_key(key);
        try {
          rpc::Reader b(body);
          const std::string ddc = b.str();
          const std::string value = b.str();
          container_.persist_ddc_pair(ddc, value);
        } catch (const rpc::CodecError&) {
        }
      }
      break;
    default:
      break;
  }
}

bool RingRouter::should_replicate(const std::string& reply) {
  const api::Status status = decode_status(reply);
  const api::Errc code = status.ok() ? api::Errc::kOk : status.error().code;
  return code == api::Errc::kOk || code == api::Errc::kDuplicate ||
         code == api::Errc::kNotFound;
}

void RingRouter::replicate(const std::vector<wire::RingOp>& ops) {
  if (ops.empty() || ring_ == nullptr) return;
  const wire::RingStoreRequest request{false, ops};
  int copies = ring_->config().replication - 1;
  for (const wire::RingNode& s : ring_->successors()) {
    if (copies <= 0) break;
    if (s.id == ring_->self().id) continue;
    ring_->store_at(s, request);
    --copies;
  }
}

std::vector<api::Status> RingRouter::apply_ops(const std::vector<wire::RingOp>& ops,
                                               bool replicate_ops) {
  std::vector<api::Status> statuses;
  statuses.reserve(ops.size());
  std::vector<wire::RingOp> fan_out;
  hooks_.with_store([&] {
    for (const wire::RingOp& op : ops) {
      if (!wire::ring_op_endpoint_allowed(op.endpoint)) {
        statuses.push_back(api::Error{api::Errc::kInvalidArgument, "ring", "illegal ring op"});
        continue;
      }
      std::string reply;
      try {
        rpc::Reader r(op.body);
        reply = hooks_.apply(op.endpoint, r);
        if (!r.exhausted()) throw rpc::CodecError("trailing bytes in ring op");
      } catch (const rpc::CodecError& error) {
        statuses.push_back(api::Error{api::Errc::kInvalidArgument, "ring", error.what()});
        continue;
      }
      std::string key;
      try {
        rpc::Reader peek(op.body);
        key = op.endpoint == Endpoint::kDdcPublish
                  ? ddc_key(peek.str())
                  : dc_key(wire::read_auid(peek));
      } catch (const rpc::CodecError&) {
      }
      if (!key.empty()) note_write_locked(op.endpoint, key, op.body, reply);
      if (replicate_ops && should_replicate(reply)) fan_out.push_back(op);
      statuses.push_back(decode_status(reply));
    }
  });
  replicate(fan_out);  // outside the store lock: replication is RPC
  return statuses;
}

void RingRouter::repair() {
  if (ring_ == nullptr) return;
  std::vector<std::string> window;
  {
    const util::LockGuard lock(index_mutex_);
    if (index_.empty()) return;
    std::vector<std::string> all;
    for (const auto& [hash, bucket] : index_) {
      all.insert(all.end(), bucket.begin(), bucket.end());
    }
    const std::size_t start = repair_cursor_ % all.size();
    for (std::size_t i = 0; i < std::min(kRepairWindow, all.size()); ++i) {
      window.push_back(all[(start + i) % all.size()]);
    }
    repair_cursor_ = (start + window.size()) % all.size();
  }
  // Only ranges we own get pushed: replicas are the owner's to maintain.
  std::erase_if(window, [&](const std::string& key) {
    return !ring_->owns(dht::live_ring_hash(key));
  });
  if (window.empty()) return;
  replicate(assemble_ops(window));
}

// --- routing ------------------------------------------------------------------

std::optional<std::string> RingRouter::route(Endpoint endpoint, rpc::Reader& r) {
  if (ring_ == nullptr) return std::nullopt;
  switch (endpoint) {
    case Endpoint::kDcRegister:
    case Endpoint::kDcGet:
    case Endpoint::kDcRemove:
    case Endpoint::kDcLocators: {
      rpc::Reader peek = r;
      return route_keyed(endpoint, r, dc_key(wire::read_auid(peek)));
    }
    case Endpoint::kDcAddLocator: {
      rpc::Reader peek = r;  // a Locator leads with its data_uid
      return route_keyed(endpoint, r, dc_key(wire::read_auid(peek)));
    }
    case Endpoint::kDdcPublish:
    case Endpoint::kDdcSearch: {
      rpc::Reader peek = r;
      return route_keyed(endpoint, r, ddc_key(peek.str()));
    }
    case Endpoint::kDcSearch:
      return search_all(r);
    case Endpoint::kDcRegisterBatch:
      return register_batch(r);
    case Endpoint::kDdcPublishBatch:
      return publish_batch(r);
    case Endpoint::kDcLocatorsBatch:
      return locators_batch(r);
    default:
      return std::nullopt;  // dr_*/dt_*/ds_*/ping stay member-local
  }
}

std::optional<std::string> RingRouter::route_keyed(Endpoint endpoint, rpc::Reader& r,
                                                   const std::string& key) {
  const std::uint64_t hash = dht::live_ring_hash(key);
  if (!ring_->owns(hash)) {
    const api::Expected<wire::RingNode> owner = ring_->resolve_owner(hash);
    if (!owner.ok()) {
      r.skip(r.remaining());
      return encode_status(api::Status(owner.error()));
    }
    if (owner->id != ring_->self().id) {
      r.skip(r.remaining());
      return encode_status(api::Status(
          api::Error{api::Errc::kRedirect, "ring", owner->endpoint}));
    }
  }
  const bool is_write = is_write_endpoint(endpoint);
  const std::string body(r.rest());
  std::string reply;
  hooks_.with_store([&] {
    reply = hooks_.apply(endpoint, r);
    if (is_write) note_write_locked(endpoint, key, body, reply);
  });
  if (is_write && should_replicate(reply)) {
    replicate({wire::RingOp{endpoint, body}});
  }
  return reply;
}

std::string RingRouter::search_all(rpc::Reader& r) {
  const std::string name = [&] {
    rpc::Reader peek = r;
    return peek.str();
  }();
  std::vector<core::Data> merged;
  std::unordered_set<std::string> seen;
  auto merge_reply = [&](const std::string& reply) {
    try {
      rpc::Reader rr(reply);
      const api::Expected<std::vector<core::Data>> items =
          wire::read_expected<std::vector<core::Data>>(rr, wire::read_data_list);
      if (!items.ok()) return;
      for (const core::Data& item : *items) {
        if (seen.insert(item.uid.str()).second) merged.push_back(item);
      }
    } catch (const rpc::CodecError&) {
    }
  };
  std::string local_reply;
  hooks_.with_store([&] { local_reply = hooks_.apply(Endpoint::kDcSearch, r); });
  merge_reply(local_reply);
  // Name search cannot route by hash (the catalog shards by uid): fan out
  // to every member's local shard and merge. Unreachable members are
  // skipped — a partial answer beats none, and repair converges the rest.
  for (const wire::RingNode& member : ring_->collect_members()) {
    if (member.id == ring_->self().id) continue;
    const api::Expected<std::string> reply = ring_->call(
        member.endpoint, Endpoint::kRingSearch, [&](rpc::Writer& w) { w.str(name); });
    if (reply.ok()) merge_reply(*reply);
  }
  std::sort(merged.begin(), merged.end(),
            [](const core::Data& a, const core::Data& b) { return a.uid < b.uid; });
  rpc::Writer w;
  wire::write_expected(w, api::Expected<std::vector<core::Data>>(std::move(merged)),
                       wire::write_data_list);
  return w.take();
}

namespace {

/// Scatter plan for a write batch: item indices grouped by owning member.
struct ScatterPlan {
  std::vector<std::size_t> local;
  std::unordered_map<std::string, std::pair<wire::RingNode, std::vector<std::size_t>>> remote;
};

}  // namespace

std::string RingRouter::register_batch(rpc::Reader& r) {
  const std::vector<core::Data> items = wire::read_register_batch(r);
  std::vector<api::Status> out(items.size(), api::ok_status());
  ScatterPlan plan;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::uint64_t hash = dht::live_ring_hash(dc_key(items[i].uid));
    if (ring_->owns(hash)) {
      plan.local.push_back(i);
      continue;
    }
    const api::Expected<wire::RingNode> owner = ring_->resolve_owner(hash);
    if (!owner.ok()) {
      out[i] = api::Status(owner.error());
    } else if (owner->id == ring_->self().id) {
      plan.local.push_back(i);
    } else {
      auto& group = plan.remote[owner->endpoint];
      group.first = *owner;
      group.second.push_back(i);
    }
  }

  std::vector<wire::RingOp> local_ops;
  local_ops.reserve(plan.local.size());
  for (const std::size_t i : plan.local) {
    rpc::Writer body;
    wire::write_data(body, items[i]);
    local_ops.push_back({Endpoint::kDcRegister, body.take()});
  }
  const std::vector<api::Status> local_statuses = apply_ops(local_ops, true);
  for (std::size_t j = 0; j < plan.local.size(); ++j) out[plan.local[j]] = local_statuses[j];

  for (const auto& [endpoint, group] : plan.remote) {
    wire::RingStoreRequest request{true, {}};
    for (const std::size_t i : group.second) {
      rpc::Writer body;
      wire::write_data(body, items[i]);
      request.ops.push_back({Endpoint::kDcRegister, body.take()});
    }
    const std::vector<api::Status> statuses = ring_->store_at(group.first, request);
    for (std::size_t j = 0; j < group.second.size(); ++j) {
      out[group.second[j]] =
          j < statuses.size()
              ? statuses[j]
              : api::Status(api::Error{api::Errc::kUnavailable, "ring", "store truncated"});
    }
  }

  rpc::Writer w;
  wire::write_status_batch(w, out);
  return w.take();
}

std::string RingRouter::publish_batch(rpc::Reader& r) {
  const std::vector<std::pair<std::string, std::string>> pairs = wire::read_publish_batch(r);
  std::vector<api::Status> out(pairs.size(), api::ok_status());
  ScatterPlan plan;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const std::uint64_t hash = dht::live_ring_hash(ddc_key(pairs[i].first));
    if (ring_->owns(hash)) {
      plan.local.push_back(i);
      continue;
    }
    const api::Expected<wire::RingNode> owner = ring_->resolve_owner(hash);
    if (!owner.ok()) {
      out[i] = api::Status(owner.error());
    } else if (owner->id == ring_->self().id) {
      plan.local.push_back(i);
    } else {
      auto& group = plan.remote[owner->endpoint];
      group.first = *owner;
      group.second.push_back(i);
    }
  }

  auto encode_pair = [](const std::pair<std::string, std::string>& pair) {
    rpc::Writer body;
    body.str(pair.first);
    body.str(pair.second);
    return wire::RingOp{Endpoint::kDdcPublish, body.take()};
  };

  std::vector<wire::RingOp> local_ops;
  local_ops.reserve(plan.local.size());
  for (const std::size_t i : plan.local) local_ops.push_back(encode_pair(pairs[i]));
  const std::vector<api::Status> local_statuses = apply_ops(local_ops, true);
  for (std::size_t j = 0; j < plan.local.size(); ++j) out[plan.local[j]] = local_statuses[j];

  for (const auto& [endpoint, group] : plan.remote) {
    wire::RingStoreRequest request{true, {}};
    for (const std::size_t i : group.second) request.ops.push_back(encode_pair(pairs[i]));
    const std::vector<api::Status> statuses = ring_->store_at(group.first, request);
    for (std::size_t j = 0; j < group.second.size(); ++j) {
      out[group.second[j]] =
          j < statuses.size()
              ? statuses[j]
              : api::Status(api::Error{api::Errc::kUnavailable, "ring", "store truncated"});
    }
  }

  rpc::Writer w;
  wire::write_status_batch(w, out);
  return w.take();
}

std::string RingRouter::locators_batch(rpc::Reader& r) {
  const std::vector<util::Auid> uids = wire::read_locators_batch_request(r);
  std::vector<api::Expected<std::vector<core::Locator>>> out;
  out.reserve(uids.size());
  for (const util::Auid& uid : uids) {
    const std::uint64_t hash = dht::live_ring_hash(dc_key(uid));
    bool serve_local = ring_->owns(hash);
    wire::RingNode owner;
    if (!serve_local) {
      const api::Expected<wire::RingNode> resolved = ring_->resolve_owner(hash);
      if (!resolved.ok()) {
        out.push_back(resolved.error());
        continue;
      }
      if (resolved->id == ring_->self().id) {
        serve_local = true;
      } else {
        owner = *resolved;
      }
    }
    if (serve_local) {
      std::string reply;
      hooks_.with_store([&] {
        rpc::Writer request;
        wire::write_auid(request, uid);
        rpc::Reader rr(request.buffer());
        reply = hooks_.apply(Endpoint::kDcLocators, rr);
      });
      try {
        rpc::Reader rr(reply);
        out.push_back(wire::read_expected<std::vector<core::Locator>>(
            rr, wire::read_locator_list));
      } catch (const rpc::CodecError& error) {
        out.push_back(api::Error{api::Errc::kTransport, "ring", error.what()});
      }
      continue;
    }
    // Forward to the owner, chasing a bounded number of redirects (its own
    // tables may have shifted under churn).
    api::Expected<std::vector<core::Locator>> item =
        api::Error{api::Errc::kUnavailable, "ring", "owner unreachable"};
    std::string target = owner.endpoint;
    for (int hop = 0; hop < kForwardHops && !target.empty(); ++hop) {
      const api::Expected<std::string> reply =
          ring_->call(target, Endpoint::kDcLocators,
                      [&](rpc::Writer& w) { wire::write_auid(w, uid); });
      if (!reply.ok()) {
        item = reply.error();
        break;
      }
      try {
        rpc::Reader rr(*reply);
        item = wire::read_expected<std::vector<core::Locator>>(rr, wire::read_locator_list);
      } catch (const rpc::CodecError& error) {
        item = api::Error{api::Errc::kTransport, "ring", error.what()};
        break;
      }
      if (!item.ok() && item.error().code == api::Errc::kRedirect) {
        target = item.error().message;
        continue;
      }
      break;
    }
    out.push_back(std::move(item));
  }
  rpc::Writer w;
  wire::write_locators_batch_reply(w, out);
  return w.take();
}

}  // namespace bitdew::services
