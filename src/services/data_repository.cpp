#include "services/data_repository.hpp"

namespace bitdew::services {
namespace {

constexpr const char* kObjectTable = "dr_object";

}  // namespace

DataRepository::DataRepository(db::Database& database, std::string host_name)
    : database_(database), host_(std::move(host_name)) {
  database_.create_table(db::TableSchema{kObjectTable, "uid", {}});
}

core::Locator DataRepository::put(const core::Data& data, const core::Content& content,
                                  const std::string& protocol) {
  db::Row row;
  row["uid"] = data.uid.str();
  row["size"] = content.size;
  row["checksum"] = content.checksum;
  row["path"] = "store/" + data.uid.str();

  db::Table* table = database_.table(kObjectTable);
  const auto existing = table->by_primary(db::Value{data.uid.str()});
  if (existing.has_value()) {
    database_.update(kObjectTable, *existing, row);
  } else {
    database_.insert(kObjectTable, std::move(row));
  }

  core::Locator locator;
  locator.data_uid = data.uid;
  locator.protocol = protocol;
  locator.host = host_;
  locator.path = "store/" + data.uid.str();
  return locator;
}

std::optional<core::Content> DataRepository::get(const util::Auid& uid) const {
  const db::Table* table = database_.table(kObjectTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return std::nullopt;
  const db::Row& row = *table->get(*id);
  core::Content content;
  content.size = db::get_int(row, "size");
  content.checksum = db::get_text(row, "checksum");
  return content;
}

std::optional<core::Locator> DataRepository::locator(const util::Auid& uid,
                                                     const std::string& protocol) const {
  const db::Table* table = database_.table(kObjectTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return std::nullopt;
  core::Locator locator;
  locator.data_uid = uid;
  locator.protocol = protocol;
  locator.host = host_;
  locator.path = db::get_text(*table->get(*id), "path");
  return locator;
}

bool DataRepository::exists(const util::Auid& uid) const {
  return database_.table(kObjectTable)->by_primary(db::Value{uid.str()}).has_value();
}

bool DataRepository::remove(const util::Auid& uid) {
  db::Table* table = database_.table(kObjectTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return false;
  return database_.erase(kObjectTable, *id);
}

std::int64_t DataRepository::stored_bytes() const {
  std::int64_t total = 0;
  database_.table(kObjectTable)->scan([&total](db::RowId, const db::Row& row) {
    total += db::get_int(row, "size");
    return true;
  });
  return total;
}

std::size_t DataRepository::object_count() const {
  return database_.table(kObjectTable)->size();
}

}  // namespace bitdew::services
