#include "services/data_repository.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <variant>

#include "util/md5.hpp"

namespace bitdew::services {

using rpc::Fd;

namespace {

constexpr const char* kObjectTable = "dr_object";    // published descriptors
constexpr const char* kContentTable = "dr_content";  // published content blobs / paths
constexpr const char* kStageTable = "dr_stage";      // in-flight upload state
constexpr const char* kChunkTable = "dr_chunk";      // in-flight upload chunks (blob mode)

std::string chunk_key(const std::string& uid_key, std::int64_t index) {
  return uid_key + "#" + std::to_string(index);
}

/// pread the exact range [offset, offset+length) into a string; shorter on
/// EOF, empty optional on a read error.
std::optional<std::string> pread_range(int fd, std::int64_t offset, std::int64_t length) {
  std::string out;
  out.resize(static_cast<std::size_t>(length));
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + got, out.size() - got,
                              static_cast<off_t>(offset + static_cast<std::int64_t>(got)));
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  out.resize(got);
  return out;
}

bool pwrite_all(int fd, const std::string& bytes, std::int64_t offset) {
  std::size_t put = 0;
  while (put < bytes.size()) {
    const ssize_t n = ::pwrite(fd, bytes.data() + put, bytes.size() - put,
                               static_cast<off_t>(offset + static_cast<std::int64_t>(put)));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

DataRepository::DataRepository(db::Database& database, std::string host_name,
                               std::string content_dir)
    : database_(database), host_(std::move(host_name)), content_dir_(std::move(content_dir)) {
  database_.create_table(db::TableSchema{kObjectTable, "uid", {}});
  database_.create_table(db::TableSchema{kContentTable, "uid", {}});
  database_.create_table(db::TableSchema{kStageTable, "uid", {}});
  database_.create_table(db::TableSchema{kChunkTable, "key", {}});
  if (file_backed()) {
    std::error_code ec;
    std::filesystem::create_directories(content_dir_, ec);
    // A dead content dir degrades to blob mode rather than failing boot.
    if (ec) content_dir_.clear();
  }
}

std::string DataRepository::content_path(const std::string& uid_key) const {
  return content_dir_ + "/" + uid_key;
}

std::string DataRepository::part_path(const std::string& uid_key) const {
  return content_dir_ + "/" + uid_key + ".part";
}

core::Locator DataRepository::put(const core::Data& data, const core::Content& content,
                                  const std::string& protocol) {
  db::Row row;
  row["uid"] = data.uid.str();
  row["size"] = content.size;
  row["checksum"] = content.checksum;
  row["path"] = "store/" + data.uid.str();

  db::Table* table = database_.table(kObjectTable);
  const auto existing = table->by_primary(db::Value{data.uid.str()});
  if (existing.has_value()) {
    database_.update(kObjectTable, *existing, row);
  } else {
    database_.insert(kObjectTable, std::move(row));
  }

  core::Locator locator;
  locator.data_uid = data.uid;
  locator.protocol = protocol;
  locator.host = host_;
  locator.path = "store/" + data.uid.str();
  return locator;
}

std::optional<core::Content> DataRepository::get(const util::Auid& uid) const {
  const db::Table* table = database_.table(kObjectTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return std::nullopt;
  const db::Row& row = *table->get(*id);
  core::Content content;
  content.size = db::get_int(row, "size");
  content.checksum = db::get_text(row, "checksum");
  return content;
}

std::optional<core::Locator> DataRepository::locator(const util::Auid& uid,
                                                     const std::string& protocol) const {
  const db::Table* table = database_.table(kObjectTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return std::nullopt;
  core::Locator locator;
  locator.data_uid = uid;
  locator.protocol = protocol;
  locator.host = host_;
  locator.path = db::get_text(*table->get(*id), "path");
  return locator;
}

bool DataRepository::exists(const util::Auid& uid) const {
  return database_.table(kObjectTable)->by_primary(db::Value{uid.str()}).has_value();
}

bool DataRepository::remove(const util::Auid& uid) {
  stage_discard(uid);
  const std::string uid_key = uid.str();
  if (db::Table* content = database_.table(kContentTable)) {
    if (const auto id = content->by_primary(db::Value{uid_key})) {
      const db::Row& row = *content->get(*id);
      const auto path = row.find("path");
      if (path != row.end() && std::holds_alternative<std::string>(path->second)) {
        std::error_code ec;
        std::filesystem::remove(std::get<std::string>(path->second), ec);
      }
      database_.erase(kContentTable, *id);
    }
  }
  db::Table* table = database_.table(kObjectTable);
  const auto id = table->by_primary(db::Value{uid_key});
  if (!id.has_value()) return false;
  return database_.erase(kObjectTable, *id);
}

// --- chunked out-of-band uploads ---------------------------------------------

std::int64_t DataRepository::stage_begin(const core::Data& data) {
  db::Table* table = database_.table(kStageTable);
  const std::string uid_key = data.uid.str();
  if (const auto id = table->by_primary(db::Value{uid_key})) {
    const db::Row& row = *table->get(*id);
    if (db::get_int(row, "size") == data.size &&
        db::get_text(row, "checksum") == data.checksum) {
      const std::int64_t received = db::get_int(row, "received");
      if (file_backed()) {
        // A crash can leave the .part file longer than the durable
        // `received` watermark (bytes landed, row update didn't). Truncate
        // back so the resumed sender's offsets line up with the file.
        std::error_code ec;
        std::filesystem::resize_file(part_path(uid_key),
                                     static_cast<std::uintmax_t>(received), ec);
        if (ec && received > 0) {
          // .part vanished under a live stage: restart from scratch.
          drop_stage_rows(uid_key, db::get_int(row, "chunks"));
          database_.erase(kStageTable, *id);
          stage_hashers_.erase(uid_key);
          return stage_begin(data);
        }
      }
      return received;  // resume
    }
    // The datum's content changed under the stage: restart from scratch.
    drop_stage_rows(uid_key, db::get_int(row, "chunks"));
    database_.erase(kStageTable, *id);
  }
  stage_hashers_.erase(uid_key);
  if (file_backed()) {
    std::error_code ec;
    std::filesystem::remove(part_path(uid_key), ec);
  }
  db::Row row;
  row["uid"] = uid_key;
  row["received"] = std::int64_t{0};
  row["chunks"] = std::int64_t{0};
  row["size"] = data.size;
  row["checksum"] = data.checksum;
  database_.insert(kStageTable, std::move(row));
  return 0;
}

util::Md5& DataRepository::stage_hasher(const std::string& uid_key, std::int64_t hashed_bytes) {
  StageHash& entry = stage_hashers_[uid_key];
  if (entry.hashed == hashed_bytes) return entry.hasher;
  // Restart (or resync): replay the durable .part bytes through a fresh
  // hasher. This is the only place the staged content is ever re-read.
  entry.hasher.reset();
  entry.hashed = 0;
  const Fd fd{::open(part_path(uid_key).c_str(), O_RDONLY | O_CLOEXEC)};
  if (fd.valid()) {
    std::string buffer;
    while (entry.hashed < hashed_bytes) {
      const std::int64_t want = std::min<std::int64_t>(hashed_bytes - entry.hashed, 1 << 20);
      auto block = pread_range(fd.get(), entry.hashed, want);
      if (!block.has_value() || block->empty()) break;
      entry.hasher.update(*block);
      entry.hashed += static_cast<std::int64_t>(block->size());
    }
  }
  return entry.hasher;
}

ChunkResult DataRepository::stage_chunk(const util::Auid& uid, std::int64_t offset,
                                        const std::string& bytes) {
  if (static_cast<std::int64_t>(bytes.size()) > kMaxChunkBytes) return ChunkResult::kOversize;
  db::Table* table = database_.table(kStageTable);
  const std::string uid_key = uid.str();
  const auto id = table->by_primary(db::Value{uid_key});
  if (!id.has_value()) return ChunkResult::kNoStage;
  const db::Row stage = *table->get(*id);
  const std::int64_t received = db::get_int(stage, "received");
  const std::int64_t chunks = db::get_int(stage, "chunks");
  if (offset != received) return ChunkResult::kBadOffset;
  if (received + static_cast<std::int64_t>(bytes.size()) > db::get_int(stage, "size")) {
    return ChunkResult::kOversize;
  }

  if (file_backed()) {
    // Stream straight to disk: the chunk bytes never enter the database,
    // and the content MD5 accumulates as they arrive.
    const Fd fd{::open(part_path(uid_key).c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644)};
    if (!fd.valid() || !pwrite_all(fd.get(), bytes, offset)) return ChunkResult::kNoStage;
    util::Md5& hasher = stage_hasher(uid_key, received);
    hasher.update(bytes);
    stage_hashers_[uid_key].hashed = received + static_cast<std::int64_t>(bytes.size());
  } else {
    db::Row chunk;
    chunk["key"] = chunk_key(uid_key, chunks);
    chunk["bytes"] = bytes;
    database_.insert(kChunkTable, std::move(chunk));
  }

  db::Row updated = stage;
  updated["received"] = received + static_cast<std::int64_t>(bytes.size());
  updated["chunks"] = chunks + 1;
  database_.update(kStageTable, *id, std::move(updated));
  return ChunkResult::kOk;
}

CommitResult DataRepository::stage_commit(const util::Auid& uid, const std::string& protocol,
                                          core::Locator* locator_out) {
  db::Table* table = database_.table(kStageTable);
  const std::string uid_key = uid.str();
  const auto id = table->by_primary(db::Value{uid_key});
  if (!id.has_value()) return CommitResult::kNoStage;
  const db::Row stage = *table->get(*id);
  const std::int64_t size = db::get_int(stage, "size");
  const std::int64_t chunks = db::get_int(stage, "chunks");
  if (db::get_int(stage, "received") < size) return CommitResult::kIncomplete;

  std::string digest;
  std::string content_bytes;  // blob mode only
  if (file_backed()) {
    // The MD5 already accumulated chunk by chunk (or replays the .part
    // file once after a restart): commit never materializes the content.
    digest = stage_hasher(uid_key, size).finish().hex();
    stage_hashers_.erase(uid_key);
  } else {
    // Assemble in arrival order, accumulating the MD5 over the whole content.
    const db::Table* chunk_table = database_.table(kChunkTable);
    util::Md5 hasher;
    content_bytes.reserve(static_cast<std::size_t>(size));
    for (std::int64_t i = 0; i < chunks; ++i) {
      const auto chunk_id = chunk_table->by_primary(db::Value{chunk_key(uid_key, i)});
      if (!chunk_id.has_value()) continue;  // lost chunk row surfaces as a bad MD5
      const std::string bytes = db::get_text(*chunk_table->get(*chunk_id), "bytes");
      hasher.update(bytes);
      content_bytes += bytes;
    }
    digest = hasher.finish().hex();
  }

  // The stage is consumed either way: a mismatch must not leave poisoned
  // bytes behind for the next attempt to resume onto.
  drop_stage_rows(uid_key, chunks);
  database_.erase(kStageTable, *id);

  if (digest != db::get_text(stage, "checksum")) {
    if (file_backed()) {
      std::error_code ec;
      std::filesystem::remove(part_path(uid_key), ec);
    }
    return CommitResult::kChecksumMismatch;
  }

  core::Data data;
  data.uid = uid;
  data.size = size;
  data.checksum = db::get_text(stage, "checksum");
  const core::Locator locator = put(data, core::Content{data.size, data.checksum}, protocol);
  if (locator_out != nullptr) *locator_out = locator;

  db::Table* content_table = database_.table(kContentTable);
  db::Row content;
  content["uid"] = uid_key;
  if (file_backed()) {
    const std::string published = content_path(uid_key);
    std::error_code ec;
    std::filesystem::rename(part_path(uid_key), published, ec);
    if (ec) return CommitResult::kNoStage;  // staged bytes vanished underneath
    content["path"] = published;
  } else {
    content["bytes"] = std::move(content_bytes);
  }
  if (const auto existing = content_table->by_primary(db::Value{uid_key})) {
    database_.update(kContentTable, *existing, std::move(content));
  } else {
    database_.insert(kContentTable, std::move(content));
  }
  return CommitResult::kOk;
}

void DataRepository::stage_discard(const util::Auid& uid) {
  db::Table* table = database_.table(kStageTable);
  const std::string uid_key = uid.str();
  stage_hashers_.erase(uid_key);
  if (file_backed()) {
    std::error_code ec;
    std::filesystem::remove(part_path(uid_key), ec);
  }
  const auto id = table->by_primary(db::Value{uid_key});
  if (!id.has_value()) return;
  drop_stage_rows(uid_key, db::get_int(*table->get(*id), "chunks"));
  database_.erase(kStageTable, *id);
}

std::int64_t DataRepository::stage_received(const util::Auid& uid) const {
  const db::Table* table = database_.table(kStageTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  return id.has_value() ? db::get_int(*table->get(*id), "received") : 0;
}

void DataRepository::drop_stage_rows(const std::string& uid_key, std::int64_t chunk_count) {
  const db::Table* chunk_table = database_.table(kChunkTable);
  for (std::int64_t i = 0; i < chunk_count; ++i) {
    if (const auto id = chunk_table->by_primary(db::Value{chunk_key(uid_key, i)})) {
      database_.erase(kChunkTable, *id);
    }
  }
}

// --- chunked reads ------------------------------------------------------------

std::optional<std::string> DataRepository::read_bytes(const util::Auid& uid,
                                                      std::int64_t offset,
                                                      std::int64_t max_bytes) const {
  auto chunk = read_chunk_ref(uid, offset, max_bytes);
  if (!chunk.has_value()) return std::nullopt;
  if (!chunk->file_backed()) return std::move(chunk->bytes);
  // A string is what the caller asked for: materialize the slice (and
  // account for the copy — this is the path the zero-copy plane bypasses).
  auto bytes = pread_range(chunk->file.get(), chunk->offset, chunk->length);
  if (!bytes.has_value()) return std::nullopt;
  blob_copies_.fetch_add(1, std::memory_order_relaxed);
  slice_reads_.fetch_sub(1, std::memory_order_relaxed);
  return std::move(*bytes);
}

std::optional<rpc::ChunkRef> DataRepository::read_chunk_ref(const util::Auid& uid,
                                                            std::int64_t offset,
                                                            std::int64_t max_bytes) const {
  const db::Table* table = database_.table(kContentTable);
  const auto id = table->by_primary(db::Value{uid.str()});
  if (!id.has_value()) return std::nullopt;
  const db::Row& row = *table->get(*id);

  const auto path_it = row.find("path");
  if (path_it != row.end() && std::holds_alternative<std::string>(path_it->second)) {
    Fd fd{::open(std::get<std::string>(path_it->second).c_str(), O_RDONLY | O_CLOEXEC)};
    if (!fd.valid()) return std::nullopt;
    struct stat st{};
    if (::fstat(fd.get(), &st) != 0) return std::nullopt;
    const auto size = static_cast<std::int64_t>(st.st_size);
    if (offset < 0 || offset >= size) return rpc::ChunkRef(std::string{});
    const std::int64_t take = std::min<std::int64_t>(max_bytes, size - offset);
    chunk_reads_.fetch_add(1, std::memory_order_relaxed);
    chunk_read_bytes_.fetch_add(take, std::memory_order_relaxed);
    slice_reads_.fetch_add(1, std::memory_order_relaxed);
    return rpc::ChunkRef(std::move(fd), offset, take);
  }

  const auto it = row.find("bytes");
  if (it == row.end()) return std::nullopt;
  const std::string* bytes = std::get_if<std::string>(&it->second);
  if (bytes == nullptr) return std::nullopt;
  if (offset < 0 || offset >= static_cast<std::int64_t>(bytes->size())) {
    return rpc::ChunkRef(std::string{});
  }
  const std::int64_t take =
      std::min<std::int64_t>(max_bytes, static_cast<std::int64_t>(bytes->size()) - offset);
  chunk_reads_.fetch_add(1, std::memory_order_relaxed);
  chunk_read_bytes_.fetch_add(take, std::memory_order_relaxed);
  blob_copies_.fetch_add(1, std::memory_order_relaxed);
  return rpc::ChunkRef(
      bytes->substr(static_cast<std::size_t>(offset), static_cast<std::size_t>(take)));
}

bool DataRepository::has_bytes(const util::Auid& uid) const {
  return database_.table(kContentTable)->by_primary(db::Value{uid.str()}).has_value();
}

std::int64_t DataRepository::stored_bytes() const {
  std::int64_t total = 0;
  database_.table(kObjectTable)->scan([&total](db::RowId, const db::Row& row) {
    total += db::get_int(row, "size");
    return true;
  });
  return total;
}

std::size_t DataRepository::object_count() const {
  return database_.table(kObjectTable)->size();
}

RepoStats DataRepository::stats() const {
  RepoStats out;
  out.objects = object_count();
  out.stored_bytes = stored_bytes();
  out.chunk_reads = chunk_reads_.load(std::memory_order_relaxed);
  out.chunk_read_bytes = chunk_read_bytes_.load(std::memory_order_relaxed);
  out.blob_copies = blob_copies_.load(std::memory_order_relaxed);
  out.slice_reads = slice_reads_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace bitdew::services
