// RingRouter: the catalog side of the live DHT ring. Sits between
// ServiceHost dispatch and the ServiceContainer/LocalDht store, deciding
// for every keyed dc_*/ddc_* request whether this member serves it (it owns
// the key hash, or an iterative lookup resolved to us), or the client is
// redirected (Errc::kRedirect carrying the owner's "host:port", which
// RemoteServiceBus chases).
//
// The router also owns the member's key index — hash → key strings
// ("dc:<uid>" / "ddc:<key>") — which backs join/leave handoff, incremental
// anti-entropy repair toward the successor list, the WAL persistence of
// per-node key ranges (a restarted durable member rejoins with its keys
// instead of empty), and the per-node key counts the kRingInfo endpoint
// reports.
//
// Locking: the router never holds its index mutex while taking the
// container lock (Hooks::with_store) and never holds either across a ring
// RPC — replication and forwarding happen strictly after local apply
// releases the store.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dht/live_ring.hpp"
#include "dht/local_dht.hpp"
#include "rpc/wire.hpp"
#include "services/container.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::services {

class RingRouter {
 public:
  struct Hooks {
    /// Runs `fn` with the container/ddc lock held.
    std::function<void(const std::function<void()>&)> with_store;
    /// Applies an encoded request body locally and returns the encoded
    /// reply. MUST be invoked inside with_store.
    std::function<std::string(rpc::wire::Endpoint, rpc::Reader&)> apply;
  };

  RingRouter(ServiceContainer& container, dht::LocalDht& ddc, Hooks hooks);
  RingRouter(const RingRouter&) = delete;
  RingRouter& operator=(const RingRouter&) = delete;

  void attach(dht::LiveRing& ring) { ring_ = &ring; }

  /// Rebuilds the key index from the WAL (and replays persisted ddc pairs
  /// into the LocalDht). Call once before the ring starts serving.
  void restore_persisted_state();

  /// Routing entry from ServiceHost::dispatch. nullopt = endpoint is not
  /// ring-routed; the caller falls through to plain local dispatch.
  std::optional<std::string> route(rpc::wire::Endpoint endpoint, rpc::Reader& r);

  /// Re-encodes locally held entries with key hash in (from, to] as
  /// replayable ops ((from, from] = everything). Bound into the ring's
  /// join/leave handoff.
  std::vector<rpc::wire::RingOp> ops_in_range(std::uint64_t from_excl, std::uint64_t to_incl);

  /// Applies ops locally (kRingStore server side and join handoff
  /// ingestion); with `replicate` the ops are re-fanned to our successor
  /// list afterwards (we are their new owner). Returns per-op statuses.
  std::vector<api::Status> apply_ops(const std::vector<rpc::wire::RingOp>& ops, bool replicate);

  /// One incremental anti-entropy round: re-sends a small window of owned
  /// entries to the live successors, restoring f-replication after churn.
  void repair();

  /// Fills the key counters of a kRingInfo reply.
  void fill_counts(rpc::wire::RingStatusInfo& info) const;

 private:
  static std::string dc_key(const util::Auid& uid) { return "dc:" + uid.str(); }
  static std::string ddc_key(const std::string& key) { return "ddc:" + key; }

  std::optional<std::string> route_keyed(rpc::wire::Endpoint endpoint, rpc::Reader& r,
                                         const std::string& key);
  std::string search_all(rpc::Reader& r);
  std::string register_batch(rpc::Reader& r);
  std::string publish_batch(rpc::Reader& r);
  std::string locators_batch(rpc::Reader& r);

  /// Updates index + WAL after a locally applied write. Requires the
  /// container lock (call inside with_store) — the host's capability,
  /// reachable only through the with_store std::function, so the contract
  /// stays prose here and is enforced as REQUIRES(container_mutex_) on the
  /// host's side of the hook.
  void note_write_locked(rpc::wire::Endpoint endpoint, const std::string& key,
                         const std::string& body, const std::string& reply)
      EXCLUDES(index_mutex_);
  /// True when the applied status warrants replication to successors
  /// (success, or idempotent-echo codes like duplicate/not_found).
  static bool should_replicate(const std::string& reply);
  void replicate(const std::vector<rpc::wire::RingOp>& ops);
  void index_add(const std::string& key) EXCLUDES(index_mutex_);
  void index_remove(const std::string& key) EXCLUDES(index_mutex_);
  std::vector<std::string> keys_in_range(std::uint64_t from_excl, std::uint64_t to_incl) const
      EXCLUDES(index_mutex_);
  std::vector<rpc::wire::RingOp> assemble_ops(const std::vector<std::string>& keys);

  ServiceContainer& container_;
  dht::LocalDht& ddc_;
  Hooks hooks_;
  dht::LiveRing* ring_ = nullptr;

  mutable util::Mutex index_mutex_;
  /// hash → key strings
  std::map<std::uint64_t, std::set<std::string>> index_ GUARDED_BY(index_mutex_);
  std::size_t repair_cursor_ GUARDED_BY(index_mutex_) = 0;
};

}  // namespace bitdew::services
