// Data Transfer (DT): launches out-of-band transfers and ensures their
// reliability (paper §3.4.2). Receiver-driven: the receiver registers a
// ticket, reports progress through periodic monitor() polls, and the
// completion is verified against the expected MD5 before the ticket is
// marked Done. Failed transfers carry resume offsets so protocols with
// REST/Range support continue instead of restarting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/data.hpp"
#include "db/database.hpp"
#include "util/clock.hpp"

namespace bitdew::services {

using TicketId = std::uint64_t;

enum class TransferState { kActive, kDone, kFailed };

struct Ticket {
  TicketId id = 0;
  util::Auid data_uid;
  std::string source;
  std::string destination;
  std::string protocol;
  std::int64_t total_bytes = 0;
  std::int64_t done_bytes = 0;
  int attempts = 1;
  TransferState state = TransferState::kActive;
  double created_at = 0;
  double last_monitored_at = 0;
};

struct TransferStats {
  std::uint64_t registered = 0;
  std::uint64_t monitor_polls = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t checksum_rejects = 0;
  std::uint64_t resumes = 0;
};

class DataTransfer {
 public:
  DataTransfer(db::Database& database, const util::Clock& clock);

  /// Registers a new transfer; returns its ticket.
  TicketId register_transfer(const core::Data& data, const std::string& source,
                             const std::string& destination, const std::string& protocol);

  /// Receiver-driven progress poll; also refreshes the monitoring timestamp
  /// (the 500 ms heartbeat in the paper's overhead experiment).
  void monitor(TicketId id, std::int64_t done_bytes);

  /// Receiver reports completion with the checksum of what it received.
  /// Returns true when the checksum matches the expected one; otherwise the
  /// ticket stays active (attempt count bumped) for a retry.
  bool complete(TicketId id, const std::string& received_checksum,
                const std::string& expected_checksum);

  /// Receiver reports a failed attempt; `bytes_held` credits resume offset.
  /// The ticket stays active for a retry until give_up() is called.
  void report_failure(TicketId id, std::int64_t bytes_held, bool can_resume);

  /// Abandons the transfer.
  void give_up(TicketId id);

  std::optional<Ticket> ticket(TicketId id) const;
  std::size_t active_count() const;
  const TransferStats& stats() const { return stats_; }

 private:
  void write_back(const Ticket& ticket);
  std::optional<db::RowId> row_of(TicketId id) const;

  db::Database& database_;
  const util::Clock& clock_;
  TicketId next_id_ = 1;
  TransferStats stats_;
};

}  // namespace bitdew::services
