#include "testbed/topologies.hpp"

#include <cmath>

#include "util/strf.hpp"

namespace bitdew::testbed {

Cluster make_cluster(net::Network& net, const ClusterSpec& spec) {
  Cluster cluster;
  cluster.name = spec.name;
  cluster.cpu_ghz = spec.cpu_ghz;
  cluster.zone = net.add_zone(spec.name);
  cluster.hosts.reserve(static_cast<std::size_t>(spec.nodes));
  for (int i = 0; i < spec.nodes; ++i) {
    net::HostSpec host;
    host.name = util::strf("%s-%d", spec.name.c_str(), i);
    host.uplink_Bps = spec.nic_Bps;
    host.downlink_Bps = spec.nic_Bps;
    host.lan_latency_s = spec.lan_latency_s;
    cluster.hosts.push_back(net.add_host(cluster.zone, host));
  }
  return cluster;
}

std::vector<net::HostId> Grid5000::all_hosts() const {
  std::vector<net::HostId> out;
  for (const Cluster& cluster : clusters) {
    out.insert(out.end(), cluster.hosts.begin(), cluster.hosts.end());
  }
  return out;
}

Grid5000 make_grid5000(net::Network& net, double scale) {
  struct SiteSpec {
    const char* name;
    int nodes;
    double ghz;
    double wan_to_orsay_s;  // one-way latency to the Orsay site
  };
  // Table 1 of the paper; latencies approximate RENATER paths.
  const SiteSpec sites[] = {
      {"gdx", 312, 2.2, 0.0},          // Orsay (mixed 2.0/2.4 -> 2.2 mean)
      {"grelon", 120, 1.6, 5e-3},      // Nancy
      {"grillon", 47, 2.0, 5e-3},      // Nancy
      {"sagittaire", 65, 2.4, 4e-3},   // Lyon
  };

  Grid5000 grid;
  const double egress = 1.25e9;  // 10 Gbit/s site egress
  for (const SiteSpec& site : sites) {
    const int nodes = std::max(1, static_cast<int>(std::lround(site.nodes * scale)));
    Cluster cluster;
    cluster.name = site.name;
    cluster.cpu_ghz = site.ghz;
    cluster.zone = net.add_zone(site.name, egress, egress);
    for (int i = 0; i < nodes; ++i) {
      net::HostSpec host;
      host.name = util::strf("%s-%d", site.name, i);
      host.uplink_Bps = 125e6;
      host.downlink_Bps = 125e6;
      host.lan_latency_s = 100e-6;
      cluster.hosts.push_back(net.add_host(cluster.zone, host));
    }
    grid.clusters.push_back(std::move(cluster));
  }
  // Inter-site one-way latencies (symmetric matrix from per-site values).
  for (std::size_t a = 0; a < grid.clusters.size(); ++a) {
    for (std::size_t b = a + 1; b < grid.clusters.size(); ++b) {
      const double latency =
          std::max(2e-3, sites[a].wan_to_orsay_s + sites[b].wan_to_orsay_s);
      net.set_zone_latency(grid.clusters[a].zone, grid.clusters[b].zone, latency);
    }
  }
  return grid;
}

DslLab make_dsllab(net::Network& net, util::Rng& rng, int nodes) {
  DslLab lab;
  const net::ZoneId datacenter = net.add_zone("datacenter");
  const net::ZoneId neighbourhood = net.add_zone("dsl");
  net.set_zone_latency(datacenter, neighbourhood, 12e-3);

  net::HostSpec server;
  server.name = "dsl-server";
  server.uplink_Bps = 12.5e6;  // 100 Mbit/s hosting uplink
  server.downlink_Bps = 12.5e6;
  server.lan_latency_s = 1e-3;
  lab.server = net.add_host(datacenter, server);

  for (int i = 0; i < nodes; ++i) {
    net::HostSpec host;
    host.name = util::strf("DSL%02d", i + 1);
    // Asymmetric ADSL, jittered per host: the paper observes 53-492 KB/s
    // effective download rates across providers.
    host.downlink_Bps = rng.uniform(1e6, 8e6) / 8.0;    // 1-8 Mbit/s down
    host.uplink_Bps = rng.uniform(128e3, 1024e3) / 8.0;  // 128-1024 Kbit/s up
    host.lan_latency_s = rng.uniform(15e-3, 40e-3);
    lab.nodes.push_back(net.add_host(neighbourhood, host));
  }
  return lab;
}

}  // namespace bitdew::testbed
