// ChurnHarness: the fleet-scale live soak driver. It stands up one
// in-process bitdewd (rpc::ServiceHost on loopback) — or attaches to an
// already-running daemon — and marches a fleet of runtime::NodeRuntime
// instances (in-process heartbeat threads over real sockets, optionally
// joined by a few real bitdew_worker child processes) through scripted
// churn phases:
//
//   join    — every node starts (optionally staggered) and pulls the seeded
//             broadcast datums through its first full sync;
//   steady  — the fleet idles at its heartbeat period: every beat should be
//             an empty delta, which is what the bytes-per-beat gate checks;
//   storm   — a fraction of the fleet is killed (in-process nodes stopped,
//             real workers SIGKILLed) and the scheduler's 3x-heartbeat
//             failure timeout declares them dead;
//   rejoin  — the victims come back under the same name and cache
//             directory: WAL-restored replicas are re-announced through a
//             full resync and the scheduler re-grants ownership.
//
// Every in-process beat is captured through NodeRuntimeConfig::sync_observer
// (latency, full/delta, encoded request bytes) and aggregated per phase
// into p50/p95/p99 percentiles, beats/sec and bytes-per-beat; scheduler-side
// full/delta/resync counters and the recovery lag (storm rejoin until the
// host table shows every victim alive with its cache restored) round out
// the SoakReport. bench/soak_churn.cpp turns the report into the
// BENCH_soak_churn.json trajectory document and enforces CI gates on it.
//
// Datums are zero-size broadcasts (replica = kReplicaAll): PullCore adopts
// them instantly without a transfer, so the soak exercises the control
// plane — ds_sync, failure detection, re-grant — at fleet scale without
// moving data bytes.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/remote_service_bus.hpp"
#include "dht/local_dht.hpp"
#include "rpc/server.hpp"
#include "runtime/node_runtime.hpp"
#include "services/container.hpp"
#include "util/clock.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::testbed {

struct ChurnConfig {
  int nodes = 100;              ///< in-process NodeRuntime fleet size
  int real_workers = 0;         ///< bitdew_worker child processes (needs worker_bin)
  std::string worker_bin;       ///< path to the bitdew_worker binary
  int datums = 16;              ///< zero-size broadcast datums seeded before join
  double heartbeat_period_s = 0.25;
  double join_stagger_s = 0;    ///< delay between node starts (0 = thundering join)
  double steady_s = 3.0;        ///< steady-state observation window
  double kill_fraction = 0.25;  ///< share of the fleet killed in the storm
  double storm_dwell_s = 0;     ///< extra wait after the storm before rejoin
                                ///< (failure detection is awaited regardless)
  double join_timeout_s = 120;  ///< join/recovery completion budgets
  double recovery_timeout_s = 120;
  /// Non-empty: attach to an already-running bitdewd at host:service_port
  /// instead of standing one up in-process.
  std::string service_host;
  std::uint16_t service_port = 0;
  std::string cache_root;  ///< worker cache parent dir ("" = temp dir)
};

struct LatencyPercentiles {
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Aggregate of every in-process ds_sync beat observed during one phase.
struct PhaseReport {
  std::string name;
  double duration_s = 0;
  std::uint64_t beats_ok = 0;
  std::uint64_t beats_failed = 0;
  std::uint64_t full_beats = 0;   ///< beats that carried the whole cache list
  std::uint64_t delta_beats = 0;  ///< beats that carried only {added, removed}
  LatencyPercentiles latency;
  double beats_per_s = 0;
  double mean_request_bytes = 0;        ///< across every beat of the phase
  double mean_delta_request_bytes = 0;  ///< across delta beats only
  std::uint64_t downloads = 0;          ///< download orders received
  std::uint64_t drops = 0;              ///< drop orders received
};

struct SoakReport {
  int nodes = 0;
  int real_workers = 0;
  int datums = 0;
  std::vector<PhaseReport> phases;
  bool join_complete = false;    ///< every node reached |cache| == datums
  double join_complete_s = 0;    ///< first start until join completion
  bool recovered = false;        ///< every victim alive + cache restored
  double recovery_lag_s = 0;     ///< rejoin start until recovery
  std::uint64_t restored_replicas = 0;  ///< WAL-adopted at rejoin, fleet-wide
  // Scheduler-side protocol counters (cover real workers too).
  std::uint64_t scheduler_full_syncs = 0;
  std::uint64_t scheduler_delta_syncs = 0;
  std::uint64_t scheduler_resyncs = 0;

  const PhaseReport* phase(const std::string& name) const;
};

class ChurnHarness {
 public:
  explicit ChurnHarness(ChurnConfig config);
  ~ChurnHarness();
  ChurnHarness(const ChurnHarness&) = delete;
  ChurnHarness& operator=(const ChurnHarness&) = delete;

  /// Stands up (or dials) the service node and seeds the broadcast datums.
  api::Status start();

  /// Runs the scripted churn phases. Call once, after start().
  SoakReport run();

  /// The service endpoint the fleet heartbeats against.
  std::uint16_t port() const;

 private:
  struct Slot {
    std::string name;
    std::string cache_dir;
    std::unique_ptr<runtime::NodeRuntime> node;
  };

  std::unique_ptr<runtime::NodeRuntime> make_node(const Slot& slot);
  pid_t spawn_worker(const std::string& name, const std::string& cache_dir) const;
  /// Collects the samples accumulated since the previous phase boundary
  /// into one PhaseReport.
  PhaseReport close_phase(const std::string& name, double duration_s);
  /// Host-table rows by name, over the RPC surface.
  std::vector<services::HostInfo> host_table();
  /// True once every named host is alive with `datums` cached.
  bool fleet_settled(const std::vector<std::string>& names);

  ChurnConfig config_;
  util::SystemClock clock_;
  std::unique_ptr<services::ServiceContainer> container_;
  dht::LocalDht ddc_;
  std::unique_ptr<rpc::ServiceHost> host_;  ///< null when attaching
  std::unique_ptr<api::RemoteServiceBus> control_;
  std::string endpoint_host_;
  std::uint16_t endpoint_port_ = 0;

  std::string cache_root_;
  bool owns_cache_root_ = false;
  std::vector<Slot> slots_;
  std::vector<std::string> real_names_;
  std::vector<std::string> real_caches_;
  std::vector<pid_t> real_pids_;

  util::Mutex samples_mutex_;
  /// Samples since the last phase boundary.
  std::vector<runtime::SyncSample> samples_ GUARDED_BY(samples_mutex_);
};

}  // namespace bitdew::testbed
