// Experimental-platform presets mirroring the paper's three testbeds
// (§4.1): the GdX cluster (micro-benchmarks), the 4-cluster Grid'5000
// deployment of Table 1 (scalability + Fig. 6), and DSL-Lab — 12 broadband
// ADSL hosts (Fig. 4). These construct zones/hosts on a net::Network.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace bitdew::testbed {

/// One homogeneous cluster: N nodes with gigabit NICs behind a switch.
struct ClusterSpec {
  std::string name = "gdx";
  int nodes = 64;
  double nic_Bps = 125e6;        // 1 Gbit/s
  double lan_latency_s = 100e-6;
  double cpu_ghz = 2.0;
};

struct Cluster {
  std::string name;
  net::ZoneId zone = 0;
  std::vector<net::HostId> hosts;
  double cpu_ghz = 2.0;
};

/// Builds one cluster; host names are "<name>-<i>".
Cluster make_cluster(net::Network& net, const ClusterSpec& spec);

/// The paper's Table 1 Grid'5000 slice: gdx (Orsay, 312 x Opteron 2.0/2.4),
/// grelon (Nancy, 120 x Xeon 1.6), grillon (Nancy, 47 x Opteron 2.0),
/// sagittaire (Lyon, 65 x Opteron 2.4). 10 Gbit/s site egress, RENATER-like
/// inter-site latencies. `scale` in (0,1] shrinks node counts uniformly
/// (the benches' quick mode).
struct Grid5000 {
  std::vector<Cluster> clusters;
  std::vector<net::HostId> all_hosts() const;
};

Grid5000 make_grid5000(net::Network& net, double scale = 1.0);

/// DSL-Lab: `nodes` broadband hosts (asymmetric ADSL: 1-8 Mbit/s down,
/// 128-1024 Kbit/s up, 15-40 ms last-mile latency, jittered by `rng`) plus
/// one well-provisioned service host.
struct DslLab {
  net::HostId server = 0;
  std::vector<net::HostId> nodes;
};

DslLab make_dsllab(net::Network& net, util::Rng& rng, int nodes = 12);

}  // namespace bitdew::testbed
