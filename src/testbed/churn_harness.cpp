#include "testbed/churn_harness.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <thread>

#include "core/attributes.hpp"
#include "core/data.hpp"
#include "util/auid.hpp"

namespace bitdew::testbed {
namespace {

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_s(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Linear-interpolation percentile over a sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

const PhaseReport* SoakReport::phase(const std::string& name) const {
  for (const PhaseReport& report : phases) {
    if (report.name == name) return &report;
  }
  return nullptr;
}

ChurnHarness::ChurnHarness(ChurnConfig config) : config_(std::move(config)) {}

ChurnHarness::~ChurnHarness() {
  for (Slot& slot : slots_) slot.node.reset();
  for (const pid_t pid : real_pids_) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
  if (host_) host_->stop();
  if (owns_cache_root_) {
    std::error_code ec;
    std::filesystem::remove_all(cache_root_, ec);
  }
}

std::uint16_t ChurnHarness::port() const { return endpoint_port_; }

api::Status ChurnHarness::start() {
  if (config_.service_host.empty()) {
    services::SchedulerConfig scheduler;
    scheduler.heartbeat_period_s = config_.heartbeat_period_s;
    scheduler.failure_timeout_factor = 3.0;
    container_ = std::make_unique<services::ServiceContainer>("bitdewd", clock_, scheduler);
    rpc::ServiceHostConfig host_config;
    host_config.loopback_only = true;
    host_config.failure_sweep_period_s = std::min(0.5, config_.heartbeat_period_s);
    host_ = std::make_unique<rpc::ServiceHost>(*container_, ddc_, host_config);
    const api::Status started = host_->start();
    if (!started.ok()) return started;
    endpoint_host_ = "127.0.0.1";
    endpoint_port_ = host_->port();
  } else {
    endpoint_host_ = config_.service_host;
    endpoint_port_ = config_.service_port;
  }

  control_ = std::make_unique<api::RemoteServiceBus>(endpoint_host_, endpoint_port_);
  const api::Status up = control_->ping();
  if (!up.ok()) return up;

  if (config_.cache_root.empty()) {
    cache_root_ = (std::filesystem::temp_directory_path() /
                   ("bitdew-soak-" + std::to_string(::getpid())))
                      .string();
    owns_cache_root_ = true;
  } else {
    cache_root_ = config_.cache_root;
  }
  std::error_code ec;
  std::filesystem::create_directories(cache_root_, ec);
  if (ec) return api::Error{api::Errc::kUnavailable, "soak", "cannot create " + cache_root_};

  // Seed the broadcast datums: zero-size, so arrival is a control-plane
  // event (kInstant adoption), never a transfer.
  for (int i = 0; i < config_.datums; ++i) {
    core::Data data;
    data.uid = util::next_auid();
    data.name = "soak-" + std::to_string(i);
    data.size = 0;
    data.checksum = core::synthetic_content(data.uid.lo, 0).checksum;
    core::DataAttributes attributes;
    attributes.replica = core::kReplicaAll;
    attributes.fault_tolerant = true;
    attributes.protocol = "tcp";
    std::optional<api::Status> registered;
    control_->dc_register(data, [&](api::Status s) { registered = std::move(s); });
    if (!registered.has_value() || !registered->ok()) {
      return api::Error{api::Errc::kUnavailable, "soak", "dc_register failed for " + data.name};
    }
    std::optional<api::Status> scheduled;
    control_->ds_schedule(data, attributes, [&](api::Status s) { scheduled = std::move(s); });
    if (!scheduled.has_value() || !scheduled->ok()) {
      return api::Error{api::Errc::kUnavailable, "soak", "ds_schedule failed for " + data.name};
    }
  }

  slots_.resize(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    slots_[static_cast<std::size_t>(i)].name = "soak-w" + std::to_string(i);
    slots_[static_cast<std::size_t>(i)].cache_dir =
        cache_root_ + "/" + slots_[static_cast<std::size_t>(i)].name;
  }
  for (int i = 0; i < config_.real_workers; ++i) {
    real_names_.push_back("soak-rw" + std::to_string(i));
    real_caches_.push_back(cache_root_ + "/" + real_names_.back());
  }
  return api::Unit{};
}

std::unique_ptr<runtime::NodeRuntime> ChurnHarness::make_node(const Slot& slot) {
  runtime::NodeRuntimeConfig config;
  config.name = slot.name;
  config.cache_dir = slot.cache_dir;
  config.heartbeat_period_s = config_.heartbeat_period_s;
  // No peer plane: the soak moves zero data bytes, and 1000 embedded chunk
  // servers would triple the fleet's thread count for nothing.
  config.serve_peers = false;
  config.sync_observer = [this](const runtime::SyncSample& sample) {
    const util::LockGuard lock(samples_mutex_);
    samples_.push_back(sample);
  };
  return std::make_unique<runtime::NodeRuntime>(endpoint_host_, endpoint_port_, config);
}

pid_t ChurnHarness::spawn_worker(const std::string& name, const std::string& cache_dir) const {
  const std::string connect = endpoint_host_ + ":" + std::to_string(endpoint_port_);
  const std::string heartbeat = std::to_string(config_.heartbeat_period_s);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, pid < 0)
  ::execl(config_.worker_bin.c_str(), config_.worker_bin.c_str(), "--connect",
          connect.c_str(), "--name", name.c_str(), "--cache", cache_dir.c_str(),
          "--heartbeat", heartbeat.c_str(), "--no-peer", static_cast<char*>(nullptr));
  std::perror("soak: exec bitdew_worker");
  ::_exit(127);
}

PhaseReport ChurnHarness::close_phase(const std::string& name, double duration_s) {
  std::vector<runtime::SyncSample> samples;
  {
    const util::LockGuard lock(samples_mutex_);
    samples.swap(samples_);
  }
  PhaseReport report;
  report.name = name;
  report.duration_s = duration_s;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(samples.size());
  double bytes_total = 0;
  double delta_bytes_total = 0;
  for (const runtime::SyncSample& sample : samples) {
    if (!sample.ok) {
      ++report.beats_failed;
      continue;
    }
    ++report.beats_ok;
    sample.full ? ++report.full_beats : ++report.delta_beats;
    latencies_ms.push_back(sample.latency_s * 1e3);
    bytes_total += static_cast<double>(sample.request_bytes);
    if (!sample.full) delta_bytes_total += static_cast<double>(sample.request_bytes);
    report.downloads += sample.downloads;
    report.drops += sample.drops;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.latency.p50_ms = percentile(latencies_ms, 0.50);
  report.latency.p95_ms = percentile(latencies_ms, 0.95);
  report.latency.p99_ms = percentile(latencies_ms, 0.99);
  report.latency.max_ms = latencies_ms.empty() ? 0 : latencies_ms.back();
  if (duration_s > 0) report.beats_per_s = static_cast<double>(report.beats_ok) / duration_s;
  if (report.beats_ok > 0) {
    report.mean_request_bytes = bytes_total / static_cast<double>(report.beats_ok);
  }
  if (report.delta_beats > 0) {
    report.mean_delta_request_bytes =
        delta_bytes_total / static_cast<double>(report.delta_beats);
  }
  return report;
}

std::vector<services::HostInfo> ChurnHarness::host_table() {
  std::optional<api::Expected<std::vector<services::HostInfo>>> table;
  control_->ds_hosts([&](api::Expected<std::vector<services::HostInfo>> reply) {
    table = std::move(reply);
  });
  if (!table.has_value() || !table->ok()) return {};
  return std::move(**table);
}

bool ChurnHarness::fleet_settled(const std::vector<std::string>& names) {
  const std::vector<services::HostInfo> table = host_table();
  std::size_t settled = 0;
  for (const services::HostInfo& row : table) {
    if (std::find(names.begin(), names.end(), row.name) == names.end()) continue;
    if (row.alive && row.cached == static_cast<std::uint32_t>(config_.datums)) ++settled;
  }
  return settled == names.size();
}

SoakReport ChurnHarness::run() {
  SoakReport report;
  report.nodes = config_.nodes;
  report.real_workers = static_cast<int>(real_names_.size());
  report.datums = config_.datums;

  std::vector<std::string> everyone;
  for (const Slot& slot : slots_) everyone.push_back(slot.name);
  for (const std::string& name : real_names_) everyone.push_back(name);

  // --- join: the whole fleet starts and pulls every broadcast datum ----------
  const double join_started = now_s();
  for (Slot& slot : slots_) {
    slot.node = make_node(slot);
    if (!slot.node->start().ok()) slot.node.reset();
    sleep_s(config_.join_stagger_s);
  }
  for (std::size_t i = 0; i < real_names_.size(); ++i) {
    real_pids_.push_back(spawn_worker(real_names_[i], real_caches_[i]));
  }
  const double join_deadline = join_started + config_.join_timeout_s;
  while (now_s() < join_deadline) {
    if (fleet_settled(everyone)) {
      report.join_complete = true;
      break;
    }
    sleep_s(std::min(0.25, config_.heartbeat_period_s));
  }
  report.join_complete_s = now_s() - join_started;
  report.phases.push_back(close_phase("join", report.join_complete_s));

  // --- steady state: every beat should be an empty delta ---------------------
  const double steady_started = now_s();
  sleep_s(config_.steady_s);
  report.phases.push_back(close_phase("steady", now_s() - steady_started));

  // --- kill storm: stop a fraction of the fleet abruptly ---------------------
  const double storm_started = now_s();
  const std::size_t victims =
      std::min(slots_.size(),
               static_cast<std::size_t>(std::ceil(static_cast<double>(slots_.size()) *
                                                  config_.kill_fraction)));
  std::vector<std::string> victim_names;
  for (std::size_t i = 0; i < victims; ++i) {
    // Destroying the runtime without clearing cache_dir models kill -9:
    // heartbeats stop, the WAL manifest stays for the rejoin.
    slots_[i].node.reset();
    victim_names.push_back(slots_[i].name);
  }
  std::vector<std::size_t> real_victims;
  for (std::size_t i = 0; i < real_pids_.size(); i += 2) {  // every other real worker
    if (real_pids_[i] > 0) {
      ::kill(real_pids_[i], SIGKILL);
      ::waitpid(real_pids_[i], nullptr, 0);
      real_pids_[i] = -1;
      real_victims.push_back(i);
      victim_names.push_back(real_names_[i]);
    }
  }
  // Wait until the scheduler's failure timeout has declared every victim
  // dead (3x heartbeat plus one sweep period of slack).
  const double failure_timeout_s = 3.0 * config_.heartbeat_period_s + 1.0;
  const double dead_deadline = now_s() + failure_timeout_s + config_.recovery_timeout_s;
  while (now_s() < dead_deadline) {
    const std::vector<services::HostInfo> table = host_table();
    std::size_t dead = 0;
    for (const services::HostInfo& row : table) {
      if (!row.alive &&
          std::find(victim_names.begin(), victim_names.end(), row.name) != victim_names.end()) {
        ++dead;
      }
    }
    if (dead == victim_names.size()) break;
    sleep_s(std::min(0.25, config_.heartbeat_period_s));
  }
  sleep_s(config_.storm_dwell_s);
  report.phases.push_back(close_phase("storm", now_s() - storm_started));

  // --- rejoin-with-cache: victims return under the same name + cache dir ----
  const double rejoin_started = now_s();
  for (std::size_t i = 0; i < victims; ++i) {
    slots_[i].node = make_node(slots_[i]);
    if (!slots_[i].node->start().ok()) slots_[i].node.reset();
  }
  for (const std::size_t i : real_victims) {
    real_pids_[i] = spawn_worker(real_names_[i], real_caches_[i]);
  }
  const double recovery_deadline = rejoin_started + config_.recovery_timeout_s;
  while (now_s() < recovery_deadline) {
    if (fleet_settled(everyone)) {
      report.recovered = true;
      break;
    }
    sleep_s(std::min(0.25, config_.heartbeat_period_s));
  }
  report.recovery_lag_s = now_s() - rejoin_started;
  report.phases.push_back(close_phase("rejoin", report.recovery_lag_s));
  for (std::size_t i = 0; i < victims; ++i) {
    if (slots_[i].node) report.restored_replicas += slots_[i].node->stats().restored;
  }

  // --- scheduler-side counters (cover the real workers too) ------------------
  for (const services::HostInfo& row : host_table()) {
    report.scheduler_full_syncs += row.full_syncs;
    report.scheduler_delta_syncs += row.delta_syncs;
  }

  // Orderly teardown: stop heartbeats before the report is returned so the
  // caller's JSON write races nothing.
  for (Slot& slot : slots_) slot.node.reset();
  for (pid_t& pid : real_pids_) {
    if (pid > 0) {
      ::kill(pid, SIGTERM);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
  // The resync counter lives in SchedulerStats, which only the in-process
  // container can expose — read it after the host has stopped so no server
  // thread still touches the container. Zero when attached externally.
  if (host_) {
    host_->stop();
    report.scheduler_resyncs = container_->ds().stats().resyncs;
  }
  return report;
}

}  // namespace bitdew::testbed
