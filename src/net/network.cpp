#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bitdew::net {
namespace {

// Flows crossing only unconstrained (capacity 0) links get this rate.
constexpr double kUnconstrainedRate = 1e12;
// Remainders below this many bytes count as "done" (guards FP drift).
constexpr double kByteEpsilon = 1e-6;

std::uint64_t zone_pair_key(ZoneId a, ZoneId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

ZoneId Network::add_zone(std::string name, double egress_up_Bps, double egress_down_Bps) {
  if (links_.empty()) links_.emplace_back();  // dummy LinkId 0
  Zone zone;
  zone.name = name;
  if (egress_up_Bps > 0) zone.egress_up = add_link(name + ".egress_up", egress_up_Bps);
  if (egress_down_Bps > 0) zone.egress_down = add_link(name + ".egress_down", egress_down_Bps);
  zones_.push_back(std::move(zone));
  return static_cast<ZoneId>(zones_.size() - 1);
}

HostId Network::add_host(ZoneId zone, const HostSpec& spec) {
  assert(zone < zones_.size());
  Host host;
  host.name = spec.name;
  host.zone = zone;
  host.lan_latency = spec.lan_latency_s;
  host.up = spec.uplink_Bps > 0 ? add_link(spec.name + ".up", spec.uplink_Bps) : 0;
  host.down = spec.downlink_Bps > 0 ? add_link(spec.name + ".down", spec.downlink_Bps) : 0;
  hosts_.push_back(std::move(host));
  return static_cast<HostId>(hosts_.size() - 1);
}

LinkId Network::add_link(std::string name, double capacity) {
  if (links_.empty()) links_.emplace_back();
  Link link;
  link.capacity = capacity;
  link.name = std::move(name);
  links_.push_back(std::move(link));
  return static_cast<LinkId>(links_.size() - 1);
}

void Network::set_zone_latency(ZoneId a, ZoneId b, double seconds) {
  zone_latency_[zone_pair_key(a, b)] = seconds;
}

double Network::one_way_latency(HostId src, HostId dst) const {
  const Host& s = hosts_[src];
  const Host& d = hosts_[dst];
  double latency = s.lan_latency + d.lan_latency;
  if (s.zone != d.zone) {
    const auto it = zone_latency_.find(zone_pair_key(s.zone, d.zone));
    latency += it != zone_latency_.end() ? it->second : default_wan_latency_;
  }
  return latency;
}

std::vector<LinkId> Network::route(HostId src, HostId dst) const {
  const Host& s = hosts_[src];
  const Host& d = hosts_[dst];
  std::vector<LinkId> links;
  links.reserve(4);
  if (s.up != 0) links.push_back(s.up);
  if (s.zone != d.zone) {
    if (zones_[s.zone].egress_up != 0) links.push_back(zones_[s.zone].egress_up);
    if (zones_[d.zone].egress_down != 0) links.push_back(zones_[d.zone].egress_down);
  }
  if (d.down != 0) links.push_back(d.down);
  return links;
}

FlowId Network::start_flow(HostId src, HostId dst, std::int64_t bytes, FlowCallback on_done) {
  return start_flow_via(src, dst, bytes, {}, std::move(on_done));
}

FlowId Network::start_flow_via(HostId src, HostId dst, std::int64_t bytes,
                               const std::vector<LinkId>& extra_links, FlowCallback on_done) {
  assert(src < hosts_.size() && dst < hosts_.size());
  const FlowId id = next_flow_id_++;

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.bytes = bytes;
  flow.remaining = static_cast<double>(std::max<std::int64_t>(bytes, 0));
  flow.started_at = sim_.now();
  flow.on_done = std::move(on_done);
  flow.links = route(src, dst);
  for (const LinkId link : extra_links) {
    if (link != 0) flow.links.push_back(link);
  }
  flow.state = FlowState::kLatent;

  hosts_[src].touching.insert(id);
  hosts_[dst].touching.insert(id);

  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  assert(inserted);
  Flow& stored = it->second;

  if (!hosts_[src].alive || !hosts_[dst].alive) {
    stored.event = sim_.after(0, [this, id] { finish(id, false); });
    return id;
  }

  const double latency = one_way_latency(src, dst);
  if (bytes <= 0) {
    stored.event = sim_.after(latency, [this, id] { finish(id, true); });
  } else {
    stored.event = sim_.after(latency, [this, id] { activate(id); });
  }
  return id;
}

void Network::activate(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  flow.state = FlowState::kActive;
  flow.last_update = sim_.now();
  flow.event = 0;
  for (const LinkId link : flow.links) {
    links_[link].flows.insert(id);
    ++links_[link].flow_count;
  }
  on_membership_change(flow.links);
}

void Network::settle(Flow& flow) {
  if (flow.state != FlowState::kActive) return;
  const double dt = sim_.now() - flow.last_update;
  if (dt > 0 && flow.rate > 0) {
    flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
  }
  flow.last_update = sim_.now();
}

void Network::apply_rate(Flow& flow, double rate) {
  settle(flow);
  if (flow.event != 0) {
    sim_.cancel(flow.event);
    flow.event = 0;
  }
  flow.rate = rate;
  // Completion events mark the exact delivery instant, so they clamp the
  // remainder to zero: repeated settle() under changing rates accumulates
  // floating-point drift that must not turn a completion into a failure.
  const FlowId id = flow.id;
  auto complete = [this, id] {
    const auto it = flows_.find(id);
    if (it != flows_.end()) it->second.remaining = 0;
    finish(id, true);
  };
  if (flow.remaining <= kByteEpsilon) {
    flow.event = sim_.after(0, complete);
    return;
  }
  if (rate > 0) {
    flow.event = sim_.after(flow.remaining / rate, complete);
  }
}

double Network::counting_rate(const Flow& flow) const {
  double rate = kUnconstrainedRate;
  for (const LinkId link : flow.links) {
    const Link& l = links_[link];
    if (l.capacity > 0 && l.flow_count > 0) {
      rate = std::min(rate, l.capacity / l.flow_count);
    }
  }
  return rate;
}

void Network::recompute_affected(const std::vector<LinkId>& changed_links) {
  for (const LinkId link_id : changed_links) {
    Link& link = links_[link_id];
    if (link.capacity <= 0) continue;
    if (link.flow_count == 0) {
      link.applied_share = -1;
      continue;
    }
    const double share = link.capacity / link.flow_count;
    // If this link's fair share barely moved since the last propagation,
    // its flows keep their completions (bounded drift, absorbed by the
    // completion clamp). This is what keeps control-message churn on busy
    // links from costing O(flows) per message.
    if (link.applied_share > 0 &&
        std::abs(share - link.applied_share) <= rate_tolerance_ * link.applied_share) {
      continue;
    }
    link.applied_share = share;
    for (const FlowId id : link.flows) {
      const auto it = flows_.find(id);
      if (it == flows_.end() || it->second.state != FlowState::kActive) continue;
      Flow& flow = it->second;
      const double rate = counting_rate(flow);
      const double old = flow.rate;
      if (rate == old) continue;
      if (old > 0 && rate > 0 && std::abs(rate - old) <= rate_tolerance_ * old) continue;
      apply_rate(flow, rate);
    }
  }
}

void Network::recompute_all() {
  // Progressive filling: repeatedly saturate the link with the smallest fair
  // share, fixing the rate of every still-unassigned flow crossing it.
  struct LinkScratch {
    double remaining = 0;
    int unassigned = 0;
  };
  std::vector<LinkScratch> scratch(links_.size());
  std::vector<FlowId> unassigned;
  unassigned.reserve(flows_.size());

  for (auto& [id, flow] : flows_) {
    if (flow.state == FlowState::kActive) unassigned.push_back(id);
  }
  for (std::size_t l = 1; l < links_.size(); ++l) {
    scratch[l].remaining = links_[l].capacity;
    scratch[l].unassigned = 0;
  }
  for (const FlowId id : unassigned) {
    for (const LinkId link : flows_[id].links) {
      if (links_[link].capacity > 0) ++scratch[link].unassigned;
    }
  }

  std::unordered_map<FlowId, double> assigned_rate;
  assigned_rate.reserve(unassigned.size());

  while (assigned_rate.size() < unassigned.size()) {
    double best_fair = kUnconstrainedRate;
    LinkId best_link = 0;
    for (std::size_t l = 1; l < links_.size(); ++l) {
      if (links_[l].capacity > 0 && scratch[l].unassigned > 0) {
        const double fair = std::max(0.0, scratch[l].remaining) / scratch[l].unassigned;
        if (fair < best_fair) {
          best_fair = fair;
          best_link = static_cast<LinkId>(l);
        }
      }
    }
    if (best_link == 0) {
      // Remaining flows cross no finite link: unconstrained.
      for (const FlowId id : unassigned) {
        if (!assigned_rate.contains(id)) assigned_rate[id] = kUnconstrainedRate;
      }
      break;
    }
    // Fix every unassigned flow crossing the bottleneck link.
    const auto bottleneck_flows = links_[best_link].flows;  // copy: we mutate below
    for (const FlowId id : bottleneck_flows) {
      if (assigned_rate.contains(id)) continue;
      const auto it = flows_.find(id);
      if (it == flows_.end() || it->second.state != FlowState::kActive) continue;
      assigned_rate[id] = best_fair;
      for (const LinkId link : it->second.links) {
        if (links_[link].capacity > 0) {
          scratch[link].remaining -= best_fair;
          --scratch[link].unassigned;
        }
      }
    }
  }

  for (const auto& [id, rate] : assigned_rate) {
    Flow& flow = flows_[id];
    if (rate != flow.rate) apply_rate(flow, rate);
  }
}

void Network::on_membership_change(const std::vector<LinkId>& changed_links) {
  if (model_ == SharingModel::kMaxMin) {
    recompute_all();
  } else {
    recompute_affected(changed_links);
  }
}

void Network::detach_links(Flow& flow) {
  if (flow.state != FlowState::kActive) return;
  for (const LinkId link : flow.links) {
    links_[link].flows.erase(flow.id);
    --links_[link].flow_count;
  }
}

void Network::finish(FlowId id, bool ok) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  settle(flow);
  if (flow.event != 0) sim_.cancel(flow.event);

  FlowResult result;
  result.id = id;
  result.ok = ok && flow.remaining <= kByteEpsilon;
  if (ok && flow.bytes <= 0) result.ok = true;
  result.started_at = flow.started_at;
  result.finished_at = sim_.now();
  result.bytes = flow.bytes;
  const auto carried = static_cast<std::int64_t>(
      static_cast<double>(std::max<std::int64_t>(flow.bytes, 0)) - flow.remaining);
  result.transferred = result.ok ? std::max<std::int64_t>(flow.bytes, 0)
                                 : std::max<std::int64_t>(carried, 0);
  if (result.ok) delivered_bytes_ += std::max<std::int64_t>(flow.bytes, 0);

  const std::vector<LinkId> links = flow.links;
  const bool was_active = flow.state == FlowState::kActive;
  detach_links(flow);
  hosts_[flow.src].touching.erase(id);
  hosts_[flow.dst].touching.erase(id);
  FlowCallback callback = std::move(flow.on_done);
  flows_.erase(it);

  if (was_active) on_membership_change(links);
  if (callback) callback(result);
}

void Network::cancel_flow(FlowId id) { finish(id, false); }

double Network::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it != flows_.end() && it->second.state == FlowState::kActive ? it->second.rate : 0.0;
}

void Network::kill_host(HostId host) {
  hosts_[host].alive = false;
  const auto touching = hosts_[host].touching;  // copy: finish() mutates it
  for (const FlowId id : touching) finish(id, false);
}

void Network::revive_host(HostId host) { hosts_[host].alive = true; }

}  // namespace bitdew::net
