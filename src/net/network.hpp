// Flow-level network model (the testbed substitute).
//
// Hosts have asymmetric access links (uplink/downlink) and belong to zones
// (a cluster, a DSL neighbourhood). A zone may have shared egress links (a
// cluster's backbone). A transfer is a Flow crossing [src.up, src.egress?,
// dst.egress?, dst.down]; concurrent flows share link capacity.
//
// Two sharing models are provided:
//  * kMaxMin    — exact progressive-filling max-min fairness, recomputed
//                 globally on every flow change. Used by tests and the small
//                 DSL-Lab scenarios.
//  * kCounting  — classic fair-share approximation rate = min_l cap_l/n_l
//                 with locality: a flow change only re-rates flows sharing
//                 one of its links. Exact whenever flows sharing a link have
//                 a common bottleneck (our FTP star and BitTorrent meshes);
//                 used for the large sweeps. bench/ablate_bt cross-checks
//                 the two models.
//
// Control messages are flows too (paper Fig. 3b/3c attributes the BitDew
// overhead to protocol bandwidth, so control traffic must consume capacity).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/simulator.hpp"

namespace bitdew::net {

using HostId = std::uint32_t;
using ZoneId = std::uint32_t;
using LinkId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr HostId kNoHost = std::numeric_limits<HostId>::max();

enum class SharingModel { kMaxMin, kCounting };

/// Result handed to a flow's completion callback.
struct FlowResult {
  FlowId id = 0;
  bool ok = false;           // false when an endpoint died mid-transfer
  double started_at = 0;     // virtual time the flow was created
  double finished_at = 0;    // delivery or failure time
  std::int64_t bytes = 0;    // requested payload
  std::int64_t transferred = 0;  // bytes actually carried (== bytes when ok)
  double mean_rate() const {
    const double span = finished_at - started_at;
    return span > 0 ? static_cast<double>(bytes) / span : 0.0;
  }
};

using FlowCallback = std::function<void(const FlowResult&)>;

struct HostSpec {
  std::string name;
  double uplink_Bps = 125e6;    // 1 Gbit/s
  double downlink_Bps = 125e6;  // 1 Gbit/s
  double lan_latency_s = 100e-6;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology construction -------------------------------------------
  /// Creates a zone. Egress capacity 0 means "no shared egress constraint".
  ZoneId add_zone(std::string name, double egress_up_Bps = 0, double egress_down_Bps = 0);

  HostId add_host(ZoneId zone, const HostSpec& spec);

  /// One-way latency between two zones (symmetric); default applies
  /// otherwise.
  void set_zone_latency(ZoneId a, ZoneId b, double seconds);
  void set_default_wan_latency(double seconds) { default_wan_latency_ = seconds; }

  void set_sharing_model(SharingModel model) { model_ = model; }
  SharingModel sharing_model() const { return model_; }

  /// Counting-model optimization: rate changes smaller than this relative
  /// tolerance do not reschedule a flow's completion (control-heavy runs
  /// otherwise pay O(flows) updates per membership change on busy links).
  /// 0 disables the tolerance. Max-min mode always applies exact rates.
  void set_rate_tolerance(double tolerance) { rate_tolerance_ = tolerance; }

  /// Creates a free-standing capacity constraint that flows can be routed
  /// through in addition to their normal path. Protocols use these to model
  /// per-connection throughput limits (e.g. BitTorrent's per-peer-pair TCP
  /// throughput, which is what keeps BT below FTP at small node counts).
  LinkId add_virtual_link(const std::string& name, double capacity_Bps) {
    return add_link("virt:" + name, capacity_Bps);
  }

  // --- traffic -----------------------------------------------------------
  /// Starts a transfer of `bytes` from src to dst. Zero-byte flows model
  /// pure-latency control messages. The callback fires exactly once.
  FlowId start_flow(HostId src, HostId dst, std::int64_t bytes, FlowCallback on_done);

  /// As start_flow, but the flow additionally crosses `extra_links`
  /// (virtual capacity constraints).
  FlowId start_flow_via(HostId src, HostId dst, std::int64_t bytes,
                        const std::vector<LinkId>& extra_links, FlowCallback on_done);

  /// Cancels an in-flight flow (callback fires with ok=false).
  void cancel_flow(FlowId id);

  /// Instantaneous rate of a flow in bytes/s (0 if latent or unknown).
  double flow_rate(FlowId id) const;

  // --- host life-cycle ----------------------------------------------------
  /// Killing a host fails every flow touching it. Reviving re-enables it.
  void kill_host(HostId host);
  void revive_host(HostId host);
  bool alive(HostId host) const { return hosts_[host].alive; }

  // --- introspection -------------------------------------------------------
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t active_flow_count() const { return flows_.size(); }
  const std::string& host_name(HostId host) const { return hosts_[host].name; }
  ZoneId host_zone(HostId host) const { return hosts_[host].zone; }
  double one_way_latency(HostId src, HostId dst) const;
  /// Cumulative payload bytes ever carried to completion.
  std::int64_t delivered_bytes() const { return delivered_bytes_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  struct Link {
    double capacity = 0;  // bytes/s; 0 == unconstrained
    int flow_count = 0;
    // Fair share last propagated to this link's flows; rescans are skipped
    // while the current share stays within the rate tolerance of it.
    double applied_share = -1;
    std::unordered_set<FlowId> flows;
    std::string name;
  };

  struct Host {
    std::string name;
    ZoneId zone = 0;
    LinkId up = 0;
    LinkId down = 0;
    double lan_latency = 0;
    bool alive = true;
    std::unordered_set<FlowId> touching;  // flows with this host as endpoint
  };

  struct Zone {
    std::string name;
    LinkId egress_up = 0;    // 0 == none
    LinkId egress_down = 0;  // 0 == none
  };

  enum class FlowState { kLatent, kActive };

  struct Flow {
    FlowId id = 0;
    HostId src = 0;
    HostId dst = 0;
    std::int64_t bytes = 0;
    double remaining = 0;
    double rate = 0;
    double last_update = 0;
    double started_at = 0;
    FlowState state = FlowState::kLatent;
    std::vector<LinkId> links;
    FlowCallback on_done;
    sim::EventId event = 0;  // activation (latent) or completion (active)
  };

  LinkId add_link(std::string name, double capacity);
  std::vector<LinkId> route(HostId src, HostId dst) const;
  void activate(FlowId id);
  void finish(FlowId id, bool ok);
  void detach_links(Flow& flow);
  void on_membership_change(const std::vector<LinkId>& changed_links);
  void recompute_all();
  void recompute_affected(const std::vector<LinkId>& changed_links);
  void apply_rate(Flow& flow, double rate);
  double counting_rate(const Flow& flow) const;
  void settle(Flow& flow);

  sim::Simulator& sim_;
  // Counting fair-share by default: exact max-min recomputes globally on
  // every flow change, which is unaffordable at swarm scale. Small
  // scenarios and exactness tests opt into kMaxMin explicitly.
  SharingModel model_ = SharingModel::kCounting;
  double rate_tolerance_ = 0.02;
  double default_wan_latency_ = 10e-3;
  std::vector<Host> hosts_;
  std::vector<Zone> zones_;
  std::vector<Link> links_;  // links_[0] is a dummy so LinkId 0 == none
  std::unordered_map<std::uint64_t, double> zone_latency_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  std::int64_t delivered_bytes_ = 0;
};

}  // namespace bitdew::net
