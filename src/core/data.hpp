// The BitDew data model (paper §3.3).
//
// A Data object is a slot in the virtual data space: name, MD5 checksum,
// size and content flags. Content lives out-of-band (a real file under the
// LocalRuntime, a synthetic descriptor under the simulator); Data carries
// only metadata, exactly as in the paper.
#pragma once

#include <cstdint>
#include <string>

#include "util/auid.hpp"

namespace bitdew::core {

/// OR-combinable content flags (paper: "compressed, executable,
/// architecture dependent, etc.").
enum DataFlags : std::uint32_t {
  kFlagNone = 0,
  kFlagCompressed = 1u << 0,
  kFlagExecutable = 1u << 1,
  kFlagArchDependent = 1u << 2,
};

struct Data {
  util::Auid uid;         ///< unique identifier (AUID)
  std::string name;       ///< character-string label
  std::string checksum;   ///< MD5 hex of the content
  std::int64_t size = 0;  ///< content length in bytes
  std::uint32_t flags = kFlagNone;

  bool valid() const { return !uid.is_nil(); }

  friend bool operator==(const Data&, const Data&) = default;
};

/// Content descriptor decoupled from storage: enough to transfer and verify.
struct Content {
  std::int64_t size = 0;
  std::string checksum;  ///< MD5 hex
};

/// Synthetic content for simulations: the checksum is the MD5 of the
/// descriptor string, so integrity checking exercises the real code path
/// without materializing gigabytes.
Content synthetic_content(std::uint64_t seed, std::int64_t size);

/// Content of a real file (streams it through MD5). Throws on IO failure.
Content file_content(const std::string& path);

}  // namespace bitdew::core
