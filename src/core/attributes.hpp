// Data attributes: the five metadata knobs that drive the runtime
// (paper §3.2) — replica, fault tolerance, lifetime (absolute or relative),
// affinity and transfer protocol — plus the textual attribute DSL used in
// the paper's listings:
//
//   attr update = {replica=-1, oob=bittorrent, abstime=43200}
//   attr host   = {affinity=<uid>}
//   attr Sequence = {fault_tolerance=true, oob=http, lifetime=Collector,
//                    replica=2}
//
// parse_attribute() produces a raw AttributeSpec; attributes_from_spec()
// resolves symbolic references (affinity / relative lifetime naming another
// datum) through a caller-supplied resolver.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/auid.hpp"

namespace bitdew::core {

/// Broadcast marker: schedule the data to every reservoir host.
inline constexpr int kReplicaAll = -1;

struct Lifetime {
  // kDuration is the unanchored form the DSL produces ("abstime=43200" is a
  // duration, paper §3.2): the Data Scheduler anchors it against ITS clock
  // when the schedule request arrives, turning it into kAbsolute. Anchoring
  // client-side is wrong on the live path — the client's clock epoch (often
  // 0, or a different process start) has no relation to the daemon's.
  enum class Kind { kForever, kAbsolute, kRelative, kDuration };

  Kind kind = Kind::kForever;
  double expires_at = 0;      ///< absolute: deadline; duration: seconds to live
  util::Auid reference;       ///< relative: obsolete when this datum dies

  static Lifetime forever() { return {}; }
  static Lifetime absolute(double expires_at) {
    return Lifetime{Kind::kAbsolute, expires_at, util::Auid::nil()};
  }
  static Lifetime relative(util::Auid reference) {
    return Lifetime{Kind::kRelative, 0, reference};
  }
  static Lifetime duration(double seconds) {
    return Lifetime{Kind::kDuration, seconds, util::Auid::nil()};
  }

  friend bool operator==(const Lifetime&, const Lifetime&) = default;
};

struct DataAttributes {
  std::string name = "default";
  int replica = 1;               ///< required live copies; kReplicaAll == all
  bool fault_tolerant = false;   ///< reschedule replicas lost to crashes
  Lifetime lifetime;
  util::Auid affinity;           ///< nil == none; schedules next to that datum
  /// Affinity to a *class* of data by name: the paper's BLAST listing sets
  /// `affinity = Sequence`, meaning "wherever any Sequence datum lands".
  /// Used when `affinity` is nil; empty == none.
  std::string affinity_name;
  std::string protocol = "ftp";  ///< preferred out-of-band transfer protocol

  bool has_affinity() const { return !affinity.is_nil() || !affinity_name.empty(); }

  friend bool operator==(const DataAttributes&, const DataAttributes&) = default;
};

/// Raw parse of "attr name = {key=value, ...}" (order preserved).
struct AttributeSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> fields;

  std::optional<std::string> field(std::string_view key) const;
};

class AttributeError : public std::runtime_error {
 public:
  explicit AttributeError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses the attribute DSL. Accepts the paper's spellings: replica /
/// replicat / replication, oob / protocol, ft / fault_tolerance /
/// faulttolerance, abstime / lifetime / reltime, affinity. Values may be
/// integers, booleans, identifiers, uids or quoted strings. Throws
/// AttributeError on malformed input.
AttributeSpec parse_attribute(std::string_view text);

/// Resolves a symbolic data reference (name or uid string) to a uid.
using DataResolver = std::function<std::optional<util::Auid>(const std::string&)>;

/// Builds typed attributes from a parsed spec. `resolver` is consulted for
/// affinity and relative-lifetime references. The paper's abstime is a
/// duration: it becomes Lifetime::Kind::kDuration, anchored by the Data
/// Scheduler at the moment the schedule request is received (so a lifetime
/// written on one machine means the same thing on the daemon's clock).
/// Throws AttributeError on unknown keys, bad values or unresolvable
/// references.
DataAttributes attributes_from_spec(const AttributeSpec& spec, const DataResolver& resolver);

/// Convenience: parse + resolve in one step.
DataAttributes parse_attributes(std::string_view text, const DataResolver& resolver);

}  // namespace bitdew::core
