#include "core/attributes.hpp"

#include <cctype>
#include <charconv>

#include "util/strings.hpp"

namespace bitdew::core {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
         c == ':' || c == '/';
}

/// Minimal recursive-descent tokenizer for the DSL.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool eat(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool done() {
    skip_space();
    return pos_ >= text_.size();
  }

  std::string identifier() {
    skip_space();
    std::string out;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) out.push_back(text_[pos_++]);
    return out;
  }

  /// Value token: quoted string, or a run of identifier chars (signed
  /// numbers included).
  std::string value() {
    skip_space();
    if (pos_ < text_.size() && (text_[pos_] == '"' || text_[pos_] == '\'')) {
      const char quote = text_[pos_++];
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != quote) out.push_back(text_[pos_++]);
      if (pos_ >= text_.size()) throw AttributeError("unterminated string literal");
      ++pos_;  // closing quote
      return out;
    }
    std::string out;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      out.push_back(text_[pos_++]);
    }
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) out.push_back(text_[pos_++]);
    return out;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

long long parse_int(const std::string& text, const std::string& key) {
  long long value = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    throw AttributeError("attribute '" + key + "': expected integer, got '" + text + "'");
  }
  return value;
}

double parse_real(const std::string& text, const std::string& key) {
  double value = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    throw AttributeError("attribute '" + key + "': expected number, got '" + text + "'");
  }
  return value;
}

bool parse_flag(const std::string& text, const std::string& key) {
  if (util::iequals(text, "true") || text == "1" || util::iequals(text, "yes")) return true;
  if (util::iequals(text, "false") || text == "0" || util::iequals(text, "no")) return false;
  throw AttributeError("attribute '" + key + "': expected boolean, got '" + text + "'");
}

util::Auid resolve_reference(const std::string& text, const DataResolver& resolver,
                             const std::string& key) {
  // A literal uid wins; otherwise ask the resolver (name lookup).
  const util::Auid literal = util::Auid::parse(text);
  if (!literal.is_nil()) return literal;
  if (resolver) {
    const auto resolved = resolver(text);
    if (resolved.has_value() && !resolved->is_nil()) return *resolved;
  }
  throw AttributeError("attribute '" + key + "': cannot resolve data reference '" + text + "'");
}

}  // namespace

std::optional<std::string> AttributeSpec::field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return std::nullopt;
}

AttributeSpec parse_attribute(std::string_view text) {
  Scanner scanner(text);
  AttributeSpec spec;

  // Optional leading "attr"/"attribute" keyword.
  std::string first = scanner.identifier();
  if (util::iequals(first, "attr") || util::iequals(first, "attribute")) {
    first = scanner.identifier();
  }
  if (first.empty()) throw AttributeError("missing attribute name");
  spec.name = first;

  if (!scanner.eat('=')) throw AttributeError("expected '=' after attribute name");
  if (!scanner.eat('{')) throw AttributeError("expected '{' opening the attribute body");

  if (scanner.eat('}')) {
    if (!scanner.done()) throw AttributeError("trailing characters after '}'");
    return spec;  // empty body, e.g. the paper's "Collector attribute {}"
  }

  while (true) {
    const std::string key = scanner.identifier();
    if (key.empty()) throw AttributeError("expected field name");
    if (!scanner.eat('=')) throw AttributeError("expected '=' after field '" + key + "'");
    const std::string value = scanner.value();
    if (value.empty()) throw AttributeError("field '" + key + "' has an empty value");
    spec.fields.emplace_back(util::to_lower(key), value);
    if (scanner.eat(',')) continue;
    if (scanner.eat('}')) break;
    throw AttributeError("expected ',' or '}' after field '" + key + "'");
  }
  if (!scanner.done()) throw AttributeError("trailing characters after '}'");
  return spec;
}

DataAttributes attributes_from_spec(const AttributeSpec& spec, const DataResolver& resolver) {
  DataAttributes attributes;
  attributes.name = spec.name;
  bool replica_explicit = false;

  for (const auto& [key, value] : spec.fields) {
    if (key == "replica" || key == "replicat" || key == "replication") {
      replica_explicit = true;
      const long long n = parse_int(value, key);
      if (n < -1) throw AttributeError("replica must be >= -1");
      attributes.replica = static_cast<int>(n);
    } else if (key == "ft" || key == "fault_tolerance" || key == "faulttolerance" ||
               key == "fault-tolerance") {
      attributes.fault_tolerant = parse_flag(value, key);
    } else if (key == "oob" || key == "protocol") {
      attributes.protocol = util::to_lower(value);
    } else if (key == "abstime") {
      // The paper's abstime is a duration (e.g. 43200); it stays a duration
      // here and the Data Scheduler anchors it against its own clock when
      // the schedule request arrives (client clocks are not comparable to
      // the daemon's on the live path).
      const double duration = parse_real(value, key);
      if (duration < 0) throw AttributeError("abstime must be >= 0");
      attributes.lifetime = Lifetime::duration(duration);
    } else if (key == "lifetime" || key == "reltime") {
      attributes.lifetime = Lifetime::relative(resolve_reference(value, resolver, key));
    } else if (key == "affinity") {
      // A literal uid or resolvable name binds to that datum; otherwise the
      // value is a class-affinity on the data *name* (paper: affinity =
      // Sequence attracts the Genebase to every host holding a Sequence).
      const util::Auid literal = util::Auid::parse(value);
      if (!literal.is_nil()) {
        attributes.affinity = literal;
      } else {
        std::optional<util::Auid> resolved;
        if (resolver) resolved = resolver(value);
        if (resolved.has_value() && !resolved->is_nil()) {
          attributes.affinity = *resolved;
        } else {
          attributes.affinity_name = value;
        }
      }
    } else {
      throw AttributeError("unknown attribute field '" + key + "'");
    }
  }
  // Affinity without an explicit replica count means affinity-only
  // placement: the datum follows its reference (paper: "affinity is
  // stronger than replica") instead of also being scheduled once anywhere.
  if (attributes.has_affinity() && !replica_explicit) attributes.replica = 0;
  return attributes;
}

DataAttributes parse_attributes(std::string_view text, const DataResolver& resolver) {
  return attributes_from_spec(parse_attribute(text), resolver);
}

}  // namespace bitdew::core
