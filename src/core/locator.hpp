// Locator: remote-access coordinates for a datum (paper §3.4.1: "a Locator
// object is similar to URL"). The Data Catalog stores one or more locators
// per datum; the Data Transfer service turns a locator into an out-of-band
// transfer.
#pragma once

#include <string>

#include "util/auid.hpp"

namespace bitdew::core {

struct Locator {
  util::Auid data_uid;
  std::string protocol;     ///< "ftp", "http", "bittorrent", "localfile", ...
  std::string host;         ///< service host name holding the content
  std::string path;         ///< remote reference: path, hash key or info-hash
  std::string credentials;  ///< protocol credentials ("login:password"), may be empty

  /// URL-ish rendering for logs: proto://host/path
  std::string url() const { return protocol + "://" + host + "/" + path; }

  friend bool operator==(const Locator&, const Locator&) = default;
};

}  // namespace bitdew::core
