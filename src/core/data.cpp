#include "core/data.hpp"

#include <fstream>
#include <stdexcept>

#include "util/md5.hpp"
#include "util/strf.hpp"

namespace bitdew::core {

Content synthetic_content(std::uint64_t seed, std::int64_t size) {
  Content content;
  content.size = size;
  content.checksum = util::Md5::of(util::strf("synthetic:%llu:%lld",
                                              static_cast<unsigned long long>(seed),
                                              static_cast<long long>(size)))
                         .hex();
  return content;
}

Content file_content(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("file_content: cannot open " + path);
  util::Md5 hasher;
  char buffer[64 * 1024];
  std::int64_t total = 0;
  while (in) {
    in.read(buffer, sizeof(buffer));
    const std::streamsize got = in.gcount();
    if (got > 0) {
      hasher.update(buffer, static_cast<std::size_t>(got));
      total += got;
    }
  }
  Content content;
  content.size = total;
  content.checksum = hasher.finish().hex();
  return content;
}

}  // namespace bitdew::core
