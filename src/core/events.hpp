// Data life-cycle events (paper §3.3): creation, copy (a replica landed on
// a host) and deletion. ActiveData dispatches these to installed handlers;
// the Updater example in the paper (Listings 1-2) is written entirely in
// terms of these callbacks.
#pragma once

#include "core/attributes.hpp"
#include "core/data.hpp"

namespace bitdew::core {

enum class DataEventKind { kCreate, kCopy, kDelete };

/// Handler base class, mirroring the paper's ActiveDataEventHandler. Derive
/// and override the events you care about; default implementations ignore.
class ActiveDataEventHandler {
 public:
  virtual ~ActiveDataEventHandler() = default;

  virtual void on_data_create(const Data& data, const DataAttributes& attributes) {
    (void)data;
    (void)attributes;
  }
  /// Fires on the host that just received (or produced) a replica.
  virtual void on_data_copy(const Data& data, const DataAttributes& attributes) {
    (void)data;
    (void)attributes;
  }
  virtual void on_data_delete(const Data& data, const DataAttributes& attributes) {
    (void)data;
    (void)attributes;
  }
};

}  // namespace bitdew::core
