#include "runtime/node_runtime.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <variant>

#include "rpc/wire.hpp"
#include "transfer/protocol.hpp"
#include "util/log.hpp"

namespace bitdew::runtime {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("worker");
  return instance;
}

/// The single handler on the internal ActiveData: forwards every PullCore
/// event into the runtime's executor queue.
class ForwardingHandler final : public core::ActiveDataEventHandler {
 public:
  using Fn = std::function<void(core::DataEventKind, const core::Data&,
                                const core::DataAttributes&)>;
  explicit ForwardingHandler(Fn fn) : fn_(std::move(fn)) {}
  void on_data_create(const core::Data& data, const core::DataAttributes& attributes) override {
    fn_(core::DataEventKind::kCreate, data, attributes);
  }
  void on_data_copy(const core::Data& data, const core::DataAttributes& attributes) override {
    fn_(core::DataEventKind::kCopy, data, attributes);
  }
  void on_data_delete(const core::Data& data, const core::DataAttributes& attributes) override {
    fn_(core::DataEventKind::kDelete, data, attributes);
  }

 private:
  Fn fn_;
};

}  // namespace

NodeRuntime::NodeRuntime(std::string service_host, std::uint16_t service_port,
                         NodeRuntimeConfig config)
    : service_host_(std::move(service_host)),
      service_port_(service_port),
      config_(std::move(config)),
      control_bus_(service_host_, service_port_, config_.bus),
      active_data_(control_bus_, config_.name),
      internal_events_(control_bus_, config_.name),
      core_(internal_events_) {
  tm_.set_max_concurrent(config_.max_concurrent_transfers);
  internal_events_.add_callback(std::make_shared<ForwardingHandler>(
      [this](core::DataEventKind kind, const core::Data& data,
             const core::DataAttributes& attributes) {
        enqueue_event(kind, data, attributes);
      }));
}

NodeRuntime::~NodeRuntime() { stop(); }

std::string NodeRuntime::replica_path(const util::Auid& uid) const {
  return (std::filesystem::path(config_.cache_dir) / uid.str()).string();
}

api::Status NodeRuntime::start() {
  if (running_.load()) return api::ok_status();
  std::error_code ec;
  std::filesystem::create_directories(config_.cache_dir, ec);
  if (ec) {
    return api::Error{api::Errc::kUnavailable, "worker",
                      "cannot create cache dir " + config_.cache_dir + ": " + ec.message()};
  }
  restore_cache();
  sweep_orphans();
  {
    // Fail fast (typed) when the daemon is unreachable instead of silently
    // heartbeating into the void.
    const util::LockGuard control(control_mutex_);
    const api::Status up = control_bus_.ping();
    if (!up.ok()) return up;
  }
  endpoint_.clear();
  if (config_.serve_peers) {
    rpc::ChunkServerConfig peer_config;
    peer_config.port = config_.peer_port;
    peer_config.upload_Bps = config_.peer_upload_Bps;
    peer_server_ = std::make_unique<rpc::ChunkServer>(
        [this](const util::Auid& uid, std::int64_t offset, std::int64_t max_bytes) {
          return read_replica_chunk(uid, offset, max_bytes);
        },
        peer_config);
    const api::Status serving = peer_server_->start();
    if (!serving.ok()) {
      peer_server_.reset();
      return serving;  // the operator asked for a chunk server; fail typed
    }
    endpoint_ = config_.advertise_host + ":" + std::to_string(peer_server_->port());
  }
  {
    const util::LockGuard lock(transfers_mutex_);
    accepting_transfers_ = true;
  }
  {
    const util::LockGuard events(events_mutex_);
    callbacks_open_ = true;
  }
  running_.store(true);
  callback_thread_ = std::thread(&NodeRuntime::callback_loop, this);
  heartbeat_ = std::thread(&NodeRuntime::heartbeat_loop, this);
  logger().info(
      "%s: joined %s:%u (heartbeat %.2fs, cache %s, %llu replica(s) restored, peer %s)",
      config_.name.c_str(), service_host_.c_str(), static_cast<unsigned>(service_port_),
      config_.heartbeat_period_s, config_.cache_dir.c_str(),
      static_cast<unsigned long long>(stats().restored),
      endpoint_.empty() ? "off" : endpoint_.c_str());
  return api::ok_status();
}

void NodeRuntime::stop() {
  if (!running_.exchange(false)) return;
  {
    const util::LockGuard beat(beat_mutex_);
    beat_requested_ = true;
  }
  beat_cv_.notify_all();
  {
    // Pair with wait_for's predicate check: running_ is not mutated under
    // state_mutex_, so without this a waiter can park right after checking
    // it and miss the wakeup until its full deadline.
    const util::RecursiveLockGuard lock(state_mutex_);
  }
  arrival_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  std::vector<std::thread> transfers;
  {
    const util::LockGuard lock(transfers_mutex_);
    accepting_transfers_ = false;  // late admit jobs become no-ops
    transfers.swap(transfers_);
    finished_transfers_.clear();
  }
  for (std::thread& transfer : transfers) {
    if (transfer.joinable()) transfer.join();
  }
  // Close the executor after the producers are gone: events already queued
  // are still delivered, then the thread exits.
  {
    const util::LockGuard events(events_mutex_);
    callbacks_open_ = false;
  }
  events_cv_.notify_all();
  if (callback_thread_.joinable()) callback_thread_.join();
  if (peer_server_) peer_server_->stop();
}

void NodeRuntime::enqueue_event(core::DataEventKind kind, const core::Data& data,
                                const core::DataAttributes& attributes) {
  {
    const util::LockGuard events(events_mutex_);
    if (!callbacks_open_) return;
    events_.push_back(PendingEvent{kind, data, attributes});
  }
  events_cv_.notify_all();
}

void NodeRuntime::callback_loop() {
  for (;;) {
    PendingEvent event;
    {
      util::UniqueLock events(events_mutex_);
      while (events_.empty() && callbacks_open_) events_cv_.wait(events);
      if (events_.empty()) return;  // closed and drained
      event = std::move(events_.front());
      events_.pop_front();
    }
    // No runtime lock is held here: a handler that blocks forever wedges
    // later handlers, but heartbeats and transfers keep flowing (the
    // regression test installs exactly such a handler).
    switch (event.kind) {
      case core::DataEventKind::kCreate:
        active_data_.dispatch_create(event.data, event.attributes);
        break;
      case core::DataEventKind::kCopy:
        active_data_.dispatch_copy(event.data, event.attributes);
        break;
      case core::DataEventKind::kDelete:
        active_data_.dispatch_delete(event.data, event.attributes);
        break;
    }
    const util::RecursiveLockGuard lock(state_mutex_);
    ++stats_.events_dispatched;
  }
}

void NodeRuntime::sync_now() {
  {
    const util::LockGuard beat(beat_mutex_);
    beat_requested_ = true;
  }
  beat_cv_.notify_all();
}

bool NodeRuntime::has(const util::Auid& uid) const {
  const util::RecursiveLockGuard lock(state_mutex_);
  return core_.has(uid);
}

std::vector<util::Auid> NodeRuntime::cache_list() const {
  const util::RecursiveLockGuard lock(state_mutex_);
  return core_.cache_list();
}

NodeRuntimeStats NodeRuntime::stats() const {
  NodeRuntimeStats out;
  {
    const util::RecursiveLockGuard lock(state_mutex_);
    out = stats_;
  }
  if (peer_server_) {
    out.peer_chunks_served = peer_server_->chunks_served();
    out.peer_bytes_served = peer_server_->bytes_served();
  }
  return out;
}

bool NodeRuntime::wait_for(const util::Auid& uid, double timeout_s) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  util::RecursiveUniqueLock lock(state_mutex_);
  while (!core_.has(uid)) {
    if (!running_.load()) return false;
    if (arrival_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return core_.has(uid);
    }
  }
  return true;
}

api::Status NodeRuntime::adopt_replica(const core::Data& data,
                                       const core::DataAttributes& attributes,
                                       const std::string& source_path) {
  if (!running_.load()) {
    return api::Error{api::Errc::kUnavailable, "worker", "runtime not running"};
  }
  core::Content on_disk;
  try {
    on_disk = core::file_content(source_path);
  } catch (const std::exception& e) {
    return api::Error{api::Errc::kUnavailable, "worker",
                      "cannot read " + source_path + ": " + e.what()};
  }
  if (on_disk.size != data.size || on_disk.checksum != data.checksum) {
    return api::Error{api::Errc::kChecksumMismatch, "worker",
                      "file at " + source_path + " does not match descriptor of " +
                          data.name};
  }
  std::error_code ec;
  std::filesystem::copy_file(source_path, replica_path(data.uid),
                             std::filesystem::copy_options::overwrite_existing, ec);
  if (ec) {
    return api::Error{api::Errc::kUnavailable, "worker",
                      "cannot place replica in cache: " + ec.message()};
  }
  services::ScheduledData item;
  item.data = data;
  item.attributes = attributes;
  {
    const util::RecursiveLockGuard lock(state_mutex_);
    // The producer already knows the bytes exist — no on_data_copy.
    core_.adopt_local(item.data, item.attributes, /*fire_event=*/false);
    persist_replica(item);
    ++stats_.adopted;
  }
  arrival_cv_.notify_all();
  {
    const util::LockGuard control(control_mutex_);
    control_bus_.ddc_publish(data.uid.str(), config_.name, [](api::Status) {});
  }
  // Announce the replica now: the scheduler's next collector-affinity pass
  // can mint a peer locator pointing here a beat sooner.
  sync_now();
  return api::ok_status();
}

// --- durable replica manifest -------------------------------------------------

void NodeRuntime::restore_cache() {
  // Runs before the heartbeat/callback threads exist, but the manifest is a
  // guarded field: hold the (uncontended) state lock for the whole restore
  // so the locking contract has no pre-start exception.
  const util::RecursiveLockGuard state(state_mutex_);
  const std::string wal_path =
      (std::filesystem::path(config_.cache_dir) / "cache.wal").string();
  manifest_ = std::make_unique<db::Database>(wal_path);
  db::Table& table = manifest_->create_table({kReplicaTable, "uid", {}});

  // Collect first: adopting mutates nothing, but forgetting erases rows and
  // scan() must not observe its own deletions. Corrupt rows are keyed by
  // their raw primary-key string — an unparseable uid must still erase the
  // row, or the dead entry would be replayed on every restart.
  std::vector<services::ScheduledData> intact;
  std::vector<std::string> corrupt_keys;
  table.scan([&](db::RowId, const db::Row& row) {
    const auto key = row.find("uid");
    if (key == row.end() || !std::holds_alternative<std::string>(key->second)) return true;
    const std::string& uid_key = std::get<std::string>(key->second);
    const auto blob = row.find("blob");
    try {
      if (blob == row.end() || !std::holds_alternative<std::string>(blob->second)) {
        throw rpc::CodecError("manifest row without a blob");
      }
      rpc::Reader r(std::get<std::string>(blob->second));
      services::ScheduledData item;
      item.data = rpc::wire::read_data(r);
      item.attributes = rpc::wire::read_attributes(r);
      if (item.data.size <= 0) {
        intact.push_back(std::move(item));  // zero-size: nothing on disk to verify
        return true;
      }
      // Re-hash the replica file: only verified bytes rejoin Δk. A corrupt
      // or missing file is forgotten so the scheduler re-sends the datum.
      const core::Content on_disk = core::file_content(replica_path(item.data.uid));
      if (on_disk.size == item.data.size && on_disk.checksum == item.data.checksum) {
        intact.push_back(std::move(item));
      } else {
        corrupt_keys.push_back(uid_key);
      }
    } catch (const std::exception&) {
      // Unreadable manifest row or replica file: treat as not cached.
      corrupt_keys.push_back(uid_key);
    }
    return true;
  });

  for (const services::ScheduledData& item : intact) {
    core_.adopt_local(item.data, item.attributes, /*fire_event=*/false);
    ++stats_.restored;
  }
  for (const std::string& key : corrupt_keys) {
    logger().warn("%s: replica %s failed restart verification, forgetting it",
                  config_.name.c_str(), key.c_str());
    if (const auto row = table.by_primary(db::Value(key))) {
      manifest_->erase(kReplicaTable, *row);
    }
    const util::Auid uid = util::Auid::parse(key);
    if (!uid.is_nil()) {
      std::error_code ec;
      std::filesystem::remove(replica_path(uid), ec);
    }
  }
}

void NodeRuntime::sweep_orphans() {
  // A crash in the window between the verified `.part` rename and
  // persist_replica() leaves a cache file with no manifest row: it is never
  // adopted (restore walks manifest rows only), never deleted, and its
  // stale bytes sit exactly where a re-assigned uid will land. Remove every
  // file (and `.part`) whose uid is not in the restored manifest.
  std::error_code ec;
  std::filesystem::directory_iterator dir(config_.cache_dir, ec);
  if (ec) return;
  std::vector<std::filesystem::path> orphans;
  try {
    for (const auto& entry : dir) {
      if (!entry.is_regular_file(ec)) continue;
      std::string base = entry.path().filename().string();
      if (base.rfind("cache.wal", 0) == 0) continue;  // the manifest + its temps
      if (base.size() > 5 && base.ends_with(".part")) base.resize(base.size() - 5);
      const util::Auid uid = util::Auid::parse(base);
      bool held = false;
      if (!uid.is_nil()) {
        const util::RecursiveLockGuard lock(state_mutex_);
        held = core_.has(uid);
      }
      if (!held) orphans.push_back(entry.path());
    }
  } catch (const std::filesystem::filesystem_error&) {
    // A directory racing the sweep must not abort start(); whatever was
    // collected so far still gets cleaned, the rest waits for next restart.
  }
  for (const std::filesystem::path& orphan : orphans) {
    logger().warn("%s: removing orphaned cache file %s (no manifest row)",
                  config_.name.c_str(), orphan.filename().string().c_str());
    std::filesystem::remove(orphan, ec);
    const util::RecursiveLockGuard lock(state_mutex_);
    ++stats_.orphans_swept;
  }
}

api::Expected<rpc::ChunkRef> NodeRuntime::read_replica_chunk(const util::Auid& uid,
                                                             std::int64_t offset,
                                                             std::int64_t max_bytes) const {
  if (offset < 0) {
    return api::Error{api::Errc::kInvalidArgument, "peer", "negative offset"};
  }
  std::int64_t size = 0;
  {
    const util::RecursiveLockGuard lock(state_mutex_);
    if (!core_.has(uid)) {
      return api::Error{api::Errc::kNotFound, "peer",
                        "no verified replica of " + uid.str() + " on " + config_.name};
    }
    const auto info = core_.info(uid);
    size = info.has_value() ? info->data.size : 0;
  }
  if (offset >= size) return rpc::ChunkRef(std::string{});  // end of content
  // File IO outside the state lock: a concurrent drop turns into a read
  // failure (typed), never a stalled heartbeat. The returned fd slice stays
  // valid even if the replica is unlinked while the reply is in flight.
  rpc::Fd file{::open(replica_path(uid).c_str(), O_RDONLY | O_CLOEXEC)};
  if (!file.valid()) {
    return api::Error{api::Errc::kNotFound, "peer", "replica file unreadable on " + config_.name};
  }
  struct stat st{};
  if (::fstat(file.get(), &st) != 0 || static_cast<std::int64_t>(st.st_size) < size) {
    return api::Error{api::Errc::kUnavailable, "peer", "replica truncated on " + config_.name};
  }
  const std::int64_t want = std::min(max_bytes, size - offset);
  return rpc::ChunkRef(std::move(file), offset, want);
}

void NodeRuntime::persist_replica(const services::ScheduledData& item) {
  db::Table& table = manifest_->create_table({kReplicaTable, "uid", {}});
  rpc::Writer w;
  rpc::wire::write_data(w, item.data);
  rpc::wire::write_attributes(w, item.attributes);
  db::Row row;
  row["uid"] = item.data.uid.str();
  row["blob"] = w.take();
  if (const auto existing = table.by_primary(db::Value(item.data.uid.str()))) {
    manifest_->update(kReplicaTable, *existing, std::move(row));
  } else {
    manifest_->insert(kReplicaTable, std::move(row));
  }
}

void NodeRuntime::forget_replica(const util::Auid& uid) {
  if (db::Table* table = manifest_->table(kReplicaTable)) {
    if (const auto row = table->by_primary(db::Value(uid.str()))) {
      manifest_->erase(kReplicaTable, *row);
    }
  }
}

// --- the pull loop ------------------------------------------------------------

void NodeRuntime::heartbeat_loop() {
  const auto period = std::chrono::duration<double>(config_.heartbeat_period_s);
  while (running_.load()) {
    do_sync();
    reap_finished_transfers();
    util::UniqueLock beat(beat_mutex_);
    const auto wake_at = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(period);
    while (!beat_requested_ && running_.load() &&
           beat_cv_.wait_until(beat, wake_at) != std::cv_status::timeout) {
    }
    beat_requested_ = false;
  }
}

void NodeRuntime::do_sync() {
  // Sync protocol v2: report {epoch, added, removed} since the last acked
  // beat; the scheduler answers resync=true when it cannot trust the delta
  // (restart, declared-dead revival, epoch skew), in which case we retry
  // immediately with a full report. At most one retry per beat — a second
  // resync order means the scheduler is flapping and the next beat retries.
  for (int attempt = 0; attempt < 2; ++attempt) {
    services::SyncRequest request;
    api::PullCore::SyncDelta delta;
    {
      const util::RecursiveLockGuard lock(state_mutex_);
      delta = core_.build_sync();
      request.in_flight = core_.downloading_list();
    }
    request.host = config_.name;
    request.epoch = delta.epoch;
    request.full = delta.full;
    request.added = delta.added;
    request.removed = delta.removed;
    request.endpoint = endpoint_;
    const std::int64_t request_bytes = rpc::wire::sync_request_bytes(request);

    api::Expected<services::SyncReply> reply =
        api::Error{api::Errc::kUnavailable, "worker", "no reply"};
    const auto started = std::chrono::steady_clock::now();
    {
      const util::LockGuard control(control_mutex_);
      control_bus_.ds_sync(request,
                           [&](api::Expected<services::SyncReply> r) { reply = std::move(r); });
    }
    const double latency_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

    if (!reply.ok()) {
      // Lost sync (daemon restarting, network blip): the next beat retries,
      // and RemoteServiceBus reconnects transparently. The dirty sets are
      // untouched — deltas are cumulative until acked.
      {
        const util::RecursiveLockGuard lock(state_mutex_);
        ++stats_.syncs_failed;
        logger().debug("%s: sync failed: %s", config_.name.c_str(),
                       reply.error().to_string().c_str());
      }
      if (config_.sync_observer) {
        config_.sync_observer({latency_s, false, delta.full, request_bytes, 0, 0});
      }
      return;
    }
    if (reply->resync) {
      {
        const util::RecursiveLockGuard lock(state_mutex_);
        ++stats_.resyncs;
        core_.force_resync();
      }
      logger().debug("%s: scheduler ordered full resync", config_.name.c_str());
      continue;
    }
    {
      const util::RecursiveLockGuard lock(state_mutex_);
      ++stats_.syncs_ok;
      delta.full ? ++stats_.full_syncs : ++stats_.delta_syncs;
      core_.ack_sync(delta, reply->epoch);
    }
    if (config_.sync_observer) {
      config_.sync_observer({latency_s, true, delta.full, request_bytes,
                             reply->download.size(), reply->drop.size()});
    }
    apply_reply(*reply);
    return;
  }
}

void NodeRuntime::apply_reply(const services::SyncReply& reply) {
  std::vector<services::ScheduledData> dropped;
  {
    const util::RecursiveLockGuard lock(state_mutex_);
    dropped = core_.apply_drops(reply);  // fires on_data_delete
    for (const services::ScheduledData& item : dropped) {
      forget_replica(item.data.uid);
      ++stats_.drops;
    }
  }
  for (const services::ScheduledData& item : dropped) {
    std::error_code ec;
    std::filesystem::remove(replica_path(item.data.uid), ec);
    std::filesystem::remove(replica_path(item.data.uid) + ".part", ec);
    logger().info("%s: dropped %s (%s)", config_.name.c_str(), item.data.name.c_str(),
                  item.data.uid.str().c_str());
  }
  for (std::size_t i = 0; i < reply.download.size(); ++i) {
    // Peer locators ride index-aligned with the download partition; an
    // older daemon (or a decode guard) may omit them — empty means
    // repository-only, never a failure.
    start_download(reply.download[i],
                   i < reply.sources.size() ? reply.sources[i] : std::vector<core::Locator>{});
  }
}

void NodeRuntime::start_download(const services::ScheduledData& item,
                                 std::vector<core::Locator> sources) {
  api::PullCore::Admission admission;
  {
    const util::RecursiveLockGuard lock(state_mutex_);
    admission = core_.begin_download(item);  // kInstant fires on_data_copy
    if (admission == api::PullCore::Admission::kInstant) persist_replica(item);
  }
  if (admission == api::PullCore::Admission::kInstant) {
    arrival_cv_.notify_all();
    const util::LockGuard control(control_mutex_);
    control_bus_.ddc_publish(item.data.uid.str(), config_.name, [](api::Status) {});
    return;
  }
  if (admission != api::PullCore::Admission::kStarted) return;
  logger().info("%s: downloading %s (%s, %lld bytes, oob=%s, %zu peer source(s))",
                config_.name.c_str(), item.data.name.c_str(), item.data.uid.str().c_str(),
                static_cast<long long>(item.data.size), item.attributes.protocol.c_str(),
                sources.size());
  // The admitted job only spawns the transfer thread: admission order
  // respects the concurrency cap, the heartbeat thread never blocks on a
  // byte stream.
  tm_.admit([this, item, sources = std::move(sources)] {
    const util::LockGuard lock(transfers_mutex_);
    // A queued job can fire from tm_.finish() on a transfer thread while
    // stop() is joining; once accepting_transfers_ is off, spawning would
    // leak a thread past the join loop.
    if (!accepting_transfers_) return;
    transfers_.emplace_back(&NodeRuntime::run_download, this, item, sources);
  });
}

void NodeRuntime::run_download(const services::ScheduledData& item,
                               const std::vector<core::Locator>& sources) {
  const util::Auid uid = item.data.uid;
  tm_.begin(uid);

  api::Status outcome = api::ok_status();
  // The datum's oob attribute names the engine; resolution goes through the
  // live protocol registry, never a hardcoded default. The scheduler's
  // known_protocols gate rejects unknown names at schedule time, so this
  // failure only fires against a permissively-configured daemon — and then
  // it fails TYPED instead of silently substituting tcp.
  transfer::LiveProtocol* engine =
      transfer::live_registry().find_live(item.attributes.protocol);
  if (engine == nullptr) {
    outcome = api::Error{api::Errc::kRejected, "worker",
                         "no live engine for oob protocol '" + item.attributes.protocol + "'"};
  } else {
    // A dedicated connection per transfer: chunk frames never head-of-line
    // block the heartbeat's control connection.
    api::RemoteServiceBus data_bus(service_host_, service_port_, config_.bus);
    transfer::LiveTransferConfig engine_config;
    engine_config.chunk_bytes = config_.chunk_bytes;
    engine_config.max_attempts = config_.transfer_attempts;
    engine_config.local_name = config_.name;
    outcome = engine->get_file(data_bus, item.data, replica_path(uid), sources, engine_config);
  }

  if (outcome.ok()) {
    {
      const util::RecursiveLockGuard lock(state_mutex_);
      core_.complete_download(uid);  // fires on_data_copy
      persist_replica(item);
      ++stats_.downloads_completed;
    }
    tm_.finish(uid, api::ok_status());
    arrival_cv_.notify_all();
    logger().info("%s: replica %s verified (md5 %s)", config_.name.c_str(),
                  item.data.name.c_str(), item.data.checksum.c_str());
    {
      const util::LockGuard control(control_mutex_);
      control_bus_.ddc_publish(uid.str(), config_.name, [](api::Status) {});
    }
    // Confirm the new replica to the scheduler NOW instead of up to a full
    // heartbeat later: Ω grows a beat earlier, so a waiting swarm's next
    // generation (and the fault detector's replica count) see it sooner.
    sync_now();
  } else {
    {
      const util::RecursiveLockGuard lock(state_mutex_);
      core_.fail_download(uid);
      ++stats_.downloads_failed;
    }
    tm_.finish(uid, outcome);
    logger().warn("%s: download of %s failed: %s", config_.name.c_str(),
                  item.data.name.c_str(), outcome.error().to_string().c_str());
  }

  const util::LockGuard lock(transfers_mutex_);
  finished_transfers_.push_back(std::this_thread::get_id());
}

void NodeRuntime::reap_finished_transfers() {
  std::vector<std::thread> finished;
  {
    const util::LockGuard lock(transfers_mutex_);
    for (const std::thread::id id : finished_transfers_) {
      const auto it = std::find_if(transfers_.begin(), transfers_.end(),
                                   [id](const std::thread& t) { return t.get_id() == id; });
      if (it == transfers_.end()) continue;
      finished.push_back(std::move(*it));
      transfers_.erase(it);
    }
    finished_transfers_.clear();
  }
  // Join outside the lock; the thread announced itself finished as its last
  // statement, so these joins return immediately.
  for (std::thread& transfer : finished) {
    if (transfer.joinable()) transfer.join();
  }
}

}  // namespace bitdew::runtime
