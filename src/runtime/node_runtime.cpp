#include "runtime/node_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <variant>

#include "rpc/wire.hpp"
#include "transfer/tcp.hpp"
#include "util/log.hpp"

namespace bitdew::runtime {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("worker");
  return instance;
}

}  // namespace

NodeRuntime::NodeRuntime(std::string service_host, std::uint16_t service_port,
                         NodeRuntimeConfig config)
    : service_host_(std::move(service_host)),
      service_port_(service_port),
      config_(std::move(config)),
      control_bus_(service_host_, service_port_, config_.bus),
      active_data_(control_bus_, config_.name),
      core_(active_data_) {
  tm_.set_max_concurrent(config_.max_concurrent_transfers);
}

NodeRuntime::~NodeRuntime() { stop(); }

std::string NodeRuntime::replica_path(const util::Auid& uid) const {
  return (std::filesystem::path(config_.cache_dir) / uid.str()).string();
}

api::Status NodeRuntime::start() {
  if (running_.load()) return api::ok_status();
  std::error_code ec;
  std::filesystem::create_directories(config_.cache_dir, ec);
  if (ec) {
    return api::Error{api::Errc::kUnavailable, "worker",
                      "cannot create cache dir " + config_.cache_dir + ": " + ec.message()};
  }
  restore_cache();
  {
    // Fail fast (typed) when the daemon is unreachable instead of silently
    // heartbeating into the void.
    const std::lock_guard control(control_mutex_);
    const api::Status up = control_bus_.ping();
    if (!up.ok()) return up;
  }
  {
    const std::lock_guard lock(transfers_mutex_);
    accepting_transfers_ = true;
  }
  running_.store(true);
  heartbeat_ = std::thread(&NodeRuntime::heartbeat_loop, this);
  logger().info("%s: joined %s:%u (heartbeat %.2fs, cache %s, %llu replica(s) restored)",
                config_.name.c_str(), service_host_.c_str(),
                static_cast<unsigned>(service_port_), config_.heartbeat_period_s,
                config_.cache_dir.c_str(),
                static_cast<unsigned long long>(stats().restored));
  return api::ok_status();
}

void NodeRuntime::stop() {
  if (!running_.exchange(false)) return;
  {
    const std::lock_guard beat(beat_mutex_);
    beat_requested_ = true;
  }
  beat_cv_.notify_all();
  {
    // Pair with wait_for's predicate check: running_ is not mutated under
    // state_mutex_, so without this a waiter can park right after checking
    // it and miss the wakeup until its full deadline.
    const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
  }
  arrival_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  std::vector<std::thread> transfers;
  {
    const std::lock_guard lock(transfers_mutex_);
    accepting_transfers_ = false;  // late admit jobs become no-ops
    transfers.swap(transfers_);
    finished_transfers_.clear();
  }
  for (std::thread& transfer : transfers) {
    if (transfer.joinable()) transfer.join();
  }
}

void NodeRuntime::sync_now() {
  {
    const std::lock_guard beat(beat_mutex_);
    beat_requested_ = true;
  }
  beat_cv_.notify_all();
}

bool NodeRuntime::has(const util::Auid& uid) const {
  const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
  return core_.has(uid);
}

std::vector<util::Auid> NodeRuntime::cache_list() const {
  const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
  return core_.cache_list();
}

NodeRuntimeStats NodeRuntime::stats() const {
  const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
  return stats_;
}

bool NodeRuntime::wait_for(const util::Auid& uid, double timeout_s) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  std::unique_lock<std::recursive_mutex> lock(state_mutex_);
  while (!core_.has(uid)) {
    if (!running_.load()) return false;
    if (arrival_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return core_.has(uid);
    }
  }
  return true;
}

// --- durable replica manifest -------------------------------------------------

void NodeRuntime::restore_cache() {
  const std::string wal_path =
      (std::filesystem::path(config_.cache_dir) / "cache.wal").string();
  manifest_ = std::make_unique<db::Database>(wal_path);
  db::Table& table = manifest_->create_table({kReplicaTable, "uid", {}});

  // Collect first: adopting mutates nothing, but forgetting erases rows and
  // scan() must not observe its own deletions. Corrupt rows are keyed by
  // their raw primary-key string — an unparseable uid must still erase the
  // row, or the dead entry would be replayed on every restart.
  std::vector<services::ScheduledData> intact;
  std::vector<std::string> corrupt_keys;
  table.scan([&](db::RowId, const db::Row& row) {
    const auto key = row.find("uid");
    if (key == row.end() || !std::holds_alternative<std::string>(key->second)) return true;
    const std::string& uid_key = std::get<std::string>(key->second);
    const auto blob = row.find("blob");
    try {
      if (blob == row.end() || !std::holds_alternative<std::string>(blob->second)) {
        throw rpc::CodecError("manifest row without a blob");
      }
      rpc::Reader r(std::get<std::string>(blob->second));
      services::ScheduledData item;
      item.data = rpc::wire::read_data(r);
      item.attributes = rpc::wire::read_attributes(r);
      if (item.data.size <= 0) {
        intact.push_back(std::move(item));  // zero-size: nothing on disk to verify
        return true;
      }
      // Re-hash the replica file: only verified bytes rejoin Δk. A corrupt
      // or missing file is forgotten so the scheduler re-sends the datum.
      const core::Content on_disk = core::file_content(replica_path(item.data.uid));
      if (on_disk.size == item.data.size && on_disk.checksum == item.data.checksum) {
        intact.push_back(std::move(item));
      } else {
        corrupt_keys.push_back(uid_key);
      }
    } catch (const std::exception&) {
      // Unreadable manifest row or replica file: treat as not cached.
      corrupt_keys.push_back(uid_key);
    }
    return true;
  });

  const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
  for (const services::ScheduledData& item : intact) {
    core_.adopt_local(item.data, item.attributes, /*fire_event=*/false);
    ++stats_.restored;
  }
  for (const std::string& key : corrupt_keys) {
    logger().warn("%s: replica %s failed restart verification, forgetting it",
                  config_.name.c_str(), key.c_str());
    if (const auto row = table.by_primary(db::Value(key))) {
      manifest_->erase(kReplicaTable, *row);
    }
    const util::Auid uid = util::Auid::parse(key);
    if (!uid.is_nil()) {
      std::error_code ec;
      std::filesystem::remove(replica_path(uid), ec);
    }
  }
}

void NodeRuntime::persist_replica(const services::ScheduledData& item) {
  db::Table& table = manifest_->create_table({kReplicaTable, "uid", {}});
  rpc::Writer w;
  rpc::wire::write_data(w, item.data);
  rpc::wire::write_attributes(w, item.attributes);
  db::Row row;
  row["uid"] = item.data.uid.str();
  row["blob"] = w.take();
  if (const auto existing = table.by_primary(db::Value(item.data.uid.str()))) {
    manifest_->update(kReplicaTable, *existing, std::move(row));
  } else {
    manifest_->insert(kReplicaTable, std::move(row));
  }
}

void NodeRuntime::forget_replica(const util::Auid& uid) {
  if (db::Table* table = manifest_->table(kReplicaTable)) {
    if (const auto row = table->by_primary(db::Value(uid.str()))) {
      manifest_->erase(kReplicaTable, *row);
    }
  }
}

// --- the pull loop ------------------------------------------------------------

void NodeRuntime::heartbeat_loop() {
  const auto period = std::chrono::duration<double>(config_.heartbeat_period_s);
  while (running_.load()) {
    do_sync();
    reap_finished_transfers();
    std::unique_lock beat(beat_mutex_);
    beat_cv_.wait_for(beat, period, [this] { return beat_requested_ || !running_.load(); });
    beat_requested_ = false;
  }
}

void NodeRuntime::do_sync() {
  std::vector<util::Auid> cache;
  std::vector<util::Auid> in_flight;
  {
    const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
    cache = core_.cache_list();
    in_flight = core_.downloading_list();
  }
  api::Expected<services::SyncReply> reply =
      api::Error{api::Errc::kUnavailable, "worker", "no reply"};
  {
    const std::lock_guard control(control_mutex_);
    control_bus_.ds_sync(config_.name, cache, in_flight,
                         [&](api::Expected<services::SyncReply> r) { reply = std::move(r); });
  }
  if (!reply.ok()) {
    // Lost sync (daemon restarting, network blip): the next beat retries,
    // and RemoteServiceBus reconnects transparently.
    const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
    ++stats_.syncs_failed;
    logger().debug("%s: sync failed: %s", config_.name.c_str(),
                   reply.error().to_string().c_str());
    return;
  }
  {
    const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
    ++stats_.syncs_ok;
  }
  apply_reply(*reply);
}

void NodeRuntime::apply_reply(const services::SyncReply& reply) {
  std::vector<services::ScheduledData> dropped;
  {
    const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
    dropped = core_.apply_drops(reply);  // fires on_data_delete
    for (const services::ScheduledData& item : dropped) {
      forget_replica(item.data.uid);
      ++stats_.drops;
    }
  }
  for (const services::ScheduledData& item : dropped) {
    std::error_code ec;
    std::filesystem::remove(replica_path(item.data.uid), ec);
    std::filesystem::remove(replica_path(item.data.uid) + ".part", ec);
    logger().info("%s: dropped %s (%s)", config_.name.c_str(), item.data.name.c_str(),
                  item.data.uid.str().c_str());
  }
  for (const services::ScheduledData& item : reply.download) {
    start_download(item);
  }
}

void NodeRuntime::start_download(const services::ScheduledData& item) {
  api::PullCore::Admission admission;
  {
    const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
    admission = core_.begin_download(item);  // kInstant fires on_data_copy
    if (admission == api::PullCore::Admission::kInstant) persist_replica(item);
  }
  if (admission == api::PullCore::Admission::kInstant) {
    arrival_cv_.notify_all();
    const std::lock_guard control(control_mutex_);
    control_bus_.ddc_publish(item.data.uid.str(), config_.name, [](api::Status) {});
    return;
  }
  if (admission != api::PullCore::Admission::kStarted) return;
  logger().info("%s: downloading %s (%s, %lld bytes)", config_.name.c_str(),
                item.data.name.c_str(), item.data.uid.str().c_str(),
                static_cast<long long>(item.data.size));
  // The admitted job only spawns the transfer thread: admission order
  // respects the concurrency cap, the heartbeat thread never blocks on a
  // byte stream.
  tm_.admit([this, item] {
    const std::lock_guard lock(transfers_mutex_);
    // A queued job can fire from tm_.finish() on a transfer thread while
    // stop() is joining; once accepting_transfers_ is off, spawning would
    // leak a thread past the join loop.
    if (!accepting_transfers_) return;
    transfers_.emplace_back(&NodeRuntime::run_download, this, item);
  });
}

void NodeRuntime::run_download(const services::ScheduledData& item) {
  const util::Auid uid = item.data.uid;
  tm_.begin(uid);

  // A dedicated connection per transfer: chunk frames never head-of-line
  // block the heartbeat's control connection.
  api::RemoteServiceBus data_bus(service_host_, service_port_, config_.bus);
  transfer::TcpConfig tcp;
  tcp.chunk_bytes = config_.chunk_bytes;
  tcp.max_attempts = config_.transfer_attempts;
  tcp.local_name = config_.name;
  transfer::TcpTransfer engine(data_bus, tcp);
  const api::Status outcome = engine.get_file(item.data, replica_path(uid));

  if (outcome.ok()) {
    {
      const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
      core_.complete_download(uid);  // fires on_data_copy
      persist_replica(item);
      ++stats_.downloads_completed;
    }
    tm_.finish(uid, api::ok_status());
    arrival_cv_.notify_all();
    logger().info("%s: replica %s verified (md5 %s)", config_.name.c_str(),
                  item.data.name.c_str(), item.data.checksum.c_str());
    const std::lock_guard control(control_mutex_);
    control_bus_.ddc_publish(uid.str(), config_.name, [](api::Status) {});
  } else {
    {
      const std::lock_guard<std::recursive_mutex> lock(state_mutex_);
      core_.fail_download(uid);
      ++stats_.downloads_failed;
    }
    tm_.finish(uid, outcome);
    logger().warn("%s: download of %s failed: %s", config_.name.c_str(),
                  item.data.name.c_str(), outcome.error().to_string().c_str());
  }

  const std::lock_guard lock(transfers_mutex_);
  finished_transfers_.push_back(std::this_thread::get_id());
}

void NodeRuntime::reap_finished_transfers() {
  std::vector<std::thread> finished;
  {
    const std::lock_guard lock(transfers_mutex_);
    for (const std::thread::id id : finished_transfers_) {
      const auto it = std::find_if(transfers_.begin(), transfers_.end(),
                                   [id](const std::thread& t) { return t.get_id() == id; });
      if (it == transfers_.end()) continue;
      finished.push_back(std::move(*it));
      transfers_.erase(it);
    }
    finished_transfers_.clear();
  }
  // Join outside the lock; the thread announced itself finished as its last
  // statement, so these joins return immediately.
  for (std::thread& transfer : finished) {
    if (transfer.joinable()) transfer.join();
  }
}

}  // namespace bitdew::runtime
