// NodeRuntime: the live worker tier — the paper's reservoir pull protocol
// (§3.1, Fig. 1/4) running over real sockets against a bitdewd daemon. It
// is the deployed sibling of SimRuntime's SimNode: both drive the SAME
// api::PullCore state machine; only the substrate differs.
//
//  * A heartbeat thread issues ds_sync every `heartbeat_period_s` over a
//    dedicated RemoteServiceBus connection (the control bus). A missed
//    sync is retried on the next beat; the scheduler's 3x-heartbeat
//    timeout declaring this node dead is exactly the paper's failure model.
//  * Newly assigned data is downloaded on its own thread and its own TCP
//    connection (data streams never head-of-line block the heartbeat),
//    through the live engine the datum's `oob` attribute names in the
//    protocol registry — "tcp" pulls every chunk from the Data Repository,
//    "p2p" stripes chunks across the peer locators that rode in with the
//    download order (repository fallback) — with the full DT ticket flow
//    and the TransferManager concurrency cap the API promises. A protocol
//    with no live engine fails typed; the scheduler already rejects such
//    data at schedule time.
//  * An embedded rpc::ChunkServer serves MD5-verified replicas straight
//    from the cache to other workers (the peer data plane); its endpoint is
//    announced with every ds_sync so the scheduler can mint peer locators.
//  * Verified replicas land in `cache_dir` as `<uid>` files next to a
//    WAL-backed manifest (DewDB at <cache_dir>/cache.wal). On restart the
//    manifest is replayed and every file is re-hashed: intact replicas are
//    adopted without a transfer and re-announced through ds_sync; corrupt
//    or missing ones are forgotten so the scheduler re-sends them.
//  * Scheduler drops delete the local file and fire on_data_delete; arrivals
//    fire on_data_copy — the ActiveData programming model on live events.
//    Events are delivered from a dedicated callback executor thread, never
//    from the heartbeat or a transfer thread: a slow (or deliberately
//    blocking) handler delays other handlers, but can never stall ds_sync
//    beats or transfer completion.
//
// examples/bitdew_worker.cpp wraps one of these in a daemon; the
// live-fault-tolerance CI job kills -9 such a worker and watches a survivor
// re-download its replicas.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/active_data.hpp"
#include "api/pull_core.hpp"
#include "api/remote_service_bus.hpp"
#include "api/transfer_manager.hpp"
#include "db/database.hpp"
#include "rpc/chunk_server.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::runtime {

/// One completed (or failed) ds_sync beat, as observed by the heartbeat
/// thread. The churn harness installs a `sync_observer` to collect latency
/// percentiles and bytes-per-beat without touching runtime internals.
struct SyncSample {
  double latency_s = 0;        ///< wall-clock round-trip of the ds_sync RPC
  bool ok = false;             ///< transport + service success
  bool full = false;           ///< full report (epoch 0 / post-resync) vs delta
  std::int64_t request_bytes = 0;  ///< encoded wire size of the request
  std::size_t downloads = 0;   ///< download orders in the reply
  std::size_t drops = 0;       ///< drop orders in the reply
};

struct NodeRuntimeConfig {
  std::string name = "worker";      ///< host name announced in ds_sync
  std::string cache_dir = "cache";  ///< replica files + WAL manifest
  double heartbeat_period_s = 1.0;  ///< paper: 1 s
  std::int64_t chunk_bytes = 256 * 1024;
  int transfer_attempts = 3;        ///< engine reconnect+resume rounds
  int max_concurrent_transfers = 4; ///< 0 == unlimited
  api::RemoteBusConfig bus;         ///< connect/call deadlines
  // --- peer data plane -------------------------------------------------------
  bool serve_peers = true;          ///< run the embedded chunk server
  std::uint16_t peer_port = 0;      ///< chunk-server port (0 = ephemeral)
  /// Host other workers dial to reach this node's chunk server; combined
  /// with the bound port into the "host:port" endpoint ds_sync announces.
  std::string advertise_host = "127.0.0.1";
  /// Chunk-server upload cap in bytes/s (0 = unlimited); models this
  /// node's uplink.
  double peer_upload_Bps = 0;
  /// Called after every sync attempt, from the heartbeat thread, outside
  /// runtime locks. Must be fast and must not call back into the runtime.
  std::function<void(const SyncSample&)> sync_observer;
};

struct NodeRuntimeStats {
  std::uint64_t syncs_ok = 0;
  std::uint64_t syncs_failed = 0;
  std::uint64_t full_syncs = 0;   ///< beats that carried the whole cache list
  std::uint64_t delta_syncs = 0;  ///< beats that carried only {added, removed}
  std::uint64_t resyncs = 0;      ///< scheduler-ordered full-resync round-trips
  std::uint64_t downloads_completed = 0;
  std::uint64_t downloads_failed = 0;
  std::uint64_t drops = 0;
  std::uint64_t restored = 0;  ///< replicas re-verified from disk at start()
  std::uint64_t orphans_swept = 0;  ///< manifest-less cache files removed at start()
  std::uint64_t peer_chunks_served = 0;  ///< chunk reads served to other workers
  std::int64_t peer_bytes_served = 0;
  std::uint64_t events_dispatched = 0;  ///< ActiveData events delivered to handlers
  std::uint64_t adopted = 0;  ///< replicas adopted via adopt_replica()
};

class NodeRuntime {
 public:
  NodeRuntime(std::string service_host, std::uint16_t service_port,
              NodeRuntimeConfig config = {});
  ~NodeRuntime();
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Restores the replica cache from disk (manifest replay + MD5
  /// re-verification), then starts the heartbeat thread. Errc::kTransport
  /// when the daemon is unreachable, Errc::kUnavailable when the cache
  /// directory cannot be prepared.
  api::Status start();

  /// Stops the heartbeat and joins every transfer thread. Idempotent; also
  /// called by the destructor. The replica cache stays on disk.
  void stop();
  bool running() const { return running_.load(); }

  /// Wakes the heartbeat thread for an immediate sync (tests, benches).
  void sync_now();

  // --- the API objects user code programs against ---------------------------
  api::ActiveData& active_data() { return active_data_; }
  api::TransferManager& transfer_manager() { return tm_; }

  // --- introspection ---------------------------------------------------------
  const std::string& name() const { return config_.name; }
  /// Chunk-server endpoint announced via ds_sync ("" when not serving).
  const std::string& peer_endpoint() const { return endpoint_; }
  bool has(const util::Auid& uid) const;
  std::vector<util::Auid> cache_list() const;
  /// Path of a cached replica file (whether or not it currently exists).
  std::string replica_path(const util::Auid& uid) const;
  NodeRuntimeStats stats() const;

  /// Blocks until the datum is cached and verified, the deadline passes
  /// (false), or the runtime stops (false).
  bool wait_for(const util::Auid& uid, double timeout_s) const;

  /// Seeds the cache with a locally produced file (a task result): the
  /// bytes at `source_path` are verified against `data`, copied into the
  /// cache, recorded in the durable manifest, and announced on the next
  /// sync — so the peer plane can serve them. No ActiveData event fires
  /// (the producer already knows). Errc::kChecksumMismatch when the file
  /// does not match the descriptor.
  api::Status adopt_replica(const core::Data& data, const core::DataAttributes& attributes,
                            const std::string& source_path);

 private:
  static constexpr const char* kReplicaTable = "replicas";

  void heartbeat_loop();
  void do_sync();
  void apply_reply(const services::SyncReply& reply);
  void start_download(const services::ScheduledData& item,
                      std::vector<core::Locator> sources);
  void run_download(const services::ScheduledData& item,
                    const std::vector<core::Locator>& sources);
  void restore_cache() EXCLUDES(state_mutex_);
  /// Removes cache files (and `.part`s) whose uid has no manifest row — a
  /// crash between the verified rename and persist_replica() must not leak
  /// disk or leave stale bytes where a re-assigned uid will land.
  void sweep_orphans();
  /// The chunk server's read callback: verified replicas only.
  api::Expected<rpc::ChunkRef> read_replica_chunk(const util::Auid& uid, std::int64_t offset,
                                                  std::int64_t max_bytes) const;
  void persist_replica(const services::ScheduledData& item) REQUIRES(state_mutex_);
  void forget_replica(const util::Auid& uid) REQUIRES(state_mutex_);
  void reap_finished_transfers();
  /// Queues one life-cycle event for the callback executor.
  void enqueue_event(core::DataEventKind kind, const core::Data& data,
                     const core::DataAttributes& attributes);
  /// The callback executor: drains queued events into the public
  /// active_data() handlers, outside every runtime lock.
  void callback_loop();

  std::string service_host_;
  std::uint16_t service_port_;
  NodeRuntimeConfig config_;

  util::Mutex control_mutex_;  ///< one control call at a time
  /// Heartbeat + bookkeeping RPCs. Direct calls go under control_mutex_;
  /// active_data_/internal_events_ hold a reference bound at construction.
  api::RemoteServiceBus control_bus_ GUARDED_BY(control_mutex_);
  api::ActiveData active_data_;
  /// PullCore fires into THIS ActiveData (on the heartbeat/transfer thread
  /// that drove the transition, under state_mutex_); its only handler
  /// forwards every event into the executor queue, so user handlers on the
  /// public active_data_ run on the callback thread instead.
  api::ActiveData internal_events_;
  api::TransferManager tm_;
  std::unique_ptr<rpc::ChunkServer> peer_server_;  ///< the peer data plane
  std::string endpoint_;  ///< advertised "host:port" ("" = not serving)

  /// Guards core_, manifest_, stats_. Recursive because PullCore fires
  /// ActiveData callbacks at its transition points, and user handlers may
  /// call back into has()/cache_list().
  mutable util::RecursiveMutex state_mutex_;
  api::PullCore core_ GUARDED_BY(state_mutex_);
  std::unique_ptr<db::Database> manifest_ GUARDED_BY(state_mutex_);
  NodeRuntimeStats stats_ GUARDED_BY(state_mutex_);

  std::atomic<bool> running_{false};
  std::thread heartbeat_;
  util::Mutex beat_mutex_;
  util::CondVar beat_cv_;
  bool beat_requested_ GUARDED_BY(beat_mutex_) = false;

  // --- callback executor (never the heartbeat or a transfer thread) ----------
  struct PendingEvent {
    core::DataEventKind kind;
    core::Data data;
    core::DataAttributes attributes;
  };
  std::thread callback_thread_;
  util::Mutex events_mutex_;
  util::CondVar events_cv_;
  std::deque<PendingEvent> events_ GUARDED_BY(events_mutex_);
  bool callbacks_open_ GUARDED_BY(events_mutex_) = false;
  mutable util::CondVarAny arrival_cv_;  ///< signaled on cache change

  util::Mutex transfers_mutex_;
  /// Cleared (under transfers_mutex_) before stop() swaps transfers_ out:
  /// a queued admit job pumped by a finishing transfer's tm_.finish() must
  /// not spawn a thread the join loop will never see.
  bool accepting_transfers_ GUARDED_BY(transfers_mutex_) = false;
  std::vector<std::thread> transfers_ GUARDED_BY(transfers_mutex_);
  std::vector<std::thread::id> finished_transfers_ GUARDED_BY(transfers_mutex_);
};

}  // namespace bitdew::runtime
