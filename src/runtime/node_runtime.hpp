// NodeRuntime: the live worker tier — the paper's reservoir pull protocol
// (§3.1, Fig. 1/4) running over real sockets against a bitdewd daemon. It
// is the deployed sibling of SimRuntime's SimNode: both drive the SAME
// api::PullCore state machine; only the substrate differs.
//
//  * A heartbeat thread issues ds_sync every `heartbeat_period_s` over a
//    dedicated RemoteServiceBus connection (the control bus). A missed
//    sync is retried on the next beat; the scheduler's 3x-heartbeat
//    timeout declaring this node dead is exactly the paper's failure model.
//  * Newly assigned data is downloaded through transfer::TcpTransfer on its
//    own thread and its own TCP connection (data streams never head-of-line
//    block the heartbeat), with the full DT ticket flow — register, monitor,
//    complete-with-checksum, resume after a dropped connection — and the
//    TransferManager concurrency cap the API promises.
//  * Verified replicas land in `cache_dir` as `<uid>` files next to a
//    WAL-backed manifest (DewDB at <cache_dir>/cache.wal). On restart the
//    manifest is replayed and every file is re-hashed: intact replicas are
//    adopted without a transfer and re-announced through ds_sync; corrupt
//    or missing ones are forgotten so the scheduler re-sends them.
//  * Scheduler drops delete the local file and fire on_data_delete; arrivals
//    fire on_data_copy — the ActiveData programming model on live events.
//
// examples/bitdew_worker.cpp wraps one of these in a daemon; the
// live-fault-tolerance CI job kills -9 such a worker and watches a survivor
// re-download its replicas.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/active_data.hpp"
#include "api/pull_core.hpp"
#include "api/remote_service_bus.hpp"
#include "api/transfer_manager.hpp"
#include "db/database.hpp"

namespace bitdew::runtime {

struct NodeRuntimeConfig {
  std::string name = "worker";      ///< host name announced in ds_sync
  std::string cache_dir = "cache";  ///< replica files + WAL manifest
  double heartbeat_period_s = 1.0;  ///< paper: 1 s
  std::int64_t chunk_bytes = 256 * 1024;
  int transfer_attempts = 3;        ///< TcpTransfer reconnect+resume rounds
  int max_concurrent_transfers = 4; ///< 0 == unlimited
  api::RemoteBusConfig bus;         ///< connect/call deadlines
};

struct NodeRuntimeStats {
  std::uint64_t syncs_ok = 0;
  std::uint64_t syncs_failed = 0;
  std::uint64_t downloads_completed = 0;
  std::uint64_t downloads_failed = 0;
  std::uint64_t drops = 0;
  std::uint64_t restored = 0;  ///< replicas re-verified from disk at start()
};

class NodeRuntime {
 public:
  NodeRuntime(std::string service_host, std::uint16_t service_port,
              NodeRuntimeConfig config = {});
  ~NodeRuntime();
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Restores the replica cache from disk (manifest replay + MD5
  /// re-verification), then starts the heartbeat thread. Errc::kTransport
  /// when the daemon is unreachable, Errc::kUnavailable when the cache
  /// directory cannot be prepared.
  api::Status start();

  /// Stops the heartbeat and joins every transfer thread. Idempotent; also
  /// called by the destructor. The replica cache stays on disk.
  void stop();
  bool running() const { return running_.load(); }

  /// Wakes the heartbeat thread for an immediate sync (tests, benches).
  void sync_now();

  // --- the API objects user code programs against ---------------------------
  api::ActiveData& active_data() { return active_data_; }
  api::TransferManager& transfer_manager() { return tm_; }

  // --- introspection ---------------------------------------------------------
  const std::string& name() const { return config_.name; }
  bool has(const util::Auid& uid) const;
  std::vector<util::Auid> cache_list() const;
  /// Path of a cached replica file (whether or not it currently exists).
  std::string replica_path(const util::Auid& uid) const;
  NodeRuntimeStats stats() const;

  /// Blocks until the datum is cached and verified, the deadline passes
  /// (false), or the runtime stops (false).
  bool wait_for(const util::Auid& uid, double timeout_s) const;

 private:
  static constexpr const char* kReplicaTable = "replicas";

  void heartbeat_loop();
  void do_sync();
  void apply_reply(const services::SyncReply& reply);
  void start_download(const services::ScheduledData& item);
  void run_download(const services::ScheduledData& item);
  void restore_cache();
  void persist_replica(const services::ScheduledData& item);
  void forget_replica(const util::Auid& uid);
  void reap_finished_transfers();

  std::string service_host_;
  std::uint16_t service_port_;
  NodeRuntimeConfig config_;

  api::RemoteServiceBus control_bus_;  ///< heartbeat + bookkeeping RPCs
  std::mutex control_mutex_;           ///< one control call at a time
  api::ActiveData active_data_;
  api::TransferManager tm_;

  /// Guards core_, manifest_, stats_. Recursive because PullCore fires
  /// ActiveData callbacks at its transition points, and user handlers may
  /// call back into has()/cache_list().
  mutable std::recursive_mutex state_mutex_;
  api::PullCore core_;
  std::unique_ptr<db::Database> manifest_;
  NodeRuntimeStats stats_;

  std::atomic<bool> running_{false};
  std::thread heartbeat_;
  std::mutex beat_mutex_;
  std::condition_variable beat_cv_;
  bool beat_requested_ = false;
  mutable std::condition_variable_any arrival_cv_;  ///< signaled on cache change

  std::mutex transfers_mutex_;
  /// Cleared (under transfers_mutex_) before stop() swaps transfers_ out:
  /// a queued admit job pumped by a finishing transfer's tm_.finish() must
  /// not spawn a thread the join loop will never see.
  bool accepting_transfers_ = false;
  std::vector<std::thread> transfers_;
  std::vector<std::thread::id> finished_transfers_;
};

}  // namespace bitdew::runtime
