// SimServiceBus: the ServiceBus implementation for the discrete-event
// runtime. Every call is a request flow to the service host, a serialized
// service-processing slot (one server thread, FIFO — so load queues
// honestly), the in-process core call, and a response flow back. Byte
// counts scale with payload sizes so control traffic consumes bandwidth —
// the mechanism behind the paper's Fig. 3b/3c overhead.
#pragma once

#include "api/service_bus.hpp"
#include "dht/local_dht.hpp"
#include "dht/ring.hpp"
#include "net/network.hpp"
#include "services/container.hpp"
#include "sim/simulator.hpp"

namespace bitdew::runtime {

/// FIFO single-server queue modelling the service node's processing.
class ServiceQueue {
 public:
  ServiceQueue(sim::Simulator& sim, double service_time_s)
      : sim_(sim), service_time_(service_time_s) {}

  void submit(std::function<void()> work) {
    queue_.push_back(std::move(work));
    if (!busy_) drain();
  }

  std::uint64_t served() const { return served_; }
  std::size_t depth() const { return queue_.size(); }

 private:
  void drain() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    auto work = std::move(queue_.front());
    queue_.pop_front();
    sim_.after(service_time_, [this, work = std::move(work)] {
      work();
      ++served_;
      drain();
    });
  }

  sim::Simulator& sim_;
  double service_time_;
  bool busy_ = false;
  std::deque<std::function<void()>> queue_;
  std::uint64_t served_ = 0;
};

struct BusConfig {
  std::int64_t request_bytes = 256;   ///< fixed RPC envelope
  std::int64_t response_bytes = 256;
  std::int64_t per_item_bytes = 48;   ///< marginal bytes per list element
  bool control_traffic = true;        ///< false: latency-only RPCs (ablation)
};

class SimServiceBus final : public api::ServiceBus {
 public:
  /// `fallback_ddc` is the shared catalog-local key/value store used when
  /// no DHT ring is attached (owned by the runtime).
  SimServiceBus(sim::Simulator& sim, net::Network& net, net::HostId self,
                net::HostId service_host, services::ServiceContainer& container,
                ServiceQueue& queue, dht::LocalDht& fallback_ddc, BusConfig config)
      : sim_(sim),
        net_(net),
        self_(self),
        service_host_(service_host),
        container_(container),
        queue_(queue),
        fallback_ddc_(fallback_ddc),
        config_(config) {}

  /// Optional DDC ring; falls back to a catalog-local store when absent.
  void attach_ring(dht::Ring* ring, dht::NodeIndex self_node) {
    ring_ = ring;
    ring_node_ = self_node;
  }

  // ServiceBus -----------------------------------------------------------------
  void dc_register(const core::Data& data, api::Reply<bool> done) override;
  void dc_get(const util::Auid& uid, api::Reply<std::optional<core::Data>> done) override;
  void dc_search(const std::string& name, api::Reply<std::vector<core::Data>> done) override;
  void dc_remove(const util::Auid& uid, api::Reply<bool> done) override;
  void dc_add_locator(const core::Locator& locator, api::Reply<bool> done) override;
  void dc_locators(const util::Auid& uid, api::Reply<std::vector<core::Locator>> done) override;
  void dr_put(const core::Data& data, const core::Content& content, const std::string& protocol,
              api::Reply<core::Locator> done) override;
  void dr_get(const util::Auid& uid, api::Reply<std::optional<core::Content>> done) override;
  void dr_remove(const util::Auid& uid, api::Reply<bool> done) override;
  void dt_register(const core::Data& data, const std::string& source,
                   const std::string& destination, const std::string& protocol,
                   api::Reply<services::TicketId> done) override;
  void dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                  api::Reply<bool> done) override;
  void dt_complete(services::TicketId ticket, const std::string& received_checksum,
                   const std::string& expected_checksum, api::Reply<bool> done) override;
  void dt_failure(services::TicketId ticket, std::int64_t bytes_held, bool can_resume,
                  api::Reply<bool> done) override;
  void dt_give_up(services::TicketId ticket, api::Reply<bool> done) override;
  void ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                   api::Reply<bool> done) override;
  void ds_pin(const util::Auid& uid, const std::string& host, api::Reply<bool> done) override;
  void ds_unschedule(const util::Auid& uid, api::Reply<bool> done) override;
  void ds_sync(const std::string& host, const std::vector<util::Auid>& cache,
               const std::vector<util::Auid>& in_flight,
               api::Reply<services::SyncReply> done) override;
  void ddc_publish(const std::string& key, const std::string& value,
                   api::Reply<bool> done) override;
  void ddc_search(const std::string& key, api::Reply<std::vector<std::string>> done) override;

  std::uint64_t rpc_count() const { return rpcs_; }

 private:
  /// Request flow -> service queue -> compute -> response flow -> done.
  /// On any transport failure, `fallback` is delivered instead.
  template <typename R>
  void rpc(std::int64_t extra_request_bytes, std::int64_t extra_response_bytes,
           std::function<R(services::ServiceContainer&)> compute, R fallback,
           api::Reply<R> done);

  sim::Simulator& sim_;
  net::Network& net_;
  net::HostId self_;
  net::HostId service_host_;
  services::ServiceContainer& container_;
  ServiceQueue& queue_;
  dht::LocalDht& fallback_ddc_;
  BusConfig config_;
  dht::Ring* ring_ = nullptr;
  dht::NodeIndex ring_node_ = dht::kNoNode;
  std::uint64_t rpcs_ = 0;
};

}  // namespace bitdew::runtime
