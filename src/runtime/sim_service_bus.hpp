// SimServiceBus: the ServiceBus implementation for the discrete-event
// runtime. Every call is a request flow to the service host, a serialized
// service-processing slot (one server thread, FIFO — so load queues
// honestly), the in-process core call, and a response flow back. Byte
// counts scale with payload sizes so control traffic consumes bandwidth —
// the mechanism behind the paper's Fig. 3b/3c overhead.
//
// v2: replies carry Expected<T> (transport losses surface as
// Errc::kTransport; service-level failures come out of service_ops.hpp with
// the same codes as the DirectServiceBus), and the four bulk endpoints are
// native: one request flow, one FIFO slot charged N * service_time_s, and
// one response flow amortize the RPC envelope over the whole batch. Batch
// requests are sized by actually encoding them through rpc/wire.hpp.
#pragma once

#include "api/service_bus.hpp"
#include "dht/local_dht.hpp"
#include "dht/ring.hpp"
#include "net/network.hpp"
#include "services/container.hpp"
#include "sim/simulator.hpp"

namespace bitdew::runtime {

/// FIFO single-server queue modelling the service node's processing. A
/// batched submission occupies the server for `items` service times — the
/// per-item processing cost is preserved; only the envelope is amortized.
class ServiceQueue {
 public:
  ServiceQueue(sim::Simulator& sim, double service_time_s)
      : sim_(sim), service_time_(service_time_s) {}

  void submit(std::function<void()> work, std::size_t items = 1) {
    queue_.push_back(Job{std::move(work), items == 0 ? 1 : items});
    if (!busy_) drain();
  }

  /// Service events processed (one per submission, batched or not).
  std::uint64_t served() const { return served_; }
  /// Items processed across all submissions.
  std::uint64_t items_served() const { return items_served_; }
  std::size_t depth() const { return queue_.size(); }

 private:
  struct Job {
    std::function<void()> work;
    std::size_t items;
  };

  void drain() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    sim_.after(service_time_ * static_cast<double>(job.items),
               [this, job = std::move(job)] {
                 job.work();
                 ++served_;
                 items_served_ += job.items;
                 drain();
               });
  }

  sim::Simulator& sim_;
  double service_time_;
  bool busy_ = false;
  std::deque<Job> queue_;
  std::uint64_t served_ = 0;
  std::uint64_t items_served_ = 0;
};

struct BusConfig {
  std::int64_t request_bytes = 256;   ///< fixed RPC envelope
  std::int64_t response_bytes = 256;
  std::int64_t per_item_bytes = 48;   ///< marginal bytes per list element
  bool control_traffic = true;        ///< false: latency-only RPCs (ablation)
};

class SimServiceBus final : public api::ServiceBus {
 public:
  /// `fallback_ddc` is the shared catalog-local key/value store used when
  /// no DHT ring is attached (owned by the runtime).
  SimServiceBus(sim::Simulator& sim, net::Network& net, net::HostId self,
                net::HostId service_host, services::ServiceContainer& container,
                ServiceQueue& queue, dht::LocalDht& fallback_ddc, BusConfig config)
      : sim_(sim),
        net_(net),
        self_(self),
        service_host_(service_host),
        container_(container),
        queue_(queue),
        fallback_ddc_(fallback_ddc),
        config_(config) {}

  /// Optional DDC ring; falls back to a catalog-local store when absent.
  void attach_ring(dht::Ring* ring, dht::NodeIndex self_node) {
    ring_ = ring;
    ring_node_ = self_node;
  }

  // ServiceBus -----------------------------------------------------------------
  void dc_register(const core::Data& data, api::Reply<api::Status> done) override;
  void dc_get(const util::Auid& uid, api::Reply<api::Expected<core::Data>> done) override;
  void dc_search(const std::string& name,
                 api::Reply<api::Expected<std::vector<core::Data>>> done) override;
  void dc_remove(const util::Auid& uid, api::Reply<api::Status> done) override;
  void dc_add_locator(const core::Locator& locator, api::Reply<api::Status> done) override;
  void dc_locators(const util::Auid& uid,
                   api::Reply<api::Expected<std::vector<core::Locator>>> done) override;
  void dr_put(const core::Data& data, const core::Content& content, const std::string& protocol,
              api::Reply<api::Expected<core::Locator>> done) override;
  void dr_get(const util::Auid& uid, api::Reply<api::Expected<core::Content>> done) override;
  void dr_remove(const util::Auid& uid, api::Reply<api::Status> done) override;
  void dr_put_start(const core::Data& data,
                    api::Reply<api::Expected<std::int64_t>> done) override;
  void dr_put_chunk(const util::Auid& uid, std::int64_t offset, const std::string& bytes,
                    api::Reply<api::Status> done) override;
  void dr_put_commit(const util::Auid& uid, const std::string& protocol,
                     api::Reply<api::Expected<core::Locator>> done) override;
  void dr_get_chunk(const util::Auid& uid, std::int64_t offset, std::int64_t max_bytes,
                    api::Reply<api::Expected<std::string>> done) override;
  void dr_stats(api::Reply<api::Expected<services::RepoStats>> done) override;
  void dt_register(const core::Data& data, const std::string& source,
                   const std::string& destination, const std::string& protocol,
                   api::Reply<api::Expected<services::TicketId>> done) override;
  void dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                  api::Reply<api::Status> done) override;
  void dt_complete(services::TicketId ticket, const std::string& received_checksum,
                   const std::string& expected_checksum, api::Reply<api::Status> done) override;
  void dt_failure(services::TicketId ticket, std::int64_t bytes_held, bool can_resume,
                  api::Reply<api::Status> done) override;
  void dt_give_up(services::TicketId ticket, api::Reply<api::Status> done) override;
  void ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                   api::Reply<api::Status> done) override;
  void ds_pin(const util::Auid& uid, const std::string& host,
              api::Reply<api::Status> done) override;
  void ds_unschedule(const util::Auid& uid, api::Reply<api::Status> done) override;
  void ds_sync(const services::SyncRequest& request,
               api::Reply<api::Expected<services::SyncReply>> done) override;
  void ds_hosts(api::Reply<api::Expected<std::vector<services::HostInfo>>> done) override;
  void job_submit(const jobs::JobSpec& spec,
                  api::Reply<api::Expected<util::Auid>> done) override;
  void job_status(const util::Auid& job,
                  api::Reply<api::Expected<jobs::JobStatusInfo>> done) override;
  void job_claim(const util::Auid& task, const std::string& runner,
                 api::Reply<api::Expected<jobs::TaskOrder>> done) override;
  void job_task_report(const jobs::TaskReport& report, api::Reply<api::Status> done) override;
  void ddc_publish(const std::string& key, const std::string& value,
                   api::Reply<api::Status> done) override;
  void ddc_search(const std::string& key,
                  api::Reply<api::Expected<std::vector<std::string>>> done) override;

  // Native bulk endpoints: one request/response flow for the whole batch.
  void dc_register_batch(const std::vector<core::Data>& items,
                         api::Reply<api::BatchStatus> done) override;
  void dc_locators_batch(const std::vector<util::Auid>& uids,
                         api::Reply<api::BatchLocators> done) override;
  void ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                         api::Reply<api::BatchStatus> done) override;
  void ddc_publish_batch(const std::vector<api::KeyValue>& pairs,
                         api::Reply<api::BatchStatus> done) override;

  std::uint64_t rpc_count() const { return rpcs_; }

 private:
  /// Request flow -> service queue (items service slots) -> compute ->
  /// response flow -> done. On any transport failure, `fallback` is
  /// delivered instead.
  template <typename R>
  void rpc(std::int64_t extra_request_bytes, std::int64_t extra_response_bytes,
           std::function<R(services::ServiceContainer&)> compute, R fallback,
           api::Reply<R> done, std::size_t items = 1);

  sim::Simulator& sim_;
  net::Network& net_;
  net::HostId self_;
  net::HostId service_host_;
  services::ServiceContainer& container_;
  ServiceQueue& queue_;
  dht::LocalDht& fallback_ddc_;
  BusConfig config_;
  dht::Ring* ring_ = nullptr;
  dht::NodeIndex ring_node_ = dht::kNoNode;
  std::uint64_t rpcs_ = 0;
};

}  // namespace bitdew::runtime
