#include "runtime/sim_runtime.hpp"

#include "util/log.hpp"

namespace bitdew::runtime {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("runtime");
  return instance;
}

}  // namespace

// --- SimNode ---------------------------------------------------------------

SimNode::SimNode(SimRuntime& runtime, net::HostId host)
    : runtime_(runtime),
      host_(host),
      bus_(runtime.simulator(), runtime.network(), host, runtime.service_host(),
           runtime.container(), runtime.service_queue(), runtime.fallback_ddc_for_bus(),
           runtime.config().bus),
      bitdew_(bus_, runtime.network().host_name(host)),
      active_data_(bus_, runtime.network().host_name(host)),
      tm_(),
      core_(active_data_) {}

const std::string& SimNode::name() const { return runtime_.network().host_name(host_); }

void SimNode::adopt_local(const core::Data& data, const core::DataAttributes& attributes,
                          bool fire_event) {
  core_.adopt_local(data, attributes, fire_event);
}

void SimNode::start_reservoir() {
  if (reservoir_) return;
  reservoir_ = true;
  const double period = runtime_.config().scheduler.heartbeat_period_s;
  // Stagger the first sync so hosts do not thunder in lockstep.
  runtime_.simulator().after(
      runtime_.simulator().rng().uniform(0, period), [this, period] {
        if (stopped_) return;
        do_sync();
        sync_timer_.start(runtime_.simulator(), period, [this] { do_sync(); });
      });
}

void SimNode::stop() {
  stopped_ = true;
  sync_timer_.stop();
}

void SimNode::restart() {
  if (!stopped_) return;
  stopped_ = false;
  if (reservoir_) {
    reservoir_ = false;  // re-arm start_reservoir's idempotence guard
    start_reservoir();
  }
}

void SimNode::do_sync() {
  if (stopped_ || !runtime_.network().alive(host_)) return;
  logger().trace("[%.2f] %s: sync (cache=%zu, inflight=%zu)", runtime_.simulator().now(),
                 name().c_str(), core_.cache().size(), core_.downloading_set().size());
  // Sync protocol v2: deltas since the last acked beat. The sim node is
  // single-threaded, so the build/ack pair brackets one bus callback.
  const api::PullCore::SyncDelta delta = core_.build_sync();
  services::SyncRequest request;
  request.host = name();
  request.epoch = delta.epoch;
  request.full = delta.full;
  request.added = delta.added;
  request.removed = delta.removed;
  request.in_flight = core_.downloading_list();
  // Sim nodes announce no chunk-server endpoint: the simulated swarm moves
  // through the modeled protocols (bittorrent.*), not the live peer plane.
  bus_.ds_sync(request, [this, delta](api::Expected<services::SyncReply> reply) {
    if (stopped_ || !reply.ok()) return;  // lost sync: next beat retries
    if (reply->resync) {
      // Scheduler cannot trust the delta (restart / declared-dead revival):
      // fall back to a full report right away. A full request is always
      // accepted, so this cannot loop.
      core_.force_resync();
      do_sync();
      return;
    }
    core_.ack_sync(delta, reply->epoch);
    apply_reply(*reply);
  });
}

void SimNode::apply_reply(const services::SyncReply& reply) {
  // Δk \ Ψk: safe to delete (PullCore fires on_data_delete).
  core_.apply_drops(reply);
  // Ψk \ Δk: download newly assigned data.
  for (const services::ScheduledData& item : reply.download) {
    start_download(item);
  }
}

void SimNode::start_download(const services::ScheduledData& item) {
  // kInstant adopted a zero-size datum without a transfer; kAlreadyHeld is
  // a duplicate assignment. Only kStarted needs the protocol machinery.
  if (core_.begin_download(item) != api::PullCore::Admission::kStarted) return;
  logger().debug("%s: downloading %s (%s)", name().c_str(), item.data.name.c_str(),
                 item.attributes.protocol.c_str());

  tm_.admit([this, item] {
    tm_.begin(item.data.uid);
    const double assigned_at = runtime_.simulator().now();
    // Protocol setup, as in the paper's overhead experiment: locate the
    // source (DC), then register the transfer (DT), then go out-of-band.
    bus_.dc_locators(item.data.uid, [this, item, assigned_at](
                                        api::Expected<std::vector<core::Locator>> reply) {
      if (stopped_) return;
      if (!reply.ok() || reply->empty()) {
        // Nothing serves this datum yet (e.g. producer still uploading):
        // fail this round; the next sync retries.
        download_failed(item, reply.ok()
                                  ? api::Error{api::Errc::kUnavailable, "dc", "no locators"}
                                  : reply.error());
        return;
      }
      const std::vector<core::Locator>& locators = *reply;
      // Prefer a locator matching the requested protocol.
      core::Locator chosen = locators.front();
      for (const core::Locator& locator : locators) {
        if (locator.protocol == item.attributes.protocol) {
          chosen = locator;
          break;
        }
      }
      const std::string protocol_name = item.attributes.protocol.empty()
                                            ? chosen.protocol
                                            : item.attributes.protocol;
      logger().trace("%s: %s locator %s via %s", name().c_str(), item.data.name.c_str(),
                     chosen.url().c_str(), protocol_name.c_str());
      bus_.dt_register(
          item.data, chosen.host, name(), protocol_name,
          [this, item, chosen, protocol_name,
           assigned_at](api::Expected<services::TicketId> ticket) {
            if (stopped_) return;
            if (!ticket.ok()) {
              download_failed(item, ticket.error());
              return;
            }
            last_assigned_at_ = assigned_at;
            attempt_fetch_with_source(item, *ticket, chosen, protocol_name, 1, 0);
          });
    });
  });
}

void SimNode::attempt_fetch(const services::ScheduledData& item, services::TicketId ticket,
                            int attempt, std::int64_t offset) {
  // Re-resolve the locator on retries (the original source may be gone).
  bus_.dc_locators(item.data.uid,
                   [this, item, ticket, attempt,
                    offset](api::Expected<std::vector<core::Locator>> reply) {
                     if (stopped_) return;
                     if (!reply.ok() || reply->empty()) {
                       download_failed(
                           item, reply.ok() ? api::Error{api::Errc::kUnavailable, "dc",
                                                         "no locators"}
                                            : reply.error());
                       return;
                     }
                     const std::vector<core::Locator>& locators = *reply;
                     core::Locator chosen = locators.front();
                     for (const core::Locator& locator : locators) {
                       if (locator.protocol == item.attributes.protocol) {
                         chosen = locator;
                         break;
                       }
                     }
                     const std::string protocol_name = item.attributes.protocol.empty()
                                                           ? chosen.protocol
                                                           : item.attributes.protocol;
                     attempt_fetch_with_source(item, ticket, chosen, protocol_name, attempt,
                                               offset);
                   });
}

void SimNode::attempt_fetch_with_source(const services::ScheduledData& item,
                                        services::TicketId ticket, const core::Locator& source,
                                        const std::string& protocol_name, int attempt,
                                        std::int64_t offset) {
  transfer::Protocol* protocol = runtime_.protocol(protocol_name);
  if (protocol == nullptr) protocol = runtime_.protocol("ftp");

  transfer::TransferJob job;
  job.data = item.data;
  job.source = runtime_.host_by_name(source.host);
  job.destination = host_;
  job.offset = offset;

  if (job.source == net::kNoHost) {
    download_failed(item,
                    api::Error{api::Errc::kNotFound, "net", "unknown source host " + source.host});
    return;
  }

  // Receiver-driven monitoring: poll DT while the transfer runs.
  auto monitor = std::make_shared<sim::PeriodicTimer>();
  monitor->start(runtime_.simulator(), runtime_.config().dt_monitor_period_s,
                 [this, ticket, offset] {
                   if (!stopped_) bus_.dt_monitor(ticket, offset, [](api::Status) {});
                 });

  logger().trace("%s: fetch %s attempt %d offset %lld", name().c_str(),
                 item.data.name.c_str(), attempt, static_cast<long long>(offset));
  protocol->start(job, [this, item, ticket, attempt, offset, monitor,
                        protocol](const transfer::TransferOutcome& outcome) {
    monitor->stop();
    logger().trace("%s: fetch %s outcome ok=%d", name().c_str(), item.data.name.c_str(),
                   outcome.ok ? 1 : 0);
    if (stopped_ || !runtime_.network().alive(host_)) return;

    if (outcome.ok) {
      bus_.dt_complete(ticket, outcome.checksum, item.data.checksum,
                       [this, item, ticket, attempt, offset](api::Status verified) {
                         if (stopped_) return;
                         if (verified.ok()) {
                           download_succeeded(item, last_assigned_at_);
                         } else if (attempt < runtime_.config().max_transfer_attempts) {
                           attempt_fetch(item, ticket, attempt + 1, 0);
                         } else {
                           bus_.dt_give_up(ticket, [](api::Status) {});
                           download_failed(item, verified.error());
                         }
                       });
      return;
    }

    const bool can_resume = protocol->supports_resume();
    const std::int64_t held = offset + (can_resume ? outcome.bytes_transferred : 0);
    bus_.dt_failure(ticket, held, can_resume, [](api::Status) {});
    if (attempt < runtime_.config().max_transfer_attempts) {
      attempt_fetch(item, ticket, attempt + 1, can_resume ? held : 0);
    } else {
      bus_.dt_give_up(ticket, [](api::Status) {});
      download_failed(item,
                      api::Error{api::Errc::kTransport, "dt", "transfer attempts exhausted"});
    }
  });
}

void SimNode::download_succeeded(const services::ScheduledData& item, double assigned_at) {
  const util::Auid uid = item.data.uid;
  last_download_duration_ = runtime_.simulator().now() - assigned_at;
  last_download_rate_ = last_download_duration_ > 0
                            ? static_cast<double>(item.data.size) / last_download_duration_
                            : 0;
  core_.complete_download(uid);  // fires on_data_copy
  tm_.finish(uid, api::ok_status());
  // Publish the replica location in the distributed catalog (paper §3.4.1).
  bus_.ddc_publish(uid.str(), name(), [](api::Status) {});
}

void SimNode::download_failed(const services::ScheduledData& item, const api::Error& why) {
  const util::Auid uid = item.data.uid;
  core_.fail_download(uid);
  tm_.finish(uid, api::Status(why));
  logger().debug("%s: download of %s failed: %s", name().c_str(), item.data.name.c_str(),
                 why.to_string().c_str());
}

// --- SimRuntime ------------------------------------------------------------------

SimRuntime::SimRuntime(sim::Simulator& sim, net::Network& net, net::HostId service_host,
                       SimRuntimeConfig config)
    : sim_(sim),
      net_(net),
      service_host_(service_host),
      config_(config),
      container_(net.host_name(service_host), sim, config.scheduler),
      queue_(sim, config.service_time_s) {
  const bool inject = config_.flaky.fail_probability > 0 ||
                      config_.flaky.corrupt_probability > 0;
  auto maybe_flaky = [&](std::unique_ptr<transfer::Protocol> inner)
      -> std::unique_ptr<transfer::Protocol> {
    if (!inject) return inner;
    return std::make_unique<transfer::FlakyProtocol>(std::move(inner), sim_, config_.flaky);
  };
  protocols_.add(maybe_flaky(std::make_unique<transfer::FtpProtocol>(sim_, net_, config_.ftp)));
  protocols_.add(maybe_flaky(std::make_unique<transfer::HttpProtocol>(sim_, net_, config_.http)));
  auto bt = std::make_unique<transfer::BtProtocol>(sim_, net_, config_.bt);
  bt_ = bt.get();
  protocols_.add(std::move(bt));
  host_names_[net_.host_name(service_host)] = service_host;

  failure_detector_.start(sim_, config_.failure_detect_period_s,
                          [this] { container_.ds().detect_failures(); });
}

SimNode& SimRuntime::add_node(net::HostId host, bool reservoir) {
  auto node = std::make_unique<SimNode>(*this, host);
  SimNode& ref = *node;
  by_host_[host] = node.get();
  host_names_[net_.host_name(host)] = host;
  nodes_.push_back(std::move(node));
  if (ring_ && !ring_nodes_.contains(host)) {
    // Late nodes join the ring through its first node.
    const dht::NodeIndex index = ring_->add_node(host);
    ring_nodes_[host] = index;
    ring_->join(index, 0, [](bool) {});
  }
  if (ring_ && ring_nodes_.contains(host)) {
    ref.bus().attach_ring(ring_.get(), ring_nodes_[host]);
  }
  if (reservoir) ref.start_reservoir();
  return ref;
}

void SimRuntime::enable_ddc(const std::vector<net::HostId>& ring_hosts,
                            dht::RingConfig config) {
  ring_ = std::make_unique<dht::Ring>(sim_, net_, config);
  for (const net::HostId host : ring_hosts) {
    ring_nodes_[host] = ring_->add_node(host);
  }
  ring_->bootstrap_all();
  ring_->start_maintenance();
  for (const auto& node : nodes_) {
    const auto it = ring_nodes_.find(node->host());
    if (it != ring_nodes_.end()) node->bus().attach_ring(ring_.get(), it->second);
  }
}

void SimRuntime::kill_node(net::HostId host) {
  net_.kill_host(host);
  bt_->on_host_failed(host);
  const auto it = by_host_.find(host);
  if (it != by_host_.end()) it->second->stop();
  if (ring_) {
    const auto ring_it = ring_nodes_.find(host);
    if (ring_it != ring_nodes_.end()) ring_->fail(ring_it->second);
  }
  logger().debug("killed host %s", net_.host_name(host).c_str());
}

void SimRuntime::revive_node(net::HostId host) {
  net_.revive_host(host);
  const auto it = by_host_.find(host);
  if (it != by_host_.end()) it->second->restart();
  logger().debug("revived host %s", net_.host_name(host).c_str());
}

SimNode* SimRuntime::node_at(net::HostId host) {
  const auto it = by_host_.find(host);
  return it != by_host_.end() ? it->second : nullptr;
}

net::HostId SimRuntime::host_by_name(const std::string& name) const {
  const auto it = host_names_.find(name);
  return it != host_names_.end() ? it->second : net::kNoHost;
}

std::uint64_t SimRuntime::total_rpcs() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->bus().rpc_count();
  return total;
}

}  // namespace bitdew::runtime
