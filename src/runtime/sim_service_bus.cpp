#include "runtime/sim_service_bus.hpp"

#include "api/service_ops.hpp"
#include "rpc/wire.hpp"

namespace bitdew::runtime {
namespace {

using api::Errc;
using api::Error;
using api::Expected;
using api::Status;

Error transport_error(const char* what) { return Error{Errc::kTransport, "bus", what}; }

/// Transport fallback for a batch: every item reports the same loss.
api::BatchStatus batch_transport_fallback(std::size_t count) {
  return api::BatchStatus(count, Status(transport_error("batch flow failed")));
}

}  // namespace

template <typename R>
void SimServiceBus::rpc(std::int64_t extra_request_bytes, std::int64_t extra_response_bytes,
                        std::function<R(services::ServiceContainer&)> compute, R fallback,
                        api::Reply<R> done, std::size_t items) {
  ++rpcs_;
  const std::int64_t request_bytes =
      config_.control_traffic ? config_.request_bytes + extra_request_bytes : 0;
  const std::int64_t response_bytes =
      config_.control_traffic ? config_.response_bytes + extra_response_bytes : 0;

  net_.start_flow(
      self_, service_host_, request_bytes,
      [this, response_bytes, items, compute = std::move(compute),
       fallback = std::move(fallback),
       done = std::move(done)](const net::FlowResult& request) mutable {
        if (!request.ok) {
          done(std::move(fallback));
          return;
        }
        queue_.submit(
            [this, response_bytes, compute = std::move(compute),
             fallback = std::move(fallback), done = std::move(done)]() mutable {
              R result = compute(container_);
              net_.start_flow(service_host_, self_, response_bytes,
                              [result = std::move(result), fallback = std::move(fallback),
                               done = std::move(done)](const net::FlowResult& response) mutable {
                                done(response.ok ? std::move(result) : std::move(fallback));
                              });
            },
            items);
      });
}

void SimServiceBus::dc_register(const core::Data& data, api::Reply<Status> done) {
  rpc<Status>(
      160, 0, [data](services::ServiceContainer& c) { return api::ops::dc_register(c, data); },
      transport_error("dc_register flow failed"), std::move(done));
}

void SimServiceBus::dc_get(const util::Auid& uid, api::Reply<Expected<core::Data>> done) {
  rpc<Expected<core::Data>>(
      16, 160, [uid](services::ServiceContainer& c) { return api::ops::dc_get(c, uid); },
      transport_error("dc_get flow failed"), std::move(done));
}

void SimServiceBus::dc_search(const std::string& name,
                              api::Reply<Expected<std::vector<core::Data>>> done) {
  rpc<Expected<std::vector<core::Data>>>(
      static_cast<std::int64_t>(name.size()), config_.per_item_bytes,
      [name](services::ServiceContainer& c) { return api::ops::dc_search(c, name); },
      transport_error("dc_search flow failed"), std::move(done));
}

void SimServiceBus::dc_remove(const util::Auid& uid, api::Reply<Status> done) {
  rpc<Status>(
      16, 0, [uid](services::ServiceContainer& c) { return api::ops::dc_remove(c, uid); },
      transport_error("dc_remove flow failed"), std::move(done));
}

void SimServiceBus::dc_add_locator(const core::Locator& locator, api::Reply<Status> done) {
  rpc<Status>(
      128, 0,
      [locator](services::ServiceContainer& c) { return api::ops::dc_add_locator(c, locator); },
      transport_error("dc_add_locator flow failed"), std::move(done));
}

void SimServiceBus::dc_locators(const util::Auid& uid,
                                api::Reply<Expected<std::vector<core::Locator>>> done) {
  rpc<Expected<std::vector<core::Locator>>>(
      16, config_.per_item_bytes,
      [uid](services::ServiceContainer& c) { return api::ops::dc_locators(c, uid); },
      transport_error("dc_locators flow failed"), std::move(done));
}

void SimServiceBus::dr_put(const core::Data& data, const core::Content& content,
                           const std::string& protocol,
                           api::Reply<Expected<core::Locator>> done) {
  // The payload itself travels to the repository host before registration.
  net_.start_flow(self_, service_host_, content.size,
                  [this, data, content, protocol,
                   done = std::move(done)](const net::FlowResult& upload) mutable {
                    if (!upload.ok) {
                      done(Error{Errc::kTransport, "dr", "content upload failed"});
                      return;
                    }
                    rpc<Expected<core::Locator>>(
                        96, 128,
                        [data, content, protocol](services::ServiceContainer& c) {
                          return api::ops::dr_put(c, data, content, protocol);
                        },
                        transport_error("dr_put flow failed"), std::move(done));
                  });
}

void SimServiceBus::dr_get(const util::Auid& uid, api::Reply<Expected<core::Content>> done) {
  rpc<Expected<core::Content>>(
      16, 64, [uid](services::ServiceContainer& c) { return api::ops::dr_get(c, uid); },
      transport_error("dr_get flow failed"), std::move(done));
}

void SimServiceBus::dr_remove(const util::Auid& uid, api::Reply<Status> done) {
  rpc<Status>(
      16, 0, [uid](services::ServiceContainer& c) { return api::ops::dr_remove(c, uid); },
      transport_error("dr_remove flow failed"), std::move(done));
}

// Data-plane RPCs: chunk payloads are charged to the simulated network at
// their real size, so out-of-band content consumes bandwidth exactly like
// the paper's Fig. 3b/3c accounting expects.
void SimServiceBus::dr_put_start(const core::Data& data,
                                 api::Reply<Expected<std::int64_t>> done) {
  rpc<Expected<std::int64_t>>(
      176, 8,
      [data](services::ServiceContainer& c) { return api::ops::dr_put_start(c, data); },
      transport_error("dr_put_start flow failed"), std::move(done));
}

void SimServiceBus::dr_put_chunk(const util::Auid& uid, std::int64_t offset,
                                 const std::string& bytes, api::Reply<Status> done) {
  rpc<Status>(
      24 + static_cast<std::int64_t>(bytes.size()), 0,
      [uid, offset, bytes](services::ServiceContainer& c) {
        return api::ops::dr_put_chunk(c, uid, offset, bytes);
      },
      transport_error("dr_put_chunk flow failed"), std::move(done));
}

void SimServiceBus::dr_put_commit(const util::Auid& uid, const std::string& protocol,
                                  api::Reply<Expected<core::Locator>> done) {
  rpc<Expected<core::Locator>>(
      16 + static_cast<std::int64_t>(protocol.size()), 128,
      [uid, protocol](services::ServiceContainer& c) {
        return api::ops::dr_put_commit(c, uid, protocol);
      },
      transport_error("dr_put_commit flow failed"), std::move(done));
}

void SimServiceBus::dr_get_chunk(const util::Auid& uid, std::int64_t offset,
                                 std::int64_t max_bytes,
                                 api::Reply<Expected<std::string>> done) {
  rpc<Expected<std::string>>(
      28, max_bytes,
      [uid, offset, max_bytes](services::ServiceContainer& c) {
        return api::ops::dr_get_chunk(c, uid, offset, max_bytes);
      },
      transport_error("dr_get_chunk flow failed"), std::move(done));
}

void SimServiceBus::dr_stats(api::Reply<Expected<services::RepoStats>> done) {
  rpc<Expected<services::RepoStats>>(
      0, 32, [](services::ServiceContainer& c) { return api::ops::dr_stats(c); },
      transport_error("dr_stats flow failed"), std::move(done));
}

void SimServiceBus::dt_register(const core::Data& data, const std::string& source,
                                const std::string& destination, const std::string& protocol,
                                api::Reply<Expected<services::TicketId>> done) {
  rpc<Expected<services::TicketId>>(
      192, 16,
      [data, source, destination, protocol](services::ServiceContainer& c) {
        return api::ops::dt_register(c, data, source, destination, protocol);
      },
      transport_error("dt_register flow failed"), std::move(done));
}

void SimServiceBus::dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                               api::Reply<Status> done) {
  rpc<Status>(
      24, 0,
      [ticket, done_bytes](services::ServiceContainer& c) {
        return api::ops::dt_monitor(c, ticket, done_bytes);
      },
      transport_error("dt_monitor flow failed"), std::move(done));
}

void SimServiceBus::dt_complete(services::TicketId ticket, const std::string& received_checksum,
                                const std::string& expected_checksum,
                                api::Reply<Status> done) {
  rpc<Status>(
      80, 0,
      [ticket, received_checksum, expected_checksum](services::ServiceContainer& c) {
        return api::ops::dt_complete(c, ticket, received_checksum, expected_checksum);
      },
      transport_error("dt_complete flow failed"), std::move(done));
}

void SimServiceBus::dt_failure(services::TicketId ticket, std::int64_t bytes_held,
                               bool can_resume, api::Reply<Status> done) {
  rpc<Status>(
      32, 0,
      [ticket, bytes_held, can_resume](services::ServiceContainer& c) {
        return api::ops::dt_failure(c, ticket, bytes_held, can_resume);
      },
      transport_error("dt_failure flow failed"), std::move(done));
}

void SimServiceBus::dt_give_up(services::TicketId ticket, api::Reply<Status> done) {
  rpc<Status>(
      16, 0,
      [ticket](services::ServiceContainer& c) { return api::ops::dt_give_up(c, ticket); },
      transport_error("dt_give_up flow failed"), std::move(done));
}

void SimServiceBus::ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                                api::Reply<Status> done) {
  rpc<Status>(
      224, 0,
      [data, attributes](services::ServiceContainer& c) {
        return api::ops::ds_schedule(c, data, attributes);
      },
      transport_error("ds_schedule flow failed"), std::move(done));
}

void SimServiceBus::ds_pin(const util::Auid& uid, const std::string& host,
                           api::Reply<Status> done) {
  rpc<Status>(
      48, 0,
      [uid, host](services::ServiceContainer& c) { return api::ops::ds_pin(c, uid, host); },
      transport_error("ds_pin flow failed"), std::move(done));
}

void SimServiceBus::ds_unschedule(const util::Auid& uid, api::Reply<Status> done) {
  rpc<Status>(
      16, 0,
      [uid](services::ServiceContainer& c) { return api::ops::ds_unschedule(c, uid); },
      transport_error("ds_unschedule flow failed"), std::move(done));
}

void SimServiceBus::ds_sync(const services::SyncRequest& request,
                            api::Reply<Expected<services::SyncReply>> done) {
  // A delta beat is charged for the delta it actually ships — the O(Δ)
  // saving of sync protocol v2 shows up in the simulated byte counters.
  const auto request_bytes =
      static_cast<std::int64_t>(request.added.size() + request.removed.size() +
                                request.in_flight.size()) *
          config_.per_item_bytes +
      static_cast<std::int64_t>(request.endpoint.size());
  rpc<Expected<services::SyncReply>>(
      request_bytes, config_.per_item_bytes,
      [request](services::ServiceContainer& c) { return api::ops::ds_sync(c, request); },
      transport_error("ds_sync flow failed"), std::move(done));
}

void SimServiceBus::ds_hosts(api::Reply<Expected<std::vector<services::HostInfo>>> done) {
  rpc<Expected<std::vector<services::HostInfo>>>(
      0, config_.per_item_bytes,
      [](services::ServiceContainer& c) { return api::ops::ds_hosts(c); },
      transport_error("ds_hosts flow failed"), std::move(done));
}

void SimServiceBus::job_submit(const jobs::JobSpec& spec,
                               api::Reply<Expected<util::Auid>> done) {
  std::size_t items = spec.inputs.size() + spec.argv.size() + spec.env.size() + 1;
  rpc<Expected<util::Auid>>(
      config_.per_item_bytes * static_cast<std::int64_t>(items), 0,
      [spec](services::ServiceContainer& c) { return api::ops::job_submit(c, spec); },
      transport_error("job_submit flow failed"), std::move(done), items);
}

void SimServiceBus::job_status(const util::Auid& job,
                               api::Reply<Expected<jobs::JobStatusInfo>> done) {
  rpc<Expected<jobs::JobStatusInfo>>(
      0, config_.per_item_bytes,
      [job](services::ServiceContainer& c) { return api::ops::job_status(c, job); },
      transport_error("job_status flow failed"), std::move(done));
}

void SimServiceBus::job_claim(const util::Auid& task, const std::string& runner,
                              api::Reply<Expected<jobs::TaskOrder>> done) {
  rpc<Expected<jobs::TaskOrder>>(
      static_cast<std::int64_t>(runner.size()), config_.per_item_bytes,
      [task, runner](services::ServiceContainer& c) {
        return api::ops::job_claim(c, task, runner);
      },
      transport_error("job_claim flow failed"), std::move(done));
}

void SimServiceBus::job_task_report(const jobs::TaskReport& report,
                                    api::Reply<Status> done) {
  rpc<Status>(
      config_.per_item_bytes, 0,
      [report](services::ServiceContainer& c) { return api::ops::job_task_report(c, report); },
      transport_error("job_task_report flow failed"), std::move(done));
}

void SimServiceBus::ddc_publish(const std::string& key, const std::string& value,
                                api::Reply<Status> done) {
  if (ring_ != nullptr && ring_node_ != dht::kNoNode) {
    ring_->put(ring_node_, key, value, [done = std::move(done)](bool ok) {
      done(ok ? api::ok_status()
              : Status(Error{Errc::kUnavailable, "ddc", "ring put failed"}));
    });
    return;
  }
  rpc<Status>(
      static_cast<std::int64_t>(key.size() + value.size()), 0,
      [this, key, value](services::ServiceContainer&) {
        return api::ops::ddc_publish(fallback_ddc_, key, value);
      },
      transport_error("ddc_publish flow failed"), std::move(done));
}

void SimServiceBus::ddc_search(const std::string& key,
                               api::Reply<Expected<std::vector<std::string>>> done) {
  if (ring_ != nullptr && ring_node_ != dht::kNoNode) {
    ring_->get(ring_node_, key, [done = std::move(done)](std::vector<std::string> values) {
      done(std::move(values));
    });
    return;
  }
  rpc<Expected<std::vector<std::string>>>(
      static_cast<std::int64_t>(key.size()), config_.per_item_bytes,
      [this, key](services::ServiceContainer&) {
        return api::ops::ddc_search(fallback_ddc_, key);
      },
      transport_error("ddc_search flow failed"), std::move(done));
}

// --- bulk endpoints ----------------------------------------------------------

void SimServiceBus::dc_register_batch(const std::vector<core::Data>& items,
                                      api::Reply<api::BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  rpc<api::BatchStatus>(
      rpc::wire::register_batch_bytes(items),
      static_cast<std::int64_t>(items.size()) * config_.per_item_bytes,
      [items](services::ServiceContainer& c) { return api::ops::dc_register_batch(c, items); },
      batch_transport_fallback(items.size()), std::move(done), items.size());
}

void SimServiceBus::dc_locators_batch(const std::vector<util::Auid>& uids,
                                      api::Reply<api::BatchLocators> done) {
  if (uids.empty()) {
    done({});
    return;
  }
  rpc<api::BatchLocators>(
      rpc::wire::locators_batch_request_bytes(uids),
      static_cast<std::int64_t>(uids.size()) * config_.per_item_bytes,
      [uids](services::ServiceContainer& c) { return api::ops::dc_locators_batch(c, uids); },
      api::BatchLocators(
          uids.size(),
          Expected<std::vector<core::Locator>>(transport_error("batch flow failed"))),
      std::move(done), uids.size());
}

void SimServiceBus::ds_schedule_batch(const std::vector<services::ScheduledData>& items,
                                      api::Reply<api::BatchStatus> done) {
  if (items.empty()) {
    done({});
    return;
  }
  std::vector<std::pair<core::Data, core::DataAttributes>> encoded;
  encoded.reserve(items.size());
  for (const services::ScheduledData& item : items) {
    encoded.emplace_back(item.data, item.attributes);
  }
  rpc<api::BatchStatus>(
      rpc::wire::schedule_batch_bytes(encoded),
      static_cast<std::int64_t>(items.size()) * config_.per_item_bytes,
      [items](services::ServiceContainer& c) { return api::ops::ds_schedule_batch(c, items); },
      batch_transport_fallback(items.size()), std::move(done), items.size());
}

void SimServiceBus::ddc_publish_batch(const std::vector<api::KeyValue>& pairs,
                                      api::Reply<api::BatchStatus> done) {
  if (pairs.empty()) {
    done({});
    return;
  }
  if (ring_ != nullptr && ring_node_ != dht::kNoNode) {
    // The ring routes per key; fall back to the scalar fan-out.
    ServiceBus::ddc_publish_batch(pairs, std::move(done));
    return;
  }
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.reserve(pairs.size());
  for (const api::KeyValue& pair : pairs) kvs.emplace_back(pair.key, pair.value);
  rpc<api::BatchStatus>(
      rpc::wire::publish_batch_bytes(kvs),
      static_cast<std::int64_t>(pairs.size()) * config_.per_item_bytes,
      [this, kvs](services::ServiceContainer&) {
        return api::ops::ddc_publish_batch(fallback_ddc_, kvs);
      },
      batch_transport_fallback(pairs.size()), std::move(done), pairs.size());
}

}  // namespace bitdew::runtime
