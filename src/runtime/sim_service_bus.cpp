#include "runtime/sim_service_bus.hpp"

namespace bitdew::runtime {

template <typename R>
void SimServiceBus::rpc(std::int64_t extra_request_bytes, std::int64_t extra_response_bytes,
                        std::function<R(services::ServiceContainer&)> compute, R fallback,
                        api::Reply<R> done) {
  ++rpcs_;
  const std::int64_t request_bytes =
      config_.control_traffic ? config_.request_bytes + extra_request_bytes : 0;
  const std::int64_t response_bytes =
      config_.control_traffic ? config_.response_bytes + extra_response_bytes : 0;

  net_.start_flow(
      self_, service_host_, request_bytes,
      [this, response_bytes, compute = std::move(compute), fallback = std::move(fallback),
       done = std::move(done)](const net::FlowResult& request) mutable {
        if (!request.ok) {
          done(std::move(fallback));
          return;
        }
        queue_.submit([this, response_bytes, compute = std::move(compute),
                       fallback = std::move(fallback), done = std::move(done)]() mutable {
          R result = compute(container_);
          net_.start_flow(service_host_, self_, response_bytes,
                          [result = std::move(result), fallback = std::move(fallback),
                           done = std::move(done)](const net::FlowResult& response) mutable {
                            done(response.ok ? std::move(result) : std::move(fallback));
                          });
        });
      });
}

void SimServiceBus::dc_register(const core::Data& data, api::Reply<bool> done) {
  rpc<bool>(
      160, 0, [data](services::ServiceContainer& c) { return c.dc().register_data(data); },
      false, std::move(done));
}

void SimServiceBus::dc_get(const util::Auid& uid, api::Reply<std::optional<core::Data>> done) {
  rpc<std::optional<core::Data>>(
      16, 160, [uid](services::ServiceContainer& c) { return c.dc().get(uid); }, std::nullopt,
      std::move(done));
}

void SimServiceBus::dc_search(const std::string& name,
                              api::Reply<std::vector<core::Data>> done) {
  rpc<std::vector<core::Data>>(
      static_cast<std::int64_t>(name.size()), config_.per_item_bytes,
      [name](services::ServiceContainer& c) { return c.dc().search(name); }, {},
      std::move(done));
}

void SimServiceBus::dc_remove(const util::Auid& uid, api::Reply<bool> done) {
  rpc<bool>(
      16, 0, [uid](services::ServiceContainer& c) { return c.dc().remove(uid); }, false,
      std::move(done));
}

void SimServiceBus::dc_add_locator(const core::Locator& locator, api::Reply<bool> done) {
  rpc<bool>(
      128, 0, [locator](services::ServiceContainer& c) { return c.dc().add_locator(locator); },
      false, std::move(done));
}

void SimServiceBus::dc_locators(const util::Auid& uid,
                                api::Reply<std::vector<core::Locator>> done) {
  rpc<std::vector<core::Locator>>(
      16, config_.per_item_bytes,
      [uid](services::ServiceContainer& c) { return c.dc().locators(uid); }, {},
      std::move(done));
}

void SimServiceBus::dr_put(const core::Data& data, const core::Content& content,
                           const std::string& protocol, api::Reply<core::Locator> done) {
  // The payload itself travels to the repository host before registration.
  net_.start_flow(self_, service_host_, content.size,
                  [this, data, content, protocol,
                   done = std::move(done)](const net::FlowResult& upload) mutable {
                    if (!upload.ok) {
                      done(core::Locator{});
                      return;
                    }
                    rpc<core::Locator>(
                        96, 128,
                        [data, content, protocol](services::ServiceContainer& c) {
                          return c.dr().put(data, content, protocol);
                        },
                        core::Locator{}, std::move(done));
                  });
}

void SimServiceBus::dr_get(const util::Auid& uid,
                           api::Reply<std::optional<core::Content>> done) {
  rpc<std::optional<core::Content>>(
      16, 64, [uid](services::ServiceContainer& c) { return c.dr().get(uid); }, std::nullopt,
      std::move(done));
}

void SimServiceBus::dr_remove(const util::Auid& uid, api::Reply<bool> done) {
  rpc<bool>(
      16, 0, [uid](services::ServiceContainer& c) { return c.dr().remove(uid); }, false,
      std::move(done));
}

void SimServiceBus::dt_register(const core::Data& data, const std::string& source,
                                const std::string& destination, const std::string& protocol,
                                api::Reply<services::TicketId> done) {
  rpc<services::TicketId>(
      192, 16,
      [data, source, destination, protocol](services::ServiceContainer& c) {
        return c.dt().register_transfer(data, source, destination, protocol);
      },
      services::TicketId{0}, std::move(done));
}

void SimServiceBus::dt_monitor(services::TicketId ticket, std::int64_t done_bytes,
                               api::Reply<bool> done) {
  rpc<bool>(
      24, 0,
      [ticket, done_bytes](services::ServiceContainer& c) {
        c.dt().monitor(ticket, done_bytes);
        return true;
      },
      false, std::move(done));
}

void SimServiceBus::dt_complete(services::TicketId ticket, const std::string& received_checksum,
                                const std::string& expected_checksum, api::Reply<bool> done) {
  rpc<bool>(
      80, 0,
      [ticket, received_checksum, expected_checksum](services::ServiceContainer& c) {
        return c.dt().complete(ticket, received_checksum, expected_checksum);
      },
      false, std::move(done));
}

void SimServiceBus::dt_failure(services::TicketId ticket, std::int64_t bytes_held,
                               bool can_resume, api::Reply<bool> done) {
  rpc<bool>(
      32, 0,
      [ticket, bytes_held, can_resume](services::ServiceContainer& c) {
        c.dt().report_failure(ticket, bytes_held, can_resume);
        return true;
      },
      false, std::move(done));
}

void SimServiceBus::dt_give_up(services::TicketId ticket, api::Reply<bool> done) {
  rpc<bool>(
      16, 0,
      [ticket](services::ServiceContainer& c) {
        c.dt().give_up(ticket);
        return true;
      },
      false, std::move(done));
}

void SimServiceBus::ds_schedule(const core::Data& data, const core::DataAttributes& attributes,
                                api::Reply<bool> done) {
  rpc<bool>(
      224, 0,
      [data, attributes](services::ServiceContainer& c) {
        c.ds().schedule(data, attributes);
        return true;
      },
      false, std::move(done));
}

void SimServiceBus::ds_pin(const util::Auid& uid, const std::string& host,
                           api::Reply<bool> done) {
  rpc<bool>(
      48, 0,
      [uid, host](services::ServiceContainer& c) {
        c.ds().pin(uid, host);
        return true;
      },
      false, std::move(done));
}

void SimServiceBus::ds_unschedule(const util::Auid& uid, api::Reply<bool> done) {
  rpc<bool>(
      16, 0, [uid](services::ServiceContainer& c) { return c.ds().unschedule(uid); }, false,
      std::move(done));
}

void SimServiceBus::ds_sync(const std::string& host, const std::vector<util::Auid>& cache,
                            const std::vector<util::Auid>& in_flight,
                            api::Reply<services::SyncReply> done) {
  const auto cache_bytes =
      static_cast<std::int64_t>(cache.size() + in_flight.size()) * config_.per_item_bytes;
  rpc<services::SyncReply>(
      cache_bytes, config_.per_item_bytes,
      [host, cache, in_flight](services::ServiceContainer& c) {
        return c.ds().sync(host, cache, in_flight);
      },
      services::SyncReply{}, std::move(done));
}

void SimServiceBus::ddc_publish(const std::string& key, const std::string& value,
                                api::Reply<bool> done) {
  if (ring_ != nullptr && ring_node_ != dht::kNoNode) {
    ring_->put(ring_node_, key, value, std::move(done));
    return;
  }
  rpc<bool>(
      static_cast<std::int64_t>(key.size() + value.size()), 0,
      [this, key, value](services::ServiceContainer&) {
        fallback_ddc_.put(key, value);
        return true;
      },
      false, std::move(done));
}

void SimServiceBus::ddc_search(const std::string& key,
                               api::Reply<std::vector<std::string>> done) {
  if (ring_ != nullptr && ring_node_ != dht::kNoNode) {
    ring_->get(ring_node_, key, std::move(done));
    return;
  }
  rpc<std::vector<std::string>>(
      static_cast<std::int64_t>(key.size()), config_.per_item_bytes,
      [this, key](services::ServiceContainer&) { return fallback_ddc_.get(key); }, {},
      std::move(done));
}

}  // namespace bitdew::runtime
