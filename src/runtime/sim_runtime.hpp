// SimRuntime: the composition root of the discrete-event deployment.
//
// One stable service host runs the D* ServiceContainer behind a FIFO
// processing queue; volatile nodes (clients and reservoirs, paper §3.1) get
// a SimServiceBus plus the three API objects. Reservoir nodes run the pull
// protocol: a periodic ds_sync heartbeat, downloads of newly assigned data
// through the protocol registry with DT tickets (register / monitor every
// 500 ms / complete-with-checksum, retry-with-resume on failure), and
// deletion of dropped data — firing the ActiveData life-cycle events user
// code installs. The failure injector kills hosts outright, which is how
// the Fig. 4 experiment is driven.
#pragma once

#include <memory>
#include <set>
#include <unordered_map>

#include "api/active_data.hpp"
#include "api/bitdew.hpp"
#include "api/pull_core.hpp"
#include "api/transfer_manager.hpp"
#include "runtime/sim_service_bus.hpp"
#include "transfer/bittorrent.hpp"
#include "transfer/flaky.hpp"
#include "transfer/ftp.hpp"
#include "transfer/http.hpp"

namespace bitdew::runtime {

class SimRuntime;

struct SimRuntimeConfig {
  services::SchedulerConfig scheduler;   ///< heartbeat 1 s, timeout 3x (paper)
  double dt_monitor_period_s = 0.5;      ///< DT transfer monitoring (paper)
  double failure_detect_period_s = 1.0;  ///< DS failure-detector sweep
  double service_time_s = 500e-6;        ///< per-RPC service processing
  int max_transfer_attempts = 3;
  BusConfig bus;
  transfer::FtpConfig ftp;
  transfer::HttpConfig http;
  transfer::BtConfig bt;
  /// Failure injection on the point-to-point protocols (ftp/http): dropped
  /// or corrupted transfers exercise DT's retry/resume/checksum paths.
  transfer::FlakyConfig flaky;
};

/// One volatile node: the API objects plus the reservoir cache machinery.
class SimNode {
 public:
  SimNode(SimRuntime& runtime, net::HostId host);

  api::BitDew& bitdew() { return bitdew_; }
  api::ActiveData& active_data() { return active_data_; }
  api::TransferManager& transfer_manager() { return tm_; }
  SimServiceBus& bus() { return bus_; }

  /// Starts the periodic cache synchronization (reservoir role).
  void start_reservoir();
  void stop();
  /// Restarts a stopped node's heartbeat (the rejoin half of a churn
  /// storm). The pull state survives the outage — the sim analogue of the
  /// live tier's WAL-restored cache — so the first beat is a stale-epoch
  /// delta that the scheduler answers with a resync order, exercising the
  /// revival path of sync protocol v2.
  void restart();

  net::HostId host() const { return host_; }
  const std::string& name() const;
  bool has(const util::Auid& uid) const { return core_.has(uid); }
  const std::set<util::Auid>& cache() const { return core_.cache(); }
  /// Seconds between a datum being assigned and its download completing,
  /// for the most recent completed download (Fig. 4's instrumentation).
  double last_download_duration() const { return last_download_duration_; }
  double last_download_rate() const { return last_download_rate_; }

  /// Seeds the local cache without a transfer (data born on this node).
  /// With `fire_event`, dispatches on_data_copy locally — a locally
  /// produced replica "arrives" too (the master-computes-a-task case).
  void adopt_local(const core::Data& data, const core::DataAttributes& attributes = {},
                   bool fire_event = false);

 private:
  friend class SimRuntime;

  void do_sync();
  void apply_reply(const services::SyncReply& reply);
  void start_download(const services::ScheduledData& item);
  void attempt_fetch(const services::ScheduledData& item, services::TicketId ticket,
                     int attempt, std::int64_t offset);
  void attempt_fetch_with_source(const services::ScheduledData& item,
                                 services::TicketId ticket, const core::Locator& source,
                                 const std::string& protocol_name, int attempt,
                                 std::int64_t offset);
  void download_succeeded(const services::ScheduledData& item, double assigned_at);
  void download_failed(const services::ScheduledData& item, const api::Error& why);

  SimRuntime& runtime_;
  net::HostId host_;
  SimServiceBus bus_;
  api::BitDew bitdew_;
  api::ActiveData active_data_;
  api::TransferManager tm_;
  api::PullCore core_;  ///< shared reservoir pull state (also NodeRuntime's)
  sim::PeriodicTimer sync_timer_;
  bool reservoir_ = false;
  bool stopped_ = false;
  double last_assigned_at_ = 0;
  double last_download_duration_ = 0;
  double last_download_rate_ = 0;
};

class SimRuntime {
 public:
  SimRuntime(sim::Simulator& sim, net::Network& net, net::HostId service_host,
             SimRuntimeConfig config = {});

  /// Adds a volatile node; reservoirs start syncing immediately.
  SimNode& add_node(net::HostId host, bool reservoir = true);

  /// Builds a DHT ring over the given hosts and routes the DDC through it.
  void enable_ddc(const std::vector<net::HostId>& ring_hosts, dht::RingConfig config = {});

  /// Kills a volatile host: flows fail, timers stop, the scheduler's
  /// heartbeat timeout will declare it dead.
  void kill_node(net::HostId host);

  /// Revives a killed volatile host and restarts its reservoir heartbeat
  /// (rejoin-with-cache; see SimNode::restart for the protocol flow).
  void revive_node(net::HostId host);

  services::ServiceContainer& container() { return container_; }
  ServiceQueue& service_queue() { return queue_; }
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return net_; }
  net::HostId service_host() const { return service_host_; }
  const SimRuntimeConfig& config() const { return config_; }
  transfer::Protocol* protocol(const std::string& name) const {
    return protocols_.find(name);
  }
  transfer::BtProtocol& bittorrent() { return *bt_; }
  dht::Ring* ring() { return ring_.get(); }
  SimNode* node_at(net::HostId host);
  net::HostId host_by_name(const std::string& name) const;
  std::uint64_t total_rpcs() const;
  dht::LocalDht& fallback_ddc_for_bus() { return fallback_ddc_; }

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  net::HostId service_host_;
  SimRuntimeConfig config_;
  services::ServiceContainer container_;
  ServiceQueue queue_;
  dht::LocalDht fallback_ddc_;
  transfer::ProtocolRegistry protocols_;
  transfer::BtProtocol* bt_ = nullptr;  // owned by protocols_
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::unordered_map<net::HostId, SimNode*> by_host_;
  std::unordered_map<std::string, net::HostId> host_names_;
  std::unique_ptr<dht::Ring> ring_;
  std::unordered_map<net::HostId, dht::NodeIndex> ring_nodes_;
  sim::PeriodicTimer failure_detector_;
};

}  // namespace bitdew::runtime
