#include "rpc/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace bitdew::rpc {
namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_until(SteadyClock::time_point deadline) {
  return std::chrono::duration<double>(deadline - SteadyClock::now()).count();
}

/// Polls `fd` for `events` until the deadline; timeout_s < 0 blocks.
/// Returns 1 ready, 0 timeout, -1 error.
int poll_fd(int fd, short events, double timeout_s) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  const int timeout_ms =
      timeout_s < 0 ? -1 : static_cast<int>(timeout_s * 1000.0) + 1;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc >= 0) return rc > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
  }
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

api::Error transport_error(std::string message) {
  return api::Error{api::Errc::kTransport, "bus", std::move(message)};
}

}  // namespace

const char* io_status_name(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kOversize: return "oversize";
    case IoStatus::kError: return "error";
  }
  return "unknown";
}

bool send_frame(int fd, std::string_view payload, double timeout_s) {
  if (payload.size() > kMaxFrameBytes) return false;
  Writer prefix;
  prefix.u32(static_cast<std::uint32_t>(payload.size()));
  std::string buffer = prefix.take();
  buffer.append(payload);

  const bool forever = timeout_s < 0;
  const auto deadline =
      SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                               std::chrono::duration<double>(forever ? 0 : timeout_s));
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    // MSG_DONTWAIT so a peer that stops reading cannot park us in a
    // blocking send past the deadline.
    const ssize_t n = ::send(fd, buffer.data() + sent, buffer.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const double budget = forever ? -1.0 : seconds_until(deadline);
        if (!forever && budget <= 0) return false;
        if (poll_fd(fd, POLLOUT, budget) <= 0) return false;
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

/// Reads exactly `size` bytes into `out` before the deadline.
IoStatus recv_exact(int fd, char* out, std::size_t size,
                    SteadyClock::time_point deadline, bool blocking_forever) {
  std::size_t received = 0;
  while (received < size) {
    const double budget = blocking_forever ? -1.0 : seconds_until(deadline);
    if (!blocking_forever && budget <= 0) return IoStatus::kTimeout;
    const int ready = poll_fd(fd, POLLIN, budget);
    if (ready < 0) return IoStatus::kError;
    if (ready == 0) return IoStatus::kTimeout;
    const ssize_t n = ::recv(fd, out + received, size - received, 0);
    if (n == 0) return IoStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoStatus::kError;
    }
    received += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

}  // namespace

RecvResult recv_frame(int fd, double timeout_s) {
  const bool forever = timeout_s < 0;
  const auto deadline =
      SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                               std::chrono::duration<double>(forever ? 0 : timeout_s));
  char prefix[4];
  RecvResult result;
  result.status = recv_exact(fd, prefix, sizeof(prefix), deadline, forever);
  if (result.status != IoStatus::kOk) return result;

  std::uint32_t length = 0;
  std::memcpy(&length, prefix, sizeof(length));
  if (length > kMaxFrameBytes) {
    result.status = IoStatus::kOversize;
    return result;
  }
  result.payload.resize(length);
  result.status = recv_exact(fd, result.payload.data(), length, deadline, forever);
  if (result.status == IoStatus::kClosed && length > 0) {
    result.status = IoStatus::kError;  // torn frame: prefix without body
  }
  if (result.status != IoStatus::kOk) result.payload.clear();
  return result;
}

api::Expected<Fd> tcp_connect(const std::string& host, std::uint16_t port, double timeout_s) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &found); rc != 0) {
    return transport_error("resolve " + host + ": " + ::gai_strerror(rc));
  }

  std::string last_error = "no addresses";
  for (addrinfo* it = found; it != nullptr; it = it->ai_next) {
    Fd fd(::socket(it->ai_family, it->ai_socktype, it->ai_protocol));
    if (!fd.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    set_nonblocking(fd.get(), true);
    if (::connect(fd.get(), it->ai_addr, it->ai_addrlen) != 0) {
      if (errno != EINPROGRESS) {
        last_error = std::strerror(errno);
        continue;
      }
      if (poll_fd(fd.get(), POLLOUT, timeout_s) <= 0) {
        last_error = "connect timeout";
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        last_error = std::strerror(so_error != 0 ? so_error : errno);
        continue;
      }
    }
    set_nonblocking(fd.get(), false);
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(found);
    return fd;
  }
  ::freeaddrinfo(found);
  return transport_error("connect " + host + ":" + service + ": " + last_error);
}

api::Expected<ListenerResult> tcp_listen(std::uint16_t port, bool loopback_only) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return transport_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return transport_error("bind port " + std::to_string(port) + ": " + std::strerror(errno));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    return transport_error(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return transport_error(std::string("getsockname: ") + std::strerror(errno));
  }
  ListenerResult result;
  result.fd = std::move(fd);
  result.port = ntohs(addr.sin_port);
  return result;
}

Fd tcp_accept(int listen_fd, double timeout_s) {
  if (poll_fd(listen_fd, POLLIN, timeout_s) <= 0) return Fd();
  Fd fd(::accept(listen_fd, nullptr, nullptr));
  if (fd.valid()) {
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

api::Status ClientChannel::ensure_connected() {
  if (socket_.valid()) return api::ok_status();
  auto connected = tcp_connect(host_, port_, connect_timeout_s_);
  if (!connected.ok()) return connected.error();
  socket_ = std::move(*connected);
  return api::ok_status();
}

ClientChannel::PendingReply ClientChannel::send_raw(wire::Endpoint endpoint,
                                                    std::uint64_t request_id,
                                                    std::string_view frame) {
  auto slot = std::make_shared<PendingReply::Slot>();
  slot->endpoint = endpoint;

  const api::Status up = ensure_connected();
  if (!up.ok()) {
    slot->result = api::Expected<std::string>(up.error());
    return PendingReply(this, std::move(slot));
  }
  if (!send_frame(socket_.get(), frame, call_deadline_s_)) {
    // The stream is dead mid-write: everything already in flight is lost
    // along with this call.
    fail_all(transport_error(std::string("send ") + wire::endpoint_name(endpoint) + " failed"));
    slot->result =
        api::Expected<std::string>(transport_error(std::string("send ") +
                                                   wire::endpoint_name(endpoint) + " failed"));
    return PendingReply(this, std::move(slot));
  }
  pending_.emplace(request_id, slot);
  return PendingReply(this, std::move(slot));
}

bool ClientChannel::pump(double timeout_s) {
  if (pending_.empty()) return false;
  RecvResult reply = recv_frame(socket_.get(), timeout_s);
  if (reply.status != IoStatus::kOk) {
    fail_all(transport_error(std::string("reply: ") + io_status_name(reply.status)));
    return false;
  }
  try {
    Reader r(reply.payload);
    const wire::FrameHeader header = wire::read_frame_header(r);
    const auto it = pending_.find(header.request_id);
    if (it == pending_.end() || it->second->endpoint != header.endpoint) {
      throw CodecError("reply frame does not match any outstanding request");
    }
    it->second->result = api::Expected<std::string>(reply.payload.substr(r.offset()));
    pending_.erase(it);
    return true;
  } catch (const CodecError& error) {
    fail_all(transport_error(std::string("malformed reply: ") + error.what()));
    return false;
  }
}

void ClientChannel::fail_all(const api::Error& error) {
  for (auto& [id, slot] : pending_) {
    if (!slot->result.has_value()) slot->result = api::Expected<std::string>(error);
  }
  pending_.clear();
  close();
}

api::Expected<std::string> ClientChannel::PendingReply::wait() {
  if (slot_ == nullptr) {
    return api::Error{api::Errc::kTransport, "bus", "wait on an empty reply future"};
  }
  while (!slot_->result.has_value()) {
    // Each pump admits one reply frame within the call deadline; a timeout
    // or stream failure resolves every outstanding slot (including ours).
    channel_->pump(channel_->call_deadline_s_);
  }
  api::Expected<std::string> out = std::move(*slot_->result);
  slot_.reset();
  return out;
}

}  // namespace bitdew::rpc
