// ServiceHost: the networked deployment of a ServiceContainer (paper
// Fig. 1's stable service node, for real this time). Since PR 9 it is built
// on the epoll readiness loop in rpc/reactor.hpp instead of a
// thread-per-connection pool: one loop thread owns every accepted socket
// (nonblocking, per-connection read/write buffers), decoded frames execute
// on a small worker pool, and replies complete OUT OF ORDER per connection
// — clients pipeline any number of requests on one socket and match
// replies by the frame header's request id (ClientChannel's demux). A
// malformed or truncated frame still produces a typed decode failure and
// drops only that connection.
//
// Dispatch goes through the shared api/service_ops.hpp outcome→Errc
// mapping — the same helpers DirectServiceBus and SimServiceBus use, so
// every error code is identical over the network. kDrGetChunk takes a
// zero-copy fast path: file-backed repository content is answered as a
// frame header + length prefix plus an fd slice the loop ships with
// sendfile, never materializing the chunk in a std::string. bitdewd wraps
// one of these in a daemon; RemoteServiceBus is the matching client.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "api/expected.hpp"
#include "dht/live_ring.hpp"
#include "dht/local_dht.hpp"
#include "rpc/reactor.hpp"
#include "rpc/transport.hpp"
#include "services/container.hpp"
#include "services/ring_router.hpp"
#include "util/shaper.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::rpc {

struct ServiceHostConfig {
  std::uint16_t port = 0;       ///< 0 = ephemeral (read back via port())
  bool loopback_only = false;   ///< bind 127.0.0.1 instead of INADDR_ANY
  double idle_timeout_s = -1;   ///< per-connection read-idle cutoff (<0 = none)
  double write_timeout_s = 30;  ///< reply send budget: a client that stops
                                ///< reading cannot park replies forever
  /// Period of the Data Scheduler failure-detector sweep (<= 0 disables).
  /// On the real path nobody pumps a simulator, so the host itself drives
  /// detect_failures() off the wall clock — dead workers are declared on
  /// time even when no surviving client happens to call in.
  double failure_sweep_period_s = 1.0;
  /// Data-plane egress cap in bytes/s, shared across every connection's
  /// dr_get_chunk replies (0 = unlimited). Bounds what the repository
  /// ships, like a deployment's uplink; control traffic is never shaped.
  double data_plane_upload_Bps = 0;
  /// Request-executor pool size (0 = auto). Handlers may block (container
  /// lock, shaping) without stalling the readiness loop.
  int worker_threads = 0;
  /// Pipelining cap: a connection with this many requests executing has its
  /// read interest paused until replies drain (backpressure).
  int max_in_flight_per_connection = 32;
};

/// Live-ring membership knobs (start_ring). The host's bound port completes
/// the advertised endpoint, which is why the ring starts as a second step
/// after start() instead of through ServiceHostConfig.
struct RingOptions {
  std::uint64_t ring_id = 0;  ///< 0 = derive from the advertised endpoint
  std::string advertise_host = "127.0.0.1";
  std::string join_endpoint;  ///< "host:port" of any member; empty = bootstrap
  int replication_f = 2;      ///< f: owner + (f-1) successors hold each key
  int arity = 4;              ///< k: DKS search arity
  double stabilize_period_s = 2.0;
  double call_timeout_s = 2.0;
};

class ServiceHost {
 public:
  ServiceHost(services::ServiceContainer& container, dht::LocalDht& ddc,
              ServiceHostConfig config = {});
  ~ServiceHost();
  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  /// Binds, listens and spawns the readiness loop + worker pool.
  /// Errc::kTransport when the port cannot be bound. Restartable after
  /// stop().
  api::Status start();

  /// Deterministic shutdown: parks the sweeper, then the epoll loop (which
  /// closes every live connection and the listener before exiting), then
  /// drains and joins the worker pool. Idempotent; also called by the
  /// destructor.
  void stop();

  bool running() const { return running_.load(); }
  std::uint16_t port() const { return server_.port(); }

  /// Joins (or bootstraps) the live DHT ring, sharding the dc_*/ddc_*
  /// metadata plane across the membership. Must be called after start()
  /// (the advertised endpoint needs the bound port). Once active, keyed
  /// catalog requests are served, replicated or redirected by hash
  /// ownership, and the sweep thread drives ring stabilization.
  api::Status start_ring(const RingOptions& options);

  /// Planned departure: hands every owned key to the successor and
  /// announces the leave. The host keeps serving (and keeps answering ring
  /// frames) until stop(); call this before stop() for a graceful exit.
  /// A crash (stop() without ring_leave()) is survived by f-replication.
  void ring_leave();

  bool ring_active() const { return ring_active_.load(std::memory_order_acquire); }
  /// nullptr until start_ring() succeeds.
  dht::LiveRing* ring() { return ring_active() ? ring_.get() : nullptr; }

  std::uint64_t requests_served() const { return server_.requests_served(); }
  std::uint64_t connections_accepted() const { return server_.connections_accepted(); }
  /// Connections dropped because a frame failed to decode.
  std::uint64_t frames_rejected() const { return server_.frames_rejected(); }
  /// Currently open connections (idle ones included).
  std::size_t connections_open() const { return server_.connections_open(); }

 private:
  void sweep_loop();
  /// The EpollServer handler: decodes one frame, dispatches, encodes the
  /// reply. nullopt (malformed frame, trailing garbage) drops the
  /// connection. Runs on a worker thread.
  std::optional<ReplyFrame> handle_frame(std::uint64_t connection_id,
                                         const std::string& payload);
  /// kDrGetChunk fast path: file-backed content answers as an fd slice.
  std::optional<ReplyFrame> chunk_reply(const wire::FrameHeader& header, Reader& body);
  /// Decodes `body`, runs the operation, and returns the encoded reply
  /// body. Malformed requests throw CodecError (the caller drops the
  /// connection). Layered: ring frames and ring-routed catalog ops peel
  /// off first (they take the container lock themselves, through the
  /// router's hooks); everything else falls through to local_dispatch.
  std::string dispatch(wire::Endpoint endpoint, Reader& body);
  /// Ring server-side frames (kRing*). nullopt = not a ring frame.
  std::optional<std::string> ring_dispatch(wire::Endpoint endpoint, Reader& body);
  /// Takes the container lock and runs the plain single-node operation.
  std::string local_dispatch(wire::Endpoint endpoint, Reader& body)
      EXCLUDES(container_mutex_);
  /// The endpoint switch itself.
  std::string dispatch_unlocked(wire::Endpoint endpoint, Reader& body)
      REQUIRES(container_mutex_);

  services::ServiceContainer& container_;
  dht::LocalDht& ddc_;
  ServiceHostConfig config_;

  // Ring state. Constructed by start_ring(), then published through the
  // release-store on ring_active_; dispatch/sweeper only touch ring_ and
  // router_ after an acquire-load sees true. Never destroyed while the
  // host runs (a failed start_ring only clears the flag).
  std::unique_ptr<services::RingRouter> router_;
  std::unique_ptr<dht::LiveRing> ring_;
  std::atomic<bool> ring_active_{false};

  std::atomic<bool> running_{false};
  std::thread sweeper_;
  util::Mutex sweep_mutex_;
  util::CondVar sweep_cv_;

  util::Mutex container_mutex_;  ///< serializes container/ddc access

  EpollServer server_;
  util::RateShaper data_shaper_{0};
};

}  // namespace bitdew::rpc
