// ChunkRef: the result of a chunk read on the serving side of the data
// plane. File-backed content travels as an owned file descriptor plus a
// [offset, offset+length) slice — the transport layer ships it with
// sendfile/pread straight into the socket, so the bytes never materialize
// in a std::string on the way out. Small or blob-backed content (in-memory
// stores, legacy WAL rows) rides inline. DataRepository::read_chunk_ref and
// ChunkServer's ReadFn both speak this type.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "rpc/fd.hpp"

namespace bitdew::rpc {

struct ChunkRef {
  ChunkRef() = default;
  /// Inline payload (blob-backed content, end-of-content markers).
  explicit ChunkRef(std::string inline_bytes) : bytes(std::move(inline_bytes)) {}
  /// File-backed slice: `length` bytes at `offset` of the (owned) fd.
  ChunkRef(Fd content_file, std::int64_t slice_offset, std::int64_t slice_length)
      : file(std::move(content_file)), offset(slice_offset), length(slice_length) {}

  std::string bytes;        ///< inline payload when !file.valid()
  Fd file;                  ///< owned content-file descriptor (slice mode)
  std::int64_t offset = 0;  ///< slice start within the file
  std::int64_t length = 0;  ///< slice byte count (slice mode only)

  bool file_backed() const { return file.valid(); }
  std::int64_t size() const {
    return file_backed() ? length : static_cast<std::int64_t>(bytes.size());
  }
};

}  // namespace bitdew::rpc
