// ChunkServer: the worker-side half of the peer data plane (paper §4.2's
// collective distribution, deployed for real). Every live worker embeds one
// of these next to its replica cache: it speaks the SAME length-prefixed
// frame protocol as a full ServiceHost but serves exactly two endpoints —
// kPing (liveness) and kDrGetChunk (read `max_bytes` of a verified replica
// at `offset`) — through a caller-supplied read callback. Anything else,
// malformed frames included, drops the connection; a worker must never be
// wedged or crashed by a hostile peer.
//
// transfer::PeerTransfer is the matching client: it stripes chunk ranges
// across several of these (locators minted by the Data Scheduler from the
// endpoints workers announce via ds_sync) and falls back to the central
// Data Repository when no peer can serve.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/expected.hpp"
#include "rpc/transport.hpp"
#include "util/auid.hpp"
#include "util/shaper.hpp"

namespace bitdew::rpc {

struct ChunkServerConfig {
  std::uint16_t port = 0;      ///< 0 = ephemeral (read back via port())
  bool loopback_only = false;  ///< bind 127.0.0.1 instead of INADDR_ANY
  double idle_timeout_s = 30;  ///< per-connection read timeout (<0 = none)
  double write_timeout_s = 30; ///< reply send budget
  /// Upload cap in bytes/s shared across all connections (0 = unlimited).
  /// Models a worker's real uplink; fig3b_collective uses it to reproduce
  /// the paper's bandwidth-bound testbed on loopback.
  double upload_Bps = 0;
};

class ChunkServer {
 public:
  /// Serves one chunk read: up to `max_bytes` of the datum's verified
  /// content at `offset` (empty string at/after end of content), or a typed
  /// error (kNotFound when this node does not hold the datum). Called from
  /// connection threads — must be thread-safe.
  using ReadFn = std::function<api::Expected<std::string>(
      const util::Auid& uid, std::int64_t offset, std::int64_t max_bytes)>;

  ChunkServer(ReadFn read, ChunkServerConfig config = {});
  ~ChunkServer();
  ChunkServer(const ChunkServer&) = delete;
  ChunkServer& operator=(const ChunkServer&) = delete;

  /// Binds, listens and spawns the accept thread. Errc::kTransport when the
  /// port cannot be bound.
  api::Status start();

  /// Stops accepting, tears down live connections, joins all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  bool running() const { return running_.load(); }
  std::uint16_t port() const { return port_; }

  std::uint64_t chunks_served() const { return chunks_served_.load(); }
  std::int64_t bytes_served() const { return bytes_served_.load(); }

 private:
  void accept_loop();
  void serve_connection(std::uint64_t id, Fd socket);
  void reap_finished_workers();

  ReadFn read_;
  ChunkServerConfig config_;

  Fd listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptor_;

  std::mutex connections_mutex_;
  std::unordered_map<std::uint64_t, int> live_connections_;  ///< id -> raw fd
  std::unordered_map<std::uint64_t, std::thread> workers_;   ///< id -> thread
  std::vector<std::uint64_t> finished_workers_;              ///< ended, awaiting join
  std::uint64_t next_connection_id_ = 0;

  std::atomic<std::uint64_t> chunks_served_{0};
  std::atomic<std::int64_t> bytes_served_{0};
  util::RateShaper shaper_{0};
};

}  // namespace bitdew::rpc
