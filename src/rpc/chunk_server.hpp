// ChunkServer: the worker-side half of the peer data plane (paper §4.2's
// collective distribution, deployed for real). Every live worker embeds one
// of these next to its replica cache: it speaks the SAME length-prefixed
// frame protocol as a full ServiceHost but serves exactly two endpoints —
// kPing (liveness) and kDrGetChunk (read `max_bytes` of a verified replica
// at `offset`) — through a caller-supplied read callback. Anything else,
// malformed frames included, drops the connection; a worker must never be
// wedged or crashed by a hostile peer.
//
// Built on the same epoll readiness loop as ServiceHost (rpc/reactor.hpp):
// peers can pipeline chunk requests on one connection and the replies
// complete out of order; a replica read returned as a ChunkRef fd slice is
// shipped with sendfile, never copied through a std::string.
//
// transfer::PeerTransfer is the matching client: it stripes chunk ranges
// across several of these (locators minted by the Data Scheduler from the
// endpoints workers announce via ds_sync) and falls back to the central
// Data Repository when no peer can serve.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "api/expected.hpp"
#include "rpc/chunk_ref.hpp"
#include "rpc/reactor.hpp"
#include "util/auid.hpp"
#include "util/shaper.hpp"

namespace bitdew::rpc {

struct ChunkServerConfig {
  std::uint16_t port = 0;      ///< 0 = ephemeral (read back via port())
  bool loopback_only = false;  ///< bind 127.0.0.1 instead of INADDR_ANY
  double idle_timeout_s = 30;  ///< per-connection read timeout (<0 = none)
  double write_timeout_s = 30; ///< reply send budget
  /// Upload cap in bytes/s shared across all connections (0 = unlimited).
  /// Models a worker's real uplink; fig3b_collective uses it to reproduce
  /// the paper's bandwidth-bound testbed on loopback.
  double upload_Bps = 0;
};

class ChunkServer {
 public:
  /// Serves one chunk read: up to `max_bytes` of the datum's verified
  /// content at `offset` as a ChunkRef — an fd slice for file-backed
  /// replicas (zero-copy), inline bytes otherwise; an empty inline ref
  /// at/after end of content — or a typed error (kNotFound when this node
  /// does not hold the datum). Called from worker threads — must be
  /// thread-safe.
  using ReadFn = std::function<api::Expected<ChunkRef>(
      const util::Auid& uid, std::int64_t offset, std::int64_t max_bytes)>;

  ChunkServer(ReadFn read, ChunkServerConfig config = {});
  ~ChunkServer();
  ChunkServer(const ChunkServer&) = delete;
  ChunkServer& operator=(const ChunkServer&) = delete;

  /// Binds, listens and spawns the readiness loop. Errc::kTransport when
  /// the port cannot be bound.
  api::Status start();

  /// Stops accepting, tears down live connections, joins all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  bool running() const { return server_.running(); }
  std::uint16_t port() const { return server_.port(); }

  std::uint64_t chunks_served() const { return chunks_served_.load(); }
  std::int64_t bytes_served() const { return bytes_served_.load(); }

 private:
  std::optional<ReplyFrame> handle_frame(std::uint64_t connection_id,
                                         const std::string& payload);

  ReadFn read_;
  ChunkServerConfig config_;
  EpollServer server_;

  std::atomic<std::uint64_t> chunks_served_{0};
  std::atomic<std::int64_t> bytes_served_{0};
  util::RateShaper shaper_{0};
};

}  // namespace bitdew::rpc
