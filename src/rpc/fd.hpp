// Fd: move-only owner of a POSIX file descriptor. Lives in its own header
// so value types like ChunkRef can carry descriptors without dragging the
// whole transport (and its wire-format dependencies) into every includer.
#pragma once

#include <unistd.h>

namespace bitdew::rpc {

/// Move-only owner of a POSIX file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

}  // namespace bitdew::rpc
