// Binary serialization used by the RPC layer, the DewDB wire protocol and
// the WAL. Fixed-width little-endian primitives plus length-prefixed strings;
// the Reader throws CodecError on any malformed input (tests fuzz this).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bitdew::rpc {

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only binary writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v.data(), v.size());
  }
  /// Appends bytes verbatim (no length prefix) — used to splice an
  /// already-encoded message body behind a frame header.
  void append_raw(std::string_view v) { raw(v.data(), v.size()); }

  const std::string& buffer() const { return buffer_; }
  std::string take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }
  void clear() { buffer_.clear(); }

 private:
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

/// Sequential reader over a buffer; throws CodecError on underflow.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  // A Reader only views its buffer; constructing one over a temporary
  // string (w.take(), s.substr(...)) leaves it reading freed stack the
  // moment the full-expression ends. Reject that at compile time — bind
  // the buffer to a named local first.
  explicit Reader(std::string&&) = delete;
  explicit Reader(const std::string&&) = delete;

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return scalar<std::uint16_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int64_t i64() { return scalar<std::int64_t>(); }
  double f64() { return scalar<double>(); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t size = u32();
    return std::string(take(size));
  }

  bool exhausted() const { return offset_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - offset_; }
  std::size_t offset() const { return offset_; }

  /// The bytes not yet consumed, without consuming them. The ring router
  /// uses this to splice a request body it is about to apply locally into a
  /// replication frame for the successor list.
  std::string_view rest() const { return data_.substr(offset_); }

  /// Consumes `size` bytes without decoding them (CodecError on underflow).
  void skip(std::size_t size) { take(size); }

 private:
  template <typename T>
  T scalar() {
    T value;
    std::memcpy(&value, take(sizeof(T)).data(), sizeof(T));
    return value;
  }

  std::string_view take(std::size_t size) {
    if (data_.size() - offset_ < size) {
      throw CodecError("codec underflow: need " + std::to_string(size) + " bytes, have " +
                       std::to_string(data_.size() - offset_));
    }
    const std::string_view view = data_.substr(offset_, size);
    offset_ += size;
    return view;
  }

  std::string_view data_;
  std::size_t offset_ = 0;
};

}  // namespace bitdew::rpc
