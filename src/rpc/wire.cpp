#include "rpc/wire.hpp"

#include <algorithm>
#include <iterator>

namespace bitdew::rpc::wire {

namespace {

// Indexed by wire value. The static_assert ties this table to the
// kEndpointCount sentinel: adding an endpoint without naming it (or without
// keeping the sentinel last) fails the build instead of silently widening
// the decode range or reporting "unknown" for a live endpoint.
constexpr const char* kEndpointNames[] = {
    "ping",
    "dc_register",
    "dc_get",
    "dc_search",
    "dc_remove",
    "dc_add_locator",
    "dc_locators",
    "dr_put",
    "dr_get",
    "dr_remove",
    "dt_register",
    "dt_monitor",
    "dt_complete",
    "dt_failure",
    "dt_give_up",
    "ds_schedule",
    "ds_pin",
    "ds_unschedule",
    "ds_sync",
    "ddc_publish",
    "ddc_search",
    "dc_register_batch",
    "dc_locators_batch",
    "ds_schedule_batch",
    "ddc_publish_batch",
    "dr_put_start",
    "dr_put_chunk",
    "dr_put_commit",
    "dr_get_chunk",
    "ds_hosts",
    "dr_stats",
    "ring_lookup",
    "ring_join",
    "ring_notify",
    "ring_stabilize",
    "ring_store",
    "ring_leave",
    "ring_info",
    "ring_search",
    "job_submit",
    "job_status",
    "job_claim",
    "job_task_report",
};

static_assert(std::size(kEndpointNames) ==
                  static_cast<std::size_t>(Endpoint::kEndpointCount),
              "every Endpoint value needs an entry in kEndpointNames");

}  // namespace

const char* endpoint_name(Endpoint endpoint) {
  const auto value = static_cast<std::size_t>(endpoint);
  if (value >= std::size(kEndpointNames)) return "unknown";
  return kEndpointNames[value];
}

void write_frame_header(Writer& w, const FrameHeader& header) {
  w.u16(static_cast<std::uint16_t>(header.endpoint));
  w.u64(header.request_id);
}

FrameHeader read_frame_header(Reader& r) {
  const std::uint16_t endpoint = r.u16();
  if (endpoint > kMaxEndpoint) {
    throw CodecError("unknown endpoint id " + std::to_string(endpoint));
  }
  FrameHeader header;
  header.endpoint = static_cast<Endpoint>(endpoint);
  header.request_id = r.u64();
  return header;
}

void write_auid(Writer& w, const util::Auid& uid) {
  w.u64(uid.hi);
  w.u64(uid.lo);
}

util::Auid read_auid(Reader& r) {
  util::Auid uid;
  uid.hi = r.u64();
  uid.lo = r.u64();
  return uid;
}

void write_data(Writer& w, const core::Data& data) {
  write_auid(w, data.uid);
  w.str(data.name);
  w.str(data.checksum);
  w.i64(data.size);
  w.u32(data.flags);
}

core::Data read_data(Reader& r) {
  core::Data data;
  data.uid = read_auid(r);
  data.name = r.str();
  data.checksum = r.str();
  data.size = r.i64();
  data.flags = r.u32();
  return data;
}

void write_locator(Writer& w, const core::Locator& locator) {
  write_auid(w, locator.data_uid);
  w.str(locator.protocol);
  w.str(locator.host);
  w.str(locator.path);
  w.str(locator.credentials);
}

core::Locator read_locator(Reader& r) {
  core::Locator locator;
  locator.data_uid = read_auid(r);
  locator.protocol = r.str();
  locator.host = r.str();
  locator.path = r.str();
  locator.credentials = r.str();
  return locator;
}

void write_attributes(Writer& w, const core::DataAttributes& attributes) {
  w.str(attributes.name);
  w.i64(attributes.replica);
  w.boolean(attributes.fault_tolerant);
  w.u8(static_cast<std::uint8_t>(attributes.lifetime.kind));
  w.f64(attributes.lifetime.expires_at);
  write_auid(w, attributes.lifetime.reference);
  write_auid(w, attributes.affinity);
  w.str(attributes.affinity_name);
  w.str(attributes.protocol);
}

core::DataAttributes read_attributes(Reader& r) {
  core::DataAttributes attributes;
  attributes.name = r.str();
  attributes.replica = static_cast<int>(r.i64());
  attributes.fault_tolerant = r.boolean();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(core::Lifetime::Kind::kDuration)) {
    throw CodecError("bad lifetime kind " + std::to_string(kind));
  }
  attributes.lifetime.kind = static_cast<core::Lifetime::Kind>(kind);
  attributes.lifetime.expires_at = r.f64();
  attributes.lifetime.reference = read_auid(r);
  attributes.affinity = read_auid(r);
  attributes.affinity_name = r.str();
  attributes.protocol = r.str();
  return attributes;
}

void write_content(Writer& w, const core::Content& content) {
  w.i64(content.size);
  w.str(content.checksum);
}

core::Content read_content(Reader& r) {
  core::Content content;
  content.size = r.i64();
  content.checksum = r.str();
  return content;
}

void write_scheduled_data(Writer& w, const services::ScheduledData& item) {
  write_data(w, item.data);
  write_attributes(w, item.attributes);
}

services::ScheduledData read_scheduled_data(Reader& r) {
  services::ScheduledData item;
  item.data = read_data(r);
  item.attributes = read_attributes(r);
  return item;
}

void write_error(Writer& w, const api::Error& error) {
  w.u8(static_cast<std::uint8_t>(error.code));
  w.str(error.service);
  w.str(error.message);
}

api::Error read_error(Reader& r) {
  api::Error error;
  const std::uint8_t code = r.u8();
  if (code > static_cast<std::uint8_t>(api::Errc::kRedirect)) {
    throw CodecError("bad error code " + std::to_string(code));
  }
  error.code = static_cast<api::Errc>(code);
  error.service = r.str();
  error.message = r.str();
  return error;
}

void write_status(Writer& w, const api::Status& status) {
  w.boolean(status.ok());
  if (!status.ok()) write_error(w, status.error());
}

api::Status read_status(Reader& r) {
  if (r.boolean()) return api::ok_status();
  api::Error error = read_error(r);
  if (error.code == api::Errc::kOk) throw CodecError("failed status with ok code");
  return error;
}

namespace {

template <typename T, typename WriteItem>
void write_list(Writer& w, const std::vector<T>& items, WriteItem write_item) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const T& item : items) write_item(w, item);
}

template <typename T, typename ReadItem>
std::vector<T> read_list(Reader& r, ReadItem read_item) {
  const std::uint32_t count = r.u32();
  // Every encoded item occupies at least one byte, so a count beyond the
  // remaining bytes is malformed — reject it as a typed decode error
  // before reserving anything (a garbage count must not OOM the decoder).
  if (count > r.remaining()) {
    throw CodecError("list count " + std::to_string(count) + " exceeds remaining " +
                     std::to_string(r.remaining()) + " bytes");
  }
  std::vector<T> out;
  out.reserve(std::min<std::size_t>(count, 4096));
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(read_item(r));
  return out;
}

}  // namespace

void write_auid_list(Writer& w, const std::vector<util::Auid>& uids) {
  write_list(w, uids, write_auid);
}

std::vector<util::Auid> read_auid_list(Reader& r) {
  return read_list<util::Auid>(r, read_auid);
}

void write_data_list(Writer& w, const std::vector<core::Data>& items) {
  write_list(w, items, write_data);
}

std::vector<core::Data> read_data_list(Reader& r) {
  return read_list<core::Data>(r, read_data);
}

void write_locator_list(Writer& w, const std::vector<core::Locator>& locators) {
  write_list(w, locators, write_locator);
}

std::vector<core::Locator> read_locator_list(Reader& r) {
  return read_list<core::Locator>(r, read_locator);
}

void write_string_list(Writer& w, const std::vector<std::string>& values) {
  write_list(w, values, [](Writer& wr, const std::string& value) { wr.str(value); });
}

std::vector<std::string> read_string_list(Reader& r) {
  return read_list<std::string>(r, [](Reader& rd) { return rd.str(); });
}

void write_source_lists(Writer& w, const std::vector<std::vector<core::Locator>>& sources) {
  write_list(w, sources, [](Writer& wr, const std::vector<core::Locator>& list) {
    write_locator_list(wr, list);
  });
}

std::vector<std::vector<core::Locator>> read_source_lists(Reader& r) {
  return read_list<std::vector<core::Locator>>(r, read_locator_list);
}

void write_sync_request(Writer& w, const services::SyncRequest& request) {
  w.u8(kSyncRequestWireVersion);
  w.str(request.host);
  w.u64(request.epoch);
  w.boolean(request.full);
  write_auid_list(w, request.added);
  write_auid_list(w, request.removed);
  write_auid_list(w, request.in_flight);
  w.str(request.endpoint);
}

services::SyncRequest read_sync_request(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != kSyncRequestWireVersion) {
    throw CodecError("unsupported ds_sync request version");
  }
  services::SyncRequest request;
  request.host = r.str();
  request.epoch = r.u64();
  request.full = r.boolean();
  request.added = read_auid_list(r);
  request.removed = read_auid_list(r);
  request.in_flight = read_auid_list(r);
  request.endpoint = r.str();
  return request;
}

void write_sync_reply(Writer& w, const services::SyncReply& reply) {
  w.u64(reply.epoch);
  w.boolean(reply.resync);
  write_auid_list(w, reply.keep);
  write_list(w, reply.download, write_scheduled_data);
  write_auid_list(w, reply.drop);
  write_source_lists(w, reply.sources);
}

services::SyncReply read_sync_reply(Reader& r) {
  services::SyncReply reply;
  reply.epoch = r.u64();
  reply.resync = r.boolean();
  reply.keep = read_auid_list(r);
  reply.download = read_list<services::ScheduledData>(r, read_scheduled_data);
  reply.drop = read_auid_list(r);
  reply.sources = read_source_lists(r);
  // The locator lists are per-download-item; a count that disagrees with
  // the download partition is a malformed reply, not a recoverable state.
  if (reply.sources.size() != reply.download.size()) {
    throw CodecError("sync reply sources not aligned with downloads");
  }
  return reply;
}

void write_host_info(Writer& w, const services::HostInfo& info) {
  w.str(info.name);
  w.f64(info.last_sync_age_s);
  w.boolean(info.alive);
  w.u32(info.cached);
  w.str(info.endpoint);
  w.u64(info.full_syncs);
  w.u64(info.delta_syncs);
  w.u32(info.last_delta_items);
}

services::HostInfo read_host_info(Reader& r) {
  services::HostInfo info;
  info.name = r.str();
  info.last_sync_age_s = r.f64();
  info.alive = r.boolean();
  info.cached = r.u32();
  info.endpoint = r.str();
  info.full_syncs = r.u64();
  info.delta_syncs = r.u64();
  info.last_delta_items = r.u32();
  return info;
}

void write_host_list(Writer& w, const std::vector<services::HostInfo>& hosts) {
  write_list(w, hosts, write_host_info);
}

std::vector<services::HostInfo> read_host_list(Reader& r) {
  return read_list<services::HostInfo>(r, read_host_info);
}

void write_repo_stats(Writer& w, const services::RepoStats& stats) {
  w.u64(stats.objects);
  w.i64(stats.stored_bytes);
  w.u64(stats.chunk_reads);
  w.i64(stats.chunk_read_bytes);
  w.u64(stats.blob_copies);
  w.u64(stats.slice_reads);
}

services::RepoStats read_repo_stats(Reader& r) {
  services::RepoStats stats;
  stats.objects = r.u64();
  stats.stored_bytes = r.i64();
  stats.chunk_reads = r.u64();
  stats.chunk_read_bytes = r.i64();
  stats.blob_copies = r.u64();
  stats.slice_reads = r.u64();
  return stats;
}

void write_job_spec(Writer& w, const jobs::JobSpec& spec) {
  write_auid(w, spec.uid);
  w.str(spec.name);
  write_string_list(w, spec.argv);
  write_string_list(w, spec.env);
  w.f64(spec.timeout_s);
  write_auid_list(w, spec.inputs);
  write_auid(w, spec.collector);
}

jobs::JobSpec read_job_spec(Reader& r) {
  jobs::JobSpec spec;
  spec.uid = read_auid(r);
  spec.name = r.str();
  spec.argv = read_string_list(r);
  spec.env = read_string_list(r);
  spec.timeout_s = r.f64();
  spec.inputs = read_auid_list(r);
  spec.collector = read_auid(r);
  return spec;
}

void write_task_order(Writer& w, const jobs::TaskOrder& order) {
  write_auid(w, order.task);
  write_auid(w, order.job);
  w.i64(order.index);
  write_string_list(w, order.argv);
  write_string_list(w, order.env);
  w.f64(order.timeout_s);
  write_data(w, order.input);
  w.str(order.result_name);
}

jobs::TaskOrder read_task_order(Reader& r) {
  jobs::TaskOrder order;
  order.task = read_auid(r);
  order.job = read_auid(r);
  order.index = static_cast<std::int32_t>(r.i64());
  order.argv = read_string_list(r);
  order.env = read_string_list(r);
  order.timeout_s = r.f64();
  order.input = read_data(r);
  order.result_name = r.str();
  return order;
}

void write_task_report(Writer& w, const jobs::TaskReport& report) {
  write_auid(w, report.task);
  w.str(report.runner);
  w.boolean(report.ok);
  w.i64(report.exit_code);
  w.boolean(report.timed_out);
  w.boolean(report.data_local);
  write_data(w, report.result);
}

jobs::TaskReport read_task_report(Reader& r) {
  jobs::TaskReport report;
  report.task = read_auid(r);
  report.runner = r.str();
  report.ok = r.boolean();
  report.exit_code = static_cast<std::int32_t>(r.i64());
  report.timed_out = r.boolean();
  report.data_local = r.boolean();
  report.result = read_data(r);
  return report;
}

void write_task_info(Writer& w, const jobs::TaskInfo& info) {
  w.i64(info.index);
  w.u8(static_cast<std::uint8_t>(info.phase));
  w.str(info.runner);
  w.i64(info.attempts);
  w.boolean(info.data_local);
  write_auid(w, info.result);
}

jobs::TaskInfo read_task_info(Reader& r) {
  jobs::TaskInfo info;
  info.index = static_cast<std::int32_t>(r.i64());
  const std::uint8_t phase = r.u8();
  if (phase > static_cast<std::uint8_t>(jobs::TaskPhase::kFailed)) {
    throw CodecError("unknown task phase " + std::to_string(phase));
  }
  info.phase = static_cast<jobs::TaskPhase>(phase);
  info.runner = r.str();
  info.attempts = static_cast<std::int32_t>(r.i64());
  info.data_local = r.boolean();
  info.result = read_auid(r);
  return info;
}

void write_job_status_info(Writer& w, const jobs::JobStatusInfo& info) {
  write_auid(w, info.job);
  w.str(info.name);
  w.i64(info.total);
  w.i64(info.waiting);
  w.i64(info.running);
  w.i64(info.done);
  w.i64(info.failed);
  w.i64(info.data_local);
  w.i64(info.replaced);
  write_list(w, info.tasks, write_task_info);
}

jobs::JobStatusInfo read_job_status_info(Reader& r) {
  jobs::JobStatusInfo info;
  info.job = read_auid(r);
  info.name = r.str();
  info.total = static_cast<std::int32_t>(r.i64());
  info.waiting = static_cast<std::int32_t>(r.i64());
  info.running = static_cast<std::int32_t>(r.i64());
  info.done = static_cast<std::int32_t>(r.i64());
  info.failed = static_cast<std::int32_t>(r.i64());
  info.data_local = static_cast<std::int32_t>(r.i64());
  info.replaced = static_cast<std::int32_t>(r.i64());
  info.tasks = read_list<jobs::TaskInfo>(r, read_task_info);
  return info;
}

void write_register_batch(Writer& w, const std::vector<core::Data>& items) {
  write_list(w, items, write_data);
}

std::vector<core::Data> read_register_batch(Reader& r) {
  return read_list<core::Data>(r, read_data);
}

void write_locators_batch_request(Writer& w, const std::vector<util::Auid>& uids) {
  write_list(w, uids, write_auid);
}

std::vector<util::Auid> read_locators_batch_request(Reader& r) {
  return read_list<util::Auid>(r, read_auid);
}

void write_locators_batch_reply(
    Writer& w, const std::vector<api::Expected<std::vector<core::Locator>>>& reply) {
  write_list(w, reply, [](Writer& wr, const api::Expected<std::vector<core::Locator>>& item) {
    wr.boolean(item.ok());
    if (item.ok()) {
      write_list(wr, item.value(), write_locator);
    } else {
      write_error(wr, item.error());
    }
  });
}

std::vector<api::Expected<std::vector<core::Locator>>> read_locators_batch_reply(Reader& r) {
  return read_list<api::Expected<std::vector<core::Locator>>>(
      r, [](Reader& rd) -> api::Expected<std::vector<core::Locator>> {
        if (rd.boolean()) return read_list<core::Locator>(rd, read_locator);
        api::Error error = read_error(rd);
        if (error.code == api::Errc::kOk) throw CodecError("failed reply with ok code");
        return error;
      });
}

void write_schedule_batch(
    Writer& w, const std::vector<std::pair<core::Data, core::DataAttributes>>& items) {
  write_list(w, items,
             [](Writer& wr, const std::pair<core::Data, core::DataAttributes>& item) {
               write_data(wr, item.first);
               write_attributes(wr, item.second);
             });
}

std::vector<std::pair<core::Data, core::DataAttributes>> read_schedule_batch(Reader& r) {
  return read_list<std::pair<core::Data, core::DataAttributes>>(r, [](Reader& rd) {
    core::Data data = read_data(rd);
    core::DataAttributes attributes = read_attributes(rd);
    return std::make_pair(std::move(data), std::move(attributes));
  });
}

void write_publish_batch(Writer& w,
                         const std::vector<std::pair<std::string, std::string>>& pairs) {
  write_list(w, pairs, [](Writer& wr, const std::pair<std::string, std::string>& pair) {
    wr.str(pair.first);
    wr.str(pair.second);
  });
}

std::vector<std::pair<std::string, std::string>> read_publish_batch(Reader& r) {
  return read_list<std::pair<std::string, std::string>>(r, [](Reader& rd) {
    std::string key = rd.str();
    std::string value = rd.str();
    return std::make_pair(std::move(key), std::move(value));
  });
}

void write_status_batch(Writer& w, const std::vector<api::Status>& statuses) {
  write_list(w, statuses, write_status);
}

std::vector<api::Status> read_status_batch(Reader& r) {
  return read_list<api::Status>(r, read_status);
}

bool ring_op_endpoint_allowed(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kDcRegister:
    case Endpoint::kDcRemove:
    case Endpoint::kDcAddLocator:
    case Endpoint::kDdcPublish:
      return true;
    default:
      return false;
  }
}

void write_ring_node(Writer& w, const RingNode& node) {
  w.u64(node.id);
  w.str(node.endpoint);
}

RingNode read_ring_node(Reader& r) {
  RingNode node;
  node.id = r.u64();
  node.endpoint = r.str();
  return node;
}

namespace {

void write_ring_node_list(Writer& w, const std::vector<RingNode>& nodes) {
  write_list(w, nodes, write_ring_node);
}

std::vector<RingNode> read_ring_node_list(Reader& r) {
  return read_list<RingNode>(r, read_ring_node);
}

void write_ring_op_list(Writer& w, const std::vector<RingOp>& ops) {
  write_list(w, ops, write_ring_op);
}

std::vector<RingOp> read_ring_op_list(Reader& r) {
  return read_list<RingOp>(r, read_ring_op);
}

}  // namespace

void write_ring_lookup_reply(Writer& w, const RingLookupReply& reply) {
  w.boolean(reply.done);
  write_ring_node(w, reply.node);
}

RingLookupReply read_ring_lookup_reply(Reader& r) {
  RingLookupReply reply;
  reply.done = r.boolean();
  reply.node = read_ring_node(r);
  return reply;
}

void write_ring_op(Writer& w, const RingOp& op) {
  w.u16(static_cast<std::uint16_t>(op.endpoint));
  w.str(op.body);
}

RingOp read_ring_op(Reader& r) {
  const std::uint16_t endpoint = r.u16();
  if (endpoint > kMaxEndpoint || !ring_op_endpoint_allowed(static_cast<Endpoint>(endpoint))) {
    throw CodecError("illegal ring op endpoint " + std::to_string(endpoint));
  }
  RingOp op;
  op.endpoint = static_cast<Endpoint>(endpoint);
  op.body = r.str();
  return op;
}

void write_ring_join_reply(Writer& w, const RingJoinReply& reply) {
  write_ring_node(w, reply.self);
  w.boolean(reply.has_pred);
  write_ring_node(w, reply.pred);
  write_ring_node_list(w, reply.successors);
  write_ring_op_list(w, reply.handoff);
}

RingJoinReply read_ring_join_reply(Reader& r) {
  RingJoinReply reply;
  reply.self = read_ring_node(r);
  reply.has_pred = r.boolean();
  reply.pred = read_ring_node(r);
  reply.successors = read_ring_node_list(r);
  reply.handoff = read_ring_op_list(r);
  return reply;
}

void write_ring_stabilize_reply(Writer& w, const RingStabilizeReply& reply) {
  w.boolean(reply.has_pred);
  write_ring_node(w, reply.pred);
  write_ring_node_list(w, reply.successors);
}

RingStabilizeReply read_ring_stabilize_reply(Reader& r) {
  RingStabilizeReply reply;
  reply.has_pred = r.boolean();
  reply.pred = read_ring_node(r);
  reply.successors = read_ring_node_list(r);
  return reply;
}

void write_ring_store_request(Writer& w, const RingStoreRequest& request) {
  w.boolean(request.replicate);
  write_ring_op_list(w, request.ops);
}

RingStoreRequest read_ring_store_request(Reader& r) {
  RingStoreRequest request;
  request.replicate = r.boolean();
  request.ops = read_ring_op_list(r);
  return request;
}

void write_ring_leave_request(Writer& w, const RingLeaveRequest& request) {
  write_ring_node(w, request.leaver);
  w.boolean(request.has_pred);
  write_ring_node(w, request.pred);
}

RingLeaveRequest read_ring_leave_request(Reader& r) {
  RingLeaveRequest request;
  request.leaver = read_ring_node(r);
  request.has_pred = r.boolean();
  request.pred = read_ring_node(r);
  return request;
}

void write_ring_status_info(Writer& w, const RingStatusInfo& info) {
  write_ring_node(w, info.self);
  w.boolean(info.has_pred);
  write_ring_node(w, info.pred);
  write_ring_node_list(w, info.successors);
  w.u32(info.fingers_resolved);
  w.u32(info.fingers_total);
  w.u64(info.dc_keys);
  w.u64(info.ddc_keys);
}

RingStatusInfo read_ring_status_info(Reader& r) {
  RingStatusInfo info;
  info.self = read_ring_node(r);
  info.has_pred = r.boolean();
  info.pred = read_ring_node(r);
  info.successors = read_ring_node_list(r);
  info.fingers_resolved = r.u32();
  info.fingers_total = r.u32();
  info.dc_keys = r.u64();
  info.ddc_keys = r.u64();
  return info;
}

std::int64_t register_batch_bytes(const std::vector<core::Data>& items) {
  Writer w;
  write_register_batch(w, items);
  return static_cast<std::int64_t>(w.size());
}

std::int64_t locators_batch_request_bytes(const std::vector<util::Auid>& uids) {
  Writer w;
  write_locators_batch_request(w, uids);
  return static_cast<std::int64_t>(w.size());
}

std::int64_t schedule_batch_bytes(
    const std::vector<std::pair<core::Data, core::DataAttributes>>& items) {
  Writer w;
  write_schedule_batch(w, items);
  return static_cast<std::int64_t>(w.size());
}

std::int64_t publish_batch_bytes(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Writer w;
  write_publish_batch(w, pairs);
  return static_cast<std::int64_t>(w.size());
}

std::int64_t sync_request_bytes(const services::SyncRequest& request) {
  Writer w;
  write_sync_request(w, request);
  return static_cast<std::int64_t>(w.size());
}

}  // namespace bitdew::rpc::wire
