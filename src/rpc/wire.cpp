#include "rpc/wire.hpp"

namespace bitdew::rpc::wire {

void write_auid(Writer& w, const util::Auid& uid) {
  w.u64(uid.hi);
  w.u64(uid.lo);
}

util::Auid read_auid(Reader& r) {
  util::Auid uid;
  uid.hi = r.u64();
  uid.lo = r.u64();
  return uid;
}

void write_data(Writer& w, const core::Data& data) {
  write_auid(w, data.uid);
  w.str(data.name);
  w.str(data.checksum);
  w.i64(data.size);
  w.u32(data.flags);
}

core::Data read_data(Reader& r) {
  core::Data data;
  data.uid = read_auid(r);
  data.name = r.str();
  data.checksum = r.str();
  data.size = r.i64();
  data.flags = r.u32();
  return data;
}

void write_locator(Writer& w, const core::Locator& locator) {
  write_auid(w, locator.data_uid);
  w.str(locator.protocol);
  w.str(locator.host);
  w.str(locator.path);
  w.str(locator.credentials);
}

core::Locator read_locator(Reader& r) {
  core::Locator locator;
  locator.data_uid = read_auid(r);
  locator.protocol = r.str();
  locator.host = r.str();
  locator.path = r.str();
  locator.credentials = r.str();
  return locator;
}

void write_attributes(Writer& w, const core::DataAttributes& attributes) {
  w.str(attributes.name);
  w.i64(attributes.replica);
  w.boolean(attributes.fault_tolerant);
  w.u8(static_cast<std::uint8_t>(attributes.lifetime.kind));
  w.f64(attributes.lifetime.expires_at);
  write_auid(w, attributes.lifetime.reference);
  write_auid(w, attributes.affinity);
  w.str(attributes.affinity_name);
  w.str(attributes.protocol);
}

core::DataAttributes read_attributes(Reader& r) {
  core::DataAttributes attributes;
  attributes.name = r.str();
  attributes.replica = static_cast<int>(r.i64());
  attributes.fault_tolerant = r.boolean();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(core::Lifetime::Kind::kRelative)) {
    throw CodecError("bad lifetime kind " + std::to_string(kind));
  }
  attributes.lifetime.kind = static_cast<core::Lifetime::Kind>(kind);
  attributes.lifetime.expires_at = r.f64();
  attributes.lifetime.reference = read_auid(r);
  attributes.affinity = read_auid(r);
  attributes.affinity_name = r.str();
  attributes.protocol = r.str();
  return attributes;
}

void write_error(Writer& w, const api::Error& error) {
  w.u8(static_cast<std::uint8_t>(error.code));
  w.str(error.service);
  w.str(error.message);
}

api::Error read_error(Reader& r) {
  api::Error error;
  const std::uint8_t code = r.u8();
  if (code > static_cast<std::uint8_t>(api::Errc::kInvalidArgument)) {
    throw CodecError("bad error code " + std::to_string(code));
  }
  error.code = static_cast<api::Errc>(code);
  error.service = r.str();
  error.message = r.str();
  return error;
}

void write_status(Writer& w, const api::Status& status) {
  w.boolean(status.ok());
  if (!status.ok()) write_error(w, status.error());
}

api::Status read_status(Reader& r) {
  if (r.boolean()) return api::ok_status();
  api::Error error = read_error(r);
  if (error.code == api::Errc::kOk) throw CodecError("failed status with ok code");
  return error;
}

namespace {

template <typename T, typename WriteItem>
void write_list(Writer& w, const std::vector<T>& items, WriteItem write_item) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const T& item : items) write_item(w, item);
}

template <typename T, typename ReadItem>
std::vector<T> read_list(Reader& r, ReadItem read_item) {
  const std::uint32_t count = r.u32();
  std::vector<T> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(read_item(r));
  return out;
}

}  // namespace

void write_register_batch(Writer& w, const std::vector<core::Data>& items) {
  write_list(w, items, write_data);
}

std::vector<core::Data> read_register_batch(Reader& r) {
  return read_list<core::Data>(r, read_data);
}

void write_locators_batch_request(Writer& w, const std::vector<util::Auid>& uids) {
  write_list(w, uids, write_auid);
}

std::vector<util::Auid> read_locators_batch_request(Reader& r) {
  return read_list<util::Auid>(r, read_auid);
}

void write_locators_batch_reply(
    Writer& w, const std::vector<api::Expected<std::vector<core::Locator>>>& reply) {
  write_list(w, reply, [](Writer& wr, const api::Expected<std::vector<core::Locator>>& item) {
    wr.boolean(item.ok());
    if (item.ok()) {
      write_list(wr, item.value(), write_locator);
    } else {
      write_error(wr, item.error());
    }
  });
}

std::vector<api::Expected<std::vector<core::Locator>>> read_locators_batch_reply(Reader& r) {
  return read_list<api::Expected<std::vector<core::Locator>>>(
      r, [](Reader& rd) -> api::Expected<std::vector<core::Locator>> {
        if (rd.boolean()) return read_list<core::Locator>(rd, read_locator);
        api::Error error = read_error(rd);
        if (error.code == api::Errc::kOk) throw CodecError("failed reply with ok code");
        return error;
      });
}

void write_schedule_batch(
    Writer& w, const std::vector<std::pair<core::Data, core::DataAttributes>>& items) {
  write_list(w, items,
             [](Writer& wr, const std::pair<core::Data, core::DataAttributes>& item) {
               write_data(wr, item.first);
               write_attributes(wr, item.second);
             });
}

std::vector<std::pair<core::Data, core::DataAttributes>> read_schedule_batch(Reader& r) {
  return read_list<std::pair<core::Data, core::DataAttributes>>(r, [](Reader& rd) {
    core::Data data = read_data(rd);
    core::DataAttributes attributes = read_attributes(rd);
    return std::make_pair(std::move(data), std::move(attributes));
  });
}

void write_publish_batch(Writer& w,
                         const std::vector<std::pair<std::string, std::string>>& pairs) {
  write_list(w, pairs, [](Writer& wr, const std::pair<std::string, std::string>& pair) {
    wr.str(pair.first);
    wr.str(pair.second);
  });
}

std::vector<std::pair<std::string, std::string>> read_publish_batch(Reader& r) {
  return read_list<std::pair<std::string, std::string>>(r, [](Reader& rd) {
    std::string key = rd.str();
    std::string value = rd.str();
    return std::make_pair(std::move(key), std::move(value));
  });
}

void write_status_batch(Writer& w, const std::vector<api::Status>& statuses) {
  write_list(w, statuses, write_status);
}

std::vector<api::Status> read_status_batch(Reader& r) {
  return read_list<api::Status>(r, read_status);
}

std::int64_t register_batch_bytes(const std::vector<core::Data>& items) {
  Writer w;
  write_register_batch(w, items);
  return static_cast<std::int64_t>(w.size());
}

std::int64_t locators_batch_request_bytes(const std::vector<util::Auid>& uids) {
  Writer w;
  write_locators_batch_request(w, uids);
  return static_cast<std::int64_t>(w.size());
}

std::int64_t schedule_batch_bytes(
    const std::vector<std::pair<core::Data, core::DataAttributes>>& items) {
  Writer w;
  write_schedule_batch(w, items);
  return static_cast<std::int64_t>(w.size());
}

std::int64_t publish_batch_bytes(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Writer w;
  write_publish_batch(w, pairs);
  return static_cast<std::int64_t>(w.size());
}

}  // namespace bitdew::rpc::wire
