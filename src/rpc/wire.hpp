// Wire shapes for the ServiceBus v2 messages: binary encode/decode of the
// core model types (Auid, Data, Locator, DataAttributes), the typed Error
// channel, and the four batch request/reply messages. SimServiceBus sizes
// batched RPCs by actually encoding them — the amortization the bulk
// endpoints claim (one envelope over N items) is measured on real bytes,
// not a hand-tuned constant. test_codec round-trips every shape.
#pragma once

#include <utility>
#include <vector>

#include "api/expected.hpp"
#include "core/attributes.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"
#include "rpc/codec.hpp"

namespace bitdew::rpc::wire {

// --- model types -------------------------------------------------------------
void write_auid(Writer& w, const util::Auid& uid);
util::Auid read_auid(Reader& r);

void write_data(Writer& w, const core::Data& data);
core::Data read_data(Reader& r);

void write_locator(Writer& w, const core::Locator& locator);
core::Locator read_locator(Reader& r);

void write_attributes(Writer& w, const core::DataAttributes& attributes);
core::DataAttributes read_attributes(Reader& r);

// --- error channel -----------------------------------------------------------
void write_error(Writer& w, const api::Error& error);
api::Error read_error(Reader& r);

void write_status(Writer& w, const api::Status& status);
api::Status read_status(Reader& r);

// --- batch messages ----------------------------------------------------------
// Requests are a u32 count followed by the items; replies are index-aligned
// per-item payloads. decode throws CodecError on malformed input.
void write_register_batch(Writer& w, const std::vector<core::Data>& items);
std::vector<core::Data> read_register_batch(Reader& r);

void write_locators_batch_request(Writer& w, const std::vector<util::Auid>& uids);
std::vector<util::Auid> read_locators_batch_request(Reader& r);

void write_locators_batch_reply(
    Writer& w, const std::vector<api::Expected<std::vector<core::Locator>>>& reply);
std::vector<api::Expected<std::vector<core::Locator>>> read_locators_batch_reply(Reader& r);

void write_schedule_batch(Writer& w,
                          const std::vector<std::pair<core::Data, core::DataAttributes>>& items);
std::vector<std::pair<core::Data, core::DataAttributes>> read_schedule_batch(Reader& r);

void write_publish_batch(Writer& w,
                         const std::vector<std::pair<std::string, std::string>>& pairs);
std::vector<std::pair<std::string, std::string>> read_publish_batch(Reader& r);

void write_status_batch(Writer& w, const std::vector<api::Status>& statuses);
std::vector<api::Status> read_status_batch(Reader& r);

// --- sizing helpers ----------------------------------------------------------
// Encoded byte counts, used by SimServiceBus to charge batch RPCs for the
// bytes they would really occupy.
std::int64_t register_batch_bytes(const std::vector<core::Data>& items);
std::int64_t locators_batch_request_bytes(const std::vector<util::Auid>& uids);
std::int64_t schedule_batch_bytes(
    const std::vector<std::pair<core::Data, core::DataAttributes>>& items);
std::int64_t publish_batch_bytes(const std::vector<std::pair<std::string, std::string>>& pairs);

}  // namespace bitdew::rpc::wire
