// Wire shapes for the ServiceBus v2 messages: binary encode/decode of the
// core model types (Auid, Data, Locator, DataAttributes), the typed Error
// channel, the scalar request/reply payloads, the four batch request/reply
// messages, and the frame header (endpoint id + request id) that the TCP
// transport (rpc/transport.hpp, rpc/server.hpp) puts in front of every
// payload. SimServiceBus sizes batched RPCs by actually encoding them — the
// amortization the bulk endpoints claim (one envelope over N items) is
// measured on real bytes, not a hand-tuned constant. test_codec round-trips
// every shape.
#pragma once

#include <utility>
#include <vector>

#include "api/expected.hpp"
#include "core/attributes.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"
#include "rpc/codec.hpp"
#include "services/data_repository.hpp"
#include "services/data_scheduler.hpp"

namespace bitdew::rpc::wire {

// --- frame header ------------------------------------------------------------
// Every frame the TCP transport carries is header || body. Requests and
// replies share the shape: the server echoes the request id so a client can
// match a reply to the call it made.

/// RPC endpoints a ServiceHost serves. Values are wire-stable.
enum class Endpoint : std::uint16_t {
  kPing = 0,
  kDcRegister = 1,
  kDcGet = 2,
  kDcSearch = 3,
  kDcRemove = 4,
  kDcAddLocator = 5,
  kDcLocators = 6,
  kDrPut = 7,
  kDrGet = 8,
  kDrRemove = 9,
  kDtRegister = 10,
  kDtMonitor = 11,
  kDtComplete = 12,
  kDtFailure = 13,
  kDtGiveUp = 14,
  kDsSchedule = 15,
  kDsPin = 16,
  kDsUnschedule = 17,
  kDsSync = 18,
  kDdcPublish = 19,
  kDdcSearch = 20,
  kDcRegisterBatch = 21,
  kDcLocatorsBatch = 22,
  kDsScheduleBatch = 23,
  kDdcPublishBatch = 24,
  // Data plane (PR 3): chunked out-of-band content transfer. Chunk frames
  // carry real payload bytes; their size is bounded by
  // services::kMaxChunkBytes, well under kMaxFrameBytes.
  kDrPutStart = 25,   ///< Data → Expected<i64 resume offset>
  kDrPutChunk = 26,   ///< Auid, i64 offset, bytes → Status
  kDrPutCommit = 27,  ///< Auid, protocol → Expected<Locator>
  kDrGetChunk = 28,   ///< Auid, i64 offset, i64 max → Expected<bytes>
  // Worker tier (PR 4): failure-detector introspection.
  kDsHosts = 29,      ///< (empty) → Expected<vector<HostInfo>>
  // Peer data plane (PR 5): repository egress counters, so benches and CI
  // can assert collective distribution really bounded the central store's
  // outbound bytes.
  kDrStats = 30,      ///< (empty) → Expected<RepoStats>
};

inline constexpr std::uint16_t kMaxEndpoint =
    static_cast<std::uint16_t>(Endpoint::kDrStats);

const char* endpoint_name(Endpoint endpoint);

struct FrameHeader {
  Endpoint endpoint = Endpoint::kPing;
  std::uint64_t request_id = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

/// Encoded size of a frame header (u16 endpoint + u64 request id).
inline constexpr std::size_t kFrameHeaderBytes = 2 + 8;

void write_frame_header(Writer& w, const FrameHeader& header);
/// Throws CodecError on an unknown endpoint id.
FrameHeader read_frame_header(Reader& r);

// --- model types -------------------------------------------------------------
void write_auid(Writer& w, const util::Auid& uid);
util::Auid read_auid(Reader& r);

void write_data(Writer& w, const core::Data& data);
core::Data read_data(Reader& r);

void write_locator(Writer& w, const core::Locator& locator);
core::Locator read_locator(Reader& r);

void write_attributes(Writer& w, const core::DataAttributes& attributes);
core::DataAttributes read_attributes(Reader& r);

void write_content(Writer& w, const core::Content& content);
core::Content read_content(Reader& r);

void write_scheduled_data(Writer& w, const services::ScheduledData& item);
services::ScheduledData read_scheduled_data(Reader& r);

void write_sync_reply(Writer& w, const services::SyncReply& reply);
services::SyncReply read_sync_reply(Reader& r);

void write_host_info(Writer& w, const services::HostInfo& info);
services::HostInfo read_host_info(Reader& r);

void write_host_list(Writer& w, const std::vector<services::HostInfo>& hosts);
std::vector<services::HostInfo> read_host_list(Reader& r);

void write_repo_stats(Writer& w, const services::RepoStats& stats);
services::RepoStats read_repo_stats(Reader& r);

/// The per-download peer locator lists of a SyncReply (list of lists,
/// index-aligned with the download partition).
void write_source_lists(Writer& w, const std::vector<std::vector<core::Locator>>& sources);
std::vector<std::vector<core::Locator>> read_source_lists(Reader& r);

// --- error channel -----------------------------------------------------------
void write_error(Writer& w, const api::Error& error);
api::Error read_error(Reader& r);

void write_status(Writer& w, const api::Status& status);
api::Status read_status(Reader& r);

// --- scalar reply payloads ---------------------------------------------------
// Expected<T> on the wire: a success flag, then the value or the Error.
// `write_value` / `read_value` encode the payload type.
template <typename T, typename WriteValue>
void write_expected(Writer& w, const api::Expected<T>& value, WriteValue&& write_value) {
  w.boolean(value.ok());
  if (value.ok()) {
    write_value(w, value.value());
  } else {
    write_error(w, value.error());
  }
}

template <typename T, typename ReadValue>
api::Expected<T> read_expected(Reader& r, ReadValue&& read_value) {
  if (r.boolean()) return api::Expected<T>(read_value(r));
  api::Error error = read_error(r);
  if (error.code == api::Errc::kOk) throw CodecError("failed reply with ok code");
  return api::Expected<T>(std::move(error));
}

// List payloads shared by several scalar replies.
void write_auid_list(Writer& w, const std::vector<util::Auid>& uids);
std::vector<util::Auid> read_auid_list(Reader& r);

void write_data_list(Writer& w, const std::vector<core::Data>& items);
std::vector<core::Data> read_data_list(Reader& r);

void write_locator_list(Writer& w, const std::vector<core::Locator>& locators);
std::vector<core::Locator> read_locator_list(Reader& r);

void write_string_list(Writer& w, const std::vector<std::string>& values);
std::vector<std::string> read_string_list(Reader& r);

// --- batch messages ----------------------------------------------------------
// Requests are a u32 count followed by the items; replies are index-aligned
// per-item payloads. decode throws CodecError on malformed input.
void write_register_batch(Writer& w, const std::vector<core::Data>& items);
std::vector<core::Data> read_register_batch(Reader& r);

void write_locators_batch_request(Writer& w, const std::vector<util::Auid>& uids);
std::vector<util::Auid> read_locators_batch_request(Reader& r);

void write_locators_batch_reply(
    Writer& w, const std::vector<api::Expected<std::vector<core::Locator>>>& reply);
std::vector<api::Expected<std::vector<core::Locator>>> read_locators_batch_reply(Reader& r);

void write_schedule_batch(Writer& w,
                          const std::vector<std::pair<core::Data, core::DataAttributes>>& items);
std::vector<std::pair<core::Data, core::DataAttributes>> read_schedule_batch(Reader& r);

void write_publish_batch(Writer& w,
                         const std::vector<std::pair<std::string, std::string>>& pairs);
std::vector<std::pair<std::string, std::string>> read_publish_batch(Reader& r);

void write_status_batch(Writer& w, const std::vector<api::Status>& statuses);
std::vector<api::Status> read_status_batch(Reader& r);

// --- sizing helpers ----------------------------------------------------------
// Encoded byte counts, used by SimServiceBus to charge batch RPCs for the
// bytes they would really occupy.
std::int64_t register_batch_bytes(const std::vector<core::Data>& items);
std::int64_t locators_batch_request_bytes(const std::vector<util::Auid>& uids);
std::int64_t schedule_batch_bytes(
    const std::vector<std::pair<core::Data, core::DataAttributes>>& items);
std::int64_t publish_batch_bytes(const std::vector<std::pair<std::string, std::string>>& pairs);

}  // namespace bitdew::rpc::wire
