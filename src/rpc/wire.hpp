// Wire shapes for the ServiceBus v2 messages: binary encode/decode of the
// core model types (Auid, Data, Locator, DataAttributes), the typed Error
// channel, the scalar request/reply payloads, the four batch request/reply
// messages, and the frame header (endpoint id + request id) that the TCP
// transport (rpc/transport.hpp, rpc/server.hpp) puts in front of every
// payload. SimServiceBus sizes batched RPCs by actually encoding them — the
// amortization the bulk endpoints claim (one envelope over N items) is
// measured on real bytes, not a hand-tuned constant. test_codec round-trips
// every shape.
#pragma once

#include <utility>
#include <vector>

#include "api/expected.hpp"
#include "core/attributes.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"
#include "jobs/job_types.hpp"
#include "rpc/codec.hpp"
#include "services/data_repository.hpp"
#include "services/data_scheduler.hpp"

namespace bitdew::rpc::wire {

// --- frame header ------------------------------------------------------------
// Every frame the TCP transport carries is header || body. Requests and
// replies share the shape: the server echoes the request id so a client can
// match a reply to the call it made.

/// RPC endpoints a ServiceHost serves. Values are wire-stable.
enum class Endpoint : std::uint16_t {
  kPing = 0,
  kDcRegister = 1,
  kDcGet = 2,
  kDcSearch = 3,
  kDcRemove = 4,
  kDcAddLocator = 5,
  kDcLocators = 6,
  kDrPut = 7,
  kDrGet = 8,
  kDrRemove = 9,
  kDtRegister = 10,
  kDtMonitor = 11,
  kDtComplete = 12,
  kDtFailure = 13,
  kDtGiveUp = 14,
  kDsSchedule = 15,
  kDsPin = 16,
  kDsUnschedule = 17,
  kDsSync = 18,
  kDdcPublish = 19,
  kDdcSearch = 20,
  kDcRegisterBatch = 21,
  kDcLocatorsBatch = 22,
  kDsScheduleBatch = 23,
  kDdcPublishBatch = 24,
  // Data plane (PR 3): chunked out-of-band content transfer. Chunk frames
  // carry real payload bytes; their size is bounded by
  // services::kMaxChunkBytes, well under kMaxFrameBytes.
  kDrPutStart = 25,   ///< Data → Expected<i64 resume offset>
  kDrPutChunk = 26,   ///< Auid, i64 offset, bytes → Status
  kDrPutCommit = 27,  ///< Auid, protocol → Expected<Locator>
  kDrGetChunk = 28,   ///< Auid, i64 offset, i64 max → Expected<bytes>
  // Worker tier (PR 4): failure-detector introspection.
  kDsHosts = 29,      ///< (empty) → Expected<vector<HostInfo>>
  // Peer data plane (PR 5): repository egress counters, so benches and CI
  // can assert collective distribution really bounded the central store's
  // outbound bytes.
  kDrStats = 30,      ///< (empty) → Expected<RepoStats>
  // Live DHT ring (PR 6): the Distributed Data Catalog's metadata plane
  // sharded across a ring of bitdewd members (docs/architecture.md §ring).
  kRingLookup = 31,     ///< u64 hash → Expected<RingLookupReply>
  kRingJoin = 32,       ///< RingNode joiner → Expected<RingJoinReply>
  kRingNotify = 33,     ///< RingNode candidate predecessor → Status
  kRingStabilize = 34,  ///< (empty) → Expected<RingStabilizeReply>
  kRingStore = 35,      ///< RingStoreRequest → status batch (one per op)
  kRingLeave = 36,      ///< RingLeaveRequest → Status
  kRingInfo = 37,       ///< (empty) → Expected<RingStatusInfo>
  kRingSearch = 38,     ///< name → Expected<data list>; member-local
                        ///< dc_search, never fanned out again
  // Job subsystem (PR 7): compute-to-data. Submit decomposes a JobSpec into
  // tasks the scheduler places with replica affinity; workers claim
  // delivered tasks (first claim wins) and report outcomes.
  kJobSubmit = 39,      ///< JobSpec → Expected<Auid job>
  kJobStatus = 40,      ///< Auid job → Expected<JobStatusInfo>
  kJobClaim = 41,       ///< Auid task, host → Expected<TaskOrder>
  kJobTaskReport = 42,  ///< TaskReport → Status
  // Sentinel: must stay last. kMaxEndpoint derives from it so the decode
  // range in read_frame_header can never drift when endpoints are added;
  // wire.cpp static_asserts that endpoint_name covers every value.
  kEndpointCount,
};

inline constexpr std::uint16_t kMaxEndpoint =
    static_cast<std::uint16_t>(Endpoint::kEndpointCount) - 1;

const char* endpoint_name(Endpoint endpoint);

struct FrameHeader {
  Endpoint endpoint = Endpoint::kPing;
  std::uint64_t request_id = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

/// Encoded size of a frame header (u16 endpoint + u64 request id).
inline constexpr std::size_t kFrameHeaderBytes = 2 + 8;

void write_frame_header(Writer& w, const FrameHeader& header);
/// Throws CodecError on an unknown endpoint id.
FrameHeader read_frame_header(Reader& r);

// --- model types -------------------------------------------------------------
void write_auid(Writer& w, const util::Auid& uid);
util::Auid read_auid(Reader& r);

void write_data(Writer& w, const core::Data& data);
core::Data read_data(Reader& r);

void write_locator(Writer& w, const core::Locator& locator);
core::Locator read_locator(Reader& r);

void write_attributes(Writer& w, const core::DataAttributes& attributes);
core::DataAttributes read_attributes(Reader& r);

void write_content(Writer& w, const core::Content& content);
core::Content read_content(Reader& r);

void write_scheduled_data(Writer& w, const services::ScheduledData& item);
services::ScheduledData read_scheduled_data(Reader& r);

/// Sync protocol v2: the request body starts with a version byte so a
/// scheduler can reject frames from a foreign protocol generation with a
/// typed error instead of silently misparsing them.
inline constexpr std::uint8_t kSyncRequestWireVersion = 2;

void write_sync_request(Writer& w, const services::SyncRequest& request);
/// Throws CodecError when the leading version byte is not
/// kSyncRequestWireVersion (mixed-version fleets fail typed, not corrupt).
services::SyncRequest read_sync_request(Reader& r);

void write_sync_reply(Writer& w, const services::SyncReply& reply);
services::SyncReply read_sync_reply(Reader& r);

void write_host_info(Writer& w, const services::HostInfo& info);
services::HostInfo read_host_info(Reader& r);

void write_host_list(Writer& w, const std::vector<services::HostInfo>& hosts);
std::vector<services::HostInfo> read_host_list(Reader& r);

void write_repo_stats(Writer& w, const services::RepoStats& stats);
services::RepoStats read_repo_stats(Reader& r);

/// The per-download peer locator lists of a SyncReply (list of lists,
/// index-aligned with the download partition).
void write_source_lists(Writer& w, const std::vector<std::vector<core::Locator>>& sources);
std::vector<std::vector<core::Locator>> read_source_lists(Reader& r);

// --- job messages ------------------------------------------------------------
void write_job_spec(Writer& w, const jobs::JobSpec& spec);
jobs::JobSpec read_job_spec(Reader& r);

void write_task_order(Writer& w, const jobs::TaskOrder& order);
jobs::TaskOrder read_task_order(Reader& r);

void write_task_report(Writer& w, const jobs::TaskReport& report);
jobs::TaskReport read_task_report(Reader& r);

void write_task_info(Writer& w, const jobs::TaskInfo& info);
jobs::TaskInfo read_task_info(Reader& r);

void write_job_status_info(Writer& w, const jobs::JobStatusInfo& info);
jobs::JobStatusInfo read_job_status_info(Reader& r);

// --- ring messages -----------------------------------------------------------
// The live DHT ring (src/dht/live_ring.hpp) speaks these over the same
// framed transport as the catalog endpoints. A RingNode is a member's ring
// position plus the "host:port" its ServiceHost answers on.

struct RingNode {
  std::uint64_t id = 0;
  std::string endpoint;  ///< "host:port" of the member's ServiceHost

  friend bool operator==(const RingNode&, const RingNode&) = default;
};

/// One step of an iterative lookup: either the owner was resolved (`done`)
/// or `node` is the next member to ask.
struct RingLookupReply {
  bool done = false;
  RingNode node;

  friend bool operator==(const RingLookupReply&, const RingLookupReply&) = default;
};

/// A replayable catalog mutation: the original request body under its
/// endpoint. Only the keyed mutating endpoints (dc_register, dc_remove,
/// dc_add_locator, ddc_publish) are legal here — read_ring_op rejects
/// anything else, so a kRingStore frame can never smuggle arbitrary calls.
struct RingOp {
  Endpoint endpoint = Endpoint::kDcRegister;
  std::string body;

  friend bool operator==(const RingOp&, const RingOp&) = default;
};

/// True when `endpoint` may appear inside a RingOp.
bool ring_op_endpoint_allowed(Endpoint endpoint);

struct RingJoinReply {
  RingNode self;                     ///< the successor that admitted us
  bool has_pred = false;
  RingNode pred;                     ///< its previous predecessor (our hint)
  std::vector<RingNode> successors;  ///< its successor list
  std::vector<RingOp> handoff;       ///< keys in (pred, joiner] re-encoded

  friend bool operator==(const RingJoinReply&, const RingJoinReply&) = default;
};

struct RingStabilizeReply {
  bool has_pred = false;
  RingNode pred;
  std::vector<RingNode> successors;

  friend bool operator==(const RingStabilizeReply&, const RingStabilizeReply&) = default;
};

struct RingStoreRequest {
  /// true: the receiver owns these ops and re-replicates them to its own
  /// successor list; false: plain replica write, no further fan-out.
  bool replicate = false;
  std::vector<RingOp> ops;

  friend bool operator==(const RingStoreRequest&, const RingStoreRequest&) = default;
};

struct RingLeaveRequest {
  RingNode leaver;
  bool has_pred = false;
  RingNode pred;  ///< the leaver's predecessor, adopted by its successor

  friend bool operator==(const RingLeaveRequest&, const RingLeaveRequest&) = default;
};

struct RingStatusInfo {
  RingNode self;
  bool has_pred = false;
  RingNode pred;
  std::vector<RingNode> successors;
  std::uint32_t fingers_resolved = 0;
  std::uint32_t fingers_total = 0;
  std::uint64_t dc_keys = 0;   ///< catalog uids held (replicas included)
  std::uint64_t ddc_keys = 0;  ///< ddc keys held (replicas included)

  friend bool operator==(const RingStatusInfo&, const RingStatusInfo&) = default;
};

void write_ring_node(Writer& w, const RingNode& node);
RingNode read_ring_node(Reader& r);

void write_ring_lookup_reply(Writer& w, const RingLookupReply& reply);
RingLookupReply read_ring_lookup_reply(Reader& r);

void write_ring_op(Writer& w, const RingOp& op);
RingOp read_ring_op(Reader& r);

void write_ring_join_reply(Writer& w, const RingJoinReply& reply);
RingJoinReply read_ring_join_reply(Reader& r);

void write_ring_stabilize_reply(Writer& w, const RingStabilizeReply& reply);
RingStabilizeReply read_ring_stabilize_reply(Reader& r);

void write_ring_store_request(Writer& w, const RingStoreRequest& request);
RingStoreRequest read_ring_store_request(Reader& r);

void write_ring_leave_request(Writer& w, const RingLeaveRequest& request);
RingLeaveRequest read_ring_leave_request(Reader& r);

void write_ring_status_info(Writer& w, const RingStatusInfo& info);
RingStatusInfo read_ring_status_info(Reader& r);

// --- error channel -----------------------------------------------------------
void write_error(Writer& w, const api::Error& error);
api::Error read_error(Reader& r);

void write_status(Writer& w, const api::Status& status);
api::Status read_status(Reader& r);

// --- scalar reply payloads ---------------------------------------------------
// Expected<T> on the wire: a success flag, then the value or the Error.
// `write_value` / `read_value` encode the payload type.
template <typename T, typename WriteValue>
void write_expected(Writer& w, const api::Expected<T>& value, WriteValue&& write_value) {
  w.boolean(value.ok());
  if (value.ok()) {
    write_value(w, value.value());
  } else {
    write_error(w, value.error());
  }
}

template <typename T, typename ReadValue>
api::Expected<T> read_expected(Reader& r, ReadValue&& read_value) {
  if (r.boolean()) return api::Expected<T>(read_value(r));
  api::Error error = read_error(r);
  if (error.code == api::Errc::kOk) throw CodecError("failed reply with ok code");
  return api::Expected<T>(std::move(error));
}

// List payloads shared by several scalar replies.
void write_auid_list(Writer& w, const std::vector<util::Auid>& uids);
std::vector<util::Auid> read_auid_list(Reader& r);

void write_data_list(Writer& w, const std::vector<core::Data>& items);
std::vector<core::Data> read_data_list(Reader& r);

void write_locator_list(Writer& w, const std::vector<core::Locator>& locators);
std::vector<core::Locator> read_locator_list(Reader& r);

void write_string_list(Writer& w, const std::vector<std::string>& values);
std::vector<std::string> read_string_list(Reader& r);

// --- batch messages ----------------------------------------------------------
// Requests are a u32 count followed by the items; replies are index-aligned
// per-item payloads. decode throws CodecError on malformed input.
void write_register_batch(Writer& w, const std::vector<core::Data>& items);
std::vector<core::Data> read_register_batch(Reader& r);

void write_locators_batch_request(Writer& w, const std::vector<util::Auid>& uids);
std::vector<util::Auid> read_locators_batch_request(Reader& r);

void write_locators_batch_reply(
    Writer& w, const std::vector<api::Expected<std::vector<core::Locator>>>& reply);
std::vector<api::Expected<std::vector<core::Locator>>> read_locators_batch_reply(Reader& r);

void write_schedule_batch(Writer& w,
                          const std::vector<std::pair<core::Data, core::DataAttributes>>& items);
std::vector<std::pair<core::Data, core::DataAttributes>> read_schedule_batch(Reader& r);

void write_publish_batch(Writer& w,
                         const std::vector<std::pair<std::string, std::string>>& pairs);
std::vector<std::pair<std::string, std::string>> read_publish_batch(Reader& r);

void write_status_batch(Writer& w, const std::vector<api::Status>& statuses);
std::vector<api::Status> read_status_batch(Reader& r);

// --- sizing helpers ----------------------------------------------------------
// Encoded byte counts, used by SimServiceBus to charge batch RPCs for the
// bytes they would really occupy.
std::int64_t register_batch_bytes(const std::vector<core::Data>& items);
std::int64_t locators_batch_request_bytes(const std::vector<util::Auid>& uids);
std::int64_t schedule_batch_bytes(
    const std::vector<std::pair<core::Data, core::DataAttributes>>& items);
std::int64_t publish_batch_bytes(const std::vector<std::pair<std::string, std::string>>& pairs);
/// Encoded size of a ds_sync request — O(Δ) for delta beats, which is what
/// the soak bench's bytes-per-beat gate measures.
std::int64_t sync_request_bytes(const services::SyncRequest& request);

}  // namespace bitdew::rpc::wire
