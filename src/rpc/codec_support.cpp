// see codec.hpp (header-only); this TU anchors the library.
#include "rpc/codec.hpp"
