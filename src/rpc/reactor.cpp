#include "rpc/reactor.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/log.hpp"

namespace bitdew::rpc {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("epoll");
  return instance;
}

constexpr std::uint64_t kListenerTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeupTag = ~std::uint64_t{0} - 1;

/// Largest single sendfile/pread step: bounds a slow reader's grip on the
/// loop without throttling a fast one.
constexpr std::int64_t kFileStepBytes = 1 << 20;

int auto_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2, static_cast<int>(std::min(hw, 4u)));
}

}  // namespace

EpollServer::EpollServer(Handler handler, EpollServerConfig config)
    : handler_(std::move(handler)), config_(config) {
  if (config_.worker_threads <= 0) config_.worker_threads = auto_worker_count();
  config_.max_in_flight_per_connection = std::max(config_.max_in_flight_per_connection, 1);
}

EpollServer::~EpollServer() { stop(); }

std::int64_t EpollServer::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

api::Status EpollServer::start() {
  if (running_.load(std::memory_order_acquire)) return api::ok_status();
  auto listener = tcp_listen(config_.port, config_.loopback_only);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener->fd);
  port_ = listener->port;
  // tcp_listen hands back a BLOCKING socket (the thread-per-connection hosts
  // accept through poll); here the readiness loop drains accepts in a burst,
  // so the listener must be nonblocking or the second accept4 of a burst
  // parks the whole loop inside the kernel.
  const int listener_flags = ::fcntl(listener_.get(), F_GETFL, 0);
  ::fcntl(listener_.get(), F_SETFL, listener_flags | O_NONBLOCK);

  Fd epoll(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll.valid()) {
    listener_.reset();
    return api::Error{api::Errc::kTransport, "epoll",
                      std::string("epoll_create1: ") + std::strerror(errno)};
  }
  Fd wakeup(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup.valid()) {
    listener_.reset();
    return api::Error{api::Errc::kTransport, "epoll",
                      std::string("eventfd: ") + std::strerror(errno)};
  }
  epoll_ = std::move(epoll);
  wakeup_ = std::move(wakeup);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeupTag;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev);

  {
    const util::LockGuard lock(queue_mutex_);
    workers_stop_ = false;
    queue_.clear();
  }
  {
    const util::LockGuard lock(completions_mutex_);
    completions_.clear();
  }
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread(&EpollServer::loop, this);
  for (int i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back(&EpollServer::worker, this);
  }
  logger().debug("listening on port %u (%d workers)", static_cast<unsigned>(port_),
                 config_.worker_threads);
  return api::ok_status();
}

void EpollServer::stop() {
  if (!running_.exchange(false)) return;
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    const util::LockGuard lock(queue_mutex_);
    workers_stop_ = true;
    queue_.clear();  // connections are gone; their requests have no reader
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    const util::LockGuard lock(completions_mutex_);
    completions_.clear();
  }
  wakeup_.reset();
  epoll_.reset();
  listener_.reset();
}

void EpollServer::wake() {
  if (!wakeup_.valid()) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeup_.get(), &one, sizeof(one));
}

void EpollServer::worker() {
  for (;;) {
    std::pair<std::uint64_t, std::string> job;
    {
      util::UniqueLock lock(queue_mutex_);
      while (!workers_stop_ && queue_.empty()) queue_cv_.wait(lock);
      if (workers_stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Completion completion;
    completion.connection_id = job.first;
    try {
      completion.reply = handler_(job.first, job.second);
    } catch (const std::exception& error) {
      logger().warn("handler threw (%s); dropping connection %llu", error.what(),
                    static_cast<unsigned long long>(job.first));
      completion.reply = std::nullopt;
    }
    {
      const util::LockGuard lock(completions_mutex_);
      completions_.push_back(std::move(completion));
    }
    wake();
  }
}

void EpollServer::loop() {
  std::vector<epoll_event> events(256);
  const bool sweeping = config_.idle_timeout_s > 0 || config_.write_timeout_s > 0;
  std::int64_t last_sweep = now_ms();
  while (running_.load(std::memory_order_acquire)) {
    const int timeout_ms = sweeping ? 200 : -1;
    const int n = ::epoll_wait(epoll_.get(), events.data(), static_cast<int>(events.size()),
                               timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        handle_accept();
        continue;
      }
      if (tag == kWakeupTag) {
        std::uint64_t drained = 0;
        while (::read(wakeup_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      const auto it = connections_.find(tag);
      if (it == connections_.end()) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(tag);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!flush(it->second)) {
          close_connection(tag);
          continue;
        }
        update_interest(tag, it->second);
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(tag, it->second);
    }
    drain_completions();
    if (sweeping && now_ms() - last_sweep >= 200) {
      last_sweep = now_ms();
      sweep_timeouts();
    }
  }
  // Deterministic teardown: the loop thread owns every connection, so
  // closing them here cannot race an accept or a read.
  for (auto& [id, connection] : connections_) connection.socket.reset();
  connections_.clear();
  connections_open_.store(0);
  if (listener_.valid()) {
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
  }
}

void EpollServer::handle_accept() {
  for (;;) {
    Fd accepted(::accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!accepted.valid()) return;  // EAGAIN or transient error: back to the loop
    const int one = 1;
    ::setsockopt(accepted.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_connection_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, accepted.get(), &ev) != 0) continue;
    Connection connection;
    connection.socket = std::move(accepted);
    connection.last_activity_ms = now_ms();
    connections_.emplace(id, std::move(connection));
    ++connections_accepted_;
    connections_open_.store(connections_.size());
  }
}

void EpollServer::handle_readable(std::uint64_t id, Connection& connection) {
  char scratch[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(connection.socket.get(), scratch, sizeof(scratch), 0);
    if (n > 0) {
      connection.buffer.append(scratch, static_cast<std::size_t>(n));
      connection.last_activity_ms = now_ms();
      if (n < static_cast<ssize_t>(sizeof(scratch))) break;
      continue;
    }
    if (n == 0) {
      close_connection(id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(id);
    return;
  }
  parse_frames(id, connection);
}

void EpollServer::parse_frames(std::uint64_t id, Connection& connection) {
  std::size_t consumed = 0;
  bool submitted = false;
  while (connection.in_flight < config_.max_in_flight_per_connection) {
    const std::size_t available = connection.buffer.size() - consumed;
    if (available < sizeof(std::uint32_t)) break;
    std::uint32_t length = 0;
    std::memcpy(&length, connection.buffer.data() + consumed, sizeof(length));
    if (length > kMaxFrameBytes) {
      ++frames_rejected_;
      close_connection(id);
      return;
    }
    if (available < sizeof(length) + length) break;
    std::string frame = connection.buffer.substr(consumed + sizeof(length), length);
    consumed += sizeof(length) + length;
    ++connection.in_flight;
    {
      const util::LockGuard lock(queue_mutex_);
      queue_.emplace_back(id, std::move(frame));
    }
    submitted = true;
  }
  if (consumed > 0) connection.buffer.erase(0, consumed);
  if (submitted) queue_cv_.notify_all();
  const bool should_pause = connection.in_flight >= config_.max_in_flight_per_connection;
  if (should_pause != connection.read_paused) {
    connection.read_paused = should_pause;
    update_interest(id, connection);
  }
}

void EpollServer::drain_completions() {
  std::vector<Completion> batch;
  {
    const util::LockGuard lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) apply_completion(completion);
}

void EpollServer::apply_completion(Completion& completion) {
  const auto it = connections_.find(completion.connection_id);
  if (it == connections_.end()) return;  // connection closed while executing
  Connection& connection = it->second;
  --connection.in_flight;
  if (!completion.reply.has_value()) {
    ++frames_rejected_;
    close_connection(completion.connection_id);
    return;
  }
  ReplyFrame& reply = *completion.reply;
  const std::int64_t wire_size = reply.wire_size();
  if (wire_size > static_cast<std::int64_t>(kMaxFrameBytes)) {
    ++frames_rejected_;
    close_connection(completion.connection_id);
    return;
  }
  OutItem item;
  Writer prefix;
  prefix.u32(static_cast<std::uint32_t>(wire_size));
  item.bytes = prefix.take();
  item.bytes.append(reply.bytes);
  if (reply.file.valid() && reply.file_length > 0) {
    item.file = std::move(reply.file);
    item.file_offset = reply.file_offset;
    item.file_remaining = reply.file_length;
  }
  const bool was_empty = connection.out.empty();
  connection.out.push_back(std::move(item));
  if (was_empty) connection.write_stalled_ms = now_ms();
  ++requests_served_;
  if (!flush(connection)) {
    close_connection(completion.connection_id);
    return;
  }
  if (connection.read_paused &&
      connection.in_flight < config_.max_in_flight_per_connection) {
    connection.read_paused = false;
    parse_frames(completion.connection_id, connection);
    // parse_frames may re-pause; either way interest is now consistent.
    if (connections_.find(completion.connection_id) == connections_.end()) return;
  }
  update_interest(completion.connection_id, connection);
}

bool EpollServer::flush(Connection& connection) {
  while (!connection.out.empty()) {
    OutItem& item = connection.out.front();
    if (item.sent < item.bytes.size()) {
      const ssize_t n =
          ::send(connection.socket.get(), item.bytes.data() + item.sent,
                 item.bytes.size() - item.sent, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // EPOLLOUT re-arms
        return false;
      }
      item.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (item.file.valid() && item.file_remaining > 0) {
      off_t offset = static_cast<off_t>(item.file_offset);
      const std::size_t step =
          static_cast<std::size_t>(std::min(item.file_remaining, kFileStepBytes));
      const ssize_t n = ::sendfile(connection.socket.get(), item.file.get(), &offset, step);
      if (n > 0) {
        item.file_offset += n;
        item.file_remaining -= n;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && (errno == EINVAL || errno == ENOSYS)) {
        // sendfile refused (unusual fs): fall back to pread+send by turning
        // the next slice step into an inline byte item.
        std::string spill(step, '\0');
        const ssize_t got = ::pread(item.file.get(), spill.data(), step,
                                    static_cast<off_t>(item.file_offset));
        if (got <= 0) return false;  // truncated content: the frame length is a lie
        spill.resize(static_cast<std::size_t>(got));
        item.file_offset += got;
        item.file_remaining -= got;
        item.bytes = std::move(spill);
        item.sent = 0;
        continue;
      }
      // n == 0 before the slice is done: the content file shrank under us.
      // The frame length prefix can no longer be honored — close.
      return false;
    }
    connection.out.pop_front();
    connection.write_stalled_ms = connection.out.empty() ? -1 : now_ms();
  }
  return true;
}

void EpollServer::update_interest(std::uint64_t id, Connection& connection) {
  const bool want_write = !connection.out.empty();
  epoll_event ev{};
  ev.events = (connection.read_paused ? 0u : static_cast<unsigned>(EPOLLIN)) |
              (want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
  ev.data.u64 = id;
  connection.want_write = want_write;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, connection.socket.get(), &ev);
}

void EpollServer::close_connection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, it->second.socket.get(), nullptr);
  connections_.erase(it);
  connections_open_.store(connections_.size());
}

void EpollServer::sweep_timeouts() {
  const std::int64_t now = now_ms();
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, connection] : connections_) {
    if (config_.write_timeout_s > 0 && connection.write_stalled_ms >= 0 &&
        now - connection.write_stalled_ms >
            static_cast<std::int64_t>(config_.write_timeout_s * 1000.0)) {
      doomed.push_back(id);  // the peer stopped reading its replies
      continue;
    }
    if (config_.idle_timeout_s > 0 && connection.in_flight == 0 && connection.out.empty() &&
        now - connection.last_activity_ms >
            static_cast<std::int64_t>(config_.idle_timeout_s * 1000.0)) {
      doomed.push_back(id);
    }
  }
  for (const std::uint64_t id : doomed) close_connection(id);
}

}  // namespace bitdew::rpc
