#include "rpc/server.hpp"

#include <sys/socket.h>

#include <utility>

#include "api/service_ops.hpp"
#include "util/log.hpp"

namespace bitdew::rpc {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("servicehost");
  return instance;
}

}  // namespace

ServiceHost::ServiceHost(services::ServiceContainer& container, dht::LocalDht& ddc,
                         ServiceHostConfig config)
    : container_(container), ddc_(ddc), config_(config),
      data_shaper_(config.data_plane_upload_Bps) {}

ServiceHost::~ServiceHost() { stop(); }

api::Status ServiceHost::start() {
  if (running_.load()) return api::ok_status();
  auto listener = tcp_listen(config_.port, config_.loopback_only);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener->fd);
  port_ = listener->port;
  running_.store(true);
  acceptor_ = std::thread(&ServiceHost::accept_loop, this);
  if (config_.failure_sweep_period_s > 0) {
    sweeper_ = std::thread(&ServiceHost::sweep_loop, this);
  }
  logger().debug("listening on port %u", static_cast<unsigned>(port_));
  return api::ok_status();
}

void ServiceHost::sweep_loop() {
  const auto period = std::chrono::duration<double>(config_.failure_sweep_period_s);
  std::unique_lock lock(sweep_mutex_);
  while (running_.load()) {
    sweep_cv_.wait_for(lock, period, [this] { return !running_.load(); });
    if (!running_.load()) break;
    std::vector<services::HostName> dead;
    {
      const std::lock_guard container_lock(container_mutex_);
      dead = container_.ds().detect_failures();
    }
    for (const services::HostName& host : dead) {
      logger().info("failure sweep: host %s declared dead", host.c_str());
    }
  }
}

void ServiceHost::stop() {
  if (!running_.exchange(false)) return;
  {
    // Pair with the sweeper's CV wait: without this the notify can land
    // between its predicate check and the park, costing a full sweep
    // period of shutdown latency.
    const std::lock_guard lock(sweep_mutex_);
  }
  sweep_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
  // Wake the acceptor out of poll() and the workers out of recv().
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  {
    const std::lock_guard lock(connections_mutex_);
    for (const auto& [id, fd] : live_connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::unordered_map<std::uint64_t, std::thread> workers;
  {
    const std::lock_guard lock(connections_mutex_);
    workers.swap(workers_);
    finished_workers_.clear();
  }
  for (auto& [id, worker] : workers) {
    if (worker.joinable()) worker.join();
  }
  listener_.reset();
}

void ServiceHost::reap_finished_workers() {
  std::vector<std::thread> finished;
  {
    const std::lock_guard lock(connections_mutex_);
    for (const std::uint64_t id : finished_workers_) {
      const auto it = workers_.find(id);
      if (it == workers_.end()) continue;
      finished.push_back(std::move(it->second));
      workers_.erase(it);
    }
    finished_workers_.clear();
  }
  // Join outside the lock: the worker announced itself finished as its
  // last statement, so these joins return immediately.
  for (std::thread& worker : finished) {
    if (worker.joinable()) worker.join();
  }
}

void ServiceHost::accept_loop() {
  while (running_.load()) {
    Fd accepted = tcp_accept(listener_.get(), 0.2);
    reap_finished_workers();  // keep a long-lived daemon's thread set bounded
    if (!accepted.valid()) continue;
    // Register the fd and spawn the worker under the same lock stop() uses
    // to sweep live connections, so a connection racing shutdown is either
    // dropped here or reliably woken by stop().
    const std::lock_guard lock(connections_mutex_);
    if (!running_.load()) break;
    ++connections_accepted_;
    const std::uint64_t id = next_connection_id_++;
    live_connections_.emplace(id, accepted.get());
    workers_.emplace(id,
                     std::thread(&ServiceHost::serve_connection, this, id, std::move(accepted)));
  }
}

void ServiceHost::serve_connection(std::uint64_t id, Fd socket) {
  while (running_.load()) {
    RecvResult request = recv_frame(socket.get(), config_.idle_timeout_s);
    if (request.status != IoStatus::kOk) {
      if (request.status == IoStatus::kOversize || request.status == IoStatus::kError) {
        ++frames_rejected_;
      }
      break;
    }

    Writer reply;
    try {
      Reader r(request.payload);
      const wire::FrameHeader header = wire::read_frame_header(r);
      const std::string body = dispatch(header.endpoint, r);
      if (!r.exhausted()) {
        ++frames_rejected_;
        break;  // trailing garbage behind the request: drop the connection
      }
      wire::write_frame_header(reply, header);
      reply.append_raw(body);
      if (header.endpoint == wire::Endpoint::kDrGetChunk) {
        // Shape OUTSIDE dispatch (the container lock is released): only the
        // data plane pays the uplink, control replies are never delayed.
        data_shaper_.consume(static_cast<std::int64_t>(body.size()));
      }
    } catch (const CodecError& error) {
      ++frames_rejected_;
      logger().debug("connection %llu: malformed frame (%s), dropping",
                     static_cast<unsigned long long>(id), error.what());
      break;
    } catch (const std::exception& error) {
      ++frames_rejected_;
      logger().warn("connection %llu: dispatch failed (%s), dropping",
                    static_cast<unsigned long long>(id), error.what());
      break;
    }

    if (!send_frame(socket.get(), reply.buffer(), config_.write_timeout_s)) break;
    ++requests_served_;
  }

  socket.reset();
  const std::lock_guard lock(connections_mutex_);
  live_connections_.erase(id);
  finished_workers_.push_back(id);  // reaped by the acceptor (or stop())
}

std::string ServiceHost::dispatch(wire::Endpoint endpoint, Reader& r) {
  namespace ops = api::ops;
  using wire::Endpoint;

  Writer w;
  const std::lock_guard lock(container_mutex_);
  switch (endpoint) {
    case Endpoint::kPing:
      break;  // empty reply body: liveness only

    // --- Data Catalog --------------------------------------------------------
    case Endpoint::kDcRegister:
      wire::write_status(w, ops::dc_register(container_, wire::read_data(r)));
      break;
    case Endpoint::kDcGet:
      wire::write_expected(w, ops::dc_get(container_, wire::read_auid(r)), wire::write_data);
      break;
    case Endpoint::kDcSearch:
      wire::write_expected(w, ops::dc_search(container_, r.str()), wire::write_data_list);
      break;
    case Endpoint::kDcRemove:
      wire::write_status(w, ops::dc_remove(container_, wire::read_auid(r)));
      break;
    case Endpoint::kDcAddLocator:
      wire::write_status(w, ops::dc_add_locator(container_, wire::read_locator(r)));
      break;
    case Endpoint::kDcLocators:
      wire::write_expected(w, ops::dc_locators(container_, wire::read_auid(r)),
                           wire::write_locator_list);
      break;

    // --- Data Repository -----------------------------------------------------
    case Endpoint::kDrPut: {
      const core::Data data = wire::read_data(r);
      const core::Content content = wire::read_content(r);
      const std::string protocol = r.str();
      wire::write_expected(w, ops::dr_put(container_, data, content, protocol),
                           wire::write_locator);
      break;
    }
    case Endpoint::kDrGet:
      wire::write_expected(w, ops::dr_get(container_, wire::read_auid(r)),
                           wire::write_content);
      break;
    case Endpoint::kDrRemove:
      wire::write_status(w, ops::dr_remove(container_, wire::read_auid(r)));
      break;
    case Endpoint::kDrPutStart:
      wire::write_expected(w, ops::dr_put_start(container_, wire::read_data(r)),
                           [](Writer& wr, std::int64_t offset) { wr.i64(offset); });
      break;
    case Endpoint::kDrPutChunk: {
      const util::Auid uid = wire::read_auid(r);
      const std::int64_t offset = r.i64();
      const std::string bytes = r.str();
      wire::write_status(w, ops::dr_put_chunk(container_, uid, offset, bytes));
      break;
    }
    case Endpoint::kDrPutCommit: {
      const util::Auid uid = wire::read_auid(r);
      const std::string protocol = r.str();
      wire::write_expected(w, ops::dr_put_commit(container_, uid, protocol),
                           wire::write_locator);
      break;
    }
    case Endpoint::kDrGetChunk: {
      const util::Auid uid = wire::read_auid(r);
      const std::int64_t offset = r.i64();
      const std::int64_t max_bytes = r.i64();
      wire::write_expected(w, ops::dr_get_chunk(container_, uid, offset, max_bytes),
                           [](Writer& wr, const std::string& bytes) { wr.str(bytes); });
      break;
    }
    case Endpoint::kDrStats:
      wire::write_expected(w, ops::dr_stats(container_), wire::write_repo_stats);
      break;

    // --- Data Transfer -------------------------------------------------------
    case Endpoint::kDtRegister: {
      const core::Data data = wire::read_data(r);
      const std::string source = r.str();
      const std::string destination = r.str();
      const std::string protocol = r.str();
      wire::write_expected(w, ops::dt_register(container_, data, source, destination, protocol),
                           [](Writer& wr, services::TicketId ticket) { wr.u64(ticket); });
      break;
    }
    case Endpoint::kDtMonitor: {
      const services::TicketId ticket = r.u64();
      const std::int64_t done_bytes = r.i64();
      wire::write_status(w, ops::dt_monitor(container_, ticket, done_bytes));
      break;
    }
    case Endpoint::kDtComplete: {
      const services::TicketId ticket = r.u64();
      const std::string received = r.str();
      const std::string expected = r.str();
      wire::write_status(w, ops::dt_complete(container_, ticket, received, expected));
      break;
    }
    case Endpoint::kDtFailure: {
      const services::TicketId ticket = r.u64();
      const std::int64_t bytes_held = r.i64();
      const bool can_resume = r.boolean();
      wire::write_status(w, ops::dt_failure(container_, ticket, bytes_held, can_resume));
      break;
    }
    case Endpoint::kDtGiveUp:
      wire::write_status(w, ops::dt_give_up(container_, r.u64()));
      break;

    // --- Data Scheduler ------------------------------------------------------
    case Endpoint::kDsSchedule: {
      const core::Data data = wire::read_data(r);
      const core::DataAttributes attributes = wire::read_attributes(r);
      wire::write_status(w, ops::ds_schedule(container_, data, attributes));
      break;
    }
    case Endpoint::kDsPin: {
      const util::Auid uid = wire::read_auid(r);
      const std::string host = r.str();
      wire::write_status(w, ops::ds_pin(container_, uid, host));
      break;
    }
    case Endpoint::kDsUnschedule:
      wire::write_status(w, ops::ds_unschedule(container_, wire::read_auid(r)));
      break;
    case Endpoint::kDsSync: {
      const std::string host = r.str();
      const std::vector<util::Auid> cache = wire::read_auid_list(r);
      const std::vector<util::Auid> in_flight = wire::read_auid_list(r);
      const std::string endpoint = r.str();
      wire::write_expected(w, ops::ds_sync(container_, host, cache, in_flight, endpoint),
                           wire::write_sync_reply);
      break;
    }
    case Endpoint::kDsHosts:
      wire::write_expected(w, ops::ds_hosts(container_), wire::write_host_list);
      break;

    // --- Distributed Data Catalog --------------------------------------------
    case Endpoint::kDdcPublish: {
      const std::string key = r.str();
      const std::string value = r.str();
      wire::write_status(w, ops::ddc_publish(ddc_, key, value));
      break;
    }
    case Endpoint::kDdcSearch:
      wire::write_expected(w, ops::ddc_search(ddc_, r.str()), wire::write_string_list);
      break;

    // --- bulk endpoints ------------------------------------------------------
    case Endpoint::kDcRegisterBatch:
      wire::write_status_batch(
          w, ops::dc_register_batch(container_, wire::read_register_batch(r)));
      break;
    case Endpoint::kDcLocatorsBatch:
      wire::write_locators_batch_reply(
          w, ops::dc_locators_batch(container_, wire::read_locators_batch_request(r)));
      break;
    case Endpoint::kDsScheduleBatch: {
      std::vector<services::ScheduledData> items;
      for (auto& [data, attributes] : wire::read_schedule_batch(r)) {
        items.push_back({std::move(data), std::move(attributes)});
      }
      wire::write_status_batch(w, ops::ds_schedule_batch(container_, items));
      break;
    }
    case Endpoint::kDdcPublishBatch:
      wire::write_status_batch(w, ops::ddc_publish_batch(ddc_, wire::read_publish_batch(r)));
      break;
  }
  return w.take();
}

}  // namespace bitdew::rpc
