#include "rpc/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/service_ops.hpp"
#include "util/log.hpp"

namespace bitdew::rpc {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("servicehost");
  return instance;
}

EpollServerConfig server_config(const ServiceHostConfig& config) {
  EpollServerConfig out;
  out.port = config.port;
  out.loopback_only = config.loopback_only;
  out.idle_timeout_s = config.idle_timeout_s;
  out.write_timeout_s = config.write_timeout_s;
  out.worker_threads = config.worker_threads;
  out.max_in_flight_per_connection = config.max_in_flight_per_connection;
  return out;
}

}  // namespace

ServiceHost::ServiceHost(services::ServiceContainer& container, dht::LocalDht& ddc,
                         ServiceHostConfig config)
    : container_(container), ddc_(ddc), config_(config),
      server_(
          [this](std::uint64_t id, const std::string& payload) {
            return handle_frame(id, payload);
          },
          server_config(config)),
      data_shaper_(config.data_plane_upload_Bps) {}

ServiceHost::~ServiceHost() { stop(); }

api::Status ServiceHost::start() {
  if (running_.load()) return api::ok_status();
  const api::Status started = server_.start();
  if (!started.ok()) return started;
  running_.store(true);
  if (config_.failure_sweep_period_s > 0) {
    sweeper_ = std::thread(&ServiceHost::sweep_loop, this);
  }
  logger().debug("listening on port %u", static_cast<unsigned>(port()));
  return api::ok_status();
}

void ServiceHost::sweep_loop() {
  using clock_t = std::chrono::steady_clock;
  auto last_sweep = clock_t::now();
  auto last_tick = last_sweep;
  util::UniqueLock lock(sweep_mutex_);
  while (running_.load()) {
    const bool ring = ring_active_.load(std::memory_order_acquire);
    const double sweep_s = config_.failure_sweep_period_s;
    const double ring_s = ring ? ring_->config().stabilize_period_s : 0;
    double wait_s = 3600;
    if (sweep_s > 0) wait_s = std::min(wait_s, sweep_s);
    if (ring_s > 0) wait_s = std::min(wait_s, ring_s);
    const auto wake_at =
        clock_t::now() +
        std::chrono::duration_cast<clock_t::duration>(std::chrono::duration<double>(wait_s));
    while (running_.load() &&
           sweep_cv_.wait_until(lock, wake_at) != std::cv_status::timeout) {
    }
    if (!running_.load()) break;
    const auto now = clock_t::now();
    if (sweep_s > 0 &&
        std::chrono::duration<double>(now - last_sweep).count() + 1e-3 >= sweep_s) {
      last_sweep = now;
      std::vector<services::HostName> dead;
      std::size_t requeued = 0;
      {
        const util::LockGuard container_lock(container_mutex_);
        dead = container_.ds().detect_failures();
        // Job sweep rides the same beat: tasks whose runner just died (or
        // whose claim went overdue) are re-queued, and stale waiting tasks
        // loosen to any-host placement.
        requeued = container_.jobs().sweep();
      }
      for (const services::HostName& host : dead) {
        logger().info("failure sweep: host %s declared dead", host.c_str());
      }
      if (requeued > 0) {
        logger().info("job sweep: %zu task(s) re-placed", requeued);
      }
    }
    if (ring && std::chrono::duration<double>(now - last_tick).count() + 1e-3 >= ring_s) {
      last_tick = now;
      // Stabilization makes real RPCs: release sweep_mutex_ so stop() is
      // never parked behind a ring call timing out.
      lock.unlock();
      ring_->tick();
      router_->repair();
      lock.lock();
    }
  }
}

api::Status ServiceHost::start_ring(const RingOptions& options) {
  if (!running_.load()) {
    return api::Error{api::Errc::kUnavailable, "ring", "host not started"};
  }
  if (ring_active_.load(std::memory_order_acquire)) return api::ok_status();

  services::RingRouter::Hooks hooks;
  hooks.with_store = [this](const std::function<void()>& fn) {
    const util::LockGuard lock(container_mutex_);
    fn();
  };
  hooks.apply = [this](wire::Endpoint endpoint, Reader& r) {
    // Contract: the router only invokes apply inside with_store — the
    // capability is genuinely held, just through a std::function the
    // analysis cannot see into.
    container_mutex_.assert_held();
    return dispatch_unlocked(endpoint, r);
  };
  router_ = std::make_unique<services::RingRouter>(container_, ddc_, std::move(hooks));

  dht::LiveRingConfig ring_config;
  ring_config.ring_id = options.ring_id;
  ring_config.endpoint = options.advertise_host + ":" + std::to_string(port());
  ring_config.join_endpoint = options.join_endpoint;
  ring_config.arity = options.arity;
  ring_config.replication = options.replication_f;
  ring_config.stabilize_period_s = options.stabilize_period_s;
  ring_config.call_timeout_s = options.call_timeout_s;
  ring_ = std::make_unique<dht::LiveRing>(
      ring_config,
      [this](std::uint64_t from, std::uint64_t to) { return router_->ops_in_range(from, to); },
      [this](const std::vector<wire::RingOp>& ops) { router_->apply_ops(ops, false); });
  router_->attach(*ring_);
  router_->restore_persisted_state();

  // Publish before joining: the admitting member (and its peers) start
  // sending us lookups and stores as soon as the join is acknowledged.
  ring_active_.store(true, std::memory_order_release);
  const api::Status started = ring_->start();
  if (!started.ok()) {
    ring_active_.store(false, std::memory_order_release);
    return started;
  }
  // The sweep thread drives stabilization; make sure one exists even when
  // the failure sweep is disabled.
  if (!sweeper_.joinable()) sweeper_ = std::thread(&ServiceHost::sweep_loop, this);
  logger().info("ring member %s active (f=%d, k=%d)", ring_->self().endpoint.c_str(),
                ring_config.replication, ring_config.arity);
  return api::ok_status();
}

void ServiceHost::ring_leave() {
  if (!ring_active_.load(std::memory_order_acquire)) return;
  ring_->leave();
}

void ServiceHost::stop() {
  if (!running_.exchange(false)) return;
  {
    // Pair with the sweeper's CV wait: without this the notify can land
    // between its predicate check and the park, costing a full sweep
    // period of shutdown latency.
    const util::LockGuard lock(sweep_mutex_);
  }
  sweep_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
  // The readiness loop closes the listener and every live connection before
  // its thread exits; the worker pool is drained and joined after it. No
  // thread can race a late accept.
  server_.stop();
}

std::optional<ReplyFrame> ServiceHost::handle_frame(std::uint64_t id,
                                                    const std::string& payload) {
  try {
    Reader r(payload);
    const wire::FrameHeader header = wire::read_frame_header(r);
    if (header.endpoint == wire::Endpoint::kDrGetChunk) {
      // The data plane is never ring-routed (chunks live where the content
      // lives), so the zero-copy fast path applies in ring mode too.
      return chunk_reply(header, r);
    }
    const std::string body = dispatch(header.endpoint, r);
    if (!r.exhausted()) {
      logger().debug("connection %llu: trailing garbage behind request, dropping",
                     static_cast<unsigned long long>(id));
      return std::nullopt;
    }
    ReplyFrame reply;
    Writer w;
    wire::write_frame_header(w, header);
    w.append_raw(body);
    reply.bytes = w.take();
    if (header.endpoint == wire::Endpoint::kDrGetChunk) {
      // Shape OUTSIDE dispatch (the container lock is released): only the
      // data plane pays the uplink, control replies are never delayed.
      data_shaper_.consume(static_cast<std::int64_t>(body.size()));
    }
    return reply;
  } catch (const CodecError& error) {
    logger().debug("connection %llu: malformed frame (%s), dropping",
                   static_cast<unsigned long long>(id), error.what());
    return std::nullopt;
  } catch (const std::exception& error) {
    logger().warn("connection %llu: dispatch failed (%s), dropping",
                  static_cast<unsigned long long>(id), error.what());
    return std::nullopt;
  }
}

std::optional<ReplyFrame> ServiceHost::chunk_reply(const wire::FrameHeader& header,
                                                   Reader& r) {
  // Zero-copy fast path: answer file-backed content as an fd slice the
  // readiness loop ships with sendfile. The reply body is byte-identical to
  // what write_expected(w, Expected<string>, str) would produce — the
  // client's read_expected + r.str() cannot tell the difference.
  const util::Auid uid = wire::read_auid(r);
  const std::int64_t offset = r.i64();
  const std::int64_t max_bytes = r.i64();
  if (!r.exhausted()) return std::nullopt;

  api::Expected<ChunkRef> chunk = [&]() -> api::Expected<ChunkRef> {
    const util::LockGuard lock(container_mutex_);
    return api::ops::dr_get_chunk_ref(container_, uid, offset, max_bytes);
  }();

  ReplyFrame reply;
  Writer w;
  wire::write_frame_header(w, header);
  if (!chunk.ok()) {
    wire::write_status(w, api::Status(chunk.error()));
    reply.bytes = w.take();
    return reply;
  }
  const std::int64_t size = chunk->size();
  w.boolean(true);  // Expected<string> success ...
  w.u32(static_cast<std::uint32_t>(size));  // ... and the str() length prefix
  if (chunk->file_backed()) {
    reply.file = std::move(chunk->file);
    reply.file_offset = chunk->offset;
    reply.file_length = chunk->length;
  } else {
    w.append_raw(chunk->bytes);
  }
  reply.bytes = w.take();
  data_shaper_.consume(size);
  return reply;
}

std::string ServiceHost::dispatch(wire::Endpoint endpoint, Reader& r) {
  if (ring_active_.load(std::memory_order_acquire)) {
    // Ring frames first — handle_join reaches back into the store through
    // the router's hooks, so they must not run under the container lock.
    if (auto reply = ring_dispatch(endpoint, r)) return std::move(*reply);
    // Then hash routing for the keyed catalog plane.
    if (auto reply = router_->route(endpoint, r)) return std::move(*reply);
  }
  return local_dispatch(endpoint, r);
}

std::optional<std::string> ServiceHost::ring_dispatch(wire::Endpoint endpoint, Reader& r) {
  using wire::Endpoint;
  Writer w;
  switch (endpoint) {
    case Endpoint::kRingLookup:
      wire::write_expected(w, api::Expected<wire::RingLookupReply>(ring_->handle_lookup(r.u64())),
                           wire::write_ring_lookup_reply);
      break;
    case Endpoint::kRingJoin:
      wire::write_expected(w, ring_->handle_join(wire::read_ring_node(r)),
                           wire::write_ring_join_reply);
      break;
    case Endpoint::kRingNotify:
      ring_->handle_notify(wire::read_ring_node(r));
      wire::write_status(w, api::ok_status());
      break;
    case Endpoint::kRingStabilize:
      wire::write_expected(w,
                           api::Expected<wire::RingStabilizeReply>(ring_->handle_stabilize()),
                           wire::write_ring_stabilize_reply);
      break;
    case Endpoint::kRingStore: {
      const wire::RingStoreRequest request = wire::read_ring_store_request(r);
      wire::write_status_batch(w, router_->apply_ops(request.ops, request.replicate));
      break;
    }
    case Endpoint::kRingLeave:
      ring_->handle_leave(wire::read_ring_leave_request(r));
      wire::write_status(w, api::ok_status());
      break;
    case Endpoint::kRingInfo: {
      wire::RingStatusInfo info = ring_->status();
      router_->fill_counts(info);
      wire::write_expected(w, api::Expected<wire::RingStatusInfo>(std::move(info)),
                           wire::write_ring_status_info);
      break;
    }
    case Endpoint::kRingSearch:
      // A peer's dc_search fan-out: answer from the local shard only —
      // kDcSearch through dispatch() would fan out all over again.
      return local_dispatch(Endpoint::kDcSearch, r);
    default:
      return std::nullopt;
  }
  return w.take();
}

std::string ServiceHost::local_dispatch(wire::Endpoint endpoint, Reader& r) {
  const util::LockGuard lock(container_mutex_);
  return dispatch_unlocked(endpoint, r);
}

std::string ServiceHost::dispatch_unlocked(wire::Endpoint endpoint, Reader& r) {
  namespace ops = api::ops;
  using wire::Endpoint;

  Writer w;
  switch (endpoint) {
    case Endpoint::kPing:
      break;  // empty reply body: liveness only

    // --- Data Catalog --------------------------------------------------------
    case Endpoint::kDcRegister:
      wire::write_status(w, ops::dc_register(container_, wire::read_data(r)));
      break;
    case Endpoint::kDcGet:
      wire::write_expected(w, ops::dc_get(container_, wire::read_auid(r)), wire::write_data);
      break;
    case Endpoint::kDcSearch:
      wire::write_expected(w, ops::dc_search(container_, r.str()), wire::write_data_list);
      break;
    case Endpoint::kDcRemove:
      wire::write_status(w, ops::dc_remove(container_, wire::read_auid(r)));
      break;
    case Endpoint::kDcAddLocator:
      wire::write_status(w, ops::dc_add_locator(container_, wire::read_locator(r)));
      break;
    case Endpoint::kDcLocators:
      wire::write_expected(w, ops::dc_locators(container_, wire::read_auid(r)),
                           wire::write_locator_list);
      break;

    // --- Data Repository -----------------------------------------------------
    case Endpoint::kDrPut: {
      const core::Data data = wire::read_data(r);
      const core::Content content = wire::read_content(r);
      const std::string protocol = r.str();
      wire::write_expected(w, ops::dr_put(container_, data, content, protocol),
                           wire::write_locator);
      break;
    }
    case Endpoint::kDrGet:
      wire::write_expected(w, ops::dr_get(container_, wire::read_auid(r)),
                           wire::write_content);
      break;
    case Endpoint::kDrRemove:
      wire::write_status(w, ops::dr_remove(container_, wire::read_auid(r)));
      break;
    case Endpoint::kDrPutStart:
      wire::write_expected(w, ops::dr_put_start(container_, wire::read_data(r)),
                           [](Writer& wr, std::int64_t offset) { wr.i64(offset); });
      break;
    case Endpoint::kDrPutChunk: {
      const util::Auid uid = wire::read_auid(r);
      const std::int64_t offset = r.i64();
      const std::string bytes = r.str();
      wire::write_status(w, ops::dr_put_chunk(container_, uid, offset, bytes));
      break;
    }
    case Endpoint::kDrPutCommit: {
      const util::Auid uid = wire::read_auid(r);
      const std::string protocol = r.str();
      wire::write_expected(w, ops::dr_put_commit(container_, uid, protocol),
                           wire::write_locator);
      break;
    }
    case Endpoint::kDrGetChunk: {
      // Network traffic takes handle_frame's zero-copy chunk_reply instead;
      // this arm keeps the endpoint dispatchable for in-process callers.
      const util::Auid uid = wire::read_auid(r);
      const std::int64_t offset = r.i64();
      const std::int64_t max_bytes = r.i64();
      wire::write_expected(w, ops::dr_get_chunk(container_, uid, offset, max_bytes),
                           [](Writer& wr, const std::string& bytes) { wr.str(bytes); });
      break;
    }
    case Endpoint::kDrStats:
      wire::write_expected(w, ops::dr_stats(container_), wire::write_repo_stats);
      break;

    // --- Data Transfer -------------------------------------------------------
    case Endpoint::kDtRegister: {
      const core::Data data = wire::read_data(r);
      const std::string source = r.str();
      const std::string destination = r.str();
      const std::string protocol = r.str();
      wire::write_expected(w, ops::dt_register(container_, data, source, destination, protocol),
                           [](Writer& wr, services::TicketId ticket) { wr.u64(ticket); });
      break;
    }
    case Endpoint::kDtMonitor: {
      const services::TicketId ticket = r.u64();
      const std::int64_t done_bytes = r.i64();
      wire::write_status(w, ops::dt_monitor(container_, ticket, done_bytes));
      break;
    }
    case Endpoint::kDtComplete: {
      const services::TicketId ticket = r.u64();
      const std::string received = r.str();
      const std::string expected = r.str();
      wire::write_status(w, ops::dt_complete(container_, ticket, received, expected));
      break;
    }
    case Endpoint::kDtFailure: {
      const services::TicketId ticket = r.u64();
      const std::int64_t bytes_held = r.i64();
      const bool can_resume = r.boolean();
      wire::write_status(w, ops::dt_failure(container_, ticket, bytes_held, can_resume));
      break;
    }
    case Endpoint::kDtGiveUp:
      wire::write_status(w, ops::dt_give_up(container_, r.u64()));
      break;

    // --- Data Scheduler ------------------------------------------------------
    case Endpoint::kDsSchedule: {
      const core::Data data = wire::read_data(r);
      const core::DataAttributes attributes = wire::read_attributes(r);
      wire::write_status(w, ops::ds_schedule(container_, data, attributes));
      break;
    }
    case Endpoint::kDsPin: {
      const util::Auid uid = wire::read_auid(r);
      const std::string host = r.str();
      wire::write_status(w, ops::ds_pin(container_, uid, host));
      break;
    }
    case Endpoint::kDsUnschedule:
      wire::write_status(w, ops::ds_unschedule(container_, wire::read_auid(r)));
      break;
    case Endpoint::kDsSync: {
      // A frame from a different sync-protocol generation (or a truncated
      // one) gets a typed kRejected reply instead of a dropped connection:
      // a mixed-version worker fails its beat cleanly and keeps retrying
      // full syncs until upgraded, rather than flapping its transport.
      try {
        const services::SyncRequest request = wire::read_sync_request(r);
        wire::write_expected(w, ops::ds_sync(container_, request), wire::write_sync_reply);
      } catch (const CodecError& error) {
        wire::write_expected(
            w,
            api::Expected<services::SyncReply>(
                api::Error{api::Errc::kRejected, "ds", error.what()}),
            wire::write_sync_reply);
      }
      break;
    }
    case Endpoint::kDsHosts:
      wire::write_expected(w, ops::ds_hosts(container_), wire::write_host_list);
      break;

    // --- Job service ---------------------------------------------------------
    case Endpoint::kJobSubmit:
      wire::write_expected(w, ops::job_submit(container_, wire::read_job_spec(r)),
                           wire::write_auid);
      break;
    case Endpoint::kJobStatus:
      wire::write_expected(w, ops::job_status(container_, wire::read_auid(r)),
                           wire::write_job_status_info);
      break;
    case Endpoint::kJobClaim: {
      const util::Auid task = wire::read_auid(r);
      const std::string runner = r.str();
      wire::write_expected(w, ops::job_claim(container_, task, runner),
                           wire::write_task_order);
      break;
    }
    case Endpoint::kJobTaskReport:
      wire::write_status(w, ops::job_task_report(container_, wire::read_task_report(r)));
      break;

    // --- Distributed Data Catalog --------------------------------------------
    case Endpoint::kDdcPublish: {
      const std::string key = r.str();
      const std::string value = r.str();
      wire::write_status(w, ops::ddc_publish(ddc_, key, value));
      break;
    }
    case Endpoint::kDdcSearch:
      wire::write_expected(w, ops::ddc_search(ddc_, r.str()), wire::write_string_list);
      break;

    // --- bulk endpoints ------------------------------------------------------
    case Endpoint::kDcRegisterBatch:
      wire::write_status_batch(
          w, ops::dc_register_batch(container_, wire::read_register_batch(r)));
      break;
    case Endpoint::kDcLocatorsBatch:
      wire::write_locators_batch_reply(
          w, ops::dc_locators_batch(container_, wire::read_locators_batch_request(r)));
      break;
    case Endpoint::kDsScheduleBatch: {
      std::vector<services::ScheduledData> items;
      for (auto& [data, attributes] : wire::read_schedule_batch(r)) {
        items.push_back({std::move(data), std::move(attributes)});
      }
      wire::write_status_batch(w, ops::ds_schedule_batch(container_, items));
      break;
    }
    case Endpoint::kDdcPublishBatch:
      wire::write_status_batch(w, ops::ddc_publish_batch(ddc_, wire::read_publish_batch(r)));
      break;

    // --- live ring ----------------------------------------------------------
    // Reached only when this host is not a ring member (active rings peel
    // kRing* off in ring_dispatch before the container lock is taken). The
    // error-status encoding is a valid prefix of every reply shape.
    case Endpoint::kRingLookup:
    case Endpoint::kRingJoin:
    case Endpoint::kRingNotify:
    case Endpoint::kRingStabilize:
    case Endpoint::kRingStore:
    case Endpoint::kRingLeave:
    case Endpoint::kRingInfo:
    case Endpoint::kRingSearch:
      r.skip(r.remaining());
      wire::write_status(w, api::Error{api::Errc::kUnavailable, "ring", "ring mode disabled"});
      break;

    case Endpoint::kEndpointCount:
      throw CodecError("endpoint sentinel is not dispatchable");
  }
  return w.take();
}

}  // namespace bitdew::rpc
