// EpollServer: the shared readiness-loop substrate under ServiceHost and
// ChunkServer. One loop thread owns an epoll set of nonblocking sockets —
// the listener, an eventfd wakeup, and every accepted connection with its
// per-connection read buffer and write queue. Complete frames are decoded
// off the read buffer and executed on a small worker pool, so a slow
// handler can never stall the loop or the other requests on the same
// socket; replies are enqueued in completion order, which means responses
// go out OUT OF ORDER relative to the requests on one connection — the
// frame header's request id is what matches them up again client-side
// (ClientChannel's demux). A reply may carry a file slice tail
// (rpc/chunk_ref.hpp): the loop ships it with sendfile (pread+send when
// sendfile is refused), so file-backed chunk replies never pass through a
// std::string.
//
// Backpressure: a connection with max_in_flight_per_connection requests
// executing has its EPOLLIN interest dropped until replies drain, so a
// client blasting frames cannot balloon the worker queue. Shutdown is
// deterministic: stop() parks the loop, which closes every connection and
// the listener before exiting; the worker pool is drained and joined after
// the loop thread — no thread ever races a late accept.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/expected.hpp"
#include "rpc/transport.hpp"
#include "util/thread_annotations.hpp"

namespace bitdew::rpc {

/// One encoded reply frame: `bytes` (frame header + body prefix), optionally
/// followed on the wire by `file_length` bytes read from `file` at
/// `file_offset`. The length prefix covers bytes.size() + file_length.
struct ReplyFrame {
  std::string bytes;
  Fd file;
  std::int64_t file_offset = 0;
  std::int64_t file_length = 0;

  std::int64_t wire_size() const {
    return static_cast<std::int64_t>(bytes.size()) + (file.valid() ? file_length : 0);
  }
};

struct EpollServerConfig {
  std::uint16_t port = 0;       ///< 0 = ephemeral (read back via port())
  bool loopback_only = false;   ///< bind 127.0.0.1 instead of INADDR_ANY
  double idle_timeout_s = -1;   ///< close quiet connections (<0 = never)
  double write_timeout_s = 30;  ///< reply send budget for a stalled reader
  int worker_threads = 0;       ///< handler pool size (0 = auto, >= 2)
  int max_in_flight_per_connection = 32;  ///< EPOLLIN pause threshold
};

class EpollServer {
 public:
  /// Executes one decoded request frame (header + body, the length prefix
  /// already stripped) and returns the reply frame, or nullopt to drop the
  /// connection (malformed frame, protocol violation). Runs on a worker
  /// thread: it may block, and it must be thread-safe.
  using Handler = std::function<std::optional<ReplyFrame>(std::uint64_t connection_id,
                                                          const std::string& frame)>;

  EpollServer(Handler handler, EpollServerConfig config);
  ~EpollServer();
  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Binds, listens, spawns the loop thread and the worker pool.
  /// Errc::kTransport when the port cannot be bound. Restartable after
  /// stop().
  api::Status start();

  /// Parks the loop (which closes every connection and the listener), then
  /// drains and joins the worker pool. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  std::uint64_t connections_accepted() const { return connections_accepted_.load(); }
  std::uint64_t requests_served() const { return requests_served_.load(); }
  /// Connections dropped for oversize, malformed or protocol-violating frames.
  std::uint64_t frames_rejected() const { return frames_rejected_.load(); }
  std::size_t connections_open() const { return connections_open_.load(); }

 private:
  struct OutItem {
    std::string bytes;          ///< length prefix + ReplyFrame::bytes
    std::size_t sent = 0;       ///< bytes already on the wire
    Fd file;                    ///< zero-copy tail (invalid = none)
    std::int64_t file_offset = 0;
    std::int64_t file_remaining = 0;
  };

  struct Connection {
    Fd socket;
    std::string buffer;            ///< unparsed inbound bytes
    std::deque<OutItem> out;       ///< replies awaiting the wire
    int in_flight = 0;             ///< requests executing or queued
    bool read_paused = false;      ///< EPOLLIN dropped (backpressure)
    bool want_write = false;       ///< EPOLLOUT armed
    std::int64_t last_activity_ms = 0;   ///< read-side idle clock
    std::int64_t write_stalled_ms = -1;  ///< when the out queue went non-empty
  };

  struct Completion {
    std::uint64_t connection_id = 0;
    std::optional<ReplyFrame> reply;
  };

  void loop();
  void worker();
  void handle_accept();
  void handle_readable(std::uint64_t id, Connection& connection);
  void parse_frames(std::uint64_t id, Connection& connection);
  /// Flushes the out queue; returns false when the connection must close.
  bool flush(Connection& connection);
  void drain_completions();
  void apply_completion(Completion& completion);
  void update_interest(std::uint64_t id, Connection& connection);
  void close_connection(std::uint64_t id);
  void sweep_timeouts();
  void wake();
  std::int64_t now_ms() const;

  Handler handler_;
  EpollServerConfig config_;

  Fd listener_;
  Fd epoll_;
  Fd wakeup_;  ///< eventfd: completion and stop notifications
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Loop-thread state: connections_ and next_connection_id_ are owned by
  // the single loop thread (created before it starts, torn down after it
  // joins) — single-owner by construction, so no capability guards them.
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::uint64_t next_connection_id_ = 0;

  util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  /// (connection id, frame) pairs awaiting a worker.
  std::deque<std::pair<std::uint64_t, std::string>> queue_ GUARDED_BY(queue_mutex_);
  bool workers_stop_ GUARDED_BY(queue_mutex_) = false;

  util::Mutex completions_mutex_ ACQUIRED_AFTER(queue_mutex_);
  std::vector<Completion> completions_ GUARDED_BY(completions_mutex_);

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::size_t> connections_open_{0};
};

}  // namespace bitdew::rpc
