#include "rpc/chunk_server.hpp"

#include <sys/socket.h>

#include <utility>

#include "services/data_repository.hpp"
#include "util/log.hpp"

namespace bitdew::rpc {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("chunkserver");
  return instance;
}

}  // namespace

ChunkServer::ChunkServer(ReadFn read, ChunkServerConfig config)
    : read_(std::move(read)), config_(config), shaper_(config.upload_Bps) {}

ChunkServer::~ChunkServer() { stop(); }

api::Status ChunkServer::start() {
  if (running_.load()) return api::ok_status();
  auto listener = tcp_listen(config_.port, config_.loopback_only);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener->fd);
  port_ = listener->port;
  running_.store(true);
  acceptor_ = std::thread(&ChunkServer::accept_loop, this);
  logger().debug("serving replica chunks on port %u", static_cast<unsigned>(port_));
  return api::ok_status();
}

void ChunkServer::stop() {
  if (!running_.exchange(false)) return;
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  {
    const std::lock_guard lock(connections_mutex_);
    for (const auto& [id, fd] : live_connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::unordered_map<std::uint64_t, std::thread> workers;
  {
    const std::lock_guard lock(connections_mutex_);
    workers.swap(workers_);
    finished_workers_.clear();
  }
  for (auto& [id, worker] : workers) {
    if (worker.joinable()) worker.join();
  }
  listener_.reset();
}

void ChunkServer::reap_finished_workers() {
  std::vector<std::thread> finished;
  {
    const std::lock_guard lock(connections_mutex_);
    for (const std::uint64_t id : finished_workers_) {
      const auto it = workers_.find(id);
      if (it == workers_.end()) continue;
      finished.push_back(std::move(it->second));
      workers_.erase(it);
    }
    finished_workers_.clear();
  }
  for (std::thread& worker : finished) {
    if (worker.joinable()) worker.join();
  }
}

void ChunkServer::accept_loop() {
  while (running_.load()) {
    Fd accepted = tcp_accept(listener_.get(), 0.2);
    reap_finished_workers();
    if (!accepted.valid()) continue;
    const std::lock_guard lock(connections_mutex_);
    if (!running_.load()) break;
    const std::uint64_t id = next_connection_id_++;
    live_connections_.emplace(id, accepted.get());
    workers_.emplace(id,
                     std::thread(&ChunkServer::serve_connection, this, id, std::move(accepted)));
  }
}

void ChunkServer::serve_connection(std::uint64_t id, Fd socket) {
  while (running_.load()) {
    RecvResult request = recv_frame(socket.get(), config_.idle_timeout_s);
    if (request.status != IoStatus::kOk) break;

    Writer reply;
    try {
      Reader r(request.payload);
      const wire::FrameHeader header = wire::read_frame_header(r);
      wire::write_frame_header(reply, header);
      if (header.endpoint == wire::Endpoint::kPing) {
        // empty body: liveness only
      } else if (header.endpoint == wire::Endpoint::kDrGetChunk) {
        const util::Auid uid = wire::read_auid(r);
        const std::int64_t offset = r.i64();
        const std::int64_t max_bytes = r.i64();
        api::Expected<std::string> bytes =
            api::Error{api::Errc::kInvalidArgument, "peer",
                       "bad chunk size " + std::to_string(max_bytes)};
        if (max_bytes > 0 && max_bytes <= services::kMaxChunkBytes) {
          bytes = read_(uid, offset, max_bytes);
        }
        if (bytes.ok()) {
          chunks_served_.fetch_add(1, std::memory_order_relaxed);
          bytes_served_.fetch_add(static_cast<std::int64_t>(bytes->size()),
                                  std::memory_order_relaxed);
          shaper_.consume(static_cast<std::int64_t>(bytes->size()));  // uplink cap
        }
        wire::write_expected(reply, bytes,
                             [](Writer& wr, const std::string& value) { wr.str(value); });
      } else {
        // A peer only serves chunk reads; anything else is a protocol
        // violation and the connection is dropped (same policy as a
        // malformed frame on a full ServiceHost).
        break;
      }
      if (!r.exhausted()) break;  // trailing garbage behind the request
    } catch (const std::exception& error) {
      logger().debug("connection %llu: malformed frame (%s), dropping",
                     static_cast<unsigned long long>(id), error.what());
      break;
    }

    if (!send_frame(socket.get(), reply.buffer(), config_.write_timeout_s)) break;
  }

  socket.reset();
  const std::lock_guard lock(connections_mutex_);
  live_connections_.erase(id);
  finished_workers_.push_back(id);
}

}  // namespace bitdew::rpc
