#include "rpc/chunk_server.hpp"

#include <utility>

#include "rpc/wire.hpp"
#include "services/data_repository.hpp"
#include "util/log.hpp"

namespace bitdew::rpc {
namespace {

const util::Logger& logger() {
  static const util::Logger instance("chunkserver");
  return instance;
}

EpollServerConfig server_config(const ChunkServerConfig& config) {
  EpollServerConfig out;
  out.port = config.port;
  out.loopback_only = config.loopback_only;
  out.idle_timeout_s = config.idle_timeout_s;
  out.write_timeout_s = config.write_timeout_s;
  return out;
}

}  // namespace

ChunkServer::ChunkServer(ReadFn read, ChunkServerConfig config)
    : read_(std::move(read)), config_(config),
      server_(
          [this](std::uint64_t id, const std::string& payload) {
            return handle_frame(id, payload);
          },
          server_config(config)),
      shaper_(config.upload_Bps) {}

ChunkServer::~ChunkServer() { stop(); }

api::Status ChunkServer::start() {
  const api::Status started = server_.start();
  if (started.ok()) {
    logger().debug("serving replica chunks on port %u", static_cast<unsigned>(port()));
  }
  return started;
}

void ChunkServer::stop() { server_.stop(); }

std::optional<ReplyFrame> ChunkServer::handle_frame(std::uint64_t id,
                                                    const std::string& payload) {
  try {
    Reader r(payload);
    const wire::FrameHeader header = wire::read_frame_header(r);
    if (header.endpoint == wire::Endpoint::kPing) {
      if (!r.exhausted()) return std::nullopt;
      ReplyFrame reply;
      Writer w;
      wire::write_frame_header(w, header);  // empty body: liveness only
      reply.bytes = w.take();
      return reply;
    }
    if (header.endpoint != wire::Endpoint::kDrGetChunk) {
      // A peer only serves chunk reads; anything else is a protocol
      // violation and the connection is dropped (same policy as a
      // malformed frame on a full ServiceHost).
      return std::nullopt;
    }

    const util::Auid uid = wire::read_auid(r);
    const std::int64_t offset = r.i64();
    const std::int64_t max_bytes = r.i64();
    if (!r.exhausted()) return std::nullopt;  // trailing garbage

    api::Expected<ChunkRef> chunk =
        api::Error{api::Errc::kInvalidArgument, "peer",
                   "bad chunk size " + std::to_string(max_bytes)};
    if (max_bytes > 0 && max_bytes <= services::kMaxChunkBytes) {
      chunk = read_(uid, offset, max_bytes);
    }

    ReplyFrame reply;
    Writer w;
    wire::write_frame_header(w, header);
    if (!chunk.ok()) {
      wire::write_status(w, api::Status(chunk.error()));
      reply.bytes = w.take();
      return reply;
    }
    const std::int64_t size = chunk->size();
    chunks_served_.fetch_add(1, std::memory_order_relaxed);
    bytes_served_.fetch_add(size, std::memory_order_relaxed);
    shaper_.consume(size);  // uplink cap, paid on the worker thread
    // Byte-identical to write_expected(w, Expected<string>, str): success
    // flag + length prefix, with the payload inline or as an fd slice the
    // readiness loop sendfiles behind it.
    w.boolean(true);
    w.u32(static_cast<std::uint32_t>(size));
    if (chunk->file_backed()) {
      reply.file = std::move(chunk->file);
      reply.file_offset = chunk->offset;
      reply.file_length = chunk->length;
    } else {
      w.append_raw(chunk->bytes);
    }
    reply.bytes = w.take();
    return reply;
  } catch (const std::exception& error) {
    logger().debug("connection %llu: malformed frame (%s), dropping",
                   static_cast<unsigned long long>(id), error.what());
    return std::nullopt;
  }
}

}  // namespace bitdew::rpc
