// TCP transport for the BitDew RPC protocol: length-prefixed frames over
// POSIX sockets. A frame on the socket is a u32 little-endian byte count
// followed by payload bytes (frame header + message body, see rpc/wire.hpp).
// The helpers here are deliberately low-level — connect/listen/accept,
// send_frame/recv_frame with deadlines — plus ClientChannel, the blocking
// one-call-at-a-time client connection RemoteServiceBus is built on. All
// failures are surfaced as values (IoStatus / Expected with Errc::kTransport),
// never as hangs: every receive takes a deadline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "api/expected.hpp"
#include "rpc/wire.hpp"

namespace bitdew::rpc {

/// Frames larger than this are rejected before allocation — a garbage or
/// hostile length prefix must not let a peer OOM the process.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Move-only owner of a POSIX file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

enum class IoStatus : std::uint8_t {
  kOk = 0,
  kClosed,    ///< peer closed the connection cleanly
  kTimeout,   ///< deadline expired before a full frame arrived
  kOversize,  ///< length prefix exceeds kMaxFrameBytes
  kError,     ///< socket error
};

const char* io_status_name(IoStatus status);

struct RecvResult {
  IoStatus status = IoStatus::kError;
  std::string payload;  ///< valid only when status == kOk
};

/// Writes one length-prefixed frame; handles partial writes. Returns false
/// on any socket error or when the peer's receive window stays full past
/// the deadline (`timeout_s < 0` blocks) — the connection should be
/// dropped then.
bool send_frame(int fd, std::string_view payload, double timeout_s = -1);

/// Reads one length-prefixed frame. `timeout_s < 0` blocks indefinitely;
/// otherwise the whole frame must arrive within the deadline.
RecvResult recv_frame(int fd, double timeout_s);

/// Connects to host:port within `timeout_s`. Errors are Errc::kTransport.
api::Expected<Fd> tcp_connect(const std::string& host, std::uint16_t port, double timeout_s);

/// A listening socket bound to 127.0.0.1-or-any on `port` (0 = ephemeral).
struct ListenerResult {
  Fd fd;
  std::uint16_t port = 0;  ///< actual bound port
};

/// Binds and listens; Errc::kTransport on failure. `loopback_only` binds
/// 127.0.0.1 (tests), otherwise INADDR_ANY (the daemon).
api::Expected<ListenerResult> tcp_listen(std::uint16_t port, bool loopback_only = false);

/// Accepts one connection; invalid Fd on timeout or error.
Fd tcp_accept(int listen_fd, double timeout_s);

/// The client side of one RPC connection: connects lazily, sends
/// header+body frames with fresh request ids, and receives the matching
/// reply within a per-call deadline. Strictly one outstanding call at a
/// time (RemoteServiceBus is synchronous); any failure closes the socket so
/// the next call reconnects.
class ClientChannel {
 public:
  ClientChannel(std::string host, std::uint16_t port, double connect_timeout_s,
                double call_deadline_s)
      : host_(std::move(host)),
        port_(port),
        connect_timeout_s_(connect_timeout_s),
        call_deadline_s_(call_deadline_s) {}

  /// One round-trip: encodes header || body (via `encode_body`), sends,
  /// and returns the reply body bytes. Every failure mode — connect
  /// refused, send error, deadline, peer close, malformed reply header,
  /// request-id mismatch — is an Error{Errc::kTransport}.
  template <typename EncodeBody>
  api::Expected<std::string> call(wire::Endpoint endpoint, EncodeBody&& encode_body) {
    Writer frame;
    wire::write_frame_header(frame, {endpoint, ++next_request_id_});
    encode_body(frame);
    return round_trip(endpoint, next_request_id_, frame.buffer());
  }

  bool connected() const { return socket_.valid(); }
  void close() { socket_.reset(); }

 private:
  api::Status ensure_connected();
  api::Expected<std::string> round_trip(wire::Endpoint endpoint, std::uint64_t request_id,
                                        std::string_view frame);

  std::string host_;
  std::uint16_t port_;
  double connect_timeout_s_;
  double call_deadline_s_;
  std::uint64_t next_request_id_ = 0;
  Fd socket_;
};

}  // namespace bitdew::rpc
