// TCP transport for the BitDew RPC protocol: length-prefixed frames over
// POSIX sockets. A frame on the socket is a u32 little-endian byte count
// followed by payload bytes (frame header + message body, see rpc/wire.hpp).
// The helpers here are deliberately low-level — connect/listen/accept,
// send_frame/recv_frame with deadlines — plus ClientChannel, the blocking
// one-call-at-a-time client connection RemoteServiceBus is built on. All
// failures are surfaced as values (IoStatus / Expected with Errc::kTransport),
// never as hangs: every receive takes a deadline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "api/expected.hpp"
#include "rpc/fd.hpp"
#include "rpc/wire.hpp"

namespace bitdew::rpc {

/// Frames larger than this are rejected before allocation — a garbage or
/// hostile length prefix must not let a peer OOM the process.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class IoStatus : std::uint8_t {
  kOk = 0,
  kClosed,    ///< peer closed the connection cleanly
  kTimeout,   ///< deadline expired before a full frame arrived
  kOversize,  ///< length prefix exceeds kMaxFrameBytes
  kError,     ///< socket error
};

const char* io_status_name(IoStatus status);

struct RecvResult {
  IoStatus status = IoStatus::kError;
  std::string payload;  ///< valid only when status == kOk
};

/// Writes one length-prefixed frame; handles partial writes. Returns false
/// on any socket error or when the peer's receive window stays full past
/// the deadline (`timeout_s < 0` blocks) — the connection should be
/// dropped then.
bool send_frame(int fd, std::string_view payload, double timeout_s = -1);

/// Reads one length-prefixed frame. `timeout_s < 0` blocks indefinitely;
/// otherwise the whole frame must arrive within the deadline.
RecvResult recv_frame(int fd, double timeout_s);

/// Connects to host:port within `timeout_s`. Errors are Errc::kTransport.
api::Expected<Fd> tcp_connect(const std::string& host, std::uint16_t port, double timeout_s);

/// A listening socket bound to 127.0.0.1-or-any on `port` (0 = ephemeral).
struct ListenerResult {
  Fd fd;
  std::uint16_t port = 0;  ///< actual bound port
};

/// Binds and listens; Errc::kTransport on failure. `loopback_only` binds
/// 127.0.0.1 (tests), otherwise INADDR_ANY (the daemon).
api::Expected<ListenerResult> tcp_listen(std::uint16_t port, bool loopback_only = false);

/// Accepts one connection; invalid Fd on timeout or error.
Fd tcp_accept(int listen_fd, double timeout_s);

/// The client side of one RPC connection: connects lazily, sends
/// header+body frames with fresh request ids, and demultiplexes the replies
/// by request id — so N calls can be IN FLIGHT on this one socket at once
/// (the epoll ServiceHost executes them concurrently and answers out of
/// order). send() returns a PendingReply future; call() is the sequential
/// sugar (send + wait). Any transport failure fails every outstanding
/// reply and closes the socket, so the next call reconnects. NOT
/// thread-safe: one owner pumps the connection (RemoteServiceBus).
class ClientChannel {
 public:
  /// One outstanding call's reply slot. Resolved by the channel's demux
  /// pump — possibly while waiting on a DIFFERENT PendingReply of the same
  /// channel (out-of-order completion). Must not outlive the channel.
  class PendingReply {
   public:
    PendingReply() = default;

    /// Whether this future is attached to a sent request.
    bool valid() const { return slot_ != nullptr; }
    /// Already resolved (wait() would not block)?
    bool ready() const { return slot_ != nullptr && slot_->result.has_value(); }

    /// Blocks (pumping the channel) until this reply arrives; every
    /// failure mode — connect refused, send error, deadline, peer close,
    /// malformed reply header, unknown request id — is an
    /// Error{Errc::kTransport}. Consumes the future.
    api::Expected<std::string> wait();

   private:
    friend class ClientChannel;
    struct Slot {
      wire::Endpoint endpoint = wire::Endpoint::kPing;
      std::optional<api::Expected<std::string>> result;
    };
    PendingReply(ClientChannel* channel, std::shared_ptr<Slot> slot)
        : channel_(channel), slot_(std::move(slot)) {}

    ClientChannel* channel_ = nullptr;
    std::shared_ptr<Slot> slot_;
  };

  ClientChannel(std::string host, std::uint16_t port, double connect_timeout_s,
                double call_deadline_s)
      : host_(std::move(host)),
        port_(port),
        connect_timeout_s_(connect_timeout_s),
        call_deadline_s_(call_deadline_s) {}

  /// Encodes header || body (via `encode_body`) and puts the frame on the
  /// wire WITHOUT waiting for the reply. The returned future resolves when
  /// a later pump (any PendingReply::wait on this channel) demuxes the
  /// matching request id. A connect or send failure resolves the future
  /// immediately with the error.
  template <typename EncodeBody>
  PendingReply send(wire::Endpoint endpoint, EncodeBody&& encode_body) {
    Writer frame;
    wire::write_frame_header(frame, {endpoint, ++next_request_id_});
    encode_body(frame);
    return send_raw(endpoint, next_request_id_, frame.buffer());
  }

  /// One round-trip: send + wait. Every failure is Error{Errc::kTransport}.
  template <typename EncodeBody>
  api::Expected<std::string> call(wire::Endpoint endpoint, EncodeBody&& encode_body) {
    return send(endpoint, static_cast<EncodeBody&&>(encode_body)).wait();
  }

  /// Receives and demuxes ONE reply frame (up to `timeout_s`); resolves the
  /// matching future. false when nothing is outstanding or the transport
  /// failed (all outstanding futures are then resolved with the error).
  bool pump(double timeout_s);

  /// Outstanding (sent, unresolved) calls on this connection.
  std::size_t in_flight() const { return pending_.size(); }

  bool connected() const { return socket_.valid(); }
  void close() { socket_.reset(); }

 private:
  api::Status ensure_connected();
  PendingReply send_raw(wire::Endpoint endpoint, std::uint64_t request_id,
                        std::string_view frame);
  /// Resolves every outstanding future with `error` and closes the socket.
  void fail_all(const api::Error& error);

  std::string host_;
  std::uint16_t port_;
  double connect_timeout_s_;
  double call_deadline_s_;
  std::uint64_t next_request_id_ = 0;
  Fd socket_;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingReply::Slot>> pending_;
};

}  // namespace bitdew::rpc
