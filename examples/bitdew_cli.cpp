// bitdew_cli — the paper's Fig. 1 "Command-line Tool": a scriptable front
// end to a BitDew deployment. Commands (one per line, from arguments or
// stdin) drive a simulated grid:
//
//   nodes N                 add N reservoir hosts
//   create NAME SIZE        create a data slot and put SIZE of content
//   attr NAME DSL...        schedule NAME with a DSL attribute string
//   run SECONDS             advance virtual time
//   status                  print scheduler/data placement state
//   delete NAME             remove a datum everywhere
//
// Example:
//   ./examples/bitdew_cli "nodes 6" "create genome 50MB" \
//       "attr genome replica=3, ft=true, oob=ftp" "run 30" status
#include <cstdio>
#include <iostream>
#include <sstream>

#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

using namespace bitdew;

namespace {

struct Cli {
  Cli() : net(sim) {
    cluster = testbed::make_cluster(net, testbed::ClusterSpec{"cli", 2});
    runtime = std::make_unique<runtime::SimRuntime>(sim, net, cluster.hosts[0]);
    client = &runtime->add_node(cluster.hosts[1], /*reservoir=*/false);
  }

  void add_nodes(int count) {
    for (int i = 0; i < count; ++i) {
      net::HostSpec spec;
      spec.name = "node-" + std::to_string(reservoirs.size());
      const auto host = net.add_host(cluster.zone, spec);
      reservoirs.push_back(&runtime->add_node(host));
    }
    std::printf("grid: %zu reservoir node(s)\n", reservoirs.size());
  }

  void create(const std::string& name, const std::string& size_text) {
    const std::int64_t size = util::parse_bytes(size_text);
    if (size < 0) {
      std::printf("error: bad size '%s'\n", size_text.c_str());
      return;
    }
    const core::Content content =
        core::synthetic_content(std::hash<std::string>{}(name), size);
    const core::Data data = client->bitdew().create_data(name, content);
    client->bitdew().put(data, content);
    sim.run_until(sim.now() + 1);
    std::printf("created %s (%s), uid %s\n", name.c_str(), util::human_bytes(size).c_str(),
                data.uid.str().c_str());
  }

  void attr(const std::string& name, const std::string& dsl_body) {
    const auto data = client->bitdew().known(name);
    if (!data.has_value()) {
      std::printf("error: unknown data '%s'\n", name.c_str());
      return;
    }
    try {
      const core::DataAttributes attributes = client->bitdew().create_attribute(
          "attr " + name + " = {" + dsl_body + "}", sim.now());
      client->active_data().schedule(*data, attributes);
      std::printf("scheduled %s with {%s}\n", name.c_str(), dsl_body.c_str());
    } catch (const core::AttributeError& error) {
      std::printf("error: %s\n", error.what());
    }
  }

  void remove(const std::string& name) {
    const auto data = client->bitdew().known(name);
    if (!data.has_value()) {
      std::printf("error: unknown data '%s'\n", name.c_str());
      return;
    }
    client->bitdew().remove(*data);
    std::printf("deleted %s\n", name.c_str());
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + seconds);
    std::printf("t = %.1fs\n", sim.now());
  }

  void status() {
    auto& ds = runtime->container().ds();
    std::printf("t=%.1fs | scheduled=%zu | dt: %llu ok / %llu rejects\n", sim.now(),
                ds.scheduled_count(),
                static_cast<unsigned long long>(runtime->container().dt().stats().completed),
                static_cast<unsigned long long>(
                    runtime->container().dt().stats().checksum_rejects));
    for (auto* node : reservoirs) {
      std::printf("  %-8s:", node->name().c_str());
      for (const auto& uid : node->cache()) {
        const auto data = runtime->container().dc().get(uid);
        std::printf(" %s", data.has_value() ? data->name.c_str() : uid.str().c_str());
      }
      std::printf("\n");
    }
  }

  bool dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) return true;
    if (verb == "nodes") {
      int n = 0;
      in >> n;
      add_nodes(n);
    } else if (verb == "create") {
      std::string name, size;
      in >> name >> size;
      create(name, size);
    } else if (verb == "attr") {
      std::string name;
      in >> name;
      std::string rest;
      std::getline(in, rest);
      attr(name, std::string(util::trim(rest)));
    } else if (verb == "delete") {
      std::string name;
      in >> name;
      remove(name);
    } else if (verb == "run") {
      double seconds = 0;
      in >> seconds;
      run_for(seconds);
    } else if (verb == "status") {
      status();
    } else if (verb == "help") {
      std::printf("commands: nodes N | create NAME SIZE | attr NAME DSL |"
                  " delete NAME | run SECONDS | status\n");
    } else {
      std::printf("error: unknown command '%s' (try help)\n", verb.c_str());
      return false;
    }
    return true;
  }

  sim::Simulator sim{99};
  net::Network net;
  testbed::Cluster cluster;
  std::unique_ptr<runtime::SimRuntime> runtime;
  runtime::SimNode* client = nullptr;
  std::vector<runtime::SimNode*> reservoirs;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) cli.dispatch(argv[i]);
    return 0;
  }
  // Interactive / piped mode.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    cli.dispatch(line);
  }
  return 0;
}
