// bitdew_cli — the paper's Fig. 1 "Command-line Tool": a scriptable front
// end to a BitDew deployment. Commands (one per line, from arguments or
// stdin) drive a simulated grid:
//
//   nodes N                 add N reservoir hosts
//   create NAME SIZE        create a data slot and put SIZE of content
//   attr NAME DSL...        schedule NAME with a DSL attribute string
//   run SECONDS             advance virtual time
//   status                  print scheduler/data placement state
//   delete NAME             remove a datum everywhere
//
// Example:
//   ./examples/bitdew_cli "nodes 6" "create genome 50MB" \
//       "attr genome replica=3, ft=true, oob=ftp" "run 30" status
//
// With `connect HOST:PORT` as the first argument the same tool drives a
// live bitdewd deployment over TCP instead of the simulator:
//
//   ./examples/bitdewd --port 9328 --wal /var/lib/bitdew &
//   ./examples/bitdew_cli connect 127.0.0.1:9328 \
//       "create genome 50MB" "attr genome replica=3, ft=true" \
//       "locate genome" "delete genome"
//
// Remote commands: create NAME SIZE | attr NAME DSL | search NAME |
// locate NAME | delete NAME | publish KEY VALUE | lookup KEY |
// put NAME PATH | get NAME PATH | chunk BYTES | status | ring |
// job submit NAME INPUTS COLLECTOR CMD... | job status UID
//
// `job submit` runs CMD over every input (compute-to-data): INPUTS is a
// comma-separated list of data names, COLLECTOR the datum results flow to,
// and CMD may use {input}/{output} placeholders. One task per input is
// placed on workers that already hold the input replica. `job status UID`
// prints completion and the data-local fraction.
//
// `ring` walks the live DHT ring starting at the connected member and
// prints every member's id, predecessor, successor list, finger health and
// per-node key counts — the metadata plane's shard map.
//
// `status` prints the scheduler's host table (worker name, seconds since
// the last ds_sync, alive/DEAD, cached count) — the failure detector's
// live view of the worker tier.
//
// `put`/`get` move real file content in chunks (the out-of-band data
// plane): `put` uploads PATH into the daemon's Data Repository (resuming a
// previous interrupted upload of the same content), `get` downloads it
// MD5-verified, and `chunk` sets the chunk size for subsequent transfers
// (e.g. "chunk 1MB").
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <random>
#include <set>
#include <sstream>

#include "api/remote_service_bus.hpp"
#include "api/session.hpp"
#include "jobs/job_types.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

using namespace bitdew;

namespace {

struct Cli {
  Cli() : net(sim) {
    cluster = testbed::make_cluster(net, testbed::ClusterSpec{"cli", 2});
    runtime = std::make_unique<runtime::SimRuntime>(sim, net, cluster.hosts[0]);
    client = &runtime->add_node(cluster.hosts[1], /*reservoir=*/false);
  }

  void add_nodes(int count) {
    for (int i = 0; i < count; ++i) {
      net::HostSpec spec;
      spec.name = "node-" + std::to_string(reservoirs.size());
      const auto host = net.add_host(cluster.zone, spec);
      reservoirs.push_back(&runtime->add_node(host));
    }
    std::printf("grid: %zu reservoir node(s)\n", reservoirs.size());
  }

  void create(const std::string& name, const std::string& size_text) {
    const std::int64_t size = util::parse_bytes(size_text);
    if (size < 0) {
      std::printf("error: bad size '%s'\n", size_text.c_str());
      return;
    }
    const core::Content content =
        core::synthetic_content(std::hash<std::string>{}(name), size);
    const core::Data data = client->bitdew().create_data(name, content);
    client->bitdew().put(data, content);
    sim.run_until(sim.now() + 1);
    std::printf("created %s (%s), uid %s\n", name.c_str(), util::human_bytes(size).c_str(),
                data.uid.str().c_str());
  }

  void attr(const std::string& name, const std::string& dsl_body) {
    const auto data = client->bitdew().known(name);
    if (!data.has_value()) {
      std::printf("error: unknown data '%s'\n", name.c_str());
      return;
    }
    try {
      const core::DataAttributes attributes = client->bitdew().create_attribute(
          "attr " + name + " = {" + dsl_body + "}");
      client->active_data().schedule(*data, attributes);
      std::printf("scheduled %s with {%s}\n", name.c_str(), dsl_body.c_str());
    } catch (const core::AttributeError& error) {
      std::printf("error: %s\n", error.what());
    }
  }

  void remove(const std::string& name) {
    const auto data = client->bitdew().known(name);
    if (!data.has_value()) {
      std::printf("error: unknown data '%s'\n", name.c_str());
      return;
    }
    client->bitdew().remove(*data);
    std::printf("deleted %s\n", name.c_str());
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + seconds);
    std::printf("t = %.1fs\n", sim.now());
  }

  void status() {
    auto& ds = runtime->container().ds();
    std::printf("t=%.1fs | scheduled=%zu | dt: %llu ok / %llu rejects\n", sim.now(),
                ds.scheduled_count(),
                static_cast<unsigned long long>(runtime->container().dt().stats().completed),
                static_cast<unsigned long long>(
                    runtime->container().dt().stats().checksum_rejects));
    for (auto* node : reservoirs) {
      std::printf("  %-8s:", node->name().c_str());
      for (const auto& uid : node->cache()) {
        const auto data = runtime->container().dc().get(uid);
        std::printf(" %s", data.has_value() ? data->name.c_str() : uid.str().c_str());
      }
      std::printf("\n");
    }
  }

  bool dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) return true;
    if (verb == "nodes") {
      int n = 0;
      in >> n;
      add_nodes(n);
    } else if (verb == "create") {
      std::string name, size;
      in >> name >> size;
      create(name, size);
    } else if (verb == "attr") {
      std::string name;
      in >> name;
      std::string rest;
      std::getline(in, rest);
      attr(name, std::string(util::trim(rest)));
    } else if (verb == "delete") {
      std::string name;
      in >> name;
      remove(name);
    } else if (verb == "run") {
      double seconds = 0;
      in >> seconds;
      run_for(seconds);
    } else if (verb == "status") {
      status();
    } else if (verb == "help") {
      std::printf("commands: nodes N | create NAME SIZE | attr NAME DSL |"
                  " delete NAME | run SECONDS | status\n");
    } else {
      std::printf("error: unknown command '%s' (try help)\n", verb.c_str());
      return false;
    }
    return true;
  }

  sim::Simulator sim{99};
  net::Network net;
  testbed::Cluster cluster;
  std::unique_ptr<runtime::SimRuntime> runtime;
  runtime::SimNode* client = nullptr;
  std::vector<runtime::SimNode*> reservoirs;
};

/// The same command set against a live bitdewd over RemoteServiceBus: every
/// operation is a blocking RPC through the Session facade, and transport
/// failures print the typed error instead of hanging.
struct RemoteCli {
  RemoteCli(const std::string& host, std::uint16_t port)
      : bus(host, port), bitdew(bus, "cli"), active_data(bus, "cli"),
        session(bitdew, active_data) {
    // Unlike the deterministic simulator, a live deployment has many CLI
    // processes minting AUIDs against one daemon: give this process a
    // unique prefix so ids never collide across invocations.
    std::random_device entropy;
    util::reseed_auid(
        (static_cast<std::uint64_t>(entropy()) << 32) ^ entropy() ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()) ^
        (static_cast<std::uint64_t>(::getpid()) << 16));
  }

  bool connect() {
    const api::Status up = bus.ping();
    if (!up.ok()) {
      std::fprintf(stderr, "error: %s\n", up.error().to_string().c_str());
      return false;
    }
    std::printf("connected\n");
    return true;
  }

  /// Data known to this CLI run, or searched from the daemon (so `delete`
  /// works on data created by a previous invocation).
  std::optional<core::Data> resolve(const std::string& name) {
    if (const auto known = bitdew.known(name); known.has_value()) return known;
    const api::Expected<core::Data> found = session.search(name);
    if (found.ok()) return *found;
    std::fprintf(stderr, "error: %s: %s\n", name.c_str(), found.error().to_string().c_str());
    return std::nullopt;
  }

  bool create(const std::string& name, const std::string& size_text) {
    const std::int64_t size = util::parse_bytes(size_text);
    if (size < 0) {
      std::fprintf(stderr, "error: bad size '%s'\n", size_text.c_str());
      return false;
    }
    const core::Content content =
        core::synthetic_content(std::hash<std::string>{}(name), size);
    const api::Expected<core::Data> data = session.create_data(name, content);
    if (!data.ok()) {
      std::fprintf(stderr, "error: %s\n", data.error().to_string().c_str());
      return false;
    }
    const api::Status put = session.put(*data, content);
    if (!put.ok()) {
      std::fprintf(stderr, "error: put: %s\n", put.error().to_string().c_str());
      return false;
    }
    std::printf("created %s (%s), uid %s\n", name.c_str(), util::human_bytes(size).c_str(),
                data->uid.str().c_str());
    return true;
  }

  bool attr(const std::string& name, const std::string& dsl_body) {
    const auto data = resolve(name);
    if (!data.has_value()) return false;
    try {
      const core::DataAttributes attributes =
          bitdew.create_attribute("attr " + name + " = {" + dsl_body + "}");
      const api::Status scheduled = session.schedule(*data, attributes);
      if (!scheduled.ok()) {
        std::fprintf(stderr, "error: %s\n", scheduled.error().to_string().c_str());
        return false;
      }
      std::printf("scheduled %s with {%s}\n", name.c_str(), dsl_body.c_str());
      return true;
    } catch (const core::AttributeError& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return false;
    }
  }

  bool search(const std::string& name) {
    const api::Expected<core::Data> found = session.search(name);
    if (!found.ok()) {
      std::fprintf(stderr, "error: %s\n", found.error().to_string().c_str());
      return false;
    }
    std::printf("%s: uid %s, %s\n", found->name.c_str(), found->uid.str().c_str(),
                util::human_bytes(found->size).c_str());
    return true;
  }

  bool locate(const std::string& name) {
    const auto data = resolve(name);
    if (!data.has_value()) return false;
    const auto locators = session.locate(data->uid);
    if (!locators.ok()) {
      std::fprintf(stderr, "error: %s\n", locators.error().to_string().c_str());
      return false;
    }
    std::printf("%s: %zu locator(s)\n", name.c_str(), locators->size());
    for (const core::Locator& locator : *locators) {
      std::printf("  %s://%s/%s\n", locator.protocol.c_str(), locator.host.c_str(),
                  locator.path.c_str());
    }
    return true;
  }

  bool remove(const std::string& name) {
    const auto data = resolve(name);
    if (!data.has_value()) return false;
    const api::Status removed = session.remove(*data);
    if (!removed.ok()) {
      std::fprintf(stderr, "error: %s\n", removed.error().to_string().c_str());
      return false;
    }
    std::printf("deleted %s\n", name.c_str());
    return true;
  }

  bool put(const std::string& name, const std::string& path) {
    const api::Expected<core::Data> data = session.put_file(name, path);
    if (!data.ok()) {
      std::fprintf(stderr, "error: put: %s\n", data.error().to_string().c_str());
      return false;
    }
    std::printf("put %s (%s, md5 %s), uid %s\n", name.c_str(),
                util::human_bytes(data->size).c_str(), data->checksum.c_str(),
                data->uid.str().c_str());
    return true;
  }

  bool get(const std::string& name, const std::string& path) {
    const auto data = resolve(name);
    if (!data.has_value()) return false;
    const api::Status fetched = session.get_file(*data, path);
    if (!fetched.ok()) {
      std::fprintf(stderr, "error: get: %s\n", fetched.error().to_string().c_str());
      return false;
    }
    std::printf("got %s -> %s (%s, md5 %s verified)\n", name.c_str(), path.c_str(),
                util::human_bytes(data->size).c_str(), data->checksum.c_str());
    return true;
  }

  bool chunk(const std::string& size_text) {
    const std::int64_t bytes = util::parse_bytes(size_text);
    if (bytes <= 0) {
      std::fprintf(stderr, "error: bad chunk size '%s'\n", size_text.c_str());
      return false;
    }
    session.set_chunk_bytes(bytes);
    std::printf("chunk size %s\n", util::human_bytes(bytes).c_str());
    return true;
  }

  /// The scheduler's host table: the failure detector made visible, so an
  /// operator (or the live-fault-tolerance CI job) can see a worker declared
  /// dead instead of inferring it from replica movement.
  bool status() {
    std::optional<api::Expected<std::vector<services::HostInfo>>> table;
    bus.ds_hosts([&](api::Expected<std::vector<services::HostInfo>> reply) {
      table = std::move(reply);
    });
    if (!table.has_value() || !table->ok()) {
      std::fprintf(stderr, "error: %s\n",
                   table.has_value() ? (*table).error().to_string().c_str()
                                     : "no reply");
      return false;
    }
    std::printf("%zu worker(s) known to the scheduler\n", (*table)->size());
    for (const services::HostInfo& info : **table) {
      // Sync protocol v2 counters: full vs delta beats and the last delta's
      // size — a healthy steady-state worker shows deltas climbing while
      // fulls stay at the join/resync count.
      std::printf("  %-16s %-5s last sync %6.1fs ago, %u cached, peer %s, "
                  "sync %llu full / %llu delta (last delta %u item(s))\n",
                  info.name.c_str(), info.alive ? "alive" : "DEAD", info.last_sync_age_s,
                  info.cached, info.endpoint.empty() ? "-" : info.endpoint.c_str(),
                  static_cast<unsigned long long>(info.full_syncs),
                  static_cast<unsigned long long>(info.delta_syncs),
                  info.last_delta_items);
    }
    // Repository egress: how many content bytes the central store actually
    // shipped. The live-collective CI job asserts this stays ~one file copy
    // when a swarm distributes over the peer plane.
    std::optional<api::Expected<services::RepoStats>> repo;
    bus.dr_stats([&](api::Expected<services::RepoStats> reply) { repo = std::move(reply); });
    if (repo.has_value() && repo->ok()) {
      std::printf("repository: %llu object(s), %lld bytes stored, %llu chunk read(s), "
                  "%lld bytes served\n",
                  static_cast<unsigned long long>((*repo)->objects),
                  static_cast<long long>((*repo)->stored_bytes),
                  static_cast<unsigned long long>((*repo)->chunk_reads),
                  static_cast<long long>((*repo)->chunk_read_bytes));
    }
    return true;
  }

  /// Walks the ring's successor pointers from the connected member,
  /// querying each member's kRingInfo through its own short-timeout bus,
  /// and prints the shard map. Unreachable members are reported, not fatal
  /// (the walk continues through whatever the others point at).
  bool ring() {
    std::vector<rpc::wire::RingStatusInfo> members;
    std::set<std::string> seen;
    std::set<std::string> unreachable;
    std::vector<std::string> frontier;

    const api::Expected<rpc::wire::RingStatusInfo> home = bus.ring_info();
    if (!home.ok()) {
      std::fprintf(stderr, "error: %s\n", home.error().to_string().c_str());
      return false;
    }
    members.push_back(*home);
    seen.insert(home->self.endpoint);
    for (const rpc::wire::RingNode& s : home->successors) frontier.push_back(s.endpoint);

    api::RemoteBusConfig probe_config;
    probe_config.connect_timeout_s = 2.0;
    probe_config.call_deadline_s = 2.0;
    while (!frontier.empty() && seen.size() < 64) {
      const std::string endpoint = frontier.back();
      frontier.pop_back();
      if (!seen.insert(endpoint).second) continue;
      const std::size_t colon = endpoint.rfind(':');
      if (colon == std::string::npos) continue;
      api::RemoteServiceBus probe(
          endpoint.substr(0, colon),
          static_cast<std::uint16_t>(std::strtol(endpoint.c_str() + colon + 1, nullptr, 10)),
          probe_config);
      const api::Expected<rpc::wire::RingStatusInfo> info = probe.ring_info();
      if (!info.ok()) {
        unreachable.insert(endpoint);
        continue;
      }
      members.push_back(*info);
      for (const rpc::wire::RingNode& s : info->successors) {
        if (seen.count(s.endpoint) == 0) frontier.push_back(s.endpoint);
      }
    }

    std::sort(members.begin(), members.end(),
              [](const rpc::wire::RingStatusInfo& a, const rpc::wire::RingStatusInfo& b) {
                return a.self.id < b.self.id;
              });
    std::printf("ring: %zu member(s), %zu unreachable\n", members.size(), unreachable.size());
    for (const rpc::wire::RingStatusInfo& m : members) {
      std::printf("  %016llx %-21s pred %-21s fingers %u/%u  dc %llu  ddc %llu\n",
                  static_cast<unsigned long long>(m.self.id), m.self.endpoint.c_str(),
                  m.has_pred ? m.pred.endpoint.c_str() : "-", m.fingers_resolved,
                  m.fingers_total, static_cast<unsigned long long>(m.dc_keys),
                  static_cast<unsigned long long>(m.ddc_keys));
      std::string successors;
      for (const rpc::wire::RingNode& s : m.successors) {
        successors += (successors.empty() ? "" : " ") + s.endpoint;
      }
      std::printf("    successors: %s\n", successors.empty() ? "-" : successors.c_str());
    }
    for (const std::string& endpoint : unreachable) {
      std::printf("  ????????????????  %-21s (no reply)\n", endpoint.c_str());
    }
    return true;
  }

  /// Submits one job: a command template over a comma-separated input list,
  /// results converging on COLLECTOR. Prints the job uid for scripts.
  bool job_submit(const std::string& name, const std::string& inputs_csv,
                  const std::string& collector_name, const std::string& command) {
    if (name.empty() || inputs_csv.empty() || collector_name.empty() || command.empty()) {
      std::fprintf(stderr, "usage: job submit NAME INPUT[,INPUT...] COLLECTOR CMD...\n");
      return false;
    }
    jobs::JobSpec spec;
    spec.uid = util::next_auid();
    spec.name = name;
    // Shell-style split: a '...'/"..." group is ONE argv element, so
    //   job submit count c0 coll /bin/sh -c 'wc -l < "$0" > "$1"' {input} {output}
    // hands sh the whole script as a single -c argument.
    {
      std::string token;
      bool in_token = false;
      char quote = '\0';
      for (char c : command) {
        if (quote != '\0') {
          if (c == quote) {
            quote = '\0';
          } else {
            token += c;
          }
        } else if (c == '\'' || c == '"') {
          quote = c;
          in_token = true;
        } else if (c == ' ' || c == '\t') {
          if (in_token) spec.argv.push_back(token);
          token.clear();
          in_token = false;
        } else {
          token += c;
          in_token = true;
        }
      }
      if (quote != '\0') {
        std::fprintf(stderr, "error: unterminated %c quote in command\n", quote);
        return false;
      }
      if (in_token) spec.argv.push_back(token);
    }
    std::istringstream inputs(inputs_csv);
    std::string input_name;
    while (std::getline(inputs, input_name, ',')) {
      const auto input = resolve(input_name);
      if (!input.has_value()) return false;
      spec.inputs.push_back(input->uid);
    }
    const auto collector = resolve(collector_name);
    if (!collector.has_value()) return false;
    spec.collector = collector->uid;
    std::optional<api::Expected<util::Auid>> submitted;
    bus.job_submit(spec, [&](api::Expected<util::Auid> reply) { submitted = std::move(reply); });
    if (!submitted.has_value() || !submitted->ok()) {
      std::fprintf(stderr, "error: %s\n",
                   submitted.has_value() ? (*submitted).error().to_string().c_str()
                                         : "no reply");
      return false;
    }
    std::printf("job %s submitted, uid %s, %zu task(s)\n", name.c_str(),
                (*submitted)->str().c_str(), spec.inputs.size());
    return true;
  }

  bool job_status(const std::string& uid_text) {
    const util::Auid uid = util::Auid::parse(uid_text);
    if (uid.is_nil()) {
      std::fprintf(stderr, "error: bad job uid '%s'\n", uid_text.c_str());
      return false;
    }
    std::optional<api::Expected<jobs::JobStatusInfo>> status;
    bus.job_status(uid, [&](api::Expected<jobs::JobStatusInfo> reply) {
      status = std::move(reply);
    });
    if (!status.has_value() || !status->ok()) {
      std::fprintf(stderr, "error: %s\n",
                   status.has_value() ? (*status).error().to_string().c_str() : "no reply");
      return false;
    }
    const jobs::JobStatusInfo& info = **status;
    std::printf("job %s (%s): %d/%d done, %d waiting, %d running, %d failed, "
                "%d re-placed, data-local %d/%d (%.0f%%)%s\n",
                info.name.c_str(), info.job.str().c_str(), info.done, info.total,
                info.waiting, info.running, info.failed, info.replaced, info.data_local,
                info.done, 100.0 * info.data_local_fraction(),
                info.complete() ? " COMPLETE" : "");
    for (const jobs::TaskInfo& task : info.tasks) {
      std::printf("  task %-3d %-8s attempt %d%s%s%s\n", task.index,
                  jobs::task_phase_name(task.phase), task.attempts,
                  task.runner.empty() ? "" : (" on " + task.runner).c_str(),
                  task.phase == jobs::TaskPhase::kDone
                      ? (task.data_local ? ", data-local" : ", fetched")
                      : "",
                  task.result.is_nil() ? "" : (", result " + task.result.str()).c_str());
    }
    return true;
  }

  bool publish(const std::string& key, const std::string& value) {
    const api::Status published = session.publish(key, value);
    if (!published.ok()) {
      std::fprintf(stderr, "error: %s\n", published.error().to_string().c_str());
      return false;
    }
    std::printf("published %s\n", key.c_str());
    return true;
  }

  bool lookup(const std::string& key) {
    const auto values = session.lookup(key);
    if (!values.ok()) {
      std::fprintf(stderr, "error: %s\n", values.error().to_string().c_str());
      return false;
    }
    std::printf("%s: %zu value(s)\n", key.c_str(), values->size());
    for (const std::string& value : *values) std::printf("  %s\n", value.c_str());
    return true;
  }

  bool dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) return true;
    if (verb == "create") {
      std::string name, size;
      in >> name >> size;
      return create(name, size);
    } else if (verb == "attr") {
      std::string name;
      in >> name;
      std::string rest;
      std::getline(in, rest);
      return attr(name, std::string(util::trim(rest)));
    } else if (verb == "search") {
      std::string name;
      in >> name;
      return search(name);
    } else if (verb == "locate") {
      std::string name;
      in >> name;
      return locate(name);
    } else if (verb == "delete") {
      std::string name;
      in >> name;
      return remove(name);
    } else if (verb == "put") {
      std::string name, path;
      in >> name >> path;
      return put(name, path);
    } else if (verb == "get") {
      std::string name, path;
      in >> name >> path;
      return get(name, path);
    } else if (verb == "chunk") {
      std::string size;
      in >> size;
      return chunk(size);
    } else if (verb == "publish") {
      std::string key, value;
      in >> key >> value;
      return publish(key, value);
    } else if (verb == "lookup") {
      std::string key;
      in >> key;
      return lookup(key);
    } else if (verb == "status") {
      return status();
    } else if (verb == "ring") {
      return ring();
    } else if (verb == "job") {
      std::string sub;
      in >> sub;
      if (sub == "submit") {
        std::string name, inputs_csv, collector_name;
        in >> name >> inputs_csv >> collector_name;
        std::string command;
        std::getline(in, command);
        return job_submit(name, inputs_csv, collector_name,
                          std::string(util::trim(command)));
      }
      if (sub == "status") {
        std::string uid_text;
        in >> uid_text;
        return job_status(uid_text);
      }
      std::fprintf(stderr, "usage: job submit NAME INPUTS COLLECTOR CMD... | job status UID\n");
      return false;
    } else if (verb == "help") {
      std::printf("commands: create NAME SIZE | attr NAME DSL | search NAME |"
                  " locate NAME | delete NAME | put NAME PATH | get NAME PATH |"
                  " chunk BYTES | publish KEY VALUE | lookup KEY | status | ring |"
                  " job submit NAME INPUTS COLLECTOR CMD... | job status UID\n");
    } else {
      std::fprintf(stderr, "error: unknown command '%s' (try help)\n", verb.c_str());
      return false;
    }
    return true;
  }

  api::RemoteServiceBus bus;
  api::BitDew bitdew;
  api::ActiveData active_data;
  api::Session session;
};

template <typename AnyCli>
int run_commands(AnyCli& cli, int argc, char** argv, int first) {
  bool ok = true;
  if (first < argc) {
    for (int i = first; i < argc; ++i) ok = cli.dispatch(argv[i]) && ok;
    return ok ? 0 : 1;
  }
  // Interactive / piped mode.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    ok = cli.dispatch(line) && ok;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "connect") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s connect HOST:PORT [COMMAND...]\n", argv[0]);
      return 2;
    }
    const std::string target = argv[2];
    const std::size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: expected HOST:PORT, got '%s'\n", target.c_str());
      return 2;
    }
    const std::string host = target.substr(0, colon);
    const int port = std::atoi(target.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      std::fprintf(stderr, "error: bad port in '%s'\n", target.c_str());
      return 2;
    }
    RemoteCli cli(host, static_cast<std::uint16_t>(port));
    if (!cli.connect()) return 1;
    return run_commands(cli, argc, argv, 3);
  }

  Cli cli;
  return run_commands(cli, argc, argv, 1);
}
