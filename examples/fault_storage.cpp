// Self-healing replicated storage over volatile broadband hosts: the
// Fig. 4 scenario as an application. A datum with {replica=5, ft=true}
// lives on DSL-Lab; hosts keep crashing and arriving, and the scheduler's
// heartbeat-timeout detector keeps the replica count at five.
//
//   ./examples/fault_storage
#include <cstdio>
#include <vector>

#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

using namespace bitdew;

int main() {
  sim::Simulator sim(11);
  net::Network net(sim);
  testbed::DslLab lab = testbed::make_dsllab(net, sim.rng(), 12);
  runtime::SimRuntime runtime(sim, net, lab.server);

  runtime::SimNode& master = runtime.add_node(lab.server, /*reservoir=*/false);
  const core::Content archive = core::synthetic_content(8, 3 * util::kMB);
  const core::Data data = master.bitdew().create_data("family-photos", archive);
  master.bitdew().put(data, archive);
  master.active_data().schedule(
      data, master.bitdew().create_attribute("attr photos = {replica=5, ft=true, oob=ftp}"));

  std::vector<runtime::SimNode*> nodes;
  std::size_t next = 0;
  for (int i = 0; i < 5; ++i) nodes.push_back(&runtime.add_node(lab.nodes[next++]));
  sim.run_until(120);

  auto replicas = [&] {
    int count = 0;
    for (const auto* node : nodes) {
      if (net.alive(node->host()) && node->has(data.uid)) ++count;
    }
    return count;
  };
  std::printf("t=%5.0fs  replicas=%d (initial placement)\n", sim.now(), replicas());

  // Churn: a crash every 30 s, a new volunteer every 30 s.
  for (int round = 0; round < 5; ++round) {
    for (auto* node : nodes) {
      if (net.alive(node->host()) && node->has(data.uid)) {
        runtime.kill_node(node->host());
        std::printf("t=%5.0fs  CRASH %s\n", sim.now(), node->name().c_str());
        break;
      }
    }
    nodes.push_back(&runtime.add_node(lab.nodes[next++]));
    sim.run_until(sim.now() + 30);
    std::printf("t=%5.0fs  replicas=%d\n", sim.now(), replicas());
  }

  sim.run_until(sim.now() + 60);
  std::printf("\nfinal replicas: %d/5 after 5 crashes — the storage healed itself.\n",
              replicas());
  std::printf("scheduler declared %llu hosts dead; issued %llu download orders.\n",
              static_cast<unsigned long long>(runtime.container().ds().stats().failures),
              static_cast<unsigned long long>(runtime.container().ds().stats().orders));
  return replicas() == 5 ? 0 : 1;
}
