// Self-healing replicated storage over volatile broadband hosts: the
// Fig. 4 scenario as an application. A datum with {replica=5, ft=true}
// lives on DSL-Lab; hosts keep crashing and arriving, and the scheduler's
// heartbeat-timeout detector keeps the replica count at five.
//
//   ./examples/fault_storage
#include <cstdio>
#include <vector>

#include "api/session.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

using namespace bitdew;

int main() {
  sim::Simulator sim(11);
  net::Network net(sim);
  testbed::DslLab lab = testbed::make_dsllab(net, sim.rng(), 12);
  runtime::SimRuntime runtime(sim, net, lab.server);

  runtime::SimNode& master = runtime.add_node(lab.server, /*reservoir=*/false);
  api::Session session(master.bitdew(), master.active_data(), [&] { return sim.step(); });
  const core::Content archive = core::synthetic_content(8, 3 * util::kMB);
  const api::Expected<core::Data> slot = session.create_data("family-photos", archive);
  if (!slot.ok() || !session.put(*slot, archive).ok()) {
    std::fprintf(stderr, "failed to store the archive\n");
    return 1;
  }
  const core::Data data = *slot;
  if (const api::Status scheduled = session.schedule(
          data, master.bitdew().create_attribute("attr photos = {replica=5, ft=true, oob=ftp}"));
      !scheduled.ok()) {
    std::fprintf(stderr, "schedule failed: %s\n", scheduled.error().to_string().c_str());
    return 1;
  }

  std::vector<runtime::SimNode*> nodes;
  std::size_t next = 0;
  for (int i = 0; i < 5; ++i) nodes.push_back(&runtime.add_node(lab.nodes[next++]));
  sim.run_until(120);

  auto replicas = [&] {
    int count = 0;
    for (const auto* node : nodes) {
      if (net.alive(node->host()) && node->has(data.uid)) ++count;
    }
    return count;
  };
  std::printf("t=%5.0fs  replicas=%d (initial placement)\n", sim.now(), replicas());

  // Churn: a crash every 30 s, a new volunteer every 30 s.
  for (int round = 0; round < 5; ++round) {
    for (auto* node : nodes) {
      if (net.alive(node->host()) && node->has(data.uid)) {
        runtime.kill_node(node->host());
        std::printf("t=%5.0fs  CRASH %s\n", sim.now(), node->name().c_str());
        break;
      }
    }
    nodes.push_back(&runtime.add_node(lab.nodes[next++]));
    sim.run_until(sim.now() + 30);
    std::printf("t=%5.0fs  replicas=%d\n", sim.now(), replicas());
  }

  sim.run_until(sim.now() + 60);
  std::printf("\nfinal replicas: %d/5 after 5 crashes — the storage healed itself.\n",
              replicas());
  std::printf("scheduler declared %llu hosts dead; issued %llu download orders.\n",
              static_cast<unsigned long long>(runtime.container().ds().stats().failures),
              static_cast<unsigned long long>(runtime.container().ds().stats().orders));
  return replicas() == 5 ? 0 : 1;
}
