// The paper's §5 master/worker BLAST application, end to end: broadcast the
// application binary, attract the genebase to task holders, run searches,
// collect results at the master through collector affinity, then clean up
// by deleting the collector. Prints the same per-phase breakdown as Fig. 6.
//
//   ./examples/blast_mw [workers] [tasks]
#include <cstdio>
#include <cstdlib>

#include "mw/blast.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

using namespace bitdew;

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 12;
  const int tasks = argc > 2 ? std::atoi(argv[2]) : workers;

  sim::Simulator sim(5);
  net::Network net(sim);
  const auto cluster =
      testbed::make_cluster(net, testbed::ClusterSpec{"gdx", workers + 2, 125e6, 100e-6, 2.2});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0], mw::blast_runtime_config());

  mw::BlastWorkload workload;
  workload.genebase_bytes = 268 * util::kMB;  // 1/10th scale for the example
  workload.transfer_protocol = "bittorrent";

  std::printf("BLAST master/worker: %d workers, %d tasks, genebase %s via %s\n\n", workers,
              tasks, util::human_bytes(workload.genebase_bytes).c_str(),
              workload.transfer_protocol.c_str());

  mw::BlastApplication app(runtime, workload);
  std::vector<mw::BlastWorkerSpec> specs;
  for (int i = 2; i < workers + 2; ++i) {
    specs.push_back(mw::BlastWorkerSpec{cluster.hosts[static_cast<std::size_t>(i)], 2.2, "gdx"});
  }
  app.deploy(cluster.hosts[1], specs, tasks);

  if (!app.run(100000)) {
    std::printf("did not complete — try fewer workers/tasks\n");
    return 1;
  }

  const mw::BlastReport& report = app.report();
  std::printf("completed: %d results in %.1fs\n\n", report.results, report.total_time_s);
  std::printf("%-10s | %10s %10s %10s | %s\n", "worker", "transfer", "unzip", "exec", "tasks");
  for (const mw::WorkerReport& worker : report.workers) {
    if (worker.tasks == 0) continue;
    std::printf("%-10s | %9.1fs %9.1fs %9.1fs | %d\n", worker.host.c_str(),
                worker.transfer_s, worker.unzip_s, worker.exec_s, worker.tasks);
  }
  const auto mean = report.overall();
  std::printf("%-10s | %9.1fs %9.1fs %9.1fs |\n", "mean", mean.transfer_s, mean.unzip_s,
              mean.exec_s);
  std::printf("\nscheduler cleaned up: %zu data still scheduled (collector deleted)\n",
              runtime.container().ds().scheduled_count());
  return 0;
}
