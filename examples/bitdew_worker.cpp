// bitdew_worker — a live reservoir node (paper §3.1's volatile worker,
// deployed for real): joins a bitdewd deployment, heartbeats ds_sync, pulls
// newly assigned data over the chunked TCP data plane into a WAL-backed
// local cache, and lets the scheduler re-place its replicas when it dies.
//
//   bitdew_worker --connect HOST:PORT --name N --cache DIR
//                 [--heartbeat S] [--chunk BYTES] [--max-transfers N]
//                 [--peer-port P] [--advertise HOST] [--no-peer]
//                 [--peer-rate BYTES] [--exec SLOTS] [--scratch DIR]
//
//   --connect HOST:PORT  the bitdewd daemon to join (required)
//   --name N             host name announced in ds_sync (required; the
//                        scheduler tracks liveness under this name)
//   --cache DIR          replica files + cache.wal manifest (required).
//                        Restart with the same DIR: intact replicas are
//                        re-verified (MD5) and re-announced, not re-downloaded.
//   --heartbeat S        sync period in seconds (default 1, the paper's)
//   --chunk BYTES        transfer chunk size (default 256KB, e.g. "1MB")
//   --max-transfers N    concurrent download cap (default 4; 0 = unlimited)
//   --peer-port P        chunk-server port for the peer data plane
//                        (default 0 = ephemeral)
//   --advertise HOST     host other workers dial to reach this chunk server
//                        (default 127.0.0.1; set to this machine's address
//                        on a real network)
//   --no-peer            do not serve replicas to other workers (the node
//                        still downloads FROM peers when a datum is p2p)
//   --peer-rate BYTES    cap the chunk server's upload at BYTES/s, e.g.
//                        "8MB" (default 0 = unlimited)
//   --exec SLOTS         run a TaskRunner with SLOTS concurrent executions:
//                        the worker claims job tasks placed on its replicas
//                        (compute-to-data) and publishes their results
//                        (default 0 = data plane only)
//   --scratch DIR        fetched inputs + command outputs for --exec
//                        (default CACHE/scratch)
//
// The worker prints one line per life-cycle event (joined / downloading /
// replica verified / dropped) — the live-fault-tolerance CI job and humans
// tail these — and exits cleanly on SIGINT/SIGTERM. kill -9 it to play the
// paper's Fig. 4 experiment: within 3 heartbeats the scheduler declares the
// node dead and re-schedules its fault-tolerant replicas onto survivors.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>

#include "jobs/task_runner.hpp"
#include "runtime/node_runtime.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"

using namespace bitdew;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT --name N --cache DIR"
               " [--heartbeat S] [--chunk BYTES] [--max-transfers N]"
               " [--peer-port P] [--advertise HOST] [--no-peer] [--peer-rate BYTES]"
               " [--exec SLOTS] [--scratch DIR]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  runtime::NodeRuntimeConfig config;
  config.name.clear();
  config.cache_dir.clear();
  int exec_slots = 0;
  std::string scratch_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--connect") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      target = value;
    } else if (arg == "--name") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.name = value;
    } else if (arg == "--cache") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.cache_dir = value;
    } else if (arg == "--heartbeat") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.heartbeat_period_s = std::atof(value);
      if (config.heartbeat_period_s <= 0) {
        std::fprintf(stderr, "bitdew_worker: bad --heartbeat '%s' (expected seconds > 0)\n",
                     value);
        return 2;
      }
    } else if (arg == "--chunk") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.chunk_bytes = util::parse_bytes(value);
      if (config.chunk_bytes <= 0) {
        std::fprintf(stderr, "bitdew_worker: bad --chunk '%s'\n", value);
        return 2;
      }
    } else if (arg == "--max-transfers") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.max_concurrent_transfers = std::atoi(value);
      if (config.max_concurrent_transfers < 0) {
        std::fprintf(stderr, "bitdew_worker: bad --max-transfers '%s'\n", value);
        return 2;
      }
    } else if (arg == "--peer-port") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      const int peer_port = std::atoi(value);
      if (peer_port < 0 || peer_port > 65535) {
        std::fprintf(stderr, "bitdew_worker: bad --peer-port '%s'\n", value);
        return 2;
      }
      config.peer_port = static_cast<std::uint16_t>(peer_port);
    } else if (arg == "--advertise") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.advertise_host = value;
    } else if (arg == "--no-peer") {
      config.serve_peers = false;
    } else if (arg == "--peer-rate") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      const std::int64_t rate = util::parse_bytes(value);
      if (rate < 0) {
        std::fprintf(stderr, "bitdew_worker: bad --peer-rate '%s'\n", value);
        return 2;
      }
      config.peer_upload_Bps = static_cast<double>(rate);
    } else if (arg == "--exec") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      exec_slots = std::atoi(value);
      if (exec_slots < 0) {
        std::fprintf(stderr, "bitdew_worker: bad --exec '%s'\n", value);
        return 2;
      }
    } else if (arg == "--scratch") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      scratch_dir = value;
    } else {
      return usage(argv[0]);
    }
  }
  if (target.empty() || config.name.empty() || config.cache_dir.empty()) {
    return usage(argv[0]);
  }
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "bitdew_worker: expected HOST:PORT, got '%s'\n", target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bitdew_worker: bad port in '%s'\n", target.c_str());
    return 2;
  }

  // Every worker process mints AUIDs (task results) against one shared
  // daemon: without a unique per-process prefix all workers would mint the
  // SAME uid sequence from the default seed and their results would clobber
  // each other in the catalog.
  std::random_device entropy;
  util::reseed_auid((static_cast<std::uint64_t>(entropy()) << 32) ^ entropy() ^
                    static_cast<std::uint64_t>(
                        std::chrono::steady_clock::now().time_since_epoch().count()) ^
                    (static_cast<std::uint64_t>(::getpid()) << 16) ^
                    std::hash<std::string>{}(config.name));

  // Life-cycle events on stdout: the CI job greps these, humans tail them.
  util::set_log_level(util::LogLevel::kInfo);

  runtime::NodeRuntime node(host, static_cast<std::uint16_t>(port), config);
  const api::Status started = node.start();
  if (!started.ok()) {
    std::fprintf(stderr, "bitdew_worker: %s\n", started.error().to_string().c_str());
    return 1;
  }

  std::shared_ptr<jobs::TaskRunner> runner;
  if (exec_slots > 0) {
    jobs::TaskRunnerConfig runner_config;
    runner_config.exec_slots = exec_slots;
    runner_config.scratch_dir =
        scratch_dir.empty()
            ? (std::filesystem::path(config.cache_dir) / "scratch").string()
            : scratch_dir;
    runner_config.chunk_bytes = config.chunk_bytes;
    runner = std::make_shared<jobs::TaskRunner>(node, host, static_cast<std::uint16_t>(port),
                                                runner_config);
    const api::Status running = runner->start();
    if (!running.ok()) {
      std::fprintf(stderr, "bitdew_worker: %s\n", running.error().to_string().c_str());
      node.stop();
      return 1;
    }
    node.active_data().add_callback(runner);
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const runtime::NodeRuntimeStats stats = node.stats();  // before stop(): peer counters live
  if (runner) {
    const jobs::TaskRunnerStats tasks = runner->stats();
    runner->stop();
    std::printf("bitdew_worker: %s ran %llu task(s) (%llu data-local, %llu failed)\n",
                config.name.c_str(), static_cast<unsigned long long>(tasks.tasks_ok),
                static_cast<unsigned long long>(tasks.data_local),
                static_cast<unsigned long long>(tasks.tasks_failed));
  }
  node.stop();
  std::printf(
      "bitdew_worker: %s left after %llu sync(s), %llu download(s), %llu drop(s), "
      "%llu peer chunk(s) served\n",
      config.name.c_str(), static_cast<unsigned long long>(stats.syncs_ok),
      static_cast<unsigned long long>(stats.downloads_completed),
      static_cast<unsigned long long>(stats.drops),
      static_cast<unsigned long long>(stats.peer_chunks_served));
  return 0;
}
