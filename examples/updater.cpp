// The paper's Updater application (Listings 1-2): a master broadcasts a
// file update to every node with BitTorrent and a 30-day lifetime; each
// updatee acknowledges by scheduling a small "host" datum whose affinity
// pulls it back to the collector pinned on the master.
//
//   ./examples/updater
#include <cstdio>
#include <memory>
#include <set>

#include "api/session.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

using namespace bitdew;

namespace {

/// Listing 2's UpdaterHandler: collect host acknowledgements.
struct UpdaterHandler final : core::ActiveDataEventHandler {
  std::set<std::string>* updatees;
  sim::Simulator* sim;
  void on_data_copy(const core::Data& data, const core::DataAttributes& attr) override {
    if (attr.name != "host") return;
    updatees->insert(data.name);
    std::printf("[%7.2fs] updater: %s confirmed the update (%zu so far)\n", sim->now(),
                data.name.c_str(), updatees->size());
  }
};

/// Listing 2's UpdateeHandler: on receiving the update, send our name back.
struct UpdateeHandler final : core::ActiveDataEventHandler {
  runtime::SimNode* node;
  core::Data collector;
  void on_data_copy(const core::Data&, const core::DataAttributes& attr) override {
    if (attr.name != "update") return;
    const core::Data ack = node->bitdew().create_data(node->name(), core::Content{0, "-"});
    node->adopt_local(ack);
    core::DataAttributes ack_attr;
    ack_attr.name = "host";
    ack_attr.replica = 0;
    ack_attr.affinity = collector.uid;
    node->active_data().schedule(ack, ack_attr);
  }
  void on_data_delete(const core::Data&, const core::DataAttributes& attr) override {
    if (attr.name == "update") {
      std::printf("          %s: update file expired, removed from cache\n",
                  node->name().c_str());
    }
  }
};

}  // namespace

int main() {
  sim::Simulator sim(7);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"office", 13});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0]);

  runtime::SimNode& updater = runtime.add_node(cluster.hosts[1]);
  std::set<std::string> updatees;

  // Master side (Listing 1): collector + broadcast attribute.
  const core::Data collector = updater.bitdew().create_data("collector");
  updater.adopt_local(collector);
  core::DataAttributes collector_attr;
  collector_attr.name = "collector";
  collector_attr.replica = 0;
  updater.active_data().pin(collector, collector_attr);

  auto master_handler = std::make_shared<UpdaterHandler>();
  master_handler->updatees = &updatees;
  master_handler->sim = &sim;
  updater.active_data().add_callback(master_handler);

  for (int i = 2; i < 13; ++i) {
    runtime::SimNode& node = runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)]);
    auto handler = std::make_shared<UpdateeHandler>();
    handler->node = &node;
    handler->collector = collector;
    node.active_data().add_callback(handler);
  }

  // "attr update = {replicat=-1, oob=bittorrent, abstime=43200}" — we use a
  // short lifetime so the example also shows the expiry path. The blocking
  // Session reports any failure as a typed Error.
  api::Session session(updater.bitdew(), updater.active_data(), [&] { return sim.step(); });
  const core::Content update_file = core::synthetic_content(99, 120 * util::kMB);
  const api::Expected<core::Data> update = session.create_data("big_data_to_update", update_file);
  if (!update.ok() || !session.put(*update, update_file, "bittorrent").ok()) {
    std::fprintf(stderr, "failed to publish the update file\n");
    return 1;
  }
  const core::DataAttributes update_attr = updater.bitdew().create_attribute(
      "attr update = {replicat=-1, oob=bittorrent, abstime=300}");
  if (const api::Status scheduled = session.schedule(*update, update_attr); !scheduled.ok()) {
    std::fprintf(stderr, "schedule failed: %s\n", scheduled.error().to_string().c_str());
    return 1;
  }

  sim.run_until(400);
  std::printf("\n%zu/11 hosts confirmed; update expired at t=300s as scheduled.\n",
              updatees.size());
  return updatees.size() == 11 ? 0 : 1;
}
