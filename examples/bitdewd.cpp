// bitdewd — the BitDew service daemon (paper Fig. 1's stable node, deployed
// for real): one ServiceContainer hosting the four D* services plus a DHT
// back-end, served over TCP by rpc::ServiceHost. Clients are
// api::RemoteServiceBus (or `bitdew_cli connect HOST:PORT`).
//
//   bitdewd [--port P] [--wal DIR] [--host NAME] [--compact-bytes N]
//           [--loopback] [--data-rate BYTES] [--host-gc SWEEPS]
//           [--ring] [--ring-join HOST:PORT]
//           [--ring-id HEX] [--replication-f N] [--ring-stabilize S]
//           [--advertise HOST]
//
//   --port P           TCP port to listen on (default 9328; 0 = ephemeral)
//   --wal DIR          durable mode: persist state to DIR/bitdewd.wal and
//                      recover it on restart (default: in-memory)
//   --host NAME        service host name announced in locators (default
//                      "bitdewd")
//   --compact-bytes N  auto-compact the WAL when it grows past N bytes
//                      (default 8388608; 0 disables)
//   --loopback         bind 127.0.0.1 only instead of all interfaces
//   --data-rate BYTES  cap data-plane egress (dr_get_chunk replies) at
//                      BYTES/s, e.g. "64MB" (default 0 = unlimited);
//                      control traffic is never shaped
//   --host-gc SWEEPS   forget a dead worker from the host table after it
//                      has missed SWEEPS failure sweeps (default 0 = list
//                      dead hosts forever, the historical behavior)
//
// Live DHT ring (shard the dc_*/ddc_* metadata plane across daemons):
//   --ring             become a ring member (bootstraps a new ring unless
//                      --ring-join names an existing member)
//   --ring-join H:P    join the ring through the member at H:P
//   --ring-id HEX      explicit 64-bit ring position (default: derived from
//                      the advertised endpoint; keep it stable across
//                      restarts of a durable member)
//   --replication-f N  owner + (N-1) successors hold each key (default 2)
//   --ring-stabilize S stabilization period in seconds (default 2.0)
//   --advertise HOST   address other members/clients reach us at
//                      (default 127.0.0.1)
//
// The daemon prints "serving on port P" once ready (scripts parse this for
// ephemeral ports) and exits cleanly on SIGINT/SIGTERM — a ring member
// hands its keys to its successor (planned leave) before stopping.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "rpc/server.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"

using namespace bitdew;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--wal DIR] [--host NAME] [--compact-bytes N]"
               " [--loopback] [--data-rate BYTES] [--host-gc SWEEPS]"
               " [--ring] [--ring-join HOST:PORT]"
               " [--ring-id HEX] [--replication-f N] [--ring-stabilize S]"
               " [--advertise HOST]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 9328;
  std::string wal_dir;
  std::string host_name = "bitdewd";
  std::uint64_t compact_bytes = 8u << 20;
  bool loopback = false;
  double data_rate_Bps = 0;
  int host_gc_sweeps = 0;
  bool ring = false;
  rpc::RingOptions ring_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--port") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      char* end = nullptr;
      const long parsed = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 0 || parsed > 65535) {
        std::fprintf(stderr, "bitdewd: bad port '%s' (expected 0-65535)\n", value);
        return 2;
      }
      port = static_cast<std::uint16_t>(parsed);
    } else if (arg == "--wal") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      wal_dir = value;
    } else if (arg == "--host") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      host_name = value;
    } else if (arg == "--compact-bytes") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      char* end = nullptr;
      compact_bytes = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "bitdewd: bad --compact-bytes '%s' (expected a byte count)\n",
                     value);
        return 2;
      }
    } else if (arg == "--loopback") {
      loopback = true;
    } else if (arg == "--ring") {
      ring = true;
    } else if (arg == "--ring-join") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      ring = true;
      ring_options.join_endpoint = value;
    } else if (arg == "--ring-id") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      char* end = nullptr;
      ring_options.ring_id = std::strtoull(value, &end, 16);
      if (end == value || *end != '\0' || ring_options.ring_id == 0) {
        std::fprintf(stderr, "bitdewd: bad --ring-id '%s' (expected nonzero hex)\n", value);
        return 2;
      }
    } else if (arg == "--replication-f") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      char* end = nullptr;
      const long parsed = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 1 || parsed > 64) {
        std::fprintf(stderr, "bitdewd: bad --replication-f '%s' (expected 1-64)\n", value);
        return 2;
      }
      ring_options.replication_f = static_cast<int>(parsed);
    } else if (arg == "--ring-stabilize") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      char* end = nullptr;
      const double parsed = std::strtod(value, &end);
      if (end == value || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr, "bitdewd: bad --ring-stabilize '%s' (expected seconds > 0)\n",
                     value);
        return 2;
      }
      ring_options.stabilize_period_s = parsed;
    } else if (arg == "--advertise") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      ring_options.advertise_host = value;
    } else if (arg == "--data-rate") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      const std::int64_t parsed = util::parse_bytes(value);
      if (parsed < 0) {
        std::fprintf(stderr, "bitdewd: bad --data-rate '%s' (expected bytes/s)\n", value);
        return 2;
      }
      data_rate_Bps = static_cast<double>(parsed);
    } else if (arg == "--host-gc") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      char* end = nullptr;
      const long parsed = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "bitdewd: bad --host-gc '%s' (expected sweeps >= 0)\n", value);
        return 2;
      }
      host_gc_sweeps = static_cast<int>(parsed);
    } else {
      return usage(argv[0]);
    }
  }

  // Restart-stable epoch: anchored lifetimes land in the WAL as clock
  // readings, so a reopened daemon must read the SAME clock — a
  // seconds-since-construction epoch would shift every replayed deadline
  // by the previous uptime.
  static util::WallClock clock;
  services::SchedulerConfig scheduler_config;
  scheduler_config.host_gc_sweeps = host_gc_sweeps;
  std::unique_ptr<services::ServiceContainer> container;
  if (wal_dir.empty()) {
    container = std::make_unique<services::ServiceContainer>(host_name, clock, scheduler_config);
  } else {
    std::filesystem::create_directories(wal_dir);
    const std::string wal_path = (std::filesystem::path(wal_dir) / "bitdewd.wal").string();
    container =
        std::make_unique<services::ServiceContainer>(host_name, clock, wal_path, scheduler_config);
    container->database().set_auto_compact(compact_bytes);
    std::printf("bitdewd: durable state at %s (%llu bytes replayed, %zu data scheduled)\n",
                wal_path.c_str(),
                static_cast<unsigned long long>(container->database().wal_bytes()),
                container->ds().scheduled_count());
  }

  dht::LocalDht ddc;
  rpc::ServiceHostConfig config;
  config.port = port;
  config.loopback_only = loopback;
  config.data_plane_upload_Bps = data_rate_Bps;
  rpc::ServiceHost host(*container, ddc, config);
  const api::Status started = host.start();
  if (!started.ok()) {
    std::fprintf(stderr, "bitdewd: %s\n", started.error().to_string().c_str());
    return 1;
  }

  if (ring) {
    const api::Status joined = host.start_ring(ring_options);
    if (!joined.ok()) {
      std::fprintf(stderr, "bitdewd: ring: %s\n", joined.error().to_string().c_str());
      host.stop();
      return 1;
    }
    const std::string via = ring_options.join_endpoint.empty()
                                ? "bootstrapped"
                                : "joined via " + ring_options.join_endpoint;
    std::printf("bitdewd: ring member %s (id %016llx, %s)\n",
                host.ring()->self().endpoint.c_str(),
                static_cast<unsigned long long>(host.ring()->self().id), via.c_str());
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("bitdewd: serving on port %u (host %s, %s)\n",
              static_cast<unsigned>(host.port()), host_name.c_str(),
              wal_dir.empty() ? "in-memory" : "durable");
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  host.ring_leave();  // no-op unless a ring member: planned key handoff
  host.stop();
  std::printf("bitdewd: stopped after %llu request(s) on %llu connection(s)\n",
              static_cast<unsigned long long>(host.requests_served()),
              static_cast<unsigned long long>(host.connections_accepted()));
  return 0;
}
