// The Distributed Data Catalog as a generic publish/search facility
// (paper §3.3: "the API also gives the programmer the possibility to
// publish any key/value pairs so that the DHT can be used for other
// generic purposes"). Builds a 32-node DKS-style ring, publishes a small
// service registry into it, looks keys up from arbitrary nodes, then kills
// a third of the ring and shows the data survives via f-replication.
//
//   ./examples/dht_catalog
#include <cstdio>

#include "dht/ring.hpp"
#include "testbed/topologies.hpp"

using namespace bitdew;

int main() {
  sim::Simulator sim(13);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"p2p", 32});

  dht::RingConfig config;
  config.arity = 4;        // DKS k
  config.replication = 3;  // DKS f
  config.stabilize_period_s = 1.0;
  dht::Ring ring(sim, net, config);
  std::vector<dht::NodeIndex> nodes;
  for (const auto host : cluster.hosts) nodes.push_back(ring.add_node(host));
  ring.bootstrap_all();
  ring.start_maintenance();

  // Publish a little service registry.
  const char* services[][2] = {{"service/blast", "gdx-17:4242"},
                               {"service/storage", "gdx-3:9000"},
                               {"service/storage", "gdx-21:9000"},
                               {"mirror/genebank", "ftp://gdx-5/store"}};
  int published = 0;
  for (const auto& [key, value] : services) {
    ring.put(nodes[static_cast<std::size_t>(published) % nodes.size()], key, value,
             [&published](bool ok) { published += ok ? 1 : 0; });
  }
  sim.run_until(30);
  std::printf("published %d/4 pairs; mean lookup hops so far: %.2f\n", published,
              ring.stats().mean_hops());

  auto show = [&](const std::string& key, dht::NodeIndex from) {
    ring.get(from, key, [key](std::vector<std::string> values) {
      std::printf("  %-18s ->", key.c_str());
      for (const auto& value : values) std::printf(" %s", value.c_str());
      std::printf("\n");
    });
  };
  std::printf("\nlookups from node 29:\n");
  show("service/blast", nodes[29]);
  show("service/storage", nodes[29]);
  show("mirror/genebank", nodes[29]);
  sim.run_until(sim.now() + 10);

  // Kill ~a third of the ring; stabilization repairs routing and the
  // replicas keep the registry readable.
  for (std::size_t i = 0; i < nodes.size(); i += 3) ring.fail(nodes[i]);
  sim.run_until(sim.now() + 30);
  std::printf("\nafter killing 11/32 nodes and 30s of stabilization:\n");
  show("service/blast", nodes[28]);
  show("service/storage", nodes[28]);
  sim.run_until(sim.now() + 10);

  std::printf("\nring stats: %llu messages, %llu lookups, %llu timeouts\n",
              static_cast<unsigned long long>(ring.stats().messages),
              static_cast<unsigned long long>(ring.stats().lookups),
              static_cast<unsigned long long>(ring.stats().timeouts));
  return 0;
}
