// Quickstart: create a datum, tag it with attributes through the DSL, let
// the runtime replicate it over a small desktop grid, and watch life-cycle
// events — the whole BitDew programming model in ~80 lines.
//
//   ./examples/quickstart
#include <cstdio>
#include <memory>

#include "api/session.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

using namespace bitdew;

namespace {

struct PrintEvents final : core::ActiveDataEventHandler {
  std::string host;
  sim::Simulator* sim;
  void on_data_copy(const core::Data& data, const core::DataAttributes& attr) override {
    std::printf("[%7.2fs] %-8s received a replica of '%s' (%s, attr '%s')\n", sim->now(),
                host.c_str(), data.name.c_str(), util::human_bytes(data.size).c_str(),
                attr.name.c_str());
  }
  void on_data_delete(const core::Data& data, const core::DataAttributes&) override {
    std::printf("[%7.2fs] %-8s dropped '%s' (lifetime expired)\n", sim->now(), host.c_str(),
                data.name.c_str());
  }
};

}  // namespace

int main() {
  // A 9-node cluster: one service host + one client + seven reservoirs.
  sim::Simulator sim(2024);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"lab", 9});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0]);

  runtime::SimNode& client = runtime.add_node(cluster.hosts[1], /*reservoir=*/false);
  for (int i = 2; i < 9; ++i) {
    runtime::SimNode& node = runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)]);
    auto events = std::make_shared<PrintEvents>();
    events->host = node.name();
    events->sim = &sim;
    node.active_data().add_callback(events);
  }

  // The blocking Session facade: each call drives the simulator until its
  // reply arrives and returns an Expected<T> — failures carry a typed
  // Error{code, service, message} instead of a bare bool.
  api::Session session(client.bitdew(), client.active_data(), [&] { return sim.step(); });

  // 1. Create a slot in the data space and put 50 MB of content into it.
  const core::Content content = core::synthetic_content(1, 50 * util::kMB);
  const api::Expected<core::Data> dataset = session.create_data("dataset", content);
  if (!dataset.ok()) {
    std::fprintf(stderr, "create_data failed: %s\n", dataset.error().to_string().c_str());
    return 1;
  }
  if (const api::Status put = session.put(*dataset, content); !put.ok()) {
    std::fprintf(stderr, "put failed: %s\n", put.error().to_string().c_str());
    return 1;
  }

  // 2. Describe the behaviour with the paper's attribute DSL: three live
  //    replicas, crash-resilient, moved with FTP, gone after 120 s.
  const core::DataAttributes attributes = client.bitdew().create_attribute(
      "attr dataset = {replica=3, ft=true, oob=ftp, abstime=120}");

  // 3. Schedule it — placement, transfers, fault tolerance and deletion are
  //    now the runtime's problem, not ours.
  if (const api::Status scheduled = session.schedule(*dataset, attributes); !scheduled.ok()) {
    std::fprintf(stderr, "schedule failed: %s\n", scheduled.error().to_string().c_str());
    return 1;
  }

  sim.run_until(200);

  std::printf("\nscheduler state after the run: %zu data scheduled, owners of '%s': %zu\n",
              runtime.container().ds().scheduled_count(), dataset->name.c_str(),
              runtime.container().ds().owners(dataset->uid).size());
  std::printf("DT transfers completed: %llu, checksum rejects: %llu\n",
              static_cast<unsigned long long>(runtime.container().dt().stats().completed),
              static_cast<unsigned long long>(
                  runtime.container().dt().stats().checksum_rejects));
  return 0;
}
